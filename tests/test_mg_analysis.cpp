// Marked-graph structural analysis: liveness, boundedness, place bounds —
// cross-checked against the step-semantics simulator — and the LIS-level
// channel storage bounds built on them.
#include <gtest/gtest.h>

#include "core/storage.hpp"
#include "gen/generator.hpp"
#include "lis/paper_systems.hpp"
#include "mg/analysis.hpp"
#include "mg/simulate.hpp"
#include "util/rng.hpp"

namespace lid::mg {
namespace {

MarkedGraph ring_with_tokens(const std::vector<std::int64_t>& tokens) {
  MarkedGraph g;
  const int n = static_cast<int>(tokens.size());
  for (int i = 0; i < n; ++i) g.add_transition(TransitionKind::kShell);
  for (int i = 0; i < n; ++i) {
    g.add_place(i, (i + 1) % n, tokens[static_cast<std::size_t>(i)]);
  }
  return g;
}

TEST(Analysis, LivenessDetectsTokenFreeCycles) {
  EXPECT_TRUE(is_live(ring_with_tokens({1, 0, 0})));
  EXPECT_FALSE(is_live(ring_with_tokens({0, 0, 0})));
}

TEST(Analysis, RingPlaceBoundIsTheCycleTokenCount) {
  // One cycle: every place can accumulate at most the cycle's 3 tokens.
  const MarkedGraph g = ring_with_tokens({1, 2, 0, 0});
  for (PlaceId p = 0; p < 4; ++p) {
    ASSERT_TRUE(place_bound(g, p).has_value());
    EXPECT_EQ(*place_bound(g, p), 3);
  }
  EXPECT_TRUE(is_bounded(g));
}

TEST(Analysis, PlaceOffAnyCycleIsUnbounded) {
  MarkedGraph g;
  const TransitionId a = g.add_transition(TransitionKind::kShell);
  const TransitionId b = g.add_transition(TransitionKind::kShell);
  const PlaceId p = g.add_place(a, b, 1);
  EXPECT_FALSE(place_bound(g, p).has_value());
  EXPECT_FALSE(is_bounded(g));
}

TEST(Analysis, TwoCyclesTakeTheTighterBound) {
  // Place on two cycles: bound is the smaller cycle-token count.
  MarkedGraph g;
  for (int i = 0; i < 3; ++i) g.add_transition(TransitionKind::kShell);
  const PlaceId shared = g.add_place(0, 1, 1);  // on both cycles
  g.add_place(1, 0, 3);                         // cycle A: 4 tokens
  g.add_place(1, 2, 0);                         // cycle B: via 2
  g.add_place(2, 0, 1);                         // cycle B: 2 tokens
  ASSERT_TRUE(place_bound(g, shared).has_value());
  EXPECT_EQ(*place_bound(g, shared), 2);
}

class BoundsVsSimulation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsVsSimulation, SimulatedOccupancyNeverExceedsTheStructuralBound) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(4, 10);
    params.sccs = rng.uniform_int(1, 3);
    params.min_cycles = rng.uniform_int(0, 3);
    params.relay_stations = rng.uniform_int(0, 4);
    params.policy = gen::RsPolicy::kAny;
    params.queue_capacity = rng.uniform_int(1, 3);
    const lis::Expansion ex = lis::expand_doubled(gen::generate(params, rng));
    const SimulationResult sim = simulate(ex.graph, 5000);
    const auto bounds = place_bounds(ex.graph);
    for (PlaceId p = 0; p < static_cast<PlaceId>(ex.graph.num_places()); ++p) {
      ASSERT_TRUE(bounds[static_cast<std::size_t>(p)].has_value())
          << "doubled graphs are bounded";
      EXPECT_LE(sim.max_tokens[static_cast<std::size_t>(p)],
                *bounds[static_cast<std::size_t>(p)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsVsSimulation, ::testing::Values(1, 2, 3, 4));

TEST(Analysis, ReachabilityFollowsTheCycleInvariant) {
  // Ring: only rotations of the initial marking are reachable.
  const MarkedGraph ring = ring_with_tokens({2, 1, 0, 0});
  EXPECT_TRUE(is_reachable_marking(ring, {2, 1, 0, 0}));  // M0 itself
  EXPECT_TRUE(is_reachable_marking(ring, {0, 2, 1, 0}));
  EXPECT_TRUE(is_reachable_marking(ring, {3, 0, 0, 0}));
  EXPECT_TRUE(is_reachable_marking(ring, {0, 0, 0, 3}));
  EXPECT_FALSE(is_reachable_marking(ring, {2, 2, 0, 0}));   // cycle count 4
  EXPECT_FALSE(is_reachable_marking(ring, {1, 1, 0, 0}));   // cycle count 2
  EXPECT_FALSE(is_reachable_marking(ring, {4, -1, 0, 0}));  // negative
  EXPECT_THROW(is_reachable_marking(ring, {1, 1}), std::invalid_argument);
}

TEST(Analysis, ReachabilityRequiresLiveness) {
  MarkedGraph dead = ring_with_tokens({0, 0, 0});
  EXPECT_THROW(is_reachable_marking(dead, {0, 0, 0}), std::invalid_argument);
}

class ReachabilityVsSimulation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReachabilityVsSimulation, EveryVisitedMarkingIsDeclaredReachable) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(3, 8);
    params.sccs = rng.uniform_int(1, 2);
    params.min_cycles = rng.uniform_int(0, 2);
    params.relay_stations = rng.uniform_int(0, 3);
    params.policy = gen::RsPolicy::kAny;
    const lis::Expansion ex = lis::expand_doubled(gen::generate(params, rng));
    // Drive the graph and verify every marking the step semantics visits
    // satisfies the reachability criterion (it is a necessary condition, so
    // any failure would expose a bug in either side).
    MarkedGraph g = ex.graph;  // mutate a copy to walk markings
    std::vector<std::int64_t> marking = g.marking();
    const graph::Digraph& s = g.structure();
    for (int step = 0; step < 40; ++step) {
      ASSERT_TRUE(is_reachable_marking(ex.graph, marking)) << "at step " << step;
      // One synchronous step, inline.
      std::vector<char> enabled(g.num_transitions(), 1);
      for (TransitionId t = 0; t < static_cast<TransitionId>(g.num_transitions()); ++t) {
        for (const PlaceId p : s.in_edges(t)) {
          if (marking[static_cast<std::size_t>(p)] < 1) {
            enabled[static_cast<std::size_t>(t)] = 0;
            break;
          }
        }
      }
      for (TransitionId t = 0; t < static_cast<TransitionId>(g.num_transitions()); ++t) {
        if (!enabled[static_cast<std::size_t>(t)]) continue;
        for (const PlaceId p : s.in_edges(t)) marking[static_cast<std::size_t>(p)] -= 1;
        for (const PlaceId p : s.out_edges(t)) marking[static_cast<std::size_t>(p)] += 1;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilityVsSimulation, ::testing::Values(8, 18, 28));

TEST(Analysis, IdealExpansionOfAcyclicLisIsUnbounded) {
  const lis::Expansion ideal = lis::expand_ideal(lis::make_two_core_example());
  EXPECT_FALSE(is_bounded(ideal.graph));  // no backpressure: tokens pile up
  const lis::Expansion doubled = lis::expand_doubled(lis::make_two_core_example());
  EXPECT_TRUE(is_bounded(doubled.graph));  // backpressure bounds everything
}

}  // namespace
}  // namespace lid::mg

namespace lid::core {
namespace {

TEST(Storage, TwoCoreExampleBounds) {
  // Upper channel (1 relay station, q = 1): its queue backedge carries
  // q + 2r = 3 tokens, and the tightest cycle through the delivery place is
  // the channel's own forward-plus-backedge loop with 1 + 3 = 4 tokens...
  // except shorter mixed cycles through the lower channel can be tighter.
  const auto bounds = storage_bounds(lis::make_two_core_example());
  ASSERT_EQ(bounds.size(), 2u);
  for (const ChannelStorage& s : bounds) {
    EXPECT_GE(s.occupancy_bound, 1);
    // The lumped stage never needs more than the channel's total storage
    // plus the source's output latch.
    EXPECT_LE(s.occupancy_bound,
              s.configured_capacity + 2 * s.relay_stations + 1);
  }
}

TEST(Storage, SizingQueuesGrowsTheBound) {
  const std::int64_t before = total_storage_bound(lis::make_two_core_example());
  const std::int64_t after = total_storage_bound(lis::make_two_core_example_sized());
  EXPECT_GT(after, before);
}

class StorageInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageInvariant, BoundNeverExceedsTotalChannelStorage) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(5, 15);
    params.sccs = rng.uniform_int(1, 3);
    params.min_cycles = rng.uniform_int(0, 3);
    params.relay_stations = rng.uniform_int(0, 5);
    params.policy = gen::RsPolicy::kAny;
    params.queue_capacity = rng.uniform_int(1, 3);
    const lis::LisGraph system = gen::generate(params, rng);
    for (const ChannelStorage& s : storage_bounds(system)) {
      EXPECT_GE(s.occupancy_bound, 1);
      EXPECT_LE(s.occupancy_bound, s.configured_capacity + 2 * s.relay_stations + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageInvariant, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace lid::core
