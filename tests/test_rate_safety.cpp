// Rate-safety analysis (Sec. III-C): detecting faster-feeds-slower hazards.
#include <gtest/gtest.h>

#include "core/rate_safety.hpp"
#include "lis/paper_systems.hpp"
#include "mg/simulate.hpp"
#include "util/rational.hpp"

namespace lid::core {
namespace {

using util::Rational;

lis::LisGraph ring_feeding_ring(int rs_up, int rs_down) {
  // Ring A (3 cores) feeds ring B (3 cores); rs counts set the rates.
  lis::LisGraph lis;
  for (int i = 0; i < 6; ++i) lis.add_core();
  lis.add_channel(0, 1);
  lis.add_channel(1, 2);
  lis.add_channel(2, 0, rs_up);
  lis.add_channel(3, 4);
  lis.add_channel(4, 5);
  lis.add_channel(5, 3, rs_down);
  lis.add_channel(0, 3);  // A -> B
  return lis;
}

TEST(RateSafety, FasterUplinkIsFlagged) {
  // Sec. III-C's example shape: uplink 3/4, downlink 2/3 -> unsafe.
  const lis::LisGraph lis = ring_feeding_ring(1, 2);
  const RateSafetyReport report = analyze_rate_safety(lis);
  ASSERT_EQ(report.sccs.size(), 2u);
  EXPECT_FALSE(report.safe());
  ASSERT_EQ(report.hazards.size(), 1u);
  EXPECT_EQ(report.hazards[0].producer_rate, Rational(3, 4));
  EXPECT_EQ(report.hazards[0].consumer_rate, Rational(3, 5));
  EXPECT_NE(report.to_string(lis).find("rate hazard"), std::string::npos);
}

TEST(RateSafety, SlowerUplinkIsSafe) {
  const lis::LisGraph lis = ring_feeding_ring(2, 1);
  const RateSafetyReport report = analyze_rate_safety(lis);
  EXPECT_TRUE(report.safe());
  EXPECT_NE(report.to_string(lis).find("rate-safe"), std::string::npos);
}

TEST(RateSafety, HazardMeansUnboundedAccumulationInTheIdealRun) {
  // Cross-check with the simulator: the ideal expansion of a hazardous
  // system never recurs (tokens pile up), a safe one does.
  const lis::LisGraph unsafe = ring_feeding_ring(1, 2);
  const lis::Expansion unsafe_ideal = lis::expand_ideal(unsafe);
  EXPECT_FALSE(mg::simulate(unsafe_ideal.graph, 3000).periodic_found);

  const lis::LisGraph safe = ring_feeding_ring(2, 1);
  const lis::Expansion safe_ideal = lis::expand_ideal(safe);
  EXPECT_TRUE(mg::simulate(safe_ideal.graph, 3000).periodic_found);
}

TEST(RateSafety, ThrottlingPropagatesDownstream) {
  // Chain of three rings with rates 1/2, 1, 2/3: the middle full-rate ring
  // is throttled to 1/2 by its ancestor, so it does NOT hazard the third
  // (1/2 < 2/3), even though its own rate (1) would.
  lis::LisGraph lis;
  for (int i = 0; i < 6; ++i) lis.add_core();
  lis.add_channel(0, 1);
  lis.add_channel(1, 0, 2);  // ring A: 2 places + 2 rs -> mean 2/4 = 1/2
  lis.add_channel(2, 3);
  lis.add_channel(3, 2);  // ring B: rate 1
  lis.add_channel(4, 5);
  lis.add_channel(5, 4, 1);  // ring C: 2 tokens / 3 places
  lis.add_channel(0, 2);     // A -> B
  lis.add_channel(2, 4);     // B -> C
  const RateSafetyReport report = analyze_rate_safety(lis);
  EXPECT_TRUE(report.safe());
  // B's effective rate must reflect A's throttle.
  const int b_scc = report.scc_of[2];
  EXPECT_EQ(report.sccs[static_cast<std::size_t>(b_scc)].rate, Rational(1));
  EXPECT_EQ(report.sccs[static_cast<std::size_t>(b_scc)].effective_rate, Rational(1, 2));
}

TEST(RateSafety, TwoCoreExampleIsSafe) {
  const RateSafetyReport report = analyze_rate_safety(lis::make_two_core_example());
  EXPECT_TRUE(report.safe());
  EXPECT_EQ(report.sccs.size(), 2u);  // A and B are their own components
}

}  // namespace
}  // namespace lid::core
