// Computational validation of the Sec. V NP-completeness reduction: for
// random small vertex-cover instances, the minimum number of extra queue
// tokens that restores the ideal MST of the reduced LIS equals the minimum
// vertex cover size exactly.
#include <gtest/gtest.h>

#include "core/exact.hpp"
#include "core/heuristic.hpp"
#include "core/queue_sizing.hpp"
#include "lis/lis_graph.hpp"
#include "npc/vc_reduction.hpp"
#include "util/rng.hpp"

namespace lid::npc {
namespace {

using util::Rational;

TEST(VertexCover, BruteForceOnKnownGraphs) {
  // Triangle: cover 2. Star: cover 1. Path of 4: cover 2 (hmm: edges
  // (0,1),(1,2),(2,3) -> {1,2}).
  VcInstance triangle{3, {{0, 1}, {0, 2}, {1, 2}}};
  EXPECT_EQ(min_vertex_cover(triangle), 2);
  VcInstance star{4, {{0, 1}, {0, 2}, {0, 3}}};
  EXPECT_EQ(min_vertex_cover(star), 1);
  VcInstance path{4, {{0, 1}, {1, 2}, {2, 3}}};
  EXPECT_EQ(min_vertex_cover(path), 2);
  VcInstance empty{3, {}};
  EXPECT_EQ(min_vertex_cover(empty), 0);
}

TEST(Reduction, StructureMatchesThePaper) {
  const VcInstance vc{2, {{0, 1}}};
  const QsReduction red = reduce_vc_to_qs(vc);
  // 2 constructs (4 cores) + 2 relay-stationed cross channels + 5-core ring.
  EXPECT_EQ(red.lis.num_cores(), 9u);
  EXPECT_EQ(red.lis.num_channels(), 2u + 2u + 5u);
  EXPECT_EQ(red.lis.total_relay_stations(), 3);  // 2 cross + 1 limiter
  // The limiter ring pins the ideal MST at 5/6.
  EXPECT_EQ(lis::ideal_mst(red.lis), Rational(5, 6));
  // Doubling exposes the Fig. 12 cycle of mean 4/6.
  EXPECT_EQ(lis::practical_mst(red.lis), Rational(2, 3));
}

TEST(Reduction, SingleEdgeNeedsOneToken) {
  const VcInstance vc{2, {{0, 1}}};
  const QsReduction red = reduce_vc_to_qs(vc);
  core::QsOptions options;
  options.method = core::QsMethod::kExact;
  const core::QsReport report = core::size_queues(red.lis, options);
  ASSERT_TRUE(report.exact.has_value());
  ASSERT_TRUE(report.exact->finished);
  EXPECT_EQ(report.exact->total_extra_tokens, 1);  // min cover of one edge
  EXPECT_EQ(report.achieved_mst, Rational(5, 6));
  // The token must sit on a vertex-construct backedge.
  bool on_construct = false;
  for (std::size_t s = 0; s < report.problem.channels.size(); ++s) {
    if (report.exact->weights[s] == 0) continue;
    for (const lis::ChannelId construct : red.vertex_construct) {
      if (report.problem.channels[s] == construct) on_construct = true;
    }
  }
  EXPECT_TRUE(on_construct);
}

TEST(Reduction, NoEdgesNeedsNoTokens) {
  const VcInstance vc{3, {}};
  const QsReduction red = reduce_vc_to_qs(vc);
  EXPECT_EQ(lis::ideal_mst(red.lis), Rational(5, 6));
  EXPECT_EQ(lis::practical_mst(red.lis), Rational(5, 6));  // no degradation
}

TEST(Reduction, TriangleNeedsTwoTokens) {
  const VcInstance vc{3, {{0, 1}, {0, 2}, {1, 2}}};
  const QsReduction red = reduce_vc_to_qs(vc);
  core::QsOptions options;
  options.method = core::QsMethod::kExact;
  const core::QsReport report = core::size_queues(red.lis, options);
  ASSERT_TRUE(report.exact.has_value());
  ASSERT_TRUE(report.exact->finished);
  EXPECT_EQ(report.exact->total_extra_tokens, min_vertex_cover(vc));
  EXPECT_EQ(report.achieved_mst, Rational(5, 6));
}

class ReductionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReductionEquivalence, MinimumTokensEqualsMinimumCover) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const VcInstance vc = random_vc(rng.uniform_int(2, 5), 0.5, rng);
    const int cover = min_vertex_cover(vc);
    const QsReduction red = reduce_vc_to_qs(vc);

    core::QsOptions options;
    options.method = core::QsMethod::kBoth;
    options.exact.timeout_ms = 20000;
    const core::QsReport report = core::size_queues(red.lis, options);

    ASSERT_TRUE(report.exact.has_value());
    ASSERT_TRUE(report.exact->finished) << "exact search timed out on a tiny instance";
    EXPECT_EQ(report.exact->total_extra_tokens, cover)
        << "reduction broken: optimal QS tokens != min vertex cover";
    EXPECT_EQ(report.achieved_mst, Rational(5, 6));

    // The heuristic is feasible and no better than optimal.
    ASSERT_TRUE(report.heuristic.has_value());
    EXPECT_GE(report.heuristic->total_extra_tokens, cover);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalence,
                         ::testing::Values(21, 42, 63, 84, 105));

TEST(DominatingSet, BruteForceOnKnownGraphs) {
  // Star: the center dominates everything. Path of 5: {1, 3} suffices.
  VcInstance star{4, {{0, 1}, {0, 2}, {0, 3}}};
  EXPECT_EQ(min_dominating_set(star), 1);
  VcInstance path{5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}};
  EXPECT_EQ(min_dominating_set(path), 2);
  VcInstance empty{3, {}};
  EXPECT_EQ(min_dominating_set(empty), 3);  // no edges: everyone for himself
}

class DominatingSetToTd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominatingSetToTd, MinimumWeightEqualsMinimumDominatingSet) {
  // The Sec. VII-A reduction proving TD NP-complete: minimum TD weight ==
  // minimum dominating set, validated via the exact TD solver.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const VcInstance graph = random_vc(rng.uniform_int(2, 8), 0.35, rng);
    const core::TdInstance td = reduce_dominating_set_to_td(graph);
    const core::TdSolution upper = core::solve_heuristic(td);
    const core::ExactResult exact = core::solve_exact(td, upper);
    ASSERT_TRUE(exact.solution.has_value());
    EXPECT_EQ(exact.solution->total, min_dominating_set(graph));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatingSetToTd, ::testing::Values(201, 202, 203));

TEST(RandomVc, RespectsProbabilityBounds) {
  util::Rng rng(5);
  const VcInstance none = random_vc(5, 0.0, rng);
  EXPECT_TRUE(none.edges.empty());
  const VcInstance all = random_vc(5, 1.0, rng);
  EXPECT_EQ(all.edges.size(), 10u);
  EXPECT_THROW(random_vc(0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(random_vc(3, 1.5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace lid::npc
