#include <gtest/gtest.h>

#include "core/rs_insertion.hpp"
#include "lis/paper_systems.hpp"
#include "util/rational.hpp"

namespace lid::core {
namespace {

using util::Rational;

TEST(GreedyRsInsertion, RepairsTheTwoCoreExample) {
  // Sec. VI / Fig. 2: one relay station on the lower channel equalizes the
  // two paths and restores the ideal MST of 1.
  const RsInsertionResult r = greedy_rs_insertion(lis::make_two_core_example(), 3);
  EXPECT_EQ(r.original_ideal, Rational(1));
  EXPECT_TRUE(r.reached_ideal);
  EXPECT_EQ(r.best_practical, Rational(1));
  EXPECT_EQ(r.relay_stations_added, 1);
  EXPECT_EQ(r.best.channel(1).relay_stations, 1);
}

TEST(GreedyRsInsertion, NoBudgetMeansNoChange) {
  const RsInsertionResult r = greedy_rs_insertion(lis::make_two_core_example(), 0);
  EXPECT_EQ(r.relay_stations_added, 0);
  EXPECT_EQ(r.best_practical, Rational(2, 3));
  EXPECT_FALSE(r.reached_ideal);
}

TEST(GreedyRsInsertion, AlreadyOptimalSystemsUntouched) {
  const RsInsertionResult r = greedy_rs_insertion(lis::make_two_core_example_sized(), 5);
  EXPECT_EQ(r.relay_stations_added, 0);
  EXPECT_TRUE(r.reached_ideal);
}

TEST(ExhaustiveRsInsertion, MatchesGreedyOnTheEasyCase) {
  const RsInsertionResult r = exhaustive_rs_insertion(lis::make_two_core_example(), 2);
  EXPECT_TRUE(r.reached_ideal);
  EXPECT_EQ(r.relay_stations_added, 1);
}

TEST(ExhaustiveRsInsertion, ProvesTheFig15Counterexample) {
  const RsInsertionResult r = exhaustive_rs_insertion(lis::make_fig15_counterexample(), 2);
  EXPECT_FALSE(r.reached_ideal);
  EXPECT_EQ(r.original_ideal, Rational(5, 6));
  EXPECT_LT(r.best_practical, Rational(5, 6));
  // The search really did look at every distribution of up to 2 stations
  // over 7 channels: C(7,1) + (C(7,2) + 7) = multisets of size 1 and 2 = 35,
  // plus the baseline.
  EXPECT_EQ(r.configurations_tried, 36u);
}

TEST(ExhaustiveRsInsertion, GreedyCannotBeatExhaustive) {
  const RsInsertionResult greedy = greedy_rs_insertion(lis::make_fig15_counterexample(), 2);
  const RsInsertionResult exhaustive =
      exhaustive_rs_insertion(lis::make_fig15_counterexample(), 2);
  EXPECT_LE(greedy.best_practical, exhaustive.best_practical);
}

TEST(RsInsertion, RejectsNegativeBudget) {
  EXPECT_THROW(greedy_rs_insertion(lis::make_two_core_example(), -1), std::invalid_argument);
  EXPECT_THROW(exhaustive_rs_insertion(lis::make_two_core_example(), -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace lid::core
