// Netlist text I/O, DOT export, and throughput diagnostics.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/diagnostics.hpp"
#include "gen/generator.hpp"
#include "lis/dot_export.hpp"
#include "lis/netlist_io.hpp"
#include "lis/paper_systems.hpp"
#include "util/rng.hpp"

namespace lid::lis {
namespace {

TEST(NetlistIo, RoundTripsTheTwoCoreExample) {
  const LisGraph original = make_two_core_example_sized();
  const LisGraph parsed = from_text(to_text(original));
  ASSERT_EQ(parsed.num_cores(), original.num_cores());
  ASSERT_EQ(parsed.num_channels(), original.num_channels());
  for (ChannelId c = 0; c < static_cast<ChannelId>(original.num_channels()); ++c) {
    EXPECT_EQ(parsed.channel(c).src, original.channel(c).src);
    EXPECT_EQ(parsed.channel(c).dst, original.channel(c).dst);
    EXPECT_EQ(parsed.channel(c).relay_stations, original.channel(c).relay_stations);
    EXPECT_EQ(parsed.channel(c).queue_capacity, original.channel(c).queue_capacity);
  }
  EXPECT_EQ(parsed.core_name(0), "A");
}

TEST(NetlistIo, ParsesCommentsDefaultsAndWhitespace) {
  const LisGraph parsed = from_text(
      "# a system\n"
      "core A\n"
      "\n"
      "core B   # trailing comment\n"
      "channel A -> B\n"
      "channel A -> B rs=2 q=3\n");
  ASSERT_EQ(parsed.num_channels(), 2u);
  EXPECT_EQ(parsed.channel(0).relay_stations, 0);
  EXPECT_EQ(parsed.channel(0).queue_capacity, 1);
  EXPECT_EQ(parsed.channel(1).relay_stations, 2);
  EXPECT_EQ(parsed.channel(1).queue_capacity, 3);
}

TEST(NetlistIo, RejectsMalformedInput) {
  EXPECT_THROW(from_text("core A\ncore A\n"), std::invalid_argument);           // duplicate
  EXPECT_THROW(from_text("channel A -> B\n"), std::invalid_argument);           // unknown core
  EXPECT_THROW(from_text("core A\ncore B\nchannel A => B\n"), std::invalid_argument);
  EXPECT_THROW(from_text("core A\ncore B\nchannel A -> B rs=x\n"), std::invalid_argument);
  EXPECT_THROW(from_text("core A\ncore B\nchannel A -> B q=-1\n"), std::invalid_argument);
  EXPECT_THROW(from_text("wires A B\n"), std::invalid_argument);                // bad directive
  EXPECT_THROW(from_text("core A extra\n"), std::invalid_argument);
  EXPECT_THROW(from_text("core A\ncore B\nchannel A -> B color=red\n"),
               std::invalid_argument);
}

// q = 0 is a *semantic* defect (the lint layer reports it as L002/L001),
// not a syntax error: it must parse, round-trip, and carry provenance so
// diagnostics can point at the offending line.
TEST(NetlistIo, ZeroQueueCapacityParsesWithProvenance) {
  const auto parsed = from_text_with_provenance("core A\ncore B\nchannel A -> B q=0\n", "z.lis");
  EXPECT_EQ(parsed.graph.channel(0).queue_capacity, 0);
  EXPECT_EQ(parsed.provenance.file, "z.lis");
  EXPECT_EQ(parsed.provenance.line_of_core(0), 1);
  EXPECT_EQ(parsed.provenance.line_of_core(1), 2);
  EXPECT_EQ(parsed.provenance.line_of_channel(0), 3);
  // Round-trips: to_text emits q= whenever it differs from the default 1.
  const LisGraph again = from_text(to_text(parsed.graph));
  EXPECT_EQ(again.channel(0).queue_capacity, 0);
}

TEST(NetlistIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lid_netlist_test.lis";
  const LisGraph original = make_fig15_counterexample();
  save_netlist(original, path);
  const LisGraph loaded = load_netlist(path);
  EXPECT_EQ(loaded.num_cores(), original.num_cores());
  EXPECT_EQ(loaded.num_channels(), original.num_channels());
  EXPECT_EQ(ideal_mst(loaded), ideal_mst(original));
  EXPECT_EQ(practical_mst(loaded), practical_mst(original));
  std::remove(path.c_str());
  EXPECT_THROW(load_netlist("/nonexistent/path.lis"), std::runtime_error);
}

class NetlistRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistRoundTripProperty, GeneratedSystemsSurviveRoundTrip) {
  util::Rng rng(GetParam());
  for (int t = 0; t < 10; ++t) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(3, 25);
    params.sccs = rng.uniform_int(1, 4);
    params.min_cycles = rng.uniform_int(0, 3);
    params.relay_stations = rng.uniform_int(0, 5);
    params.queue_capacity = rng.uniform_int(1, 3);
    params.policy = gen::RsPolicy::kAny;
    const LisGraph original = gen::generate(params, rng);
    const LisGraph parsed = from_text(to_text(original));
    EXPECT_EQ(ideal_mst(parsed), ideal_mst(original));
    EXPECT_EQ(practical_mst(parsed), practical_mst(original));
    // Serialization is canonical: a second round trip is byte-identical.
    EXPECT_EQ(to_text(parsed), to_text(original));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistRoundTripProperty, ::testing::Values(6, 16, 26));

TEST(DotExport, RendersNetlistWithAnnotations) {
  const std::string dot = to_dot(make_two_core_example_sized());
  EXPECT_NE(dot.find("digraph lis"), std::string::npos);
  EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
  EXPECT_NE(dot.find("rs=1"), std::string::npos);
  EXPECT_NE(dot.find("q=2"), std::string::npos);
}

TEST(DotExport, HighlightsRequestedChannels) {
  DotOptions options;
  options.highlight = {0};
  const std::string dot = to_dot(make_two_core_example(), options);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotExport, EscapesQuotesInNames) {
  LisGraph lis;
  lis.add_core("a\"b");
  const std::string dot = to_dot(lis);
  EXPECT_NE(dot.find("\"a\\\"b\""), std::string::npos);
}

TEST(DotExport, MarkedGraphShowsTokensAndBackedges) {
  const Expansion ex = expand_doubled(make_two_core_example());
  const std::string dot = marked_graph_to_dot(ex.graph);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // backpressure places
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);   // the q+2r backedge
}

}  // namespace
}  // namespace lid::lis

namespace lid::core {
namespace {

TEST(Diagnostics, ReportsNoDegradationWhenHealthy) {
  const DegradationReport report = explain_degradation(lis::make_two_core_example_sized());
  EXPECT_FALSE(report.degraded);
  EXPECT_NE(report.to_string().find("no backpressure degradation"), std::string::npos);
}

TEST(Diagnostics, ExplainsTheFig5Cycle) {
  const DegradationReport report = explain_degradation(lis::make_two_core_example());
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.theta_ideal, util::Rational(1));
  EXPECT_EQ(report.theta_practical, util::Rational(2, 3));
  // The critical cycle has 3 places and 2 tokens: A -> rs -> B plus the
  // lower channel's queue backedge.
  EXPECT_EQ(report.cycle_places, 3);
  EXPECT_EQ(report.cycle_tokens, 2);
  int backward = 0;
  for (const CriticalHop& hop : report.critical_cycle) backward += hop.backward ? 1 : 0;
  EXPECT_EQ(backward, 1);
  EXPECT_NE(report.to_string().find("DEGRADED"), std::string::npos);
}

TEST(Diagnostics, CriticalCycleMeanMatchesPracticalMst) {
  const DegradationReport report = explain_degradation(lis::make_fig15_counterexample());
  EXPECT_EQ(util::Rational(report.cycle_tokens, report.cycle_places), report.theta_practical);
}

}  // namespace
}  // namespace lid::core
