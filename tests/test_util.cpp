#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/cancel.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rational.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace lid::util {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(-1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(0, -7).den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, ExactOrdering) {
  EXPECT_LT(Rational(2, 3), Rational(5, 6));
  EXPECT_LT(Rational(3, 4), Rational(5, 6));
  EXPECT_GT(Rational(5, 6), Rational(4, 5));
  EXPECT_EQ(Rational::min(Rational(2, 3), Rational(5, 6)), Rational(2, 3));
  EXPECT_EQ(Rational::max(Rational(2, 3), Rational(5, 6)), Rational(5, 6));
  // A comparison floats get wrong: 10^17/(10^17+1) vs (10^17-1)/10^17.
  const std::int64_t big = 100'000'000'000'000'000;
  EXPECT_GT(Rational(big, big + 1), Rational(big - 1, big));
}

TEST(Rational, CeilFloor) {
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(4).ceil(), 4);
  EXPECT_EQ(Rational(4).floor(), 4);
}

TEST(Rational, Printing) {
  EXPECT_EQ(Rational(5, 6).to_string(), "5/6");
  EXPECT_EQ(Rational(3).to_string(), "3");
  EXPECT_NEAR(Rational(2, 3).to_double(), 0.6667, 1e-3);
}

TEST(Rational, ParsesFromString) {
  // to_string round-trips: "N" and "N/D" shapes, normalized on the way in.
  EXPECT_EQ(rational_from_string("5/6"), Rational(5, 6));
  EXPECT_EQ(rational_from_string("4/6"), Rational(2, 3));
  EXPECT_EQ(rational_from_string("3"), Rational(3));
  EXPECT_EQ(rational_from_string("0"), Rational(0));
  EXPECT_EQ(rational_from_string("-7/2"), Rational(-7, 2));
  EXPECT_EQ(rational_from_string(rational_from_string("14/4").to_string()), Rational(7, 2));
  // Floats are rejected on purpose: every throughput in the system is exact,
  // and silently rounding "0.66" to something else would be a lie.
  for (const char* bad : {"", "abc", "2.5", "1/0", "1/-2", "1/", "/2", "1 /2", "0x2"}) {
    EXPECT_THROW(rational_from_string(bad), std::invalid_argument) << bad;
  }
}

class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalPropertyTest, FieldAxiomsOnRandomValues) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Rational a(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    const Rational b(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    const Rational c(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (b != Rational(0)) {
      EXPECT_EQ((a / b) * b, a);
    }
    // Ordering is total and consistent with subtraction.
    EXPECT_EQ(a < b, (a - b).num() < 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Stats, Summary) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(0.666666, 2), "0.67");
  EXPECT_EQ(Table::fmt(std::int64_t{42}), "42");
}

TEST(Cli, ParsesFlagsInBothForms) {
  const char* argv[] = {"prog", "--trials", "50", "--q=3", "--verbose", "--name", "x"};
  const Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("trials", 0), 50);
  EXPECT_EQ(cli.get_int("q", 0), 3);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_string("name", ""), "x");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, RejectsMalformedInput) {
  const char* bad_positional[] = {"prog", "stray"};
  EXPECT_THROW(Cli(2, bad_positional), std::invalid_argument);
  const char* bad_int[] = {"prog", "--n", "abc"};
  const Cli cli(3, bad_int);
  EXPECT_THROW((void)cli.get_int("n", 0), std::invalid_argument);
}

TEST(Cli, ValidatesNumericRanges) {
  const char* argv[] = {"prog", "--threads", "0", "--budget", "-3", "--port", "70000",
                        "--rate", "1.5"};
  const Cli cli(9, argv);
  // In-range and missing flags pass through.
  EXPECT_EQ(cli.get_int_in("missing", 4, 1, 8), 4);
  EXPECT_DOUBLE_EQ(cli.get_double_in("rate", 0.0, 0.0, 2.0), 1.5);
  // Zero / negative / out-of-range values are rejected with the flag name
  // and the accepted range in the message.
  EXPECT_THROW((void)cli.get_int_in("threads", 1, 1, 64), std::invalid_argument);
  EXPECT_THROW((void)cli.get_int_in("budget", 1, 0, 64), std::invalid_argument);
  EXPECT_THROW((void)cli.get_int_in("port", 0, 0, 65535), std::invalid_argument);
  EXPECT_THROW((void)cli.get_double_in("rate", 0.0, 0.0, 1.0), std::invalid_argument);
  try {
    (void)cli.get_int_in("threads", 1, 1, 64);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--threads"), std::string::npos);
    EXPECT_NE(message.find("[1, 64]"), std::string::npos);
  }
  // Non-numeric input is rejected by the same entry point.
  const char* bad[] = {"prog", "--threads", "many"};
  const Cli bad_cli(3, bad);
  EXPECT_THROW((void)bad_cli.get_int_in("threads", 1, 1, 64), std::invalid_argument);
}

TEST(Json, QuoteEscapesEverythingMandatory) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("tab\there\nline"), "\"tab\\there\\nline\"");
  EXPECT_EQ(json_quote(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
}

TEST(Json, WriterEmitsCompactAndPrettyForms) {
  JsonWriter compact;
  compact.begin_object();
  compact.key("n").value(3).key("s").value("x\"y").key("ok").value(true);
  compact.key("list").begin_array().value(1).value(2).end_array();
  compact.end_object();
  EXPECT_EQ(compact.str(), R"({"n":3,"s":"x\"y","ok":true,"list":[1,2]})");

  JsonWriter pretty(2);
  pretty.begin_object().key("calls").value(1).end_object();
  EXPECT_EQ(pretty.str(), "{\n  \"calls\": 1\n}");
}

TEST(Json, ParseRoundTripsIntegersExactly) {
  const std::string doc = R"({"a":-42,"b":"5/6","c":[true,null,{"d":9007199254740993}]})";
  const JsonParse parsed = json_parse(doc);
  ASSERT_TRUE(parsed) << parsed.error;
  EXPECT_EQ(parsed.value.dump(), doc);  // int-only payloads re-serialize byte-identically
  EXPECT_EQ(parsed.value.find("a")->as_int(), -42);
  EXPECT_EQ(parsed.value.find("b")->as_string(), "5/6");
  EXPECT_EQ(parsed.value.find("c")->at(2).find("d")->as_int(), 9007199254740993);
}

TEST(Json, ParseDecodesEscapesAndRejectsGarbage) {
  const JsonParse escaped = json_parse(R"("aA\né")");
  ASSERT_TRUE(escaped);
  EXPECT_EQ(escaped.value.as_string(), "aA\n\xc3\xa9");

  EXPECT_FALSE(json_parse(""));
  EXPECT_FALSE(json_parse("{"));
  EXPECT_FALSE(json_parse("{\"a\":1,}"));   // trailing comma
  EXPECT_FALSE(json_parse("{\"a\":1} x"));  // trailing garbage
  EXPECT_FALSE(json_parse("[0"));
  // The nesting-depth cap stops hostile input before the stack does.
  const std::string deep(100, '[');
  EXPECT_FALSE(json_parse(deep, 64));
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = ::testing::TempDir() + "/lid_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"plain", "needs,quote"});
    csv.add_row({"with\"quote", "x"});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\nplain,\"needs,quote\"\n\"with\"\"quote\",x\n");
  std::remove(path.c_str());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, RespectsRanges) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    EXPECT_LT(rng.uniform_index(4), 4u);
  }
  EXPECT_THROW(rng.uniform_int(5, 3), std::invalid_argument);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

// Every *.json file in the malformed corpus must fail the strict parser
// with a structured error — no crash, no hang, no silent acceptance.
TEST(Json, RejectsEveryMalformedCorpusFile) {
  const std::filesystem::path dir = LID_MALFORMED_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++seen;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const JsonParse parsed = json_parse(buffer.str());
    EXPECT_FALSE(parsed.ok) << entry.path().filename();
    EXPECT_FALSE(parsed.error.empty()) << entry.path().filename();
  }
  EXPECT_GE(seen, 6) << "malformed JSON corpus went missing from " << dir;
}

TEST(Cancel, DefaultTokenNeverCancels) {
  const CancelToken token;
  EXPECT_FALSE(token.can_cancel());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.remaining_ms(), std::numeric_limits<double>::infinity());
}

TEST(Cancel, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(CancelToken::after_ms(0.0).cancelled());
  EXPECT_TRUE(CancelToken::after_ms(-5.0).cancelled());
  EXPECT_TRUE(CancelToken::after_ms(0.0).can_cancel());
}

TEST(Cancel, DeadlineExpires) {
  const CancelToken token = CancelToken::after_ms(1e9);
  EXPECT_TRUE(token.can_cancel());
  EXPECT_FALSE(token.cancelled());
  EXPECT_GT(token.remaining_ms(), 0.0);
}

TEST(Cancel, SourceFiresEveryToken) {
  CancelSource source;
  const CancelToken a = source.token();
  const CancelToken b = source.token(1e9);
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(source.cancel_requested());
  source.cancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  source.cancel();  // idempotent
  EXPECT_TRUE(a.cancelled());
}

TEST(Cancel, TokensOutliveTheirSource) {
  CancelToken token;
  {
    CancelSource source;
    token = source.token();
    source.cancel();
  }
  EXPECT_TRUE(token.cancelled());  // shared flag keeps the state alive
}

}  // namespace
}  // namespace lid::util
