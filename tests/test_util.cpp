#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rational.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace lid::util {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(-1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(0, -7).den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, ExactOrdering) {
  EXPECT_LT(Rational(2, 3), Rational(5, 6));
  EXPECT_LT(Rational(3, 4), Rational(5, 6));
  EXPECT_GT(Rational(5, 6), Rational(4, 5));
  EXPECT_EQ(Rational::min(Rational(2, 3), Rational(5, 6)), Rational(2, 3));
  EXPECT_EQ(Rational::max(Rational(2, 3), Rational(5, 6)), Rational(5, 6));
  // A comparison floats get wrong: 10^17/(10^17+1) vs (10^17-1)/10^17.
  const std::int64_t big = 100'000'000'000'000'000;
  EXPECT_GT(Rational(big, big + 1), Rational(big - 1, big));
}

TEST(Rational, CeilFloor) {
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(4).ceil(), 4);
  EXPECT_EQ(Rational(4).floor(), 4);
}

TEST(Rational, Printing) {
  EXPECT_EQ(Rational(5, 6).to_string(), "5/6");
  EXPECT_EQ(Rational(3).to_string(), "3");
  EXPECT_NEAR(Rational(2, 3).to_double(), 0.6667, 1e-3);
}

class RationalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RationalPropertyTest, FieldAxiomsOnRandomValues) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Rational a(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    const Rational b(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    const Rational c(rng.uniform_int(-50, 50), rng.uniform_int(1, 50));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (b != Rational(0)) {
      EXPECT_EQ((a / b) * b, a);
    }
    // Ordering is total and consistent with subtraction.
    EXPECT_EQ(a < b, (a - b).num() < 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Stats, Summary) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(0.666666, 2), "0.67");
  EXPECT_EQ(Table::fmt(std::int64_t{42}), "42");
}

TEST(Cli, ParsesFlagsInBothForms) {
  const char* argv[] = {"prog", "--trials", "50", "--q=3", "--verbose", "--name", "x"};
  const Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("trials", 0), 50);
  EXPECT_EQ(cli.get_int("q", 0), 3);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_string("name", ""), "x");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, RejectsMalformedInput) {
  const char* bad_positional[] = {"prog", "stray"};
  EXPECT_THROW(Cli(2, bad_positional), std::invalid_argument);
  const char* bad_int[] = {"prog", "--n", "abc"};
  const Cli cli(3, bad_int);
  EXPECT_THROW((void)cli.get_int("n", 0), std::invalid_argument);
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = ::testing::TempDir() + "/lid_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"plain", "needs,quote"});
    csv.add_row({"with\"quote", "x"});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\nplain,\"needs,quote\"\n\"with\"\"quote\",x\n");
  std::remove(path.c_str());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, RespectsRanges) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    EXPECT_LT(rng.uniform_index(4), 4u);
  }
  EXPECT_THROW(rng.uniform_int(5, 3), std::invalid_argument);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

}  // namespace
}  // namespace lid::util
