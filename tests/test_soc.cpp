// The COFDM SoC case study (Sec. IX): structural facts and the Table VI
// scenario, checked against the published numbers.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/fixed_qs.hpp"
#include "core/queue_sizing.hpp"
#include "graph/cycles.hpp"
#include "lis/lis_graph.hpp"
#include "soc/cofdm.hpp"
#include "util/rational.hpp"

namespace lid::soc {
namespace {

using util::Rational;

lis::LisGraph fig19_scenario() {
  lis::LisGraph lis = build_cofdm();
  lis.set_relay_stations(find_channel(lis, kFEC, kSpread), 1);
  lis.set_relay_stations(find_channel(lis, kSpread, kPilot), 1);
  return lis;
}

TEST(Cofdm, PublishedStructuralFacts) {
  const lis::LisGraph lis = build_cofdm();
  // "At the top level, the system has 12 blocks, 30 channels, and 22 cycles."
  EXPECT_EQ(lis.num_cores(), 12u);
  EXPECT_EQ(lis.num_channels(), 30u);
  const auto cycles = graph::enumerate_cycles(lis.structure());
  EXPECT_EQ(cycles.cycles.size(), 22u);
  EXPECT_FALSE(cycles.truncated);
}

TEST(Cofdm, BlockNames) {
  const lis::LisGraph lis = build_cofdm();
  EXPECT_EQ(lis.core_name(kFEC), "FEC");
  EXPECT_EQ(lis.core_name(kTxCtrl), "tx_Ctrl");
  EXPECT_STREQ(block_name(kControl), "Control");
  EXPECT_THROW(find_channel(lis, kTxFilter, kPI), std::invalid_argument);
}

TEST(Cofdm, NoDegradationWithoutRelayStations) {
  const lis::LisGraph lis = build_cofdm();
  EXPECT_EQ(lis::ideal_mst(lis), Rational(1));
  EXPECT_EQ(lis::practical_mst(lis), Rational(1));
}

TEST(Cofdm, Fig19ScenarioMsts) {
  // Relay stations on (FEC, Spread) and (Spread, Pilot) lower the ideal MST
  // to 0.75 via the feedback loop (FEC, Spread, Pilot, FFT_in, FFT, tx_Ctrl);
  // backpressure then degrades the practical MST to 0.67 (cycle C4).
  const lis::LisGraph lis = fig19_scenario();
  EXPECT_EQ(lis::ideal_mst(lis), Rational(3, 4));
  EXPECT_EQ(lis::practical_mst(lis), Rational(2, 3));
}

TEST(Cofdm, TableVIHasExactlySixSubCriticalCycles) {
  const lis::LisGraph lis = fig19_scenario();
  const lis::Expansion ex = lis::expand_doubled(lis);
  const auto result = graph::enumerate_cycles(ex.graph.structure());
  ASSERT_FALSE(result.truncated);
  std::vector<Rational> means;
  for (const auto& cycle : result.cycles) {
    const Rational mean(ex.graph.cycle_tokens(cycle),
                        static_cast<std::int64_t>(cycle.size()));
    if (mean < Rational(3, 4)) means.push_back(mean);
  }
  // Table VI: C1, C2, C3, C5, C6 have mean 5/7 (0.71); C4 has 4/6 (0.67).
  ASSERT_EQ(means.size(), 6u);
  EXPECT_EQ(std::count(means.begin(), means.end(), Rational(5, 7)), 5);
  EXPECT_EQ(std::count(means.begin(), means.end(), Rational(2, 3)), 1);
}

TEST(Cofdm, QueueSizingMatchesSecIXSolution) {
  // "The solution given by both the heuristic and the optimal algorithm is
  // to increase the queue sizes for the backedges (Pilot, Control) and
  // (FFT_in, Control) by one."
  const lis::LisGraph lis = fig19_scenario();
  core::QsOptions options;
  options.method = core::QsMethod::kBoth;
  const core::QsReport report = core::size_queues(lis, options);
  ASSERT_TRUE(report.exact.has_value());
  ASSERT_TRUE(report.exact->finished);
  EXPECT_EQ(report.exact->total_extra_tokens, 2);
  ASSERT_TRUE(report.heuristic.has_value());
  EXPECT_EQ(report.heuristic->total_extra_tokens, 2);
  EXPECT_EQ(report.achieved_mst, Rational(3, 4));

  // The two grown queues are exactly Control->Pilot and Control->FFT_in
  // (their backedges are (Pilot, Control) and (FFT_in, Control)).
  const lis::ChannelId pilot_q = find_channel(lis, kControl, kPilot);
  const lis::ChannelId fftin_q = find_channel(lis, kControl, kFFTin);
  std::vector<lis::ChannelId> grown;
  for (std::size_t s = 0; s < report.problem.channels.size(); ++s) {
    if (report.exact->weights[s] > 0) {
      EXPECT_EQ(report.exact->weights[s], 1);
      grown.push_back(report.problem.channels[s]);
    }
  }
  std::sort(grown.begin(), grown.end());
  std::vector<lis::ChannelId> expected{pilot_q, fftin_q};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(grown, expected);
}

TEST(Cofdm, FixedQTwoAbsorbsTwoRelayStations) {
  // Sec. IX: "When we increase q to two, none of the cases in our exhaustive
  // search (inserting two relay stations) results in throughput degradation."
  const lis::LisGraph base = build_cofdm();
  for (lis::ChannelId a = 0; a < 30; ++a) {
    for (lis::ChannelId b = a + 1; b < 30; ++b) {
      lis::LisGraph lis = base;
      lis.set_all_queue_capacities(2);
      lis.set_relay_stations(a, 1);
      lis.set_relay_stations(b, 1);
      ASSERT_GE(lis::practical_mst(lis), lis::ideal_mst(lis))
          << "degradation with q = 2 at channels " << a << "," << b;
    }
  }
}

TEST(Cofdm, ExhaustiveTwoRsInsertionStatistics) {
  // Paper: 227 of the 435 placements (52%) degrade with q = 1. The
  // reconstructed netlist will not match exactly; assert the measured value
  // (117/435 = 27%) as a regression anchor and that it is in the same
  // qualitative regime (a substantial fraction, neither none nor all).
  const lis::LisGraph base = build_cofdm();
  int degraded = 0;
  int total = 0;
  for (lis::ChannelId a = 0; a < 30; ++a) {
    for (lis::ChannelId b = a + 1; b < 30; ++b) {
      lis::LisGraph lis = base;
      lis.set_relay_stations(a, 1);
      lis.set_relay_stations(b, 1);
      ++total;
      if (lis::practical_mst(lis) < lis::ideal_mst(lis)) ++degraded;
    }
  }
  EXPECT_EQ(total, 435);
  EXPECT_GT(degraded, 40);
  EXPECT_LT(degraded, 400);
}

}  // namespace
}  // namespace lid::soc
