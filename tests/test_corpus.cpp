// Regression corpus: twenty checked-in netlists spanning the generator's
// regimes (scc/any insertion, tori, pipelined cores) with their expected
// ideal/practical MSTs and exact queue-sizing totals recorded in a manifest.
// Any analysis change that shifts a number shows up here immediately.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "core/queue_sizing.hpp"
#include "lis/netlist_io.hpp"
#include "util/rational.hpp"

#ifndef LID_DATA_DIR
#define LID_DATA_DIR "data"
#endif

namespace lid {
namespace {

struct Expectation {
  std::string file;
  util::Rational ideal;
  util::Rational practical;
  std::int64_t exact_tokens = 0;
};

util::Rational parse_rational(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return util::Rational(std::stoll(text));
  return util::Rational(std::stoll(text.substr(0, slash)), std::stoll(text.substr(slash + 1)));
}

std::vector<Expectation> load_manifest() {
  std::ifstream in(std::string(LID_DATA_DIR) + "/corpus/manifest.txt");
  EXPECT_TRUE(in.good()) << "missing corpus manifest";
  std::vector<Expectation> expectations;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    Expectation e;
    std::string ideal;
    std::string practical;
    row >> e.file >> ideal >> practical >> e.exact_tokens;
    e.ideal = parse_rational(ideal);
    e.practical = parse_rational(practical);
    expectations.push_back(std::move(e));
  }
  EXPECT_EQ(expectations.size(), 20u);
  return expectations;
}

TEST(Corpus, EveryRecordedValueStillHolds) {
  for (const Expectation& e : load_manifest()) {
    SCOPED_TRACE(e.file);
    const lis::LisGraph system =
        lis::load_netlist(std::string(LID_DATA_DIR) + "/corpus/" + e.file);
    EXPECT_EQ(lis::ideal_mst(system), e.ideal);
    EXPECT_EQ(lis::practical_mst(system), e.practical);
    if (e.exact_tokens < 0) continue;  // recorded as timed out at capture time
    core::QsOptions options;
    options.method = core::QsMethod::kExact;
    options.exact.timeout_ms = 30000;
    const core::QsReport report = core::size_queues(system, options);
    ASSERT_TRUE(report.exact->finished);
    EXPECT_EQ(report.exact->total_extra_tokens, e.exact_tokens);
    EXPECT_EQ(report.achieved_mst, e.ideal);
  }
}

TEST(Corpus, HeuristicStaysWithinTenPercentOnTheCorpus) {
  // The paper's headline: heuristic solutions close to exact. Lock that in
  // as an aggregate regression over the corpus.
  std::int64_t exact_total = 0;
  std::int64_t heuristic_total = 0;
  for (const Expectation& e : load_manifest()) {
    if (e.exact_tokens <= 0) continue;
    const lis::LisGraph system =
        lis::load_netlist(std::string(LID_DATA_DIR) + "/corpus/" + e.file);
    core::QsOptions options;
    options.method = core::QsMethod::kHeuristic;
    const core::QsReport report = core::size_queues(system, options);
    exact_total += e.exact_tokens;
    heuristic_total += report.heuristic->total_extra_tokens;
    EXPECT_EQ(report.achieved_mst, e.ideal);
  }
  ASSERT_GT(exact_total, 0);
  EXPECT_LE(heuristic_total, exact_total + (exact_total + 9) / 10);
}

}  // namespace
}  // namespace lid
