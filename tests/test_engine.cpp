// Batch-engine tests: serial determinism across thread counts, cache
// correctness against the uncached per-module entry points, metrics
// accounting, and the analysis-list parser.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "core/qs_problem.hpp"
#include "core/queue_sizing.hpp"
#include "engine/analysis_cache.hpp"
#include "engine/engine.hpp"
#include "engine/metrics.hpp"
#include "engine/task_pool.hpp"
#include "lid_api.hpp"
#include "lis/lis_graph.hpp"
#include "util/rng.hpp"

namespace lid::engine {
namespace {

using util::Rational;

// A varied pool of small generated instances (cheap enough that the full
// determinism sweep stays fast, structured enough to exercise degradation,
// multiple SCCs and reconvergence).
std::vector<Instance> make_instances(int count, std::uint64_t seed = 7) {
  std::vector<Instance> instances;
  util::Rng seeder(seed);
  for (int i = 0; i < count; ++i) {
    GenerateOptions options;
    options.cores = 5 + i % 8;
    options.sccs = 1 + i % 3;
    options.extra_cycles = i % 4;
    options.relay_stations = 1 + i % 5;
    options.reconvergent = i % 2 == 0;
    // The SCC placement policy requires inter-SCC channels to exist.
    options.rs_anywhere = options.sccs == 1;
    options.seed = seeder.fork_seed();
    const Result<Instance> generated = lid::generate(options);
    EXPECT_TRUE(generated.ok()) << "instance " << i;
    if (generated.ok()) instances.push_back(*generated);
  }
  return instances;
}

TEST(ParseAnalyses, TokensAndAll) {
  const auto one = parse_analyses("mst-ideal");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0], AnalysisKind::kIdealMst);

  const auto list = parse_analyses("qs-heuristic,rate-safety,mst-practical");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0], AnalysisKind::kQsHeuristic);
  EXPECT_EQ((*list)[1], AnalysisKind::kRateSafety);
  EXPECT_EQ((*list)[2], AnalysisKind::kPracticalMst);

  const auto all = parse_analyses("all");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 8u);

  const auto lazy = parse_analyses("qs-lazy");
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ((*lazy)[0], AnalysisKind::kQsLazy);

  const auto bad = parse_analyses("mst-ideal,frobnicate");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidArgument);
}

TEST(ParseAnalyses, RoundTripsThroughToString) {
  for (AnalysisKind kind :
       {AnalysisKind::kIdealMst, AnalysisKind::kPracticalMst, AnalysisKind::kQsHeuristic,
        AnalysisKind::kQsExact, AnalysisKind::kRsInsertion, AnalysisKind::kRateSafety,
        AnalysisKind::kDes}) {
    const auto parsed = parse_analyses(to_string(kind));
    ASSERT_TRUE(parsed.ok()) << to_string(kind);
    ASSERT_EQ(parsed->size(), 1u);
    EXPECT_EQ((*parsed)[0], kind);
  }
}

// The acceptance bar of the engine: a batch of >= 100 generated instances
// serializes byte-identically at 1 thread and at 8 threads.
TEST(BatchEngine, DeterministicAcrossThreadCounts) {
  const std::vector<Instance> instances = make_instances(100);
  ASSERT_EQ(instances.size(), 100u);

  EngineOptions options;
  options.analyses = *parse_analyses("all");
  options.exact_max_nodes = 20'000;  // budgeted, never wall-clocked
  options.rs_budget = 1;

  options.threads = 1;
  const BatchResult serial = BatchEngine(options).run(instances);
  for (int threads : {2, 8}) {
    options.threads = threads;
    const BatchResult parallel = BatchEngine(options).run(instances);
    EXPECT_EQ(serial.serialize(), parallel.serialize()) << "threads=" << threads;
  }

  ASSERT_EQ(serial.results.size(), 100u);
  for (const InstanceResult& r : serial.results) {
    EXPECT_TRUE(r.error.empty()) << r.name << ": " << r.error;
    ASSERT_TRUE(r.theta_ideal.has_value());
    ASSERT_TRUE(r.theta_practical.has_value());
    EXPECT_LE(*r.theta_practical, *r.theta_ideal);
  }
}

// Repeating the identical run must also be byte-identical (the exact solver
// runs under a node budget, not a wall clock).
TEST(BatchEngine, RepeatRunsAreIdentical) {
  const std::vector<Instance> instances = make_instances(12);
  EngineOptions options;
  options.analyses = *parse_analyses("all");
  options.exact_max_nodes = 20'000;
  options.threads = 3;
  const BatchEngine engine(options);
  EXPECT_EQ(engine.run(instances).serialize(), engine.run(instances).serialize());
}

TEST(BatchEngine, ResultsLandInInputOrder) {
  const std::vector<Instance> instances = make_instances(10);
  EngineOptions options;
  options.threads = 4;
  const BatchResult batch = BatchEngine(options).run(instances);
  ASSERT_EQ(batch.results.size(), instances.size());
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    EXPECT_EQ(batch.results[i].index, i);
    EXPECT_EQ(batch.results[i].cores, instances[i].num_cores());
    EXPECT_EQ(batch.results[i].channels, instances[i].num_channels());
  }
}

TEST(BatchEngine, InvalidInstanceIsReportedNotFatal) {
  std::vector<Instance> instances = make_instances(3);
  instances.insert(instances.begin() + 1, Instance{});  // invalid handle
  const BatchResult batch = BatchEngine(EngineOptions{}).run(instances);
  ASSERT_EQ(batch.results.size(), 4u);
  EXPECT_TRUE(batch.results[0].error.empty());
  EXPECT_FALSE(batch.results[1].error.empty());
  EXPECT_TRUE(batch.results[2].error.empty());
  EXPECT_TRUE(batch.results[3].error.empty());
  EXPECT_EQ(batch.metrics.counter("failures"), 1);
}

TEST(BatchEngine, EmptyBatch) {
  const BatchResult batch = BatchEngine(EngineOptions{}).run({});
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.metrics.counter("instances"), 0);
}

TEST(BatchEngine, MetricsCountInstancesAndStages) {
  const std::vector<Instance> instances = make_instances(8);
  EngineOptions options;
  options.analyses = *parse_analyses("mst-ideal,mst-practical,qs-heuristic");
  options.threads = 2;
  const BatchResult batch = BatchEngine(options).run(instances);
  EXPECT_EQ(batch.metrics.counter("instances"), 8);
  EXPECT_EQ(batch.metrics.counter("failures"), 0);
  const auto stages = batch.metrics.stages();
  ASSERT_TRUE(stages.count("instance_total"));
  EXPECT_EQ(stages.at("instance_total").calls, 8);
  ASSERT_TRUE(stages.count("qs_heuristic"));
  EXPECT_EQ(stages.at("qs_heuristic").calls, 8);
}

// Cached intermediates must agree exactly with the uncached entry points,
// and repeated queries must be cache hits.
TEST(AnalysisCache, AgreesWithUncachedEntryPoints) {
  for (const Instance& instance : make_instances(20, /*seed=*/11)) {
    const lis::LisGraph& graph = instance.graph();
    AnalysisCache cache(graph);
    EXPECT_EQ(cache.theta_ideal(), lis::ideal_mst(graph));
    EXPECT_EQ(cache.theta_practical(), lis::practical_mst(graph));

    const core::QsProblem& cached = cache.qs_problem();
    const core::QsProblem fresh = core::build_qs_problem(graph);
    EXPECT_EQ(cached.theta_ideal, fresh.theta_ideal);
    EXPECT_EQ(cached.theta_practical, fresh.theta_practical);
    EXPECT_EQ(cached.td.deficits, fresh.td.deficits);
    EXPECT_EQ(cached.td.set_members, fresh.td.set_members);
    EXPECT_EQ(cached.channels, fresh.channels);

    // Sizing through the cached problem equals sizing from scratch.
    core::QsOptions qs_options;
    qs_options.method = core::QsMethod::kHeuristic;
    const core::QsReport via_cache = core::size_queues_on_problem(graph, cached, qs_options);
    const core::QsReport from_scratch = core::size_queues(graph, qs_options);
    ASSERT_EQ(via_cache.heuristic.has_value(), from_scratch.heuristic.has_value());
    if (via_cache.heuristic) {
      EXPECT_EQ(via_cache.heuristic->total_extra_tokens,
                from_scratch.heuristic->total_extra_tokens);
    }
    EXPECT_EQ(via_cache.achieved_mst, from_scratch.achieved_mst);
  }
}

TEST(AnalysisCache, MemoizesEveryIntermediate) {
  const std::vector<Instance> instances = make_instances(1);
  AnalysisCache cache(instances[0].graph());
  (void)cache.ideal();
  (void)cache.doubled();
  (void)cache.theta_ideal();
  (void)cache.theta_practical();
  (void)cache.qs_problem();
  const std::int64_t misses = cache.misses();
  // Everything is now resident: no query below may miss.
  (void)cache.ideal();
  (void)cache.theta_ideal();
  (void)cache.theta_practical();
  (void)cache.qs_problem();
  EXPECT_EQ(cache.misses(), misses);
  EXPECT_GE(cache.hits(), 4);
}

TEST(AnalysisCache, RebuildsQsProblemWhenOptionsChange) {
  const std::vector<Instance> instances = make_instances(1);
  AnalysisCache cache(instances[0].graph());
  (void)cache.qs_problem();
  const std::int64_t misses = cache.misses();
  core::QsBuildOptions other;
  other.max_cycles = 123;
  (void)cache.qs_problem(other);
  EXPECT_EQ(cache.misses(), misses + 1);
  (void)cache.qs_problem(other);
  EXPECT_EQ(cache.misses(), misses + 1);  // same options again: hit
}

TEST(Metrics, MergeAndSnapshot) {
  Metrics a;
  a.count("instances", 3);
  a.record_stage("qs", 2.0, 1.0);
  Metrics b;
  b.count("instances", 2);
  b.count("failures");
  b.record_stage("qs", 4.0, 3.0);
  a.merge(b);
  EXPECT_EQ(a.counter("instances"), 5);
  EXPECT_EQ(a.counter("failures"), 1);
  const auto stages = a.stages();
  ASSERT_TRUE(stages.count("qs"));
  EXPECT_EQ(stages.at("qs").calls, 2);
  EXPECT_DOUBLE_EQ(stages.at("qs").wall_ms, 6.0);
  EXPECT_DOUBLE_EQ(stages.at("qs").cpu_ms, 4.0);

  const Metrics copy = a;  // snapshot copy
  EXPECT_EQ(copy.counter("instances"), 5);
  EXPECT_EQ(copy.stages().at("qs").calls, 2);
}

TEST(Metrics, JsonShape) {
  Metrics m;
  m.count("instances", 2);
  m.record_stage("mst", 1.5, 1.0);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"instances\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"mst\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\": 1"), std::string::npos);
}

TEST(Metrics, ConcurrentCountsAreExact) {
  Metrics m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) m.count("ticks");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(m.counter("ticks"), 4000);
}

// Drain must execute every admitted task — both the ones still queued and
// the one a worker holds in flight — before returning, even when the holder
// blocks until shutdown is already underway.
TEST(TaskPool, DrainRunsQueuedAndInFlightTasks) {
  TaskPool::Options options;
  options.threads = 1;  // one worker => the queue genuinely backs up
  TaskPool pool(options);

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> executed{0};

  ASSERT_EQ(pool.submit([&](const TaskPool::Context&) {
              std::unique_lock<std::mutex> lock(mutex);
              cv.wait(lock, [&] { return release; });
              ++executed;
            }),
            TaskPool::Submit::kAccepted);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(pool.submit([&](const TaskPool::Context&) { ++executed; }),
              TaskPool::Submit::kAccepted);
  }

  std::thread drainer([&] { pool.drain(); });
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  drainer.join();
  EXPECT_EQ(executed.load(), 6);
  EXPECT_EQ(pool.executed(), 6);
  EXPECT_EQ(pool.submit([](const TaskPool::Context&) {}), TaskPool::Submit::kClosed);
}

TEST(TaskPool, ArmsCancelTokenFromDeadline) {
  TaskPool::Options options;
  options.threads = 1;
  TaskPool pool(options);

  // A generous deadline: the token must be armed but not yet cancelled.
  std::atomic<bool> armed{false};
  std::atomic<bool> premature{true};
  ASSERT_EQ(pool.submit(
                [&](const TaskPool::Context& context) {
                  armed = context.cancel.can_cancel();
                  premature = context.cancel.cancelled();
                },
                60'000.0),
            TaskPool::Submit::kAccepted);

  // An expired deadline: the worker still runs the task, flags the expiry,
  // and hands it an already-cancelled token.
  std::atomic<bool> expired_flagged{false};
  std::atomic<bool> token_expired{false};
  ASSERT_EQ(pool.submit(
                [&](const TaskPool::Context& context) {
                  expired_flagged = context.deadline_expired;
                  token_expired = context.cancel.cancelled();
                },
                0.0001),
            TaskPool::Submit::kAccepted);

  // No deadline: the default token, which can never cancel.
  std::atomic<bool> uncancellable{false};
  ASSERT_EQ(pool.submit([&](const TaskPool::Context& context) {
              uncancellable = !context.cancel.can_cancel();
            }),
            TaskPool::Submit::kAccepted);

  pool.drain();
  EXPECT_TRUE(armed.load());
  EXPECT_FALSE(premature.load());
  EXPECT_TRUE(expired_flagged.load());
  EXPECT_TRUE(token_expired.load());
  EXPECT_TRUE(uncancellable.load());
}

// Cancellation racing completion: tasks that poll a token while the
// submitting thread concurrently fires the source must all terminate, and
// drain() must still account for every one of them.
TEST(TaskPool, CancellationRacesCompletion) {
  TaskPool::Options options;
  options.threads = 4;
  TaskPool pool(options);
  util::CancelSource source;

  std::atomic<int> finished{0};
  std::atomic<int> saw_cancel{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(pool.submit([&, i](const TaskPool::Context&) {
                const util::CancelToken token = source.token();
                // Odd tasks complete instantly; even tasks spin until the
                // external cancel fires — the race is which side wins.
                while (i % 2 == 0 && !token.cancelled()) {
                  std::this_thread::yield();
                }
                if (token.cancelled()) ++saw_cancel;
                ++finished;
              }),
              TaskPool::Submit::kAccepted);
  }
  source.cancel();
  pool.drain();
  EXPECT_EQ(finished.load(), 32);
  EXPECT_GE(saw_cancel.load(), 16);  // every spinner observed the cancel
  EXPECT_EQ(pool.executed(), 32);
}

}  // namespace
}  // namespace lid::engine
