// Pipelined cores (footnote 3 of the paper): cores whose shell-to-shell
// latency exceeds one clock period. Loops through such cores lose throughput
// exactly like loops through relay stations, queue sizing still repairs the
// backpressure share, and the protocol simulator stays period-for-period
// equivalent to the marked-graph expansion.
#include <gtest/gtest.h>

#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "lis/netlist_io.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"
#include "mg/simulate.hpp"
#include "util/rng.hpp"

namespace lid {
namespace {

using util::Rational;

TEST(PipelinedCores, LatencyValidation) {
  lis::LisGraph lis;
  const lis::CoreId a = lis.add_core("A");
  EXPECT_EQ(lis.core_latency(a), 1);
  lis.set_core_latency(a, 3);
  EXPECT_EQ(lis.core_latency(a), 3);
  EXPECT_THROW(lis.set_core_latency(a, 0), std::invalid_argument);
  EXPECT_THROW(lis.set_core_latency(99, 2), std::invalid_argument);
}

TEST(PipelinedCores, ExpansionSplitsTheCore) {
  lis::LisGraph lis;
  const lis::CoreId a = lis.add_core("A");
  const lis::CoreId b = lis.add_core("B");
  lis.set_core_latency(b, 3);
  lis.add_channel(a, b);
  const lis::Expansion ex = lis::expand_ideal(lis);
  // A (1 transition) + B (3 transitions: in, p1, out).
  EXPECT_EQ(ex.graph.num_transitions(), 4u);
  EXPECT_NE(ex.core_transition[b], ex.core_output_transition[b]);
  EXPECT_EQ(ex.core_transition[a], ex.core_output_transition[a]);
  EXPECT_EQ(ex.graph.transition_kind(ex.core_transition[b]),
            mg::TransitionKind::kPipelineStage);
  EXPECT_EQ(ex.graph.transition_kind(ex.core_output_transition[b]),
            mg::TransitionKind::kShell);
  EXPECT_NO_THROW(ex.graph.validate_lis_structure());
}

TEST(PipelinedCores, LoopThroughputDropsWithLatency) {
  // Two cores in a loop; B pipelined with latency L: the loop has 2 + (L-1)
  // places and 2 tokens, so the ideal MST is 2 / (L + 1).
  for (int latency = 1; latency <= 4; ++latency) {
    lis::LisGraph lis;
    const lis::CoreId a = lis.add_core("A");
    const lis::CoreId b = lis.add_core("B");
    lis.set_core_latency(b, latency);
    lis.add_channel(a, b);
    lis.add_channel(b, a);
    EXPECT_EQ(lis::ideal_mst(lis), Rational(2, latency + 1)) << "latency " << latency;
  }
}

TEST(PipelinedCores, AcyclicSystemsKeepFullThroughput) {
  // Without feedback, pipeline latency adds delay but not rate loss.
  lis::LisGraph lis = lis::make_two_core_example_sized();
  lis.set_core_latency(1, 4);
  EXPECT_EQ(lis::ideal_mst(lis), Rational(1));
  EXPECT_EQ(lis::practical_mst(lis), Rational(1));
}

TEST(PipelinedCores, QueueSizingStillRestoresTheIdeal) {
  // Degraded two-core example with a pipelined consumer: sizing must bring
  // the practical MST back to the (latency-limited) ideal.
  lis::LisGraph lis = lis::make_two_core_example();
  lis.set_core_latency(0, 2);
  const Rational ideal = lis::ideal_mst(lis);
  core::QsOptions options;
  options.method = core::QsMethod::kBoth;
  const core::QsReport report = core::size_queues(lis, options);
  EXPECT_EQ(report.achieved_mst, ideal);
}

TEST(PipelinedCores, NetlistRoundTripKeepsLatency) {
  lis::LisGraph lis;
  lis.add_core("A");
  lis.add_core("B");
  lis.set_core_latency(1, 3);
  lis.add_channel(0, 1);
  const lis::LisGraph parsed = lis::from_text(lis::to_text(lis));
  EXPECT_EQ(parsed.core_latency(0), 1);
  EXPECT_EQ(parsed.core_latency(1), 3);
  EXPECT_THROW(lis::from_text("core A latency=0\n"), std::invalid_argument);
  EXPECT_THROW(lis::from_text("core A speed=2\n"), std::invalid_argument);
}

TEST(PipelinedCores, SimulatedThroughputMatchesAnalysis) {
  lis::LisGraph lis;
  const lis::CoreId a = lis.add_core("A");
  const lis::CoreId b = lis.add_core("B");
  lis.set_core_latency(b, 3);
  lis.add_channel(a, b);
  lis.add_channel(b, a);
  const Rational expected = lis::practical_mst(lis);  // 2/4 = 1/2
  EXPECT_EQ(expected, Rational(1, 2));
  lis::ProtocolOptions options;
  options.periods = 2000;
  const lis::ProtocolResult r = simulate_protocol(lis, options);
  ASSERT_TRUE(r.periodic_found);
  EXPECT_EQ(r.throughput, expected);
}

TEST(PipelinedCores, DataFlowsCorrectlyThroughThePipe) {
  // A latency-2 doubler: outputs must be doubled inputs, delayed but intact.
  lis::LisGraph lis;
  const lis::CoreId src = lis.add_core("src");
  const lis::CoreId dbl = lis.add_core("dbl");
  const lis::CoreId sink = lis.add_core("sink");
  lis.set_core_latency(dbl, 2);
  lis.add_channel(src, dbl, 0, 2);
  lis.add_channel(dbl, sink, 0, 2);
  lis::ProtocolOptions options;
  options.periods = 12;
  options.record_traces = true;
  options.behaviors.resize(3);
  options.behaviors[0].function = [](std::int64_t k, const std::vector<lis::Payload>&) {
    return std::vector<lis::Payload>{k + 1};
  };
  options.behaviors[1].function = [](std::int64_t, const std::vector<lis::Payload>& in) {
    return std::vector<lis::Payload>{2 * in[0]};
  };
  const lis::ProtocolResult r = simulate_protocol(lis, options);
  // dbl's output port: initial 0, then void while the pipe fills, then 2·k.
  const auto& out = r.traces[1][0];
  std::vector<lis::Payload> valid;
  for (const lis::Item& item : out) {
    if (!item.is_void()) valid.push_back(*item.value);
  }
  ASSERT_GE(valid.size(), 5u);
  EXPECT_EQ(valid[0], 0);  // initial latch
  // The doubler consumes src's stream 0, 1, 2, ... (starting with src's own
  // initial latch), so its k-th computed output is 2·(k - 1).
  for (std::size_t i = 1; i < valid.size(); ++i) {
    EXPECT_EQ(valid[i], static_cast<lis::Payload>(2 * (i - 1))) << "wrong value at " << i;
  }
}

class PipelinedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelinedEquivalence, ProtocolMatchesMarkedGraphPeriodForPeriod) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(3, 8);
    params.sccs = rng.uniform_int(1, 2);
    params.min_cycles = rng.uniform_int(0, 2);
    params.relay_stations = rng.uniform_int(0, 3);
    params.policy = gen::RsPolicy::kAny;
    lis::LisGraph system = gen::generate(params, rng);
    for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(system.num_cores()); ++v) {
      if (rng.flip(0.4)) system.set_core_latency(v, rng.uniform_int(2, 4));
    }

    // Marked-graph firing matrix of the cores' input transitions.
    const lis::Expansion ex = lis::expand_doubled(system);
    std::vector<std::vector<char>> mg_matrix;
    mg::simulate(ex.graph, 60, 0, [&](std::size_t, const std::vector<char>& fired) {
      std::vector<char> shells;
      for (const mg::TransitionId t : ex.core_transition) {
        shells.push_back(fired[static_cast<std::size_t>(t)]);
      }
      mg_matrix.push_back(std::move(shells));
      return mg_matrix.size() < 60;
    });

    std::vector<std::vector<char>> proto_matrix;
    lis::ProtocolOptions options;
    options.periods = 61;
    options.observer = [&](std::size_t, const std::vector<char>& fired) {
      proto_matrix.push_back(fired);
      return proto_matrix.size() < 60;
    };
    simulate_protocol(system, options);

    const std::size_t common = std::min(mg_matrix.size(), proto_matrix.size());
    ASSERT_GT(common, 0u);
    for (std::size_t t = 0; t < common; ++t) {
      ASSERT_EQ(mg_matrix[t], proto_matrix[t]) << "divergence at period " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedEquivalence, ::testing::Values(81, 82, 83, 84));

}  // namespace
}  // namespace lid
