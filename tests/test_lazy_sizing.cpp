// Lazy constraint generation (core/lazy_sizing.hpp): equivalence with the
// full enumerate-everything pipeline on the checked-in corpus, the COFDM SoC,
// the paper examples and 50 generated systems, plus the warm-start contract
// of the mg::Workspace Howard kernel that backs the separation oracle.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/lazy_sizing.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/netlist_io.hpp"
#include "lis/paper_systems.hpp"
#include "mg/mcm.hpp"
#include "soc/cofdm.hpp"
#include "util/rng.hpp"

#ifndef LID_DATA_DIR
#define LID_DATA_DIR "data"
#endif

namespace lid::core {
namespace {

using util::Rational;

std::int64_t total_queue_capacity(const lis::LisGraph& lis) {
  std::int64_t total = 0;
  for (lis::ChannelId ch = 0; ch < static_cast<lis::ChannelId>(lis.num_channels()); ++ch) {
    total += lis.channel(ch).queue_capacity;
  }
  return total;
}

/// The acceptance bar: lazy and full sizing agree on the achieved MST and on
/// the total queue capacity of the sized netlist. When both exact solves
/// prove, the optimal extra-token totals must match exactly (at convergence
/// the lazy covering instance contains every binding constraint).
void expect_lazy_matches_full(const lis::LisGraph& lis) {
  QsOptions lazy_options;
  lazy_options.method = QsMethod::kLazy;
  QsOptions full_options;
  full_options.method = QsMethod::kBoth;

  const QsReport lazy = size_queues(lis, lazy_options);
  const QsReport full = size_queues(lis, full_options);

  ASSERT_TRUE(lazy.lazy.has_value());
  ASSERT_TRUE(lazy.exact.has_value());
  ASSERT_TRUE(full.exact.has_value());
  EXPECT_EQ(lazy.achieved_mst, full.achieved_mst);
  if (lazy.exact->finished && full.exact->finished) {
    EXPECT_EQ(lazy.exact->total_extra_tokens, full.exact->total_extra_tokens);
    EXPECT_EQ(total_queue_capacity(lazy.sized), total_queue_capacity(full.sized));
  }
}

TEST(LazySizing, MatchesFullOnPaperExamples) {
  expect_lazy_matches_full(lis::make_two_core_example());
  expect_lazy_matches_full(lis::make_two_core_example_sized());  // no degradation
  expect_lazy_matches_full(lis::make_fig15_counterexample());
}

TEST(LazySizing, MatchesFullOnCofdmSoc) { expect_lazy_matches_full(soc::build_cofdm()); }

TEST(LazySizing, MatchesFullOnEveryCorpusNetlist) {
  std::ifstream manifest(std::string(LID_DATA_DIR) + "/corpus/manifest.txt");
  ASSERT_TRUE(manifest.good()) << "missing corpus manifest";
  std::size_t count = 0;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string file = line.substr(0, line.find(' '));
    SCOPED_TRACE(file);
    expect_lazy_matches_full(lis::load_netlist(std::string(LID_DATA_DIR) + "/corpus/" + file));
    ++count;
  }
  EXPECT_EQ(count, 20u);
}

/// 10 seeds x 5 trials = 50 generated systems.
class LazyEquivalenceOnGenerated : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazyEquivalenceOnGenerated, MatchesFullPipeline) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    SCOPED_TRACE(trial);
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(8, 20);
    params.sccs = rng.uniform_int(1, 4);
    params.min_cycles = rng.uniform_int(1, 3);
    params.relay_stations = rng.uniform_int(1, 5);
    params.reconvergent = true;
    // kScc needs an inter-SCC channel to put relay stations on.
    params.policy =
        trial % 2 == 0 && params.sccs > 1 ? gen::RsPolicy::kScc : gen::RsPolicy::kAny;
    expect_lazy_matches_full(gen::generate(params, rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyEquivalenceOnGenerated,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(LazySizing, ReportsIterationAndConstraintCounts) {
  QsOptions options;
  options.method = QsMethod::kLazy;
  const QsReport r = size_queues(lis::make_fig15_counterexample(), options);
  ASSERT_TRUE(r.lazy.has_value());
  EXPECT_FALSE(r.lazy->fell_back);
  EXPECT_GE(r.lazy->iterations, 1);
  EXPECT_GE(r.lazy->cycles_generated, 1);
  // Every iteration after the first re-solves the same (remarked) structure.
  EXPECT_GE(r.lazy->howard_warm_restarts, 1);
  ASSERT_TRUE(r.exact.has_value());
  EXPECT_TRUE(r.exact->finished);
  EXPECT_EQ(r.achieved_mst, r.problem.theta_ideal);
}

TEST(LazySizing, NoDegradationConvergesWithoutIterating) {
  QsOptions options;
  options.method = QsMethod::kLazy;
  const QsReport r = size_queues(lis::make_two_core_example_sized(), options);
  ASSERT_TRUE(r.lazy.has_value());
  EXPECT_EQ(r.lazy->iterations, 0);
  EXPECT_EQ(r.lazy->cycles_generated, 0);
  EXPECT_EQ(r.achieved_mst, r.problem.theta_practical);
}

TEST(LazySizing, PreCancelledTokenReportsCancelledProblem) {
  QsOptions options;
  options.method = QsMethod::kLazy;
  options.build.cancel = util::CancelToken::after_ms(0.0);
  const QsReport r = size_queues(lis::make_fig15_counterexample(), options);
  EXPECT_TRUE(r.problem.cancelled);
  EXPECT_FALSE(r.exact.has_value());
}

TEST(LazySizing, ExternalWorkspaceIsReusedAcrossCalls) {
  mg::Workspace workspace;
  QsOptions options;
  const lis::LisGraph lis = lis::make_fig15_counterexample();
  const QsReport first = size_queues_lazy(lis, options, &workspace);
  ASSERT_TRUE(first.exact.has_value());
  const std::int64_t after_first = workspace.stats().warm_restarts;
  // A re-analysis of the same netlist hands back the same structure, so the
  // second run warm-starts from the first run's converged policies.
  const QsReport second = size_queues_lazy(lis, options, &workspace);
  EXPECT_EQ(first.exact->total_extra_tokens, second.exact->total_extra_tokens);
  EXPECT_EQ(first.achieved_mst, second.achieved_mst);
  EXPECT_GT(workspace.stats().warm_restarts, after_first);
}

// ---------------------------------------------------------------------------
// mg::Workspace warm-start contract.

TEST(McmWorkspace, WarmStartMatchesColdOnPerturbedMarkings) {
  const lis::Expansion expansion = lis::expand_doubled(lis::make_fig15_counterexample());
  mg::MarkedGraph work = expansion.graph;
  mg::Workspace ws;
  mg::MeanCycle out;
  ASSERT_TRUE(mg::min_cycle_mean_howard(work, ws, out));
  const std::int64_t cold = ws.stats().cold_starts;
  EXPECT_GT(cold, 0);
  EXPECT_EQ(ws.stats().warm_restarts, 0);
  EXPECT_EQ(out.mean, mg::min_cycle_mean_howard(work)->mean);

  // Token perturbations keep the structure, so every re-solve warm-starts —
  // and must agree exactly with a cold one-shot solve of the same marking.
  for (int round = 0; round < 4; ++round) {
    const mg::PlaceId victim = static_cast<mg::PlaceId>(round % work.num_places());
    work.set_tokens(victim, work.tokens(victim) + 1);
    ASSERT_TRUE(mg::min_cycle_mean_howard(work, ws, out));
    EXPECT_EQ(out.mean, mg::min_cycle_mean_howard(work)->mean) << "round " << round;
  }
  EXPECT_EQ(ws.stats().cold_starts, cold);  // never demoted
  EXPECT_GT(ws.stats().warm_restarts, 0);
}

TEST(McmWorkspace, StructureChangeDemotesToColdStartNeverWrongAnswer) {
  mg::Workspace ws;
  mg::MeanCycle out;
  const mg::MarkedGraph a = lis::expand_doubled(lis::make_fig15_counterexample()).graph;
  const mg::MarkedGraph b = lis::expand_doubled(lis::make_two_core_example()).graph;
  ASSERT_TRUE(mg::min_cycle_mean_howard(a, ws, out));
  const std::int64_t cold_after_a = ws.stats().cold_starts;
  ASSERT_TRUE(mg::min_cycle_mean_howard(b, ws, out));
  EXPECT_GT(ws.stats().cold_starts, cold_after_a);  // fingerprint mismatch
  EXPECT_EQ(out.mean, mg::min_cycle_mean_howard(b)->mean);
  // And back: another structure change, another cold start, same answer.
  ASSERT_TRUE(mg::min_cycle_mean_howard(a, ws, out));
  EXPECT_EQ(out.mean, mg::min_cycle_mean_howard(a)->mean);
}

TEST(McmWorkspace, MstHowardEqualsKarpMstEverywhere) {
  util::Rng rng(99);
  mg::Workspace ws;
  for (int trial = 0; trial < 8; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(6, 16);
    params.sccs = rng.uniform_int(1, 3);
    params.relay_stations = rng.uniform_int(0, 4);
    params.policy = gen::RsPolicy::kAny;
    const lis::LisGraph lis = gen::generate(params, rng);
    const mg::MarkedGraph ideal = lis::expand_ideal(lis).graph;
    const mg::MarkedGraph doubled = lis::expand_doubled(lis).graph;
    EXPECT_EQ(mg::mst_howard(ideal, ws), mg::mst(ideal)) << "trial " << trial;
    EXPECT_EQ(mg::mst_howard(doubled, ws), mg::mst(doubled)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace lid::core
