// Anchors: every numeric claim the paper makes about its small running
// examples, checked exactly.
#include <gtest/gtest.h>

#include "core/fixed_qs.hpp"
#include "core/queue_sizing.hpp"
#include "core/rs_insertion.hpp"
#include "lis/lis_graph.hpp"
#include "lis/paper_systems.hpp"
#include "util/rational.hpp"

namespace lid {
namespace {

using util::Rational;

TEST(TwoCoreExample, IdealMstIsOne) {
  // Fig. 1: no feedback loop, the relay station's τ leaves the system.
  EXPECT_EQ(lis::ideal_mst(lis::make_two_core_example()), Rational(1));
}

TEST(TwoCoreExample, PracticalMstDegradesToTwoThirds) {
  // Fig. 5: with q = 1 the critical cycle {A, rs, B, A} has mean 2/3.
  EXPECT_EQ(lis::practical_mst(lis::make_two_core_example()), Rational(2, 3));
}

TEST(TwoCoreExample, GrowingLowerQueueRestoresIdeal) {
  // Fig. 6: queue of two on the lower channel recovers MST 1.
  EXPECT_EQ(lis::practical_mst(lis::make_two_core_example_sized()), Rational(1));
}

TEST(TwoCoreExample, BalancingRelayStationRestoresIdeal) {
  // Fig. 2 (right): one extra relay station on the lower channel.
  const lis::LisGraph balanced = lis::make_two_core_example_balanced();
  EXPECT_EQ(lis::ideal_mst(balanced), Rational(1));
  EXPECT_EQ(lis::practical_mst(balanced), Rational(1));
}

TEST(TwoCoreExample, QueueSizingFindsTheOneTokenFix) {
  core::QsOptions options;
  options.method = core::QsMethod::kBoth;
  const core::QsReport report = core::size_queues(lis::make_two_core_example(), options);
  EXPECT_EQ(report.problem.theta_ideal, Rational(1));
  EXPECT_EQ(report.problem.theta_practical, Rational(2, 3));
  ASSERT_TRUE(report.exact.has_value());
  EXPECT_TRUE(report.exact->finished);
  EXPECT_EQ(report.exact->total_extra_tokens, 1);
  ASSERT_TRUE(report.heuristic.has_value());
  EXPECT_EQ(report.heuristic->total_extra_tokens, 1);
  EXPECT_EQ(report.achieved_mst, Rational(1));
}

TEST(Fig15Counterexample, IdealMstIsFiveSixths) {
  EXPECT_EQ(lis::ideal_mst(lis::make_fig15_counterexample()), Rational(5, 6));
}

TEST(Fig15Counterexample, PracticalMstIsThreeQuarters) {
  // The cycle {A, rs, E, C, A} (backedges E→C and C→A) has mean 3/4.
  EXPECT_EQ(lis::practical_mst(lis::make_fig15_counterexample()), Rational(3, 4));
}

TEST(Fig15Counterexample, NoRelayStationInsertionRecoversIdeal) {
  // Sec. VI: an extra relay station on (A,C) or (C,E) lowers the ideal MST
  // (cycles {A,rs,C,B,A} and {C,rs,E,D,C} drop to 3/4); anywhere else it
  // leaves the degrading cycle in place. Exhaustive search confirms no
  // distribution of up to 3 extra stations reaches 5/6.
  const core::RsInsertionResult result =
      core::exhaustive_rs_insertion(lis::make_fig15_counterexample(), 3);
  EXPECT_EQ(result.original_ideal, Rational(5, 6));
  EXPECT_FALSE(result.reached_ideal);
  EXPECT_LT(result.best_practical, Rational(5, 6));
}

TEST(Fig15Counterexample, QueueSizingDoesRecoverIdeal) {
  core::QsOptions options;
  options.method = core::QsMethod::kBoth;
  const core::QsReport report = core::size_queues(lis::make_fig15_counterexample(), options);
  ASSERT_TRUE(report.exact.has_value());
  EXPECT_TRUE(report.exact->finished);
  EXPECT_EQ(report.achieved_mst, Rational(5, 6));
}

TEST(Fig15Counterexample, InsertingOnACLowersIdealMst) {
  lis::LisGraph lis = lis::make_fig15_counterexample();
  lis.set_relay_stations(5, 1);  // channel (A, C)
  EXPECT_EQ(lis::ideal_mst(lis), Rational(3, 4));
}

TEST(FixedQs, TwoCoreExampleNeedsQTwo) {
  EXPECT_EQ(core::smallest_sufficient_fixed_q(lis::make_two_core_example(), 10), 2);
}

TEST(FixedQs, AdversarialChainNeedsQProportionalToRelayStations) {
  // Sec. VIII-B: take Fig. 2 and add (q - 1) more relay stations to the
  // upper channel — fixed queues of size q then fail, q + 1 succeeds.
  for (int extra = 1; extra <= 4; ++extra) {
    lis::LisGraph lis = lis::make_two_core_example();
    lis.set_relay_stations(0, 1 + extra);
    EXPECT_EQ(core::smallest_sufficient_fixed_q(lis, 20), 2 + extra);
  }
}

}  // namespace
}  // namespace lid
