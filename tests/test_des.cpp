// src/des — the event-driven stochastic simulation backend.
//
// The load-bearing suites are the cross-validation contracts (selfcheck
// invariant 13): the deterministic limit must reproduce the analytic MST
// exactly on every paper example and corpus netlist, sized systems must
// simulate at exactly min(1, θ_ideal), and reports must be byte-identical
// for a given seed. The rest covers spec parsing, the `#!` annotation
// round-trip, open-system arrival exactness, conservation laws, and the
// serve `simulate` verb (inline == registry-addressed payloads).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/queue_sizing.hpp"
#include "des/annotations.hpp"
#include "des/des.hpp"
#include "lid_api.hpp"
#include "lis/lis_graph.hpp"
#include "lis/netlist_io.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

#ifndef LID_DATA_DIR
#define LID_DATA_DIR "data"
#endif

namespace lid {
namespace {

std::vector<std::string> corpus_files() {
  std::ifstream in(std::string(LID_DATA_DIR) + "/corpus/manifest.txt");
  EXPECT_TRUE(in.good()) << "missing corpus manifest";
  std::vector<std::string> files;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string file;
    row >> file;
    files.push_back(std::string(LID_DATA_DIR) + "/corpus/" + file);
  }
  EXPECT_EQ(files.size(), 20u);
  return files;
}

util::Rational min_one(const util::Rational& r) {
  return std::min(util::Rational(1), r);
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(DesSpecs, LatencyDistRoundTripsThroughToString) {
  for (const char* spec : {"fixed:3", "uniform:1:4", "geometric:1/2", "fixed:1"}) {
    const auto parsed = des::parse_latency_dist(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    EXPECT_EQ(parsed->to_string(), spec);
    EXPECT_EQ(des::parse_latency_dist(parsed->to_string()), parsed);
  }
  // A bare integer is shorthand for fixed.
  EXPECT_EQ(des::parse_latency_dist("7"), des::LatencyDist::fixed(7));
}

TEST(DesSpecs, ArrivalSpecRoundTripsThroughToString) {
  for (const char* spec : {"saturated", "rate:4", "poisson:1/4", "bursty:8:8"}) {
    const auto parsed = des::parse_arrival_spec(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    EXPECT_EQ(parsed->to_string(), spec);
    EXPECT_EQ(des::parse_arrival_spec(parsed->to_string()), parsed);
  }
}

TEST(DesSpecs, MalformedSpecsAreRejected) {
  for (const char* spec : {"", "fixed", "fixed:0", "fixed:-1", "uniform:4:1", "uniform:1",
                           "geometric:0/2", "geometric:3/2", "geometric:1/0", "gauss:1",
                           "fixed:1000001", "fixed:one"}) {
    EXPECT_FALSE(des::parse_latency_dist(spec).has_value()) << spec;
  }
  for (const char* spec :
       {"", "rate:0", "rate", "poisson:0/4", "poisson:5/4", "bursty:0:8", "bursty:8", "never"}) {
    EXPECT_FALSE(des::parse_arrival_spec(spec).has_value()) << spec;
  }
}

// ---------------------------------------------------------------------------
// Deterministic limit == analytic MST (invariant 13a)
// ---------------------------------------------------------------------------

void expect_matches_practical(const lis::LisGraph& system, const std::string& label) {
  SCOPED_TRACE(label);
  des::SimOptions options;
  options.horizon = 30'000;
  const des::SimReport report = des::simulate(system, options);
  EXPECT_TRUE(report.deterministic);
  ASSERT_TRUE(report.periodic_found) << "no recurrence within the horizon";
  EXPECT_EQ(report.throughput, min_one(lis::practical_mst(system)));
  EXPECT_FALSE(report.cancelled);
}

TEST(DesDeterministic, PaperExamplesMatchAnalyticMst) {
  expect_matches_practical(lis::load_netlist(std::string(LID_DATA_DIR) + "/fig1.lis"), "fig1");
  expect_matches_practical(lis::load_netlist(std::string(LID_DATA_DIR) + "/fig15.lis"), "fig15");
  expect_matches_practical(cofdm_soc().graph(), "cofdm");
}

TEST(DesDeterministic, EveryCorpusNetlistMatchesAnalyticMst) {
  for (const std::string& file : corpus_files()) {
    expect_matches_practical(lis::load_netlist(file), file);
  }
}

// ---------------------------------------------------------------------------
// Sized systems (invariant 13b/13c)
// ---------------------------------------------------------------------------

// size_queues restores min(1, θ_ideal) exactly in simulation; and when that
// rate is 1, the sized system runs stall-free past the transient (every core
// fires every cycle, so no credit can arrive strictly late). At rates below
// 1 steady-state backpressure is expected even when sized — credit backedges
// tie the forward critical cycle's ratio without costing throughput — so no
// zero-stall claim is made there (see des.hpp).
TEST(DesSized, SizedSystemsSimulateAtIdealRate) {
  std::vector<std::string> files = corpus_files();
  files.push_back(std::string(LID_DATA_DIR) + "/fig1.lis");
  files.push_back(std::string(LID_DATA_DIR) + "/fig15.lis");
  for (const std::string& file : files) {
    SCOPED_TRACE(file);
    const lis::LisGraph system = lis::load_netlist(file);
    core::QsOptions qs;
    qs.method = core::QsMethod::kLazy;
    const core::QsReport sized = core::size_queues(system, qs);
    const util::Rational ideal = lis::ideal_mst(system);

    des::SimOptions options;
    options.horizon = 30'000;
    const des::SimReport report = des::simulate(sized.sized, options);
    ASSERT_TRUE(report.periodic_found);
    EXPECT_EQ(report.throughput, min_one(ideal));

    if (min_one(ideal) == util::Rational(1)) {
      // Steady state at rate 1: re-run without the recurrence early-exit
      // (uniform:1:1 draws the same unit latencies but is classified
      // stochastic) and check the post-warmup window is stall-free.
      des::SimOptions windowed;
      windowed.horizon = 1'000;
      windowed.warmup = 1'000;
      windowed.channel_latency = des::LatencyDist::uniform(1, 1);
      const des::SimReport steady = des::simulate(sized.sized, windowed);
      EXPECT_EQ(steady.total_stall_events, 0) << "sized rate-1 system stalled in steady state";
      EXPECT_EQ(steady.total_stall_cycles, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Seed stability / reproducibility
// ---------------------------------------------------------------------------

TEST(DesStochastic, SameSeedGivesByteIdenticalReports) {
  const lis::LisGraph system = lis::load_netlist(std::string(LID_DATA_DIR) + "/fig15.lis");
  des::SimOptions options;
  options.horizon = 4'000;
  options.warmup = 200;
  options.seed = 42;
  options.channel_latency = des::LatencyDist::uniform(1, 4);
  const std::string first = des::simulate(system, options).serialize();
  const std::string again = des::simulate(system, options).serialize();
  EXPECT_EQ(first, again);

  options.seed = 43;
  const std::string other = des::simulate(system, options).serialize();
  EXPECT_NE(first, other) << "different seeds should explore different sample paths";
}

TEST(DesStochastic, DeterministicConfigIgnoresSeed) {
  const lis::LisGraph system = lis::load_netlist(std::string(LID_DATA_DIR) + "/fig1.lis");
  des::SimOptions options;
  options.horizon = 2'000;
  options.seed = 1;
  const des::SimReport a = des::simulate(system, options);
  options.seed = 999;
  const des::SimReport b = des::simulate(system, options);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.firings, b.firings);
}

// ---------------------------------------------------------------------------
// Conservation + occupancy structure
// ---------------------------------------------------------------------------

TEST(DesStochastic, TokenConservationAndPercentileOrderHold) {
  for (const char* file : {"/fig1.lis", "/fig15.lis", "/corpus/sys8.lis", "/corpus/sys16.lis"}) {
    SCOPED_TRACE(file);
    const lis::LisGraph system = lis::load_netlist(std::string(LID_DATA_DIR) + file);
    des::SimOptions options;
    options.horizon = 3'000;
    options.seed = 7;
    options.channel_latency = des::LatencyDist::geometric(1, 3);
    const des::SimReport report = des::simulate(system, options);
    ASSERT_EQ(report.channels.size(), system.num_channels());
    for (const des::ChannelStats& ch : report.channels) {
      SCOPED_TRACE("channel " + std::to_string(ch.channel));
      EXPECT_EQ(ch.tokens_in, ch.tokens_out + ch.in_flight) << "token conservation violated";
      EXPECT_LE(ch.p50, ch.p95);
      EXPECT_LE(ch.p95, ch.p99);
      EXPECT_LE(ch.p99, ch.max_occupancy);
      // Structural bound: q queue slots + 2 per relay station + the source
      // shell's latched output.
      EXPECT_LE(ch.max_occupancy, ch.capacity + 2 * ch.relay_stations + 1);
      std::int64_t histogram_total = 0;
      for (const std::int64_t cycles : ch.histogram) histogram_total += cycles;
      EXPECT_EQ(histogram_total, report.cycles_run - report.warmup)
          << "histogram must cover the measured window exactly";
    }
  }
}

TEST(DesStochastic, CancelStopsTheRunEarly) {
  const lis::LisGraph system = lis::load_netlist(std::string(LID_DATA_DIR) + "/fig15.lis");
  des::SimOptions options;
  options.horizon = 1'000'000;
  options.channel_latency = des::LatencyDist::uniform(1, 2);
  options.cancel = util::CancelToken::after_polls(2);
  const des::SimReport report = des::simulate(system, options);
  EXPECT_TRUE(report.cancelled);
  EXPECT_LT(report.cycles_run, options.horizon);

  // The facade maps a cancelled run onto kTimeout, never a partial report.
  Result<Instance> parsed = load_netlist(std::string(LID_DATA_DIR) + "/fig15.lis");
  ASSERT_TRUE(parsed.ok());
  DesOptions api;
  api.horizon = 1'000'000;
  api.channel_latency = des::LatencyDist::uniform(1, 2);
  api.cancel = util::CancelToken::after_polls(2);
  const Result<DesReport> result = simulate_des(*parsed, api);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kTimeout);
}

// ---------------------------------------------------------------------------
// Open-system arrivals
// ---------------------------------------------------------------------------

constexpr const char* kChain = R"(core A
core B
channel A -> B rs=1 q=2
)";

TEST(DesOpenSystem, PeriodicArrivalsSetTheExactRate) {
  const lis::LisGraph system = lis::from_text(kChain);
  des::SimOptions options;
  options.horizon = 10'000;
  options.arrival = des::ArrivalSpec::periodic(2);
  const des::SimReport report = des::simulate(system, options);
  EXPECT_TRUE(report.deterministic);
  ASSERT_TRUE(report.periodic_found) << "a rate-1/2 chain is eventually periodic";
  EXPECT_EQ(report.throughput, util::Rational(1, 2));
  EXPECT_GT(report.arrivals_generated, 0);
  EXPECT_LE(report.arrivals_consumed, report.arrivals_generated);
}

TEST(DesOpenSystem, BurstyArrivalsAverageTheDutyCycle) {
  const lis::LisGraph system = lis::from_text(kChain);
  des::SimOptions options;
  options.horizon = 10'000;
  options.arrival = des::ArrivalSpec::bursty(2, 2);
  const des::SimReport report = des::simulate(system, options);
  ASSERT_TRUE(report.periodic_found);
  EXPECT_EQ(report.throughput, util::Rational(1, 2));
}

TEST(DesOpenSystem, PoissonArrivalsStayBelowTheOfferedRate) {
  const lis::LisGraph system = lis::from_text(kChain);
  des::SimOptions options;
  options.horizon = 20'000;
  options.arrival = des::ArrivalSpec::poisson(1, 4);
  const des::SimReport report = des::simulate(system, options);
  EXPECT_FALSE(report.deterministic);
  EXPECT_FALSE(report.periodic_found);
  // Offered load 1/4 on a rate-1 server: the long-run rate lands near 1/4,
  // and can never exceed what arrived.
  EXPECT_GT(report.throughput, util::Rational(1, 8));
  EXPECT_LT(report.throughput, util::Rational(3, 8));
  EXPECT_LE(report.arrivals_consumed, report.arrivals_generated);
}

// ---------------------------------------------------------------------------
// `#!` annotations
// ---------------------------------------------------------------------------

TEST(DesAnnotations, ProfileRoundTripsThroughText) {
  const lis::LisGraph system =
      lis::load_netlist(std::string(LID_DATA_DIR) + "/corpus/sys3.lis");
  util::Rng rng(11);
  const des::Profile profile = des::random_profile(system, {}, rng);
  const std::string annotated = lis::to_text(system) + des::profile_text(profile, system);

  // Legacy readers treat `#!` lines as comments: the graph is unchanged.
  const lis::LisGraph reparsed = lis::from_text(annotated);
  EXPECT_EQ(lis::to_text(reparsed), lis::to_text(system));

  // The annotation layer recovers the exact profile.
  EXPECT_EQ(des::parse_profile(annotated, reparsed), profile);
}

TEST(DesAnnotations, MalformedAnnotationsThrow) {
  const lis::LisGraph system = lis::from_text(kChain);
  for (const char* line : {"#! channel 9 latency=fixed:2",      // out of range
                           "#! channel 0 latency=warp:1",       // bad spec
                           "#! source Z arrival=rate:2",        // unknown core
                           "#! channel 0 speed=fixed:2",        // unknown key
                           "#! frequency 0 latency=fixed:2"}) {  // unknown subject
    EXPECT_THROW(des::parse_profile(std::string(kChain) + line + "\n", system),
                 std::invalid_argument)
        << line;
  }
}

// ---------------------------------------------------------------------------
// serve `simulate` verb
// ---------------------------------------------------------------------------

serve::Outcome run_line(const std::string& line, serve::Registry* registry = nullptr) {
  const Result<serve::Request> request = serve::parse_request(line);
  EXPECT_TRUE(request.ok()) << line;
  serve::ExecContext context;
  context.registry = registry;
  return serve::execute(*request, {}, context);
}

std::string json_escape(const std::string& text) {
  return util::json_quote(text);
}

TEST(ServeSimulate, InlineAndRegistryAddressedPayloadsMatch) {
  std::ifstream in(std::string(LID_DATA_DIR) + "/fig15.lis");
  std::ostringstream text;
  text << in.rdbuf();
  const std::string netlist = text.str();

  const std::string args =
      R"("horizon": 2000, "seed": 5, "dist": "uniform:1:3", "arrival": "saturated",)"
      R"( "occupancy": true)";
  const serve::Outcome inline_run = run_line(
      std::string(R"({"verb": "simulate", "netlist": )") + json_escape(netlist) + ", " + args + "}");
  ASSERT_TRUE(inline_run.ok) << inline_run.error_message;
  EXPECT_NE(inline_run.payload.find("\"throughput\""), std::string::npos);
  EXPECT_NE(inline_run.payload.find("\"p95\""), std::string::npos);
  EXPECT_EQ(inline_run.payload.find('e' + std::string("+")), std::string::npos)
      << "payload must be float-free";

  serve::Registry registry;
  const Result<serve::ModelInfo> info = registry.register_model(netlist);
  ASSERT_TRUE(info.ok());
  const serve::Outcome addressed = run_line(
      std::string(R"({"verb": "simulate", "model": ")") + info->fingerprint + "\", " + args + "}",
      &registry);
  ASSERT_TRUE(addressed.ok) << addressed.error_message;
  EXPECT_EQ(addressed.payload, inline_run.payload)
      << "registry-addressed payloads must be byte-identical to inline";
}

TEST(ServeSimulate, OccupancyKeysAppearOnlyWhenRequested) {
  std::ifstream in(std::string(LID_DATA_DIR) + "/fig1.lis");
  std::ostringstream text;
  text << in.rdbuf();
  const serve::Outcome lean = run_line(std::string(R"({"verb": "simulate", "netlist": )") +
                                       json_escape(text.str()) + R"(, "horizon": 500})");
  ASSERT_TRUE(lean.ok) << lean.error_message;
  EXPECT_EQ(lean.payload.find("\"p95\""), std::string::npos);
  EXPECT_NE(lean.payload.find("\"stall_events\""), std::string::npos);
}

TEST(ServeSimulate, BadSpecsAndRangesAreRejected) {
  std::ifstream in(std::string(LID_DATA_DIR) + "/fig1.lis");
  std::ostringstream text;
  text << in.rdbuf();
  const std::string netlist = json_escape(text.str());
  const serve::Outcome bad_dist = run_line(std::string(R"({"verb": "simulate", "netlist": )") +
                                           netlist + R"(, "dist": "warp:9"})");
  EXPECT_FALSE(bad_dist.ok);
  EXPECT_EQ(bad_dist.error_code, serve::codes::kInvalidArgument);

  const serve::Outcome bad_horizon = run_line(std::string(R"({"verb": "simulate", "netlist": )") +
                                              netlist + R"(, "horizon": 99999999})");
  EXPECT_FALSE(bad_horizon.ok);
  EXPECT_EQ(bad_horizon.error_code, serve::codes::kInvalidArgument);

  const serve::Outcome bad_reference = run_line(std::string(R"({"verb": "simulate", "netlist": )") +
                                                netlist + R"(, "reference": "nope"})");
  EXPECT_FALSE(bad_reference.ok);
  EXPECT_EQ(bad_reference.error_code, serve::codes::kInvalidArgument);
}

}  // namespace
}  // namespace lid
