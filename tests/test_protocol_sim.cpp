#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"
#include "util/rng.hpp"

namespace lid::lis {
namespace {

using util::Rational;

/// Behaviours reproducing Table I: A generates even numbers on the upper
/// channel and odd numbers on the lower; B adds its two inputs.
std::vector<CoreBehavior> table1_behaviors() {
  std::vector<CoreBehavior> behaviors(2);
  behaviors[0].initial_outputs = {0, 1};
  behaviors[0].function = [](std::int64_t k, const std::vector<Payload>&) {
    return std::vector<Payload>{2 * (k + 1), 2 * (k + 1) + 1};
  };
  behaviors[1].function = [](std::int64_t, const std::vector<Payload>& in) {
    return std::vector<Payload>{in[0] + in[1]};
  };
  return behaviors;
}

TEST(ProtocolSim, ReproducesTableOne) {
  // The ideal LIS of Fig. 1 (no backpressure constraints bind because the
  // queues never fill with q = 2): output traces must match Table I.
  LisGraph lis = make_two_core_example();
  lis.set_all_queue_capacities(2);
  // B needs an output channel for its trace; add a sink consuming B's data.
  const CoreId sink = lis.add_core("sink");
  lis.add_channel(1, sink, 0, 2);

  ProtocolOptions options;
  options.periods = 4;
  options.record_traces = true;
  options.behaviors = table1_behaviors();
  options.behaviors.resize(3);
  const ProtocolResult r = simulate_protocol(lis, options);

  // Channel 0 = upper (through the relay station), 1 = lower, 2 = B -> sink.
  const auto& upper_a = r.traces[0][0];   // A's upper output port
  const auto& upper_rs = r.traces[0][1];  // relay-station output
  const auto& lower_a = r.traces[1][0];   // A's lower output port
  const auto& b_out = r.traces[2][0];     // B's output port
  EXPECT_EQ(format_trace(upper_a), "0 2 4 6");
  EXPECT_EQ(format_trace(lower_a), "1 3 5 7");
  EXPECT_EQ(format_trace(upper_rs), "tau 0 2 4");
  EXPECT_EQ(format_trace(b_out), "0 tau 1 5");
}

TEST(ProtocolSim, TwoCoreThroughputMatchesAnalysis) {
  ProtocolOptions options;
  options.periods = 2000;
  options.reference = 1;
  const ProtocolResult r = simulate_protocol(make_two_core_example(), options);
  ASSERT_TRUE(r.periodic_found);
  EXPECT_EQ(r.throughput, Rational(2, 3));  // the Fig. 5 degraded MST
}

TEST(ProtocolSim, SizedSystemRunsAtFullRate) {
  ProtocolOptions options;
  options.periods = 2000;
  options.reference = 1;
  const ProtocolResult r = simulate_protocol(make_two_core_example_sized(), options);
  ASSERT_TRUE(r.periodic_found);
  EXPECT_EQ(r.throughput, Rational(1));
}

TEST(ProtocolSim, Fig15ThroughputMatchesAnalysis) {
  ProtocolOptions options;
  options.periods = 5000;
  const ProtocolResult r = simulate_protocol(make_fig15_counterexample(), options);
  ASSERT_TRUE(r.periodic_found);
  EXPECT_EQ(r.throughput, Rational(3, 4));
}

TEST(ProtocolSim, DefaultBehaviorCountsFirings) {
  LisGraph lis;
  const CoreId a = lis.add_core();
  const CoreId b = lis.add_core();
  lis.add_channel(a, b);
  ProtocolOptions options;
  options.periods = 10;
  options.record_traces = true;
  const ProtocolResult r = simulate_protocol(lis, options);
  // With no stalls, A emits its firing index + 1 each period after the
  // initial 0.
  EXPECT_EQ(format_trace(r.traces[0][0]), "0 1 2 3 4 5 6 7 8 9");
}

TEST(ProtocolSim, ValidatesInputs) {
  LisGraph lis = make_two_core_example();
  ProtocolOptions options;
  options.periods = 0;
  EXPECT_THROW(simulate_protocol(lis, options), std::invalid_argument);
  options.periods = 10;
  options.reference = 99;
  EXPECT_THROW(simulate_protocol(lis, options), std::invalid_argument);
  options.reference = 0;
  options.behaviors.resize(1);  // must be one per core or empty
  EXPECT_THROW(simulate_protocol(lis, options), std::invalid_argument);
}

TEST(ProtocolSim, WrongInitialOutputArityIsRejected) {
  LisGraph lis = make_two_core_example();
  ProtocolOptions options;
  options.periods = 10;
  options.behaviors.resize(2);
  options.behaviors[0].initial_outputs = {1, 2, 3};  // A has two outputs
  EXPECT_THROW(simulate_protocol(lis, options), std::invalid_argument);
}

class ProtocolVsAnalysis : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolVsAnalysis, SustainedRateEqualsPracticalMst) {
  // End-to-end validation on random strongly-connected-ish systems: the
  // cycle-accurate protocol simulator and the static marked-graph analysis
  // must agree exactly.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(4, 12);
    params.sccs = rng.uniform_int(1, 3);
    params.min_cycles = rng.uniform_int(0, 3);
    params.relay_stations = rng.uniform_int(0, 4);
    params.policy = rng.flip(0.5) ? gen::RsPolicy::kAny : gen::RsPolicy::kScc;
    params.queue_capacity = rng.uniform_int(1, 3);
    LisGraph lis;
    try {
      lis = gen::generate(params, rng);
    } catch (const std::invalid_argument&) {
      continue;  // e.g. no eligible channel for the requested policy
    }
    // The practical system is strongly connected thanks to the backedges, so
    // every shell settles to the same sustained rate.
    const Rational expected = practical_mst(lis);
    ProtocolOptions options;
    options.periods = 30000;
    const ProtocolResult r = simulate_protocol(lis, options);
    ASSERT_TRUE(r.periodic_found) << "no recurrence in budget";
    EXPECT_EQ(r.throughput, Rational::min(Rational(1), expected));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolVsAnalysis, ::testing::Values(3, 13, 23, 33, 43));

TEST(ProtocolSim, EnvironmentGateThrottlesThroughput) {
  // An open system: the environment provides valid data only every other
  // period, so the sustained rate is min(environment rate, MST) = 1/2.
  LisGraph lis;
  const CoreId src = lis.add_core("env");
  const CoreId dst = lis.add_core("sink");
  lis.add_channel(src, dst, 0, 2);
  ProtocolOptions options;
  options.periods = 2000;
  options.reference = dst;
  options.behaviors.resize(2);
  options.behaviors[0].environment_gate = [](std::int64_t t) { return t % 2 == 0; };
  const ProtocolResult r = simulate_protocol(lis, options);
  EXPECT_FALSE(r.periodic_found);  // gates disable exact detection
  const double rate = r.throughput.to_double();
  EXPECT_NEAR(rate, 0.5, 0.01);
}

TEST(ProtocolSim, GateSlowerThanMstDominates) {
  // The Fig. 5 system has MST 2/3; an environment at rate 1/3 dominates.
  LisGraph lis = make_two_core_example();
  ProtocolOptions options;
  options.periods = 3000;
  options.reference = 1;
  options.behaviors.resize(2);
  options.behaviors[0].environment_gate = [](std::int64_t t) { return t % 3 == 0; };
  const ProtocolResult r = simulate_protocol(lis, options);
  EXPECT_NEAR(r.throughput.to_double(), 1.0 / 3.0, 0.01);
}

TEST(ProtocolSim, GateFasterThanMstIsLimitedByMst) {
  // Environment at rate 5/6 > MST 2/3: the internal structure dominates.
  LisGraph lis = make_two_core_example();
  ProtocolOptions options;
  options.periods = 6000;
  options.reference = 1;
  options.behaviors.resize(2);
  options.behaviors[0].environment_gate = [](std::int64_t t) { return t % 6 != 5; };
  const ProtocolResult r = simulate_protocol(lis, options);
  EXPECT_NEAR(r.throughput.to_double(), 2.0 / 3.0, 0.01);
}

/// Collects the sequence of valid payloads seen on a channel stage.
std::vector<Payload> valid_sequence(const std::vector<Item>& trace) {
  std::vector<Payload> values;
  for (const Item& item : trace) {
    if (!item.is_void()) values.push_back(*item.value);
  }
  return values;
}

class LatencyEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyEquivalence, QueueSizesNeverChangeTheValidDataSequences) {
  // The central theorem of latency-insensitive design: implementations with
  // different queue capacities (and hence different stalling patterns) are
  // latency-equivalent — every channel carries exactly the same sequence of
  // valid values, only the interleaving of τ differs.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(3, 8);
    params.sccs = rng.uniform_int(1, 2);
    params.min_cycles = rng.uniform_int(0, 2);
    params.relay_stations = rng.uniform_int(0, 3);
    params.policy = gen::RsPolicy::kAny;
    lis::LisGraph small = gen::generate(params, rng);
    lis::LisGraph big = small;
    big.set_all_queue_capacities(5);

    ProtocolOptions options;
    options.periods = 300;
    options.record_traces = true;
    // Give every core a data-dependent function so value errors would show.
    options.behaviors.resize(small.num_cores());
    for (std::size_t v = 0; v < small.num_cores(); ++v) {
      std::size_t outs = 0;
      for (ChannelId c = 0; c < static_cast<ChannelId>(small.num_channels()); ++c) {
        if (small.channel(c).src == static_cast<CoreId>(v)) ++outs;
      }
      options.behaviors[v].function = [v, outs](std::int64_t k,
                                                const std::vector<Payload>& in) {
        Payload acc = static_cast<Payload>(v) + 17 * k;
        for (const Payload x : in) acc = acc * 31 + x;
        return std::vector<Payload>(outs, acc);
      };
    }

    const ProtocolResult a = simulate_protocol(small, options);
    const ProtocolResult b = simulate_protocol(big, options);
    for (ChannelId c = 0; c < static_cast<ChannelId>(small.num_channels()); ++c) {
      const auto seq_a = valid_sequence(a.traces[static_cast<std::size_t>(c)][0]);
      const auto seq_b = valid_sequence(b.traces[static_cast<std::size_t>(c)][0]);
      const std::size_t common = std::min(seq_a.size(), seq_b.size());
      ASSERT_GT(common, 0u);
      for (std::size_t i = 0; i < common; ++i) {
        ASSERT_EQ(seq_a[i], seq_b[i])
            << "latency equivalence violated on channel " << c << " at item " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyEquivalence, ::testing::Values(51, 61, 71));

}  // namespace
}  // namespace lid::lis
