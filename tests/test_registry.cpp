// The protocol-v2 surface: binary framing, the model registry (fingerprints,
// LRU eviction, evict-while-in-flight, the payload memo), the registry verbs
// (register-model / evict-model / list-models), hello negotiation, and the
// contract that registered-model responses are byte-identical to inline
// execution over both transports and any worker count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lid_api.hpp"
#include "serve/client.hpp"
#include "serve/frame.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/json.hpp"

namespace {

using namespace lid;

// A small cyclic system, and a comment/whitespace variant that must
// canonicalize (and therefore fingerprint) identically.
constexpr const char* kNetlist =
    "core A\ncore B\ncore C\n"
    "channel A -> B\nchannel B -> C rs=1\nchannel C -> A\n";
constexpr const char* kNetlistNoisy =
    "# the same system, dressed differently\n"
    "core A\n\ncore B\n  core C\n"
    "channel A -> B   # forward\n"
    "channel B -> C rs=1\n"
    "channel C -> A\n";

std::string generated_netlist(int cores, std::uint64_t seed) {
  GenerateOptions options;
  options.cores = cores;
  options.sccs = 1;
  options.relay_stations = 1;
  options.rs_anywhere = true;
  options.seed = seed;
  const Result<Instance> instance = lid::generate(options);
  EXPECT_TRUE(instance.ok());
  const Result<std::string> text = netlist_text(*instance);
  EXPECT_TRUE(text.ok());
  return *text;
}

serve::Outcome run_line(const std::string& line, serve::Registry* registry = nullptr) {
  const Result<serve::Request> request = serve::parse_request(line);
  EXPECT_TRUE(request) << line;
  serve::ExecContext context;
  context.registry = registry;
  return serve::execute(*request, {}, context);
}

std::string netlist_request(const char* verb, const std::string& text) {
  util::JsonWriter w;
  w.begin_object().key("verb").value(verb).key("netlist").value(text).end_object();
  return w.str();
}

std::string model_request(const char* verb, const std::string& fingerprint) {
  util::JsonWriter w;
  w.begin_object().key("verb").value(verb).key("model").value(fingerprint).end_object();
  return w.str();
}

// ---------------------------------------------------------------------------
// Binary framing.

TEST(Frame, RoundTripsExactPayloadBytes) {
  const std::string payload = R"({"id":1,"verb":"ping"})";
  const std::string wire = serve::frame_message(payload);
  ASSERT_EQ(wire.size(), serve::kFrameHeaderBytes + payload.size());
  EXPECT_TRUE(serve::starts_frame(wire));
  EXPECT_FALSE(serve::starts_frame(payload));  // JSON can never open a frame

  const serve::FrameDecode decoded = serve::decode_frame(wire, 1 << 20);
  ASSERT_EQ(decoded.status, serve::FrameStatus::kFrame);
  EXPECT_EQ(decoded.payload, payload);
  EXPECT_EQ(decoded.consumed, wire.size());
}

TEST(Frame, PartialHeaderAndPayloadNeedMore) {
  const std::string wire = serve::frame_message("{}");
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const serve::FrameDecode decoded = serve::decode_frame(wire.substr(0, n), 1 << 20);
    EXPECT_EQ(decoded.status, serve::FrameStatus::kNeedMore) << "prefix " << n;
  }
}

TEST(Frame, RejectsBadHeaders) {
  std::string wrong_version = serve::frame_message("{}");
  wrong_version[2] = 3;
  const serve::FrameDecode bad_version = serve::decode_frame(wrong_version, 1 << 20);
  ASSERT_EQ(bad_version.status, serve::FrameStatus::kBad);
  EXPECT_STREQ(bad_version.error_code, serve::codes::kUnsupportedVersion);

  std::string wrong_flags = serve::frame_message("{}");
  wrong_flags[3] = 1;
  EXPECT_EQ(serve::decode_frame(wrong_flags, 1 << 20).status, serve::FrameStatus::kBad);

  const serve::FrameDecode oversized =
      serve::decode_frame(serve::frame_message(std::string(64, 'x')), 16);
  ASSERT_EQ(oversized.status, serve::FrameStatus::kBad);
  EXPECT_STREQ(oversized.error_code, serve::codes::kTooLarge);
}

// ---------------------------------------------------------------------------
// Registry unit tests (no sockets).

TEST(Registry, FingerprintIgnoresWhitespaceAndComments) {
  serve::Registry registry;
  const Result<serve::ModelInfo> a = registry.register_model(kNetlist);
  const Result<serve::ModelInfo> b = registry.register_model(kNetlistNoisy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->fingerprint, b->fingerprint);
  EXPECT_EQ(a->bytes, b->bytes);
  EXPECT_EQ(registry.list().size(), 1u);  // one model, not two

  const Result<serve::ModelInfo> other = registry.register_model(generated_netlist(6, 7));
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other->fingerprint, a->fingerprint);
  EXPECT_EQ(a->fingerprint.rfind("lis-", 0), 0u);
  EXPECT_EQ(a->fingerprint.size(), 4u + 16u);  // "lis-" + 16 hex digits
}

TEST(Registry, LruEvictsColdestModelFirst) {
  serve::RegistryOptions options;
  options.max_models = 2;
  serve::Registry registry(options);
  const std::string a = registry.register_model(generated_netlist(5, 1))->fingerprint;
  const std::string b = registry.register_model(generated_netlist(6, 2))->fingerprint;
  // Touch A so B becomes the LRU victim.
  ASSERT_NE(registry.acquire(a), nullptr);
  const std::string c = registry.register_model(generated_netlist(7, 3))->fingerprint;

  EXPECT_NE(registry.acquire(a), nullptr);
  EXPECT_EQ(registry.acquire(b), nullptr);
  EXPECT_NE(registry.acquire(c), nullptr);
  EXPECT_EQ(registry.stats().evictions, 1);
  EXPECT_EQ(registry.list().size(), 2u);
}

TEST(Registry, ByteBudgetBoundsResidency) {
  const std::string one = generated_netlist(6, 11);
  serve::Registry probe;
  const std::size_t footprint = probe.register_model(one)->bytes;

  serve::RegistryOptions options;
  options.max_bytes = footprint * 2 + footprint / 2;  // room for two, not three
  serve::Registry registry(options);
  ASSERT_TRUE(registry.register_model(one).ok());
  ASSERT_TRUE(registry.register_model(generated_netlist(6, 12)).ok());
  ASSERT_TRUE(registry.register_model(generated_netlist(6, 13)).ok());
  const serve::Registry::Stats stats = registry.stats();
  EXPECT_LE(stats.bytes, options.max_bytes);
  EXPECT_GE(stats.evictions, 1);
  EXPECT_LE(stats.resident, 2u);
}

TEST(Registry, EvictionIsSafeWhileInFlight) {
  serve::Registry registry;
  const std::string fp = registry.register_model(kNetlist)->fingerprint;
  std::shared_ptr<serve::Registry::Entry> borrowed = registry.acquire(fp);
  ASSERT_NE(borrowed, nullptr);

  EXPECT_TRUE(registry.evict(fp));
  EXPECT_FALSE(registry.evict(fp));           // already gone
  EXPECT_EQ(registry.acquire(fp), nullptr);   // unknown_model for new requests

  // The borrower's entry stays fully usable: the pooled cache still answers.
  EXPECT_EQ(borrowed->cache->theta_practical(),
            lis::practical_mst(borrowed->instance.graph()));
  EXPECT_EQ(registry.stats().misses, 1);
}

TEST(Registry, RefusesWhenDisabledOrOverBudget) {
  serve::RegistryOptions disabled;
  disabled.max_models = 0;
  EXPECT_FALSE(serve::Registry(disabled).register_model(kNetlist).ok());

  serve::RegistryOptions tiny;
  tiny.max_bytes = 16;  // smaller than any model's base footprint
  EXPECT_FALSE(serve::Registry(tiny).register_model(kNetlist).ok());

  EXPECT_FALSE(serve::Registry().register_model("channel ghost -> nowhere\n").ok());
}

// ---------------------------------------------------------------------------
// Registry verbs through the protocol layer (no sockets).

TEST(ProtocolV2, RegisterQueryEvictLifecycle) {
  serve::Registry registry;
  const serve::Outcome registered =
      run_line(netlist_request("register-model", kNetlist), &registry);
  ASSERT_TRUE(registered.ok) << registered.error_message;
  const util::JsonParse info = util::json_parse(registered.payload);
  ASSERT_TRUE(info.ok);
  const std::string fp = info.value.find("model")->as_string();
  EXPECT_EQ(info.value.find("cores")->as_int(), 3);
  EXPECT_EQ(info.value.find("relay_stations")->as_int(), 1);

  // Registering again is idempotent: byte-identical payload, same residency.
  const serve::Outcome again =
      run_line(netlist_request("register-model", kNetlistNoisy), &registry);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.payload, registered.payload);

  for (const char* verb : {"analyze", "size-queues", "lint", "rate-safety"}) {
    const serve::Outcome inline_form = run_line(netlist_request(verb, kNetlist), &registry);
    const serve::Outcome by_model = run_line(model_request(verb, fp), &registry);
    ASSERT_TRUE(inline_form.ok) << verb;
    ASSERT_TRUE(by_model.ok) << verb << ": " << by_model.error_message;
    EXPECT_EQ(by_model.payload, inline_form.payload) << verb;
    // Second query by model replays the memo, still byte-identical.
    EXPECT_EQ(run_line(model_request(verb, fp), &registry).payload, inline_form.payload);
  }
  EXPECT_GT(registry.stats().memo_hits, 0);

  const serve::Outcome listed = run_line(R"({"verb":"list-models"})", &registry);
  ASSERT_TRUE(listed.ok);
  EXPECT_NE(listed.payload.find(fp), std::string::npos);
  EXPECT_NE(listed.payload.find("\"resident\":1"), std::string::npos);

  const serve::Outcome evicted = run_line(model_request("evict-model", fp), &registry);
  ASSERT_TRUE(evicted.ok);
  EXPECT_NE(evicted.payload.find("\"evicted\":true"), std::string::npos);
  const serve::Outcome gone = run_line(model_request("analyze", fp), &registry);
  ASSERT_FALSE(gone.ok);
  EXPECT_EQ(gone.error_code, serve::codes::kUnknownModel);
}

TEST(ProtocolV2, StructuredErrorCodes) {
  serve::Registry registry;
  const serve::Outcome unknown = run_line(model_request("analyze", "lis-deadbeefdeadbeef"), &registry);
  ASSERT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.error_code, serve::codes::kUnknownModel);

  // No registry wired (a server built without one): model refs cannot
  // resolve, registration reports the registry as full.
  const serve::Outcome unresolved = run_line(model_request("analyze", "lis-deadbeefdeadbeef"));
  ASSERT_FALSE(unresolved.ok);
  EXPECT_EQ(unresolved.error_code, serve::codes::kUnknownModel);
  const serve::Outcome no_registry = run_line(netlist_request("register-model", kNetlist));
  ASSERT_FALSE(no_registry.ok);
  EXPECT_EQ(no_registry.error_code, serve::codes::kRegistryFull);

  serve::RegistryOptions disabled;
  disabled.max_models = 0;
  serve::Registry off(disabled);
  const serve::Outcome full = run_line(netlist_request("register-model", kNetlist), &off);
  ASSERT_FALSE(full.ok);
  EXPECT_EQ(full.error_code, serve::codes::kRegistryFull);

  // Ambiguous addressing is an argument error, not a resolution error.
  util::JsonWriter both;
  both.begin_object().key("verb").value("analyze").key("model").value("lis-deadbeefdeadbeef");
  both.key("netlist").value(kNetlist).end_object();
  const serve::Outcome ambiguous = run_line(both.str(), &registry);
  ASSERT_FALSE(ambiguous.ok);
  EXPECT_EQ(ambiguous.error_code, serve::codes::kInvalidArgument);

  const serve::Outcome empty_evict = run_line(R"({"verb":"evict-model"})", &registry);
  ASSERT_FALSE(empty_evict.ok);
  EXPECT_EQ(empty_evict.error_code, serve::codes::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Socket-level: hello negotiation, envelopes, transports, byte identity.

struct LiveServer {
  explicit LiveServer(int workers = 1) {
    options.unix_socket = ::testing::TempDir() + "lid_registry_test.sock";
    options.workers = workers;
    server = std::make_unique<serve::Server>(options);
    EXPECT_TRUE(server->start().ok());
  }
  ~LiveServer() { server->stop(); }
  serve::ServerOptions options;
  std::unique_ptr<serve::Server> server;
};

TEST(ServeV2, HelloNegotiatesAndStampsEnvelopes) {
  LiveServer live;
  // A v1 client sees pre-v2 envelopes: no "protocol" field anywhere.
  Result<serve::Client> connected_v1 = serve::Client::connect_unix(live.options.unix_socket);
  ASSERT_TRUE(connected_v1.ok());
  serve::Client v1 = std::move(connected_v1).value();
  const Result<std::string> pong = v1.call(R"({"id":1,"verb":"ping"})");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->find("\"protocol\""), std::string::npos);
  v1.close();

  serve::SessionOptions options;
  Result<serve::Session> connected =
      serve::Session::connect_unix(live.options.unix_socket, options);
  ASSERT_TRUE(connected.ok());
  serve::Session session = std::move(connected).value();
  EXPECT_EQ(session.protocol(), 2);
  const Result<std::string> v2pong = session.call(R"({"id":2,"verb":"ping"})");
  ASSERT_TRUE(v2pong.ok());
  EXPECT_NE(v2pong->find("\"protocol\":2"), std::string::npos);
  session.close();
}

TEST(ServeV2, HelloRejectsBadRequests) {
  LiveServer live;
  Result<serve::Client> connected = serve::Client::connect_unix(live.options.unix_socket);
  ASSERT_TRUE(connected.ok());
  serve::Client raw = std::move(connected).value();
  const Result<std::string> future = raw.call(R"({"verb":"hello","protocol":3})");
  ASSERT_TRUE(future.ok());
  EXPECT_NE(future->find(serve::codes::kUnsupportedVersion), std::string::npos);
  const Result<std::string> mismatch =
      raw.call(R"({"verb":"hello","protocol":1,"transport":"binary"})");
  ASSERT_TRUE(mismatch.ok());
  EXPECT_NE(mismatch->find(serve::codes::kInvalidArgument), std::string::npos);
  raw.close();
}

TEST(ServeV2, RegisteredEqualsInlineOverBothTransportsAndWorkerCounts) {
  const std::string text = generated_netlist(8, 21);
  static const char* kVerbs[] = {"analyze", "size-queues", "lint", "rate-safety"};

  std::vector<std::string> direct;
  for (const char* verb : kVerbs) {
    const serve::Outcome outcome = run_line(netlist_request(verb, text));
    ASSERT_TRUE(outcome.ok) << verb;
    direct.push_back(outcome.payload);
  }

  for (const int workers : {1, 4}) {
    LiveServer live(workers);
    for (const bool binary : {false, true}) {
      serve::SessionOptions options;
      options.binary = binary;
      Result<serve::Session> connected =
          serve::Session::connect_unix(live.options.unix_socket, options);
      ASSERT_TRUE(connected.ok());
      serve::Session session = std::move(connected).value();
      EXPECT_EQ(session.binary(), binary);
      const Result<serve::ModelHandle> handle = session.register_model(text);
      ASSERT_TRUE(handle.ok()) << handle.error().to_string();
      EXPECT_EQ(handle->cores, 8u);
      for (std::size_t v = 0; v < 4; ++v) {
        const Result<std::string> payload = session.query(*handle, kVerbs[v]);
        ASSERT_TRUE(payload.ok()) << kVerbs[v] << ": " << payload.error().to_string();
        EXPECT_EQ(*payload, direct[v])
            << kVerbs[v] << " workers=" << workers << " binary=" << binary;
      }
      session.close();
    }
  }
}

TEST(ServeV2, EvictModelRoundTripAndStatsSection) {
  LiveServer live;
  serve::SessionOptions options;
  Result<serve::Session> connected =
      serve::Session::connect_unix(live.options.unix_socket, options);
  ASSERT_TRUE(connected.ok());
  serve::Session session = std::move(connected).value();
  const Result<serve::ModelHandle> handle = session.register_model(kNetlist);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(session.query(*handle, "analyze").ok());
  ASSERT_TRUE(session.query(*handle, "analyze").ok());  // memo hit
  EXPECT_TRUE(session.evict_model(*handle).ok());
  const Result<std::string> gone = session.query(*handle, "analyze");
  ASSERT_FALSE(gone.ok());
  EXPECT_NE(gone.error().message.find(serve::codes::kUnknownModel), std::string::npos);

  const Result<std::string> stats = session.stats();
  ASSERT_TRUE(stats.ok());
  const util::JsonParse parsed = util::json_parse(*stats);
  ASSERT_TRUE(parsed.ok);
  const util::Json* registry = parsed.value.find("registry");
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->find("memo_hits")->as_int(), 1);
  EXPECT_EQ(registry->find("memo_misses")->as_int(), 1);
  EXPECT_GE(registry->find("evictions")->as_int(), 1);
  session.close();
}

TEST(ServeV2, SessionWarmupRunsOnEveryFreshConnection) {
  LiveServer live;
  int warmups = 0;
  serve::RetryPolicy policy;
  policy.session_warmup = [&](serve::Client& client) -> Status {
    ++warmups;
    const Result<std::string> response =
        client.call(netlist_request("register-model", kNetlist));
    if (!response) return response.error();
    return Unit{};
  };
  serve::RetryingClient client(
      [&]() -> Result<serve::Client> {
        return serve::Client::connect_unix(live.options.unix_socket);
      },
      policy);
  ASSERT_TRUE(client.call(R"({"verb":"ping"})").ok());
  EXPECT_EQ(warmups, 1);
  client.disconnect();
  ASSERT_TRUE(client.call(R"({"verb":"ping"})").ok());
  EXPECT_EQ(warmups, 2);  // re-ran after the reconnect
  EXPECT_EQ(client.stats().reconnects, 2);
}

}  // namespace
