// Edge cases and less-traveled paths across modules: non-recurrent
// simulations, schedule pattern wrap-around, slack/storage on the SoC,
// degenerate inputs, and parser fuzzing.
#include <gtest/gtest.h>

#include <string>

#include "core/diagnostics.hpp"
#include "core/scheduling.hpp"
#include "core/slack.hpp"
#include "core/storage.hpp"
#include "lis/netlist_io.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"
#include "mg/mcm.hpp"
#include "mg/simulate.hpp"
#include "soc/cofdm.hpp"
#include "util/rng.hpp"

namespace lid {
namespace {

using util::Rational;

TEST(EdgeCases, IdealGraphWithRateMismatchNeverRecurs) {
  // A full-rate source feeding a half-rate ring accumulates tokens forever;
  // the simulator must hit its budget and report the empirical rate.
  lis::LisGraph lis;
  const lis::CoreId src = lis.add_core();
  const lis::CoreId a = lis.add_core();
  const lis::CoreId b = lis.add_core();
  lis.add_channel(src, a);
  lis.add_channel(a, b, 1);
  lis.add_channel(b, a, 1);
  const lis::Expansion ideal = lis::expand_ideal(lis);
  const mg::SimulationResult sim = mg::simulate(ideal.graph, 300, ideal.core_transition[src]);
  EXPECT_FALSE(sim.periodic_found);
  EXPECT_EQ(sim.steps_run, 300u);
  EXPECT_EQ(sim.throughput, Rational(1));  // the source itself never stalls
}

TEST(EdgeCases, SchedulePatternWrapsCorrectly) {
  lis::LisGraph ring;
  for (int i = 0; i < 3; ++i) ring.add_core();
  for (int i = 0; i < 3; ++i) ring.add_channel(i, (i + 1) % 3, i == 0 ? 1 : 0);
  const core::StaticSchedule schedule = core::compute_static_schedule(ring);
  ASSERT_TRUE(schedule.found);
  // fires() far beyond the recorded horizon must follow the periodic window.
  for (lis::CoreId v = 0; v < 3; ++v) {
    for (std::size_t t = schedule.transient; t < schedule.transient + schedule.period; ++t) {
      EXPECT_EQ(schedule.fires(v, t), schedule.fires(v, t + 7 * schedule.period));
    }
  }
}

TEST(EdgeCases, SlackAndStorageOnTheCofdmSoc) {
  const lis::LisGraph soc = soc::build_cofdm();
  const auto slacks = core::channel_slacks(soc);
  ASSERT_EQ(slacks.size(), 30u);
  // Channels into the clipper/filter tail lie on no forward cycle.
  int unbounded = 0;
  for (const auto& s : slacks) {
    if (s.slack == core::ChannelSlack::kUnbounded) ++unbounded;
  }
  EXPECT_GT(unbounded, 0);
  EXPECT_LT(unbounded, 30);
  // Storage bounds exist for every channel and respect the capacity cap.
  for (const auto& s : core::storage_bounds(soc)) {
    EXPECT_GE(s.occupancy_bound, 1);
    EXPECT_LE(s.occupancy_bound, s.configured_capacity + 2 * s.relay_stations + 1);
  }
}

TEST(EdgeCases, SingleCoreNoChannels) {
  lis::LisGraph lis;
  lis.add_core("lonely");
  EXPECT_EQ(lis::ideal_mst(lis), Rational(1));
  EXPECT_EQ(lis::practical_mst(lis), Rational(1));
  const core::DegradationReport report = core::explain_degradation(lis);
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.critical_cycle.empty());
  lis::ProtocolOptions options;
  options.periods = 10;
  const lis::ProtocolResult sim = simulate_protocol(lis, options);
  EXPECT_EQ(sim.throughput, Rational(1));  // fires unconditionally
}

TEST(EdgeCases, SelfLoopWithBigQueue) {
  lis::LisGraph lis;
  const lis::CoreId a = lis.add_core();
  lis.add_channel(a, a, 2, 3);  // pipelined self-loop, deep queue
  // Forward loop: 3 places, 1 token -> ideal 1/3; the queue backedge cycle
  // has 1 + (3 + 4) tokens over 4 places: benign. Practical == ideal.
  EXPECT_EQ(lis::ideal_mst(lis), Rational(1, 3));
  EXPECT_EQ(lis::practical_mst(lis), Rational(1, 3));
  lis::ProtocolOptions options;
  options.periods = 200;
  const lis::ProtocolResult sim = simulate_protocol(lis, options);
  ASSERT_TRUE(sim.periodic_found);
  EXPECT_EQ(sim.throughput, Rational(1, 3));
}

TEST(EdgeCases, ParserSurvivesGarbage) {
  util::Rng rng(99);
  const std::string alphabet = "core channl ->=qrs0123456789 #\nab\t";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int len = rng.uniform_int(0, 60);
    for (int i = 0; i < len; ++i) {
      text += alphabet[rng.uniform_index(alphabet.size())];
    }
    try {
      const lis::LisGraph parsed = lis::from_text(text);
      // If it parsed, it must re-serialize and re-parse identically.
      EXPECT_EQ(lis::to_text(lis::from_text(lis::to_text(parsed))), lis::to_text(parsed));
    } catch (const std::invalid_argument&) {
      // rejection with a clean error is the expected common case
    }
  }
}

TEST(EdgeCases, HowardOnDenseTiedGraphs) {
  // Dense graphs with many equal-weight edges exercise policy-iteration tie
  // handling (and its Karp fallback); all three methods must agree.
  util::Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    mg::MarkedGraph g;
    const int n = rng.uniform_int(2, 6);
    for (int i = 0; i < n; ++i) g.add_transition(mg::TransitionKind::kShell);
    for (int i = 0; i < n; ++i) {
      g.add_place(i, (i + 1) % n, 1);  // base ring
    }
    const int extra = rng.uniform_int(0, 2 * n);
    for (int e = 0; e < extra; ++e) {
      g.add_place(rng.uniform_int(0, n - 1), rng.uniform_int(0, n - 1),
                  rng.uniform_int(0, 1));
    }
    const auto karp = mg::min_cycle_mean_karp(g);
    const auto howard = mg::min_cycle_mean_howard(g);
    ASSERT_TRUE(karp.has_value());
    ASSERT_TRUE(howard.has_value());
    EXPECT_EQ(*karp, howard->mean);
    EXPECT_EQ(Rational(g.cycle_tokens(howard->cycle),
                       static_cast<std::int64_t>(howard->cycle.size())),
              *karp);
  }
}

TEST(EdgeCases, TraceRecordingSurvivesLongRuns) {
  lis::LisGraph lis = lis::make_two_core_example();
  lis::ProtocolOptions options;
  options.periods = 999;
  options.record_traces = true;
  const lis::ProtocolResult r = simulate_protocol(lis, options);
  EXPECT_EQ(r.periods, 999u);
  for (const auto& per_stage : r.traces) {
    for (const auto& trace : per_stage) {
      EXPECT_EQ(trace.size(), 999u);
    }
  }
}

}  // namespace
}  // namespace lid
