#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>

#include "core/exact.hpp"
#include "core/heuristic.hpp"
#include "core/token_deficit.hpp"
#include "util/rng.hpp"

namespace lid::core {
namespace {

TdInstance make_instance(std::vector<std::int64_t> deficits,
                         std::vector<std::vector<int>> sets) {
  TdInstance inst;
  inst.deficits = std::move(deficits);
  inst.set_members = std::move(sets);
  return inst;
}

/// Brute-force optimum by exhaustive enumeration of weight vectors bounded
/// by the max deficit (sufficient: no optimal solution puts more than the
/// max deficit on one set... actually it can, but not more than the sum; use
/// the heuristic total as a safe per-set bound).
std::int64_t brute_force_optimum(const TdInstance& inst) {
  const std::int64_t cap = solve_heuristic(inst).total;
  std::vector<std::int64_t> w(inst.num_sets(), 0);
  std::int64_t best = cap;
  std::function<void(std::size_t, std::int64_t)> rec = [&](std::size_t i, std::int64_t used) {
    if (used >= best) return;
    if (i == w.size()) {
      if (inst.is_feasible(w)) best = used;
      return;
    }
    for (std::int64_t v = 0; used + v <= best; ++v) {
      w[i] = v;
      rec(i + 1, used + v);
    }
    w[i] = 0;
  };
  rec(0, 0);
  return best;
}

TEST(TdInstance, FeasibilityCheck) {
  const TdInstance inst = make_instance({2, 1}, {{0}, {0, 1}});
  EXPECT_TRUE(inst.is_feasible({2, 1}));
  EXPECT_TRUE(inst.is_feasible({1, 1}));   // cycle 0 gets 1 + 1
  EXPECT_FALSE(inst.is_feasible({2, 0}));  // cycle 1 uncovered
  EXPECT_THROW((void)inst.is_feasible({1}), std::invalid_argument);
}

TEST(TdInstance, CoveringSets) {
  const TdInstance inst = make_instance({1, 1, 1}, {{0, 1}, {1, 2}});
  const auto covering = inst.covering_sets();
  EXPECT_EQ(covering[0], std::vector<int>({0}));
  EXPECT_EQ(covering[1], std::vector<int>({0, 1}));
  EXPECT_EQ(covering[2], std::vector<int>({1}));
}

TEST(Simplify, DropsDominatedSets) {
  // Set 0 ⊆ set 1: set 0 is redundant.
  const TdInstance inst = make_instance({1, 1}, {{0}, {0, 1}});
  const SimplifiedTd s = simplify(inst);
  // After singleton auto-assignment everything may resolve; at minimum the
  // lifted solution of the empty reduced instance must be feasible.
  TdSolution reduced{std::vector<std::int64_t>(s.reduced.num_sets(), 0), 0};
  for (std::size_t i = 0; i < s.reduced.num_sets(); ++i) {
    for (const int c : s.reduced.set_members[i]) {
      reduced.weights[i] = std::max(reduced.weights[i], s.reduced.deficits[static_cast<std::size_t>(c)]);
    }
    reduced.total += reduced.weights[i];
  }
  const TdSolution full = s.lift(reduced);
  EXPECT_TRUE(inst.is_feasible(full.weights));
}

TEST(Simplify, SingletonAutoAssignment) {
  // Cycle 0 covered only by set 0 with deficit 3.
  const TdInstance inst = make_instance({3}, {{0}});
  const SimplifiedTd s = simplify(inst);
  EXPECT_EQ(s.base_total, 3);
  EXPECT_EQ(s.base_weights[0], 3);
  EXPECT_EQ(s.reduced.num_cycles(), 0u);
}

TEST(Simplify, SingletonCommitShrinksOtherCycles) {
  // Cycle 0 only in set 0 (deficit 2); cycle 1 in sets {0, 1} (deficit 2):
  // committing 2 to set 0 satisfies cycle 1 as well.
  const TdInstance inst = make_instance({2, 2}, {{0, 1}, {1}});
  const SimplifiedTd s = simplify(inst);
  EXPECT_EQ(s.base_total, 2);
  EXPECT_EQ(s.reduced.num_cycles(), 0u);
}

TEST(Simplify, ThrowsOnUncoverableCycle) {
  const TdInstance inst = make_instance({1}, {});
  EXPECT_THROW(simplify(inst), std::invalid_argument);
}

TEST(Simplify, RejectsNonPositiveDeficits) {
  const TdInstance inst = make_instance({0}, {{0}});
  EXPECT_THROW(simplify(inst), std::invalid_argument);
}

TEST(Heuristic, MatchesPaperInitialization) {
  // Disjoint sets: the heuristic must settle on exactly the deficits.
  const TdInstance inst = make_instance({2, 5}, {{0}, {1}});
  const TdSolution s = solve_heuristic(inst);
  EXPECT_EQ(s.total, 7);
  EXPECT_EQ(s.weights, (std::vector<std::int64_t>{2, 5}));
}

TEST(Heuristic, GreedyDecrementCanBeSuboptimal) {
  // The optimum puts 3 tokens on the shared set, but the paper's sweep
  // decrements all three sets in lockstep and settles at total 4 — a known
  // illustration of the heuristic's gap (Table IV/V report it at a few %).
  const TdInstance inst = make_instance({2, 3}, {{0, 1}, {0}, {1}});
  const TdSolution s = solve_heuristic(inst);
  EXPECT_TRUE(inst.is_feasible(s.weights));
  EXPECT_EQ(s.total, 4);
  const ExactResult exact = solve_exact(inst, s);
  ASSERT_TRUE(exact.solution.has_value());
  EXPECT_EQ(exact.solution->total, 3);
}

TEST(LpRounding, RecoversTheSharedSetOptimum) {
  // The instance where the paper's sweep gets stuck at 4: the LP puts all
  // weight on the shared set and rounding keeps it — total 3, the optimum.
  const TdInstance inst = make_instance({2, 3}, {{0, 1}, {0}, {1}});
  const TdSolution rounded = solve_lp_rounding(inst);
  EXPECT_TRUE(inst.is_feasible(rounded.weights));
  EXPECT_EQ(rounded.total, 3);
}

TEST(LpRounding, EmptyInstance) {
  EXPECT_EQ(solve_lp_rounding(TdInstance{}).total, 0);
}

TEST(Exact, SolvesSmallInstanceOptimally) {
  const TdInstance inst = make_instance({1, 1, 1}, {{0, 1}, {1, 2}, {0, 2}});
  const TdSolution upper = solve_heuristic(inst);
  const ExactResult r = solve_exact(inst, upper);
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_FALSE(r.cut_off);
  EXPECT_EQ(r.solution->total, 2);  // two sets of weight 1 cover all three
  EXPECT_TRUE(inst.is_feasible(r.solution->weights));
}

TEST(Exact, EmptyInstanceIsZero) {
  const TdInstance inst;
  const ExactResult r = solve_exact(inst, TdSolution{});
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_EQ(r.solution->total, 0);
}

TEST(Exact, HonorsNodeCap) {
  // A deliberately hard instance with a tiny node budget must cut off.
  util::Rng rng(99);
  TdInstance inst;
  for (int c = 0; c < 14; ++c) inst.deficits.push_back(2);
  inst.set_members.resize(10);
  for (int c = 0; c < 14; ++c) {
    for (int k = 0; k < 4; ++k) {
      inst.set_members[rng.uniform_index(10)].push_back(c);
    }
  }
  for (auto& m : inst.set_members) {
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
  }
  const TdSolution upper = solve_heuristic(inst);
  ExactOptions options;
  options.max_nodes = 100;
  const ExactResult r = solve_exact(inst, upper, options);
  if (r.cut_off) {
    EXPECT_FALSE(r.solution.has_value());
  } else {
    ASSERT_TRUE(r.solution.has_value());
    EXPECT_LE(r.solution->total, upper.total);
  }
}

class TdRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TdRandomProperty, HeuristicFeasibleExactOptimal) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const int n_cycles = rng.uniform_int(1, 6);
    const int n_sets = rng.uniform_int(1, 5);
    TdInstance inst;
    for (int c = 0; c < n_cycles; ++c) inst.deficits.push_back(rng.uniform_int(1, 3));
    inst.set_members.resize(static_cast<std::size_t>(n_sets));
    for (int c = 0; c < n_cycles; ++c) {
      // Every cycle lands in at least one set.
      const int k = rng.uniform_int(1, n_sets);
      for (int j = 0; j < k; ++j) {
        inst.set_members[rng.uniform_index(static_cast<std::size_t>(n_sets))].push_back(c);
      }
    }
    for (auto& m : inst.set_members) {
      std::sort(m.begin(), m.end());
      m.erase(std::unique(m.begin(), m.end()), m.end());
    }
    // Ensure coverage (a cycle may have landed nowhere).
    auto covering = inst.covering_sets();
    for (int c = 0; c < n_cycles; ++c) {
      if (covering[static_cast<std::size_t>(c)].empty()) {
        inst.set_members[0].push_back(c);
      }
    }
    for (auto& m : inst.set_members) {
      std::sort(m.begin(), m.end());
      m.erase(std::unique(m.begin(), m.end()), m.end());
    }

    const TdSolution heur = solve_heuristic(inst);
    EXPECT_TRUE(inst.is_feasible(heur.weights));

    const ExactResult exact = solve_exact(inst, heur);
    ASSERT_TRUE(exact.solution.has_value());
    EXPECT_TRUE(inst.is_feasible(exact.solution->weights));
    EXPECT_LE(exact.solution->total, heur.total);
    EXPECT_EQ(exact.solution->total, brute_force_optimum(inst));

    // The heuristic on the simplified instance is also feasible when lifted.
    const SimplifiedTd s = simplify(inst);
    const TdSolution lifted = s.lift(solve_heuristic(s.reduced));
    EXPECT_TRUE(inst.is_feasible(lifted.weights));

    // Simplification never changes the exact optimum.
    const TdSolution reduced_heur = solve_heuristic(s.reduced);
    const ExactResult reduced_exact = solve_exact(s.reduced, reduced_heur);
    ASSERT_TRUE(reduced_exact.solution.has_value());
    EXPECT_EQ(reduced_exact.solution->total + s.base_total, exact.solution->total);

    // Greedy-step heuristic variant stays feasible.
    HeuristicOptions greedy;
    greedy.greedy_steps = true;
    EXPECT_TRUE(inst.is_feasible(solve_heuristic(inst, greedy).weights));
    HeuristicOptions ordered;
    ordered.order_by_weight = true;
    EXPECT_TRUE(inst.is_feasible(solve_heuristic(inst, ordered).weights));

    // LP rounding: feasible, and within one-per-set of the LP bound — in
    // particular never below the exact optimum.
    const TdSolution rounded = solve_lp_rounding(inst);
    EXPECT_TRUE(inst.is_feasible(rounded.weights));
    EXPECT_GE(rounded.total, exact.solution->total);
    EXPECT_LE(rounded.total,
              exact.solution->total + static_cast<std::int64_t>(inst.num_sets()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdRandomProperty,
                         ::testing::Values(1, 12, 123, 1234, 12345, 54321));

}  // namespace
}  // namespace lid::core
