#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "graph/cycles.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace lid::graph {
namespace {

Digraph ring(std::size_t n) {
  Digraph g(n);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    g.add_edge(v, static_cast<NodeId>((static_cast<std::size_t>(v) + 1) % n));
  }
  return g;
}

TEST(Digraph, BasicConstruction) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).src, a);
  EXPECT_EQ(g.edge(e).dst, b);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
}

TEST(Digraph, SupportsParallelEdgesAndSelfLoops) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 0);
  EXPECT_EQ(g.edges_between(0, 1).size(), 2u);
  EXPECT_EQ(g.edges_between(0, 0).size(), 1u);
}

TEST(Digraph, RejectsBadIds) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
  EXPECT_THROW((void)g.edge(3), std::invalid_argument);
  EXPECT_THROW((void)g.out_edges(-1), std::invalid_argument);
}

TEST(Digraph, Reversed) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_FALSE(r.has_edge(0, 1));
}

TEST(Scc, RingIsOneComponent) {
  const SccPartition part = scc(ring(5));
  EXPECT_EQ(part.count, 1);
  EXPECT_TRUE(part.is_cyclic(0, ring(5)));
  EXPECT_TRUE(is_strongly_connected(ring(5)));
}

TEST(Scc, DagIsAllSingletons) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  const SccPartition part = scc(g);
  EXPECT_EQ(part.count, 4);
  for (int c = 0; c < 4; ++c) EXPECT_FALSE(part.is_cyclic(c, g));
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, ComponentIndicesAreReverseTopological) {
  // Two rings joined by a bridge: the downstream ring must get the smaller
  // component index (reverse topological order).
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // ring A
  g.add_edge(2, 3);
  g.add_edge(3, 2);  // ring B
  g.add_edge(1, 2);  // A -> B
  const SccPartition part = scc(g);
  ASSERT_EQ(part.count, 2);
  EXPECT_GT(part.comp_of[0], part.comp_of[2]);
}

TEST(Scc, SelfLoopMakesSingletonCyclic) {
  Digraph g(2);
  g.add_edge(0, 0);
  const SccPartition part = scc(g);
  EXPECT_EQ(part.count, 2);
  EXPECT_TRUE(part.is_cyclic(part.comp_of[0], g));
  EXPECT_FALSE(part.is_cyclic(part.comp_of[1], g));
}

TEST(Scc, CondensationKeepsParallelInterEdges) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(1, 2);
  g.add_edge(0, 3);  // second inter-SCC edge
  const Condensation c = condense(g);
  EXPECT_EQ(c.dag.num_nodes(), 2u);
  EXPECT_EQ(c.dag.num_edges(), 2u);
  EXPECT_EQ(c.edge_origin.size(), 2u);
}

TEST(Cycles, RingHasExactlyOneCycle) {
  const CycleEnumResult r = enumerate_cycles(ring(6));
  ASSERT_EQ(r.cycles.size(), 1u);
  EXPECT_EQ(r.cycles.front().size(), 6u);
  EXPECT_FALSE(r.truncated);
}

TEST(Cycles, ParallelEdgesYieldDistinctCycles) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  // Two 2-cycles, one per parallel forward edge.
  EXPECT_EQ(enumerate_cycles(g).cycles.size(), 2u);
}

TEST(Cycles, SelfLoopIsACycle) {
  Digraph g(1);
  g.add_edge(0, 0);
  const CycleEnumResult r = enumerate_cycles(g);
  ASSERT_EQ(r.cycles.size(), 1u);
  EXPECT_EQ(r.cycles.front().size(), 1u);
  EXPECT_TRUE(has_cycle(g));
}

TEST(Cycles, CompleteGraphCount) {
  // K4 has 20 elementary cycles: 12 triangles+... exactly C(4,2)=6 2-cycles,
  // 8 3-cycles, 6 4-cycles — total 20.
  Digraph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  EXPECT_EQ(enumerate_cycles(g).cycles.size(), 20u);
}

TEST(Cycles, MaxCyclesCapTruncates) {
  Digraph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  CycleEnumOptions options;
  options.max_cycles = 5;
  const CycleEnumResult r = enumerate_cycles(g, options);
  EXPECT_EQ(r.cycles.size(), 5u);
  EXPECT_TRUE(r.truncated);
}

TEST(Cycles, PreCancelledTokenStopsEnumeration) {
  Digraph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  CycleEnumOptions options;
  options.cancel = util::CancelToken::after_ms(0.0);  // already expired
  const CycleEnumResult r = enumerate_cycles(g, options);
  EXPECT_TRUE(r.truncated);
  EXPECT_TRUE(r.cancelled);
  EXPECT_LT(r.cycles.size(), 20u);  // the full graph has 20 cycles
}

TEST(Cycles, CapTruncationIsNotReportedAsCancellation) {
  Digraph g(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  CycleEnumOptions options;
  options.max_cycles = 5;
  const CycleEnumResult r = enumerate_cycles(g, options);
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.cancelled);
}

TEST(Cycles, ForEachCycleReportsCancelledIncomplete) {
  const Digraph g = ring(6);
  int calls = 0;
  const std::function<bool(const Cycle&)> count = [&](const Cycle&) {
    ++calls;
    return true;
  };
  EXPECT_TRUE(for_each_cycle(g, count));
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(for_each_cycle(g, count, nullptr, util::CancelToken::after_ms(-1.0)));
}

TEST(Cycles, EdgeFilterRestrictsSubgraph) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  CycleEnumOptions options;
  options.edge_filter = [&](EdgeId e) { return e != a; };
  // Without 0->1 the only cycle left is {1,2}.
  EXPECT_EQ(enumerate_cycles(g, options).cycles.size(), 1u);
}

/// Brute-force elementary cycle enumeration by DFS over vertex permutations,
/// for cross-checking Johnson on small random graphs.
std::set<std::vector<EdgeId>> brute_force_cycles(const Digraph& g) {
  std::set<std::vector<EdgeId>> found;
  const auto n = static_cast<NodeId>(g.num_nodes());
  std::vector<char> visited(g.num_nodes(), 0);
  std::vector<EdgeId> path;
  std::function<void(NodeId, NodeId)> dfs = [&](NodeId start, NodeId v) {
    for (const EdgeId e : g.out_edges(v)) {
      const NodeId w = g.edge(e).dst;
      if (w == start) {
        std::vector<EdgeId> cycle = path;
        cycle.push_back(e);
        // Canonicalize by rotating the smallest edge id first.
        const auto smallest = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), smallest, cycle.end());
        found.insert(cycle);
      } else if (w > start && !visited[static_cast<std::size_t>(w)]) {
        visited[static_cast<std::size_t>(w)] = 1;
        path.push_back(e);
        dfs(start, w);
        path.pop_back();
        visited[static_cast<std::size_t>(w)] = 0;
      }
    }
  };
  for (NodeId s = 0; s < n; ++s) {
    visited.assign(g.num_nodes(), 0);
    visited[static_cast<std::size_t>(s)] = 1;
    dfs(s, s);
  }
  return found;
}

class JohnsonVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JohnsonVsBruteForce, AgreeOnRandomMultigraphs) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.uniform_int(2, 7);
    Digraph g(static_cast<std::size_t>(n));
    const int edges = rng.uniform_int(1, 2 * n);
    for (int e = 0; e < edges; ++e) {
      g.add_edge(rng.uniform_int(0, n - 1), rng.uniform_int(0, n - 1));
    }
    const auto expected = brute_force_cycles(g);
    const CycleEnumResult r = enumerate_cycles(g);
    std::set<std::vector<EdgeId>> got;
    for (Cycle c : r.cycles) {
      const auto smallest = std::min_element(c.begin(), c.end());
      std::rotate(c.begin(), smallest, c.end());
      const bool inserted = got.insert(c).second;
      EXPECT_TRUE(inserted) << "duplicate cycle emitted";
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JohnsonVsBruteForce,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(Topology, TreeClassification) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  EXPECT_TRUE(is_underlying_forest(g));
  EXPECT_FALSE(has_reconvergent_paths(g));
  EXPECT_EQ(classify(g), TopologyClass::kTree);
}

TEST(Topology, JoinIsStillTreeClass) {
  // a->c, b->c: converging edges, but no undirected cycle.
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  EXPECT_EQ(classify(g), TopologyClass::kTree);
}

TEST(Topology, DiamondIsGeneral) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_TRUE(has_reconvergent_paths(g));
  EXPECT_EQ(classify(g), TopologyClass::kGeneral);
}

TEST(Topology, MixedOrientationUndirectedCycleIsReconvergent) {
  // a->b, c->b, c->d, a->d: an undirected cycle with no two directed paths
  // sharing endpoints — still reconvergent per the paper's definition.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  EXPECT_TRUE(has_reconvergent_paths(g));
  EXPECT_EQ(classify(g), TopologyClass::kGeneral);
}

TEST(Topology, ParallelChannelsAreReconvergent) {
  // The Fig. 1 topology: two channels A -> B.
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_TRUE(has_reconvergent_paths(g));
}

TEST(Topology, RingIsCactusScc) {
  EXPECT_EQ(classify(ring(5)), TopologyClass::kCactusScc);
  EXPECT_FALSE(has_reconvergent_paths(ring(5)));
}

TEST(Topology, TwoCyclesSharingAVertexAreCactus) {
  // Figure-eight: cycles {0,1,2} and {0,3,4} sharing articulation point 0.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  EXPECT_EQ(classify(g), TopologyClass::kCactusScc);
  const std::vector<NodeId> arts = articulation_points(g);
  ASSERT_EQ(arts.size(), 1u);
  EXPECT_EQ(arts.front(), 0);
}

TEST(Topology, TwoCyclesSharingAnEdgeAreGeneral) {
  // Cycles {0,1,2} and {0,1,3} share edge 0->1: reconvergent.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(1, 3);
  g.add_edge(3, 0);
  EXPECT_TRUE(has_reconvergent_paths(g));
  EXPECT_EQ(classify(g), TopologyClass::kGeneral);
}

TEST(Topology, NetworkOfCactusSccs) {
  // Two rings joined by one channel: cactus SCCs on a forest.
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(classify(g), TopologyClass::kNetworkOfCactusSccs);
}

TEST(Topology, SccIsCactusHelper) {
  const Digraph r = ring(4);
  const SccPartition part = scc(r);
  EXPECT_TRUE(scc_is_cactus(r, part.members.front()));

  Digraph g(3);  // triangle plus a chord: not cactus
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 2);
  const SccPartition part2 = scc(g);
  EXPECT_FALSE(scc_is_cactus(g, part2.members.front()));
}

TEST(Topology, UndirectedTwoCycleFromOppositeEdgesIsDirectedCycle) {
  // u->v and v->u form a directed 2-cycle: cactus, not reconvergent.
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(has_reconvergent_paths(g));
  EXPECT_EQ(classify(g), TopologyClass::kCactusScc);
}

TEST(Topology, ArticulationPointsOfChain) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<NodeId> arts = articulation_points(g);
  ASSERT_EQ(arts.size(), 1u);
  EXPECT_EQ(arts.front(), 1);
}

TEST(Topology, ParallelEdgesDoNotArticulate) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_TRUE(articulation_points(g).empty());
}

/// Brute-force articulation points: a vertex articulates iff removing it
/// increases the number of connected components of the underlying graph.
std::vector<NodeId> brute_force_articulation(const Digraph& g) {
  const auto n = static_cast<NodeId>(g.num_nodes());
  const auto components_without = [&](NodeId removed) {
    std::vector<int> comp(g.num_nodes(), -1);
    int count = 0;
    for (NodeId s = 0; s < n; ++s) {
      if (s == removed || comp[static_cast<std::size_t>(s)] != -1) continue;
      std::vector<NodeId> stack{s};
      comp[static_cast<std::size_t>(s)] = count;
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        const auto visit = [&](NodeId w) {
          if (w != removed && comp[static_cast<std::size_t>(w)] == -1) {
            comp[static_cast<std::size_t>(w)] = count;
            stack.push_back(w);
          }
        };
        for (const EdgeId e : g.out_edges(v)) visit(g.edge(e).dst);
        for (const EdgeId e : g.in_edges(v)) visit(g.edge(e).src);
      }
      ++count;
    }
    return count;
  };
  const int base = components_without(static_cast<NodeId>(-1));
  std::vector<NodeId> result;
  for (NodeId v = 0; v < n; ++v) {
    // Removing an isolated vertex reduces the count by one; an articulation
    // point strictly increases it net of the removed vertex itself.
    bool isolated = g.out_degree(v) == 0 && g.in_degree(v) == 0;
    if (!isolated && components_without(v) > base) result.push_back(v);
  }
  return result;
}

class ArticulationCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArticulationCrossCheck, AgreesWithBruteForceOnRandomGraphs) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const int n = rng.uniform_int(2, 9);
    Digraph g(static_cast<std::size_t>(n));
    const int edges = rng.uniform_int(1, 2 * n);
    for (int e = 0; e < edges; ++e) {
      const NodeId u = rng.uniform_int(0, n - 1);
      const NodeId v = rng.uniform_int(0, n - 1);
      if (u != v) g.add_edge(u, v);
    }
    std::vector<NodeId> fast = articulation_points(g);
    std::vector<NodeId> brute = brute_force_articulation(g);
    std::sort(fast.begin(), fast.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(fast, brute);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArticulationCrossCheck, ::testing::Values(91, 92, 93, 94));

class CondensationProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CondensationProperties, DagAndOriginMapHold) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const int n = rng.uniform_int(2, 10);
    Digraph g(static_cast<std::size_t>(n));
    const int edges = rng.uniform_int(0, 3 * n);
    for (int e = 0; e < edges; ++e) {
      g.add_edge(rng.uniform_int(0, n - 1), rng.uniform_int(0, n - 1));
    }
    const Condensation c = condense(g);
    // The condensation is acyclic.
    EXPECT_FALSE(has_cycle(c.dag));
    // Every condensation edge maps to an inter-SCC edge of g with matching
    // component endpoints.
    for (EdgeId e = 0; e < static_cast<EdgeId>(c.dag.num_edges()); ++e) {
      const Edge orig = g.edge(c.edge_origin[static_cast<std::size_t>(e)]);
      EXPECT_EQ(c.dag.edge(e).src, c.partition.comp_of[static_cast<std::size_t>(orig.src)]);
      EXPECT_EQ(c.dag.edge(e).dst, c.partition.comp_of[static_cast<std::size_t>(orig.dst)]);
    }
    // Reverse-topological index guarantee.
    for (EdgeId e = 0; e < static_cast<EdgeId>(g.num_edges()); ++e) {
      const Edge edge = g.edge(e);
      const int cs = c.partition.comp_of[static_cast<std::size_t>(edge.src)];
      const int cd = c.partition.comp_of[static_cast<std::size_t>(edge.dst)];
      if (cs != cd) {
        EXPECT_GT(cs, cd);
      }
    }
    // Components partition the vertex set.
    std::size_t total = 0;
    for (const auto& members : c.partition.members) total += members.size();
    EXPECT_EQ(total, g.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CondensationProperties, ::testing::Values(95, 96, 97));

}  // namespace
}  // namespace lid::graph
