// Exhaustive validation on ALL small topologies: every simple digraph on
// three cores (64 edge subsets), with a relay station tried on each channel
// in turn. For each configuration every cross-cutting invariant must hold —
// a complete sweep of the model's smallest corner.
#include <gtest/gtest.h>

#include "core/queue_sizing.hpp"
#include "graph/scc.hpp"
#include "graph/topology.hpp"
#include "lis/lis_graph.hpp"
#include "lis/protocol_sim.hpp"
#include "mg/simulate.hpp"
#include "util/rational.hpp"

namespace lid {
namespace {

using util::Rational;

/// All ordered pairs (i, j), i != j, over three cores.
constexpr std::pair<int, int> kPairs[] = {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}};

lis::LisGraph build(unsigned mask, int rs_channel) {
  lis::LisGraph lis;
  for (int i = 0; i < 3; ++i) lis.add_core();
  int channel = 0;
  for (int bit = 0; bit < 6; ++bit) {
    if ((mask >> bit & 1u) == 0) continue;
    lis.add_channel(kPairs[bit].first, kPairs[bit].second,
                    channel == rs_channel ? 1 : 0);
    ++channel;
  }
  return lis;
}

void check_invariants(const lis::LisGraph& lis) {
  const Rational ideal = lis::ideal_mst(lis);
  const Rational practical = lis::practical_mst(lis);
  // Backpressure never helps.
  ASSERT_LE(practical, ideal);
  // Table II: protected topologies never degrade at q = 1.
  const graph::TopologyClass cls = graph::classify(lis.structure());
  if (cls != graph::TopologyClass::kGeneral) {
    ASSERT_EQ(practical, ideal) << "protected topology degraded";
  }
  // The simulator agrees with the analysis. Every transition settles to the
  // same rate only in a strongly connected doubled graph (disconnected cores
  // free-run at rate 1), so anchor the reference there.
  const lis::Expansion doubled = lis::expand_doubled(lis);
  if (graph::is_strongly_connected(doubled.graph.structure())) {
    const mg::SimulationResult sim = mg::simulate(doubled.graph, 5000);
    ASSERT_TRUE(sim.periodic_found);
    ASSERT_EQ(sim.throughput, Rational::min(Rational(1), practical));
  }
  // Queue sizing restores the ideal MST, exactly.
  core::QsOptions options;
  options.method = core::QsMethod::kExact;
  const core::QsReport report = core::size_queues(lis, options);
  ASSERT_TRUE(report.exact->finished);
  ASSERT_EQ(report.achieved_mst, ideal);
}

TEST(ExhaustiveSmall, AllThreeCoreTopologiesWithoutRelayStations) {
  for (unsigned mask = 0; mask < 64; ++mask) {
    SCOPED_TRACE("mask=" + std::to_string(mask));
    check_invariants(build(mask, -1));
  }
}

TEST(ExhaustiveSmall, AllThreeCoreTopologiesWithOneRelayStation) {
  for (unsigned mask = 1; mask < 64; ++mask) {
    const int channels = __builtin_popcount(mask);
    for (int rs = 0; rs < channels; ++rs) {
      SCOPED_TRACE("mask=" + std::to_string(mask) + " rs_channel=" + std::to_string(rs));
      check_invariants(build(mask, rs));
    }
  }
}

TEST(ExhaustiveSmall, AllTwoCoreMultigraphsUpToThreeParallelChannels) {
  // Parallel channels are first-class in a LIS (Fig. 1); sweep every split
  // of up to three channels between the two directions, with a relay
  // station on each channel in turn.
  for (int fwd = 0; fwd <= 3; ++fwd) {
    for (int back = 0; back <= 3 - fwd; ++back) {
      const int total = fwd + back;
      for (int rs = -1; rs < total; ++rs) {
        lis::LisGraph lis;
        lis.add_core();
        lis.add_core();
        int channel = 0;
        for (int i = 0; i < fwd; ++i, ++channel) {
          lis.add_channel(0, 1, channel == rs ? 1 : 0);
        }
        for (int i = 0; i < back; ++i, ++channel) {
          lis.add_channel(1, 0, channel == rs ? 1 : 0);
        }
        SCOPED_TRACE("fwd=" + std::to_string(fwd) + " back=" + std::to_string(back) +
                     " rs=" + std::to_string(rs));
        check_invariants(lis);
      }
    }
  }
}

}  // namespace
}  // namespace lid
