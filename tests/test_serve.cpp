// The lid_serve subsystem: wire protocol, in-process server round trips,
// backpressure (overloaded / deadline_exceeded), graceful drain, and the
// determinism contract (server response payloads byte-identical to direct
// protocol execution).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/histogram.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace lid;

// ---------------------------------------------------------------------------
// Protocol unit tests (no sockets).

TEST(Protocol, ParsesIdVerbAndDeadline) {
  const Result<serve::Request> r =
      serve::parse_request(R"({"id": 7, "verb": "ping", "deadline_ms": 250})");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->has_id);
  EXPECT_EQ(r->id, "7");
  EXPECT_EQ(r->verb, "ping");
  EXPECT_DOUBLE_EQ(r->deadline_ms, 250.0);

  const Result<serve::Request> anonymous = serve::parse_request(R"({"verb": "ping"})");
  ASSERT_TRUE(anonymous);
  EXPECT_FALSE(anonymous->has_id);
  EXPECT_EQ(serve::request_id_json(*anonymous), "null");
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_EQ(serve::parse_request("not json").error().code, ErrorCode::kParse);
  EXPECT_EQ(serve::parse_request("42").error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"id": true, "verb": "ping"})").error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"id": "1"})").error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"verb": "ping", "deadline_ms": -1})").error().code,
            ErrorCode::kInvalidArgument);
}

serve::Outcome run_line(const std::string& line, const serve::ExecLimits& limits = {}) {
  const Result<serve::Request> request = serve::parse_request(line);
  EXPECT_TRUE(request) << line;
  return serve::execute(*request, limits);
}

TEST(Protocol, ExecutesEveryVerb) {
  const serve::Outcome pong = run_line(R"({"verb": "ping"})");
  ASSERT_TRUE(pong.ok);
  EXPECT_EQ(pong.payload, R"({"pong":true})");

  const serve::Outcome generated = run_line(R"({"verb": "generate", "v": 8, "s": 2, "seed": 3})");
  ASSERT_TRUE(generated.ok);
  EXPECT_NE(generated.payload.find("\"netlist\""), std::string::npos);

  // Feed the generated netlist through every netlist-consuming verb.
  const util::JsonParse parsed = util::json_parse(generated.payload);
  ASSERT_TRUE(parsed.ok);
  const std::string netlist = parsed.value.find("netlist")->as_string();
  util::JsonWriter request;
  request.begin_object().key("verb").value("analyze").key("netlist").value(netlist).end_object();
  const serve::Outcome analyzed = run_line(request.str());
  ASSERT_TRUE(analyzed.ok) << analyzed.error_message;
  EXPECT_NE(analyzed.payload.find("\"theta_ideal\""), std::string::npos);

  for (const char* verb : {"parse", "size-queues", "insert-rs", "rate-safety"}) {
    util::JsonWriter w;
    w.begin_object().key("verb").value(verb).key("netlist").value(netlist).end_object();
    const serve::Outcome outcome = run_line(w.str());
    EXPECT_TRUE(outcome.ok) << verb << ": " << outcome.error_message;
  }

  const serve::Outcome slept = run_line(R"({"verb": "sleep", "ms": 1})");
  ASSERT_TRUE(slept.ok);
  EXPECT_EQ(slept.payload, R"({"slept_ms":1})");
}

TEST(Protocol, ErrorsCarryWireCodes) {
  EXPECT_EQ(run_line(R"({"verb": "no-such-verb"})").error_code, serve::codes::kUnknownVerb);
  EXPECT_EQ(run_line(R"({"verb": "analyze"})").error_code, serve::codes::kInvalidArgument);
  EXPECT_EQ(run_line(R"({"verb": "analyze", "netlist": "core A\nchannel A -> "})").error_code,
            serve::codes::kParse);
  EXPECT_EQ(run_line(R"({"verb": "generate", "v": -3})").error_code,
            serve::codes::kInvalidArgument);
  EXPECT_EQ(run_line(R"({"verb": "sleep", "ms": 99999})").error_code,
            serve::codes::kInvalidArgument);

  serve::ExecLimits tight;
  tight.max_netlist_bytes = 8;
  EXPECT_EQ(run_line(R"({"verb": "analyze", "netlist": "core A\ncore B\n"})", tight).error_code,
            serve::codes::kTooLarge);
}

TEST(Protocol, ResponseLineRoundTripsThroughExtractResult) {
  const Result<serve::Request> request = serve::parse_request(R"({"id": "a", "verb": "ping"})");
  ASSERT_TRUE(request);
  const serve::Outcome outcome = serve::execute(*request);
  const std::string line = serve::response_line(*request, outcome, 1.25, 0.5);
  const Result<std::string> result = serve::extract_result(line);
  ASSERT_TRUE(result);
  EXPECT_EQ(*result, outcome.payload);

  const std::string failure =
      serve::error_line("\"a\"", "analyze", serve::codes::kOverloaded, "queue full");
  const Result<std::string> rejected = serve::extract_result(failure);
  ASSERT_FALSE(rejected);
  EXPECT_NE(rejected.error().message.find("overloaded"), std::string::npos);
}

TEST(Histogram, QuantilesAreMonotone) {
  serve::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 0.01);
  const double p50 = h.quantile_ms(0.50);
  const double p95 = h.quantile_ms(0.95);
  const double p99 = h.quantile_ms(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NE(h.to_json().find("\"count\":1000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// In-process server tests over real sockets.

serve::Client connect_or_die(const serve::Server& server) {
  Result<serve::Client> client = serve::Client::connect_tcp("127.0.0.1", server.port());
  EXPECT_TRUE(client) << (client ? "" : client.error().to_string());
  return std::move(client).value();
}

serve::ServerOptions tcp_options(int workers) {
  serve::ServerOptions options;
  options.tcp_port = 0;  // kernel-assigned
  options.workers = workers;
  return options;
}

std::string netlist_fixture(std::uint64_t seed) {
  GenerateOptions options;
  options.cores = 12;
  options.sccs = 3;
  options.extra_cycles = 2;
  options.relay_stations = 4;
  options.seed = seed;
  const Result<Instance> instance = generate(options);
  EXPECT_TRUE(instance);
  const Result<std::string> text = netlist_text(*instance);
  EXPECT_TRUE(text);
  return *text;
}

TEST(Server, RoundTripsEveryVerbOverTcp) {
  serve::Server server(tcp_options(2));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  const std::string netlist = netlist_fixture(11);
  std::vector<std::string> lines = {R"({"id": "p", "verb": "ping"})",
                                    R"({"id": "g", "verb": "generate", "v": 6, "s": 2})",
                                    R"({"id": "z", "verb": "sleep", "ms": 1})",
                                    R"({"id": "t", "verb": "stats"})"};
  for (const char* verb : {"parse", "analyze", "size-queues", "insert-rs", "rate-safety"}) {
    util::JsonWriter w;
    w.begin_object().key("id").value(verb).key("verb").value(verb);
    w.key("netlist").value(netlist).end_object();
    lines.push_back(w.str());
  }
  for (const std::string& line : lines) {
    const Result<std::string> response = client.call(line);
    ASSERT_TRUE(response) << line;
    const Result<std::string> result = serve::extract_result(*response);
    EXPECT_TRUE(result) << line << " -> " << *response;
  }
  server.stop();
}

TEST(Server, AnswersProtocolErrorsWithoutExecuting) {
  serve::ServerOptions options = tcp_options(1);
  options.max_request_bytes = 200;
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  Result<std::string> response = client.call("this is not json");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find(serve::codes::kParse), std::string::npos);

  response = client.call(R"({"id": "u", "verb": "frobnicate"})");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find(serve::codes::kUnknownVerb), std::string::npos);

  // A request line over max_request_bytes is rejected with `too_large`
  // without buffering the rest of the line.
  const std::string huge =
      R"({"id": "h", "verb": "analyze", "netlist": ")" + std::string(500, 'x') + R"("})";
  response = client.call(huge);
  ASSERT_TRUE(response);
  EXPECT_NE(response->find(serve::codes::kTooLarge), std::string::npos);

  // The connection and server survive all of the above.
  response = client.call(R"({"id": "p", "verb": "ping"})");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find("\"pong\":true"), std::string::npos);
  server.stop();
}

TEST(Server, ShedsLoadWhenTheAdmissionQueueIsFull) {
  serve::ServerOptions options = tcp_options(1);
  options.queue_capacity = 1;
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  // Occupy the single worker, then flood: with capacity 1 at most two of the
  // pings can ever be admitted; the rest must be shed immediately (not
  // queued, not blocking the reader).
  const int kPings = 10;
  ASSERT_TRUE(client.send_line(R"({"id": "busy", "verb": "sleep", "ms": 1000})"));
  for (int i = 0; i < kPings; ++i) {
    ASSERT_TRUE(client.send_line(R"({"id": "f)" + std::to_string(i) + R"(", "verb": "ping"})"));
  }

  // All 11 responses arrive (nothing blocks, nothing is dropped); at least
  // kPings - 2 pings are shed, and the shed responses come back while the
  // worker is still sleeping — they never wait behind it.
  util::Timer timer;
  int overloaded = 0;
  double sheds_done_ms = -1.0;
  for (int i = 0; i < kPings + 1; ++i) {
    const Result<std::string> response = client.recv_line();
    ASSERT_TRUE(response);
    if (response->find(serve::codes::kOverloaded) != std::string::npos) {
      ++overloaded;
      if (overloaded == kPings - 2) sheds_done_ms = timer.elapsed_ms();
    }
  }
  EXPECT_GE(overloaded, kPings - 2);
  EXPECT_LT(sheds_done_ms, 900.0) << "shedding must not wait for the busy worker";

  const Result<std::string> stats = client.call(R"({"id": "s", "verb": "stats"})");
  ASSERT_TRUE(stats);
  EXPECT_NE(stats->find("\"shed\":" + std::to_string(overloaded)), std::string::npos) << *stats;
  server.stop();
}

TEST(Server, ExpiredDeadlinesAreAnsweredWithoutExecuting) {
  serve::Server server(tcp_options(1));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  // The worker is busy for 300 ms; the second request allows only 1 ms of
  // queueing, so it must come back `deadline_exceeded`, unexecuted.
  ASSERT_TRUE(client.send_line(R"({"id": "busy", "verb": "sleep", "ms": 300})"));
  ASSERT_TRUE(client.send_line(R"({"id": "late", "verb": "ping", "deadline_ms": 1})"));

  bool saw_deadline = false;
  for (int i = 0; i < 2; ++i) {
    const Result<std::string> response = client.recv_line();
    ASSERT_TRUE(response);
    if (response->find("\"late\"") != std::string::npos) {
      EXPECT_NE(response->find(serve::codes::kDeadlineExceeded), std::string::npos) << *response;
      EXPECT_EQ(response->find("\"pong\""), std::string::npos) << "must not execute";
      saw_deadline = true;
    }
  }
  EXPECT_TRUE(saw_deadline);
  server.stop();
}

TEST(Server, DrainCompletesAdmittedRequests) {
  serve::Server server(tcp_options(1));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  const std::string netlist = netlist_fixture(13);
  ASSERT_TRUE(client.send_line(R"({"id": "busy", "verb": "sleep", "ms": 100})"));
  for (int i = 0; i < 3; ++i) {
    util::JsonWriter w;
    w.begin_object().key("id").value("q" + std::to_string(i));
    w.key("verb").value("analyze").key("netlist").value(netlist).end_object();
    ASSERT_TRUE(client.send_line(w.str()));
  }
  // Give the reader a moment to admit all four, then initiate the drain the
  // same way the SIGTERM handler does.
  const Result<std::string> first = client.recv_line();  // the sleep: all admitted by now
  ASSERT_TRUE(first);
  EXPECT_NE(first->find("\"busy\""), std::string::npos);
  server.request_stop();

  // Every admitted request still gets its (successful) response.
  for (int i = 0; i < 3; ++i) {
    const Result<std::string> response = client.recv_line();
    ASSERT_TRUE(response) << "response lost in drain";
    EXPECT_TRUE(serve::extract_result(*response)) << *response;
  }
  server.wait();
}

// The determinism contract: a response payload observed through the server
// equals the payload of executing the same request directly, byte for byte,
// regardless of worker count (lid_selfcheck invariant 8 re-checks this on
// random instances).
TEST(Server, PayloadsAreByteIdenticalToDirectExecution) {
  const std::string netlist = netlist_fixture(29);
  std::vector<std::string> lines = {R"({"verb": "generate", "v": 10, "s": 3, "seed": 5})"};
  for (const char* verb : {"parse", "analyze", "size-queues", "insert-rs", "rate-safety"}) {
    util::JsonWriter w;
    w.begin_object().key("verb").value(verb).key("netlist").value(netlist).end_object();
    lines.push_back(w.str());
  }

  for (const int workers : {1, 4}) {
    serve::Server server(tcp_options(workers));
    ASSERT_TRUE(server.start());
    serve::Client client = connect_or_die(server);
    for (const std::string& line : lines) {
      const serve::Outcome direct = run_line(line);
      ASSERT_TRUE(direct.ok) << line;
      const Result<std::string> response = client.call(line);
      ASSERT_TRUE(response);
      const Result<std::string> served = serve::extract_result(*response);
      ASSERT_TRUE(served) << *response;
      EXPECT_EQ(*served, direct.payload) << "workers=" << workers << ": " << line;
    }
    server.stop();
  }
}

TEST(Server, UnixSocketEndToEnd) {
  serve::ServerOptions options;
  options.unix_socket = ::testing::TempDir() + "lid_serve_test.sock";
  options.workers = 2;
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  Result<serve::Client> connected = serve::Client::connect_unix(options.unix_socket);
  ASSERT_TRUE(connected) << (connected ? "" : connected.error().to_string());
  serve::Client client = std::move(connected).value();
  const Result<std::string> response = client.call(R"({"id": 1, "verb": "ping"})");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find("\"pong\":true"), std::string::npos);
  client.close();
  server.stop();

  // A second server on the same path recovers the stale socket file.
  serve::Server again(options);
  EXPECT_TRUE(again.start());
  again.stop();
}

TEST(Server, StatsReportConfigurationAndCounters) {
  serve::ServerOptions options = tcp_options(3);
  options.queue_capacity = 17;
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);
  ASSERT_TRUE(client.call(R"({"verb": "ping"})"));
  const Result<std::string> response = client.call(R"({"id": "s", "verb": "stats"})");
  ASSERT_TRUE(response);
  const Result<std::string> stats = serve::extract_result(*response);
  ASSERT_TRUE(stats);
  EXPECT_NE(stats->find("\"workers\":3"), std::string::npos);
  EXPECT_NE(stats->find("\"queue_capacity\":17"), std::string::npos);
  EXPECT_NE(stats->find("\"verb_ping\":1"), std::string::npos);
  EXPECT_NE(stats->find("\"latency\""), std::string::npos);
  server.stop();
}

}  // namespace
