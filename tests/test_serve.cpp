// The lid_serve subsystem: wire protocol, in-process server round trips,
// backpressure (overloaded / deadline_exceeded), graceful drain, the
// determinism contract (server response payloads byte-identical to direct
// protocol execution), and the robustness stack — cooperative cancellation,
// exact→heuristic degradation, the retrying client, and fault injection
// (docs/robustness.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/faults.hpp"
#include "serve/histogram.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace lid;

// ---------------------------------------------------------------------------
// Protocol unit tests (no sockets).

TEST(Protocol, ParsesIdVerbAndDeadline) {
  const Result<serve::Request> r =
      serve::parse_request(R"({"id": 7, "verb": "ping", "deadline_ms": 250})");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->has_id);
  EXPECT_EQ(r->id, "7");
  EXPECT_EQ(r->verb, "ping");
  EXPECT_DOUBLE_EQ(r->deadline_ms, 250.0);

  const Result<serve::Request> anonymous = serve::parse_request(R"({"verb": "ping"})");
  ASSERT_TRUE(anonymous);
  EXPECT_FALSE(anonymous->has_id);
  EXPECT_EQ(serve::request_id_json(*anonymous), "null");
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_EQ(serve::parse_request("not json").error().code, ErrorCode::kParse);
  EXPECT_EQ(serve::parse_request("42").error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"id": true, "verb": "ping"})").error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"id": "1"})").error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(serve::parse_request(R"({"verb": "ping", "deadline_ms": -1})").error().code,
            ErrorCode::kInvalidArgument);
}

serve::Outcome run_line(const std::string& line, const serve::ExecLimits& limits = {}) {
  const Result<serve::Request> request = serve::parse_request(line);
  EXPECT_TRUE(request) << line;
  return serve::execute(*request, limits);
}

TEST(Protocol, ExecutesEveryVerb) {
  const serve::Outcome pong = run_line(R"({"verb": "ping"})");
  ASSERT_TRUE(pong.ok);
  EXPECT_EQ(pong.payload, R"({"pong":true})");

  const serve::Outcome generated = run_line(R"({"verb": "generate", "v": 8, "s": 2, "seed": 3})");
  ASSERT_TRUE(generated.ok);
  EXPECT_NE(generated.payload.find("\"netlist\""), std::string::npos);

  // Feed the generated netlist through every netlist-consuming verb.
  const util::JsonParse parsed = util::json_parse(generated.payload);
  ASSERT_TRUE(parsed.ok);
  const std::string netlist = parsed.value.find("netlist")->as_string();
  util::JsonWriter request;
  request.begin_object().key("verb").value("analyze").key("netlist").value(netlist).end_object();
  const serve::Outcome analyzed = run_line(request.str());
  ASSERT_TRUE(analyzed.ok) << analyzed.error_message;
  EXPECT_NE(analyzed.payload.find("\"theta_ideal\""), std::string::npos);

  for (const char* verb : {"parse", "size-queues", "insert-rs", "rate-safety", "lint"}) {
    util::JsonWriter w;
    w.begin_object().key("verb").value(verb).key("netlist").value(netlist).end_object();
    const serve::Outcome outcome = run_line(w.str());
    EXPECT_TRUE(outcome.ok) << verb << ": " << outcome.error_message;
  }

  const serve::Outcome slept = run_line(R"({"verb": "sleep", "ms": 1})");
  ASSERT_TRUE(slept.ok);
  EXPECT_EQ(slept.payload, R"({"slept_ms":1})");
}

TEST(Protocol, ErrorsCarryWireCodes) {
  EXPECT_EQ(run_line(R"({"verb": "no-such-verb"})").error_code, serve::codes::kUnknownVerb);
  EXPECT_EQ(run_line(R"({"verb": "analyze"})").error_code, serve::codes::kInvalidArgument);
  EXPECT_EQ(run_line(R"({"verb": "analyze", "netlist": "core A\nchannel A -> "})").error_code,
            serve::codes::kParse);
  EXPECT_EQ(run_line(R"({"verb": "generate", "v": -3})").error_code,
            serve::codes::kInvalidArgument);
  EXPECT_EQ(run_line(R"({"verb": "sleep", "ms": 99999})").error_code,
            serve::codes::kInvalidArgument);

  serve::ExecLimits tight;
  tight.max_netlist_bytes = 8;
  EXPECT_EQ(run_line(R"({"verb": "analyze", "netlist": "core A\ncore B\n"})", tight).error_code,
            serve::codes::kTooLarge);
}

TEST(Protocol, LintVerbReportsDiagnosticsInsteadOfFailing) {
  // A netlist that parses but deadlocks: the lint verb *succeeds* — the
  // findings ride in the payload rather than an error envelope.
  const char* deadlocked = "core A\ncore B\nchannel A -> B q=0\nchannel B -> A q=0\n";
  util::JsonWriter w;
  w.begin_object().key("verb").value("lint").key("netlist").value(deadlocked).end_object();
  const serve::Outcome outcome = run_line(w.str());
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  const util::JsonParse doc = util::json_parse(outcome.payload);
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(doc.value.find("errors")->as_int(), 3);
  EXPECT_FALSE(doc.value.find("clean")->as_bool(true));
  EXPECT_EQ(doc.value.find("diagnostics")->at(0).find("code")->as_string(), "L001");

  // errors_only trims the run to the pre-flight tier.
  util::JsonWriter eo;
  eo.begin_object().key("verb").value("lint").key("netlist").value(deadlocked);
  eo.key("errors_only").value(true).end_object();
  const serve::Outcome trimmed = run_line(eo.str());
  ASSERT_TRUE(trimmed.ok);
  const util::JsonParse trimmed_doc = util::json_parse(trimmed.payload);
  ASSERT_TRUE(trimmed_doc.ok);
  EXPECT_EQ(trimmed_doc.value.find("warnings")->as_int(), 0);

  // A healthy netlist comes back clean.
  util::JsonWriter c;
  c.begin_object().key("verb").value("lint");
  c.key("netlist").value("core A\ncore B\nchannel A -> B\nchannel B -> A\n").end_object();
  const serve::Outcome clean = run_line(c.str());
  ASSERT_TRUE(clean.ok);
  const util::JsonParse clean_doc = util::json_parse(clean.payload);
  ASSERT_TRUE(clean_doc.ok);
  EXPECT_TRUE(clean_doc.value.find("clean")->as_bool(false));
}

TEST(Protocol, LintVerbParsesRationalTargetsAndRejectsBadOnes) {
  // Fig. 1's shape (parallel A -> B channels, one relay station): practical
  // MST 2/3 misses target 1, so the L2xx tier fires.
  const char* fig1 = "core A\ncore B\nchannel A -> B rs=1\nchannel A -> B\n";
  util::JsonWriter w;
  w.begin_object().key("verb").value("lint").key("netlist").value(fig1);
  w.key("target").value("1").end_object();
  const serve::Outcome outcome = run_line(w.str());
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_NE(outcome.payload.find("\"L201\""), std::string::npos);

  // "2/3" is exactly the practical MST: the target is met, L201 stays quiet.
  util::JsonWriter met;
  met.begin_object().key("verb").value("lint").key("netlist").value(fig1);
  met.key("target").value("2/3").end_object();
  const serve::Outcome satisfied = run_line(met.str());
  ASSERT_TRUE(satisfied.ok);
  EXPECT_EQ(satisfied.payload.find("\"L201\""), std::string::npos);

  for (const char* bad : {"abc", "1/0", "2.5", "-1"}) {
    util::JsonWriter b;
    b.begin_object().key("verb").value("lint").key("netlist").value(fig1);
    b.key("target").value(bad).end_object();
    const serve::Outcome rejected = run_line(b.str());
    EXPECT_FALSE(rejected.ok) << bad;
    EXPECT_EQ(rejected.error_code, serve::codes::kInvalidArgument) << bad;
  }
}

TEST(Protocol, AnalyzeOnDeadlockedNetlistReturnsTheLintWireCode) {
  // The pre-flight rejection crosses the wire as a structured error with its
  // own code — previously this netlist would have tripped a LID_CHECK abort.
  const char* deadlocked = "core A\ncore B\nchannel A -> B q=0\nchannel B -> A q=0\n";
  for (const char* verb : {"analyze", "size-queues"}) {
    util::JsonWriter w;
    w.begin_object().key("verb").value(verb).key("netlist").value(deadlocked).end_object();
    const serve::Outcome outcome = run_line(w.str());
    EXPECT_FALSE(outcome.ok) << verb;
    EXPECT_EQ(outcome.error_code, serve::codes::kLint) << verb;
    EXPECT_NE(outcome.error_message.find("L001"), std::string::npos) << verb;
  }
}

TEST(Protocol, ResponseLineRoundTripsThroughExtractResult) {
  const Result<serve::Request> request = serve::parse_request(R"({"id": "a", "verb": "ping"})");
  ASSERT_TRUE(request);
  const serve::Outcome outcome = serve::execute(*request);
  const std::string line = serve::response_line(*request, outcome, 1.25, 0.5);
  const Result<std::string> result = serve::extract_result(line);
  ASSERT_TRUE(result);
  EXPECT_EQ(*result, outcome.payload);

  const std::string failure =
      serve::error_line("\"a\"", "analyze", serve::codes::kOverloaded, "queue full");
  const Result<std::string> rejected = serve::extract_result(failure);
  ASSERT_FALSE(rejected);
  EXPECT_NE(rejected.error().message.find("overloaded"), std::string::npos);
}

TEST(Histogram, QuantilesAreMonotone) {
  serve::LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 0.01);
  const double p50 = h.quantile_ms(0.50);
  const double p95 = h.quantile_ms(0.95);
  const double p99 = h.quantile_ms(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NE(h.to_json().find("\"count\":1000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// In-process server tests over real sockets.

serve::Client connect_or_die(const serve::Server& server) {
  Result<serve::Client> client = serve::Client::connect_tcp("127.0.0.1", server.port());
  EXPECT_TRUE(client) << (client ? "" : client.error().to_string());
  return std::move(client).value();
}

serve::ServerOptions tcp_options(int workers) {
  serve::ServerOptions options;
  options.tcp_port = 0;  // kernel-assigned
  options.workers = workers;
  return options;
}

/// A system whose UNSIMPLIFIED TD instance has a loose counting lower bound,
/// so the exact solver must probe (and a "max_nodes": 1 budget genuinely
/// trips). Requests using it must send "simplify": false — the reductions
/// collapse it to a zero-probe search. Same system as test_queue_sizing's
/// make_loose_bound_system().
const char* const kLooseBoundNetlist =
    "core core0\ncore core1\ncore core2\ncore core3\ncore core4\n"
    "core core5\ncore core6\ncore core7\n"
    "channel core5 -> core3\n"
    "channel core3 -> core2 rs=1\n"
    "channel core2 -> core1 rs=2\n"
    "channel core1 -> core7 rs=2\n"
    "channel core7 -> core0\n"
    "channel core0 -> core6\n"
    "channel core6 -> core4\n"
    "channel core4 -> core5\n"
    "channel core3 -> core7\n"
    "channel core5 -> core6\n"
    "channel core6 -> core7\n";

std::string netlist_fixture(std::uint64_t seed) {
  GenerateOptions options;
  options.cores = 12;
  options.sccs = 3;
  options.extra_cycles = 2;
  options.relay_stations = 4;
  options.seed = seed;
  const Result<Instance> instance = generate(options);
  EXPECT_TRUE(instance);
  const Result<std::string> text = netlist_text(*instance);
  EXPECT_TRUE(text);
  return *text;
}

TEST(Server, RoundTripsEveryVerbOverTcp) {
  serve::Server server(tcp_options(2));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  const std::string netlist = netlist_fixture(11);
  std::vector<std::string> lines = {R"({"id": "p", "verb": "ping"})",
                                    R"({"id": "g", "verb": "generate", "v": 6, "s": 2})",
                                    R"({"id": "z", "verb": "sleep", "ms": 1})",
                                    R"({"id": "t", "verb": "stats"})"};
  for (const char* verb : {"parse", "analyze", "size-queues", "insert-rs", "rate-safety",
                           "lint"}) {
    util::JsonWriter w;
    w.begin_object().key("id").value(verb).key("verb").value(verb);
    w.key("netlist").value(netlist).end_object();
    lines.push_back(w.str());
  }
  for (const std::string& line : lines) {
    const Result<std::string> response = client.call(line);
    ASSERT_TRUE(response) << line;
    const Result<std::string> result = serve::extract_result(*response);
    EXPECT_TRUE(result) << line << " -> " << *response;
  }
  server.stop();
}

TEST(Server, AnswersProtocolErrorsWithoutExecuting) {
  serve::ServerOptions options = tcp_options(1);
  options.max_request_bytes = 200;
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  Result<std::string> response = client.call("this is not json");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find(serve::codes::kParse), std::string::npos);

  response = client.call(R"({"id": "u", "verb": "frobnicate"})");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find(serve::codes::kUnknownVerb), std::string::npos);

  // A request line over max_request_bytes is rejected with `too_large`
  // without buffering the rest of the line.
  const std::string huge =
      R"({"id": "h", "verb": "analyze", "netlist": ")" + std::string(500, 'x') + R"("})";
  response = client.call(huge);
  ASSERT_TRUE(response);
  EXPECT_NE(response->find(serve::codes::kTooLarge), std::string::npos);

  // The connection and server survive all of the above.
  response = client.call(R"({"id": "p", "verb": "ping"})");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find("\"pong\":true"), std::string::npos);
  server.stop();
}

TEST(Server, ShedsLoadWhenTheAdmissionQueueIsFull) {
  serve::ServerOptions options = tcp_options(1);
  options.queue_capacity = 1;
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  // Occupy the single worker, then flood: with capacity 1 at most two of the
  // pings can ever be admitted; the rest must be shed immediately (not
  // queued, not blocking the reader).
  const int kPings = 10;
  ASSERT_TRUE(client.send_line(R"({"id": "busy", "verb": "sleep", "ms": 1000})"));
  for (int i = 0; i < kPings; ++i) {
    ASSERT_TRUE(client.send_line(R"({"id": "f)" + std::to_string(i) + R"(", "verb": "ping"})"));
  }

  // All 11 responses arrive (nothing blocks, nothing is dropped); at least
  // kPings - 2 pings are shed, and the shed responses come back while the
  // worker is still sleeping — they never wait behind it.
  util::Timer timer;
  int overloaded = 0;
  double sheds_done_ms = -1.0;
  for (int i = 0; i < kPings + 1; ++i) {
    const Result<std::string> response = client.recv_line();
    ASSERT_TRUE(response);
    if (response->find(serve::codes::kOverloaded) != std::string::npos) {
      ++overloaded;
      if (overloaded == kPings - 2) sheds_done_ms = timer.elapsed_ms();
    }
  }
  EXPECT_GE(overloaded, kPings - 2);
  EXPECT_LT(sheds_done_ms, 900.0) << "shedding must not wait for the busy worker";

  const Result<std::string> stats = client.call(R"({"id": "s", "verb": "stats"})");
  ASSERT_TRUE(stats);
  EXPECT_NE(stats->find("\"shed\":" + std::to_string(overloaded)), std::string::npos) << *stats;
  server.stop();
}

TEST(Server, ExpiredDeadlinesAreAnsweredWithoutExecuting) {
  serve::Server server(tcp_options(1));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  // The worker is busy for 300 ms; the second request allows only 1 ms of
  // queueing, so it must come back `deadline_exceeded`, unexecuted.
  ASSERT_TRUE(client.send_line(R"({"id": "busy", "verb": "sleep", "ms": 300})"));
  ASSERT_TRUE(client.send_line(R"({"id": "late", "verb": "ping", "deadline_ms": 1})"));

  bool saw_deadline = false;
  for (int i = 0; i < 2; ++i) {
    const Result<std::string> response = client.recv_line();
    ASSERT_TRUE(response);
    if (response->find("\"late\"") != std::string::npos) {
      EXPECT_NE(response->find(serve::codes::kDeadlineExceeded), std::string::npos) << *response;
      EXPECT_EQ(response->find("\"pong\""), std::string::npos) << "must not execute";
      saw_deadline = true;
    }
  }
  EXPECT_TRUE(saw_deadline);
  server.stop();
}

TEST(Server, DrainCompletesAdmittedRequests) {
  serve::Server server(tcp_options(1));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  const std::string netlist = netlist_fixture(13);
  ASSERT_TRUE(client.send_line(R"({"id": "busy", "verb": "sleep", "ms": 100})"));
  for (int i = 0; i < 3; ++i) {
    util::JsonWriter w;
    w.begin_object().key("id").value("q" + std::to_string(i));
    w.key("verb").value("analyze").key("netlist").value(netlist).end_object();
    ASSERT_TRUE(client.send_line(w.str()));
  }
  // Give the reader a moment to admit all four, then initiate the drain the
  // same way the SIGTERM handler does.
  const Result<std::string> first = client.recv_line();  // the sleep: all admitted by now
  ASSERT_TRUE(first);
  EXPECT_NE(first->find("\"busy\""), std::string::npos);
  server.request_stop();

  // Every admitted request still gets its (successful) response.
  for (int i = 0; i < 3; ++i) {
    const Result<std::string> response = client.recv_line();
    ASSERT_TRUE(response) << "response lost in drain";
    EXPECT_TRUE(serve::extract_result(*response)) << *response;
  }
  server.wait();
}

// The determinism contract: a response payload observed through the server
// equals the payload of executing the same request directly, byte for byte,
// regardless of worker count (lid_selfcheck invariant 8 re-checks this on
// random instances).
TEST(Server, PayloadsAreByteIdenticalToDirectExecution) {
  const std::string netlist = netlist_fixture(29);
  std::vector<std::string> lines = {R"({"verb": "generate", "v": 10, "s": 3, "seed": 5})"};
  for (const char* verb : {"parse", "analyze", "size-queues", "insert-rs", "rate-safety",
                           "lint"}) {
    util::JsonWriter w;
    w.begin_object().key("verb").value(verb).key("netlist").value(netlist).end_object();
    lines.push_back(w.str());
  }

  for (const int workers : {1, 4}) {
    serve::Server server(tcp_options(workers));
    ASSERT_TRUE(server.start());
    serve::Client client = connect_or_die(server);
    for (const std::string& line : lines) {
      const serve::Outcome direct = run_line(line);
      ASSERT_TRUE(direct.ok) << line;
      const Result<std::string> response = client.call(line);
      ASSERT_TRUE(response);
      const Result<std::string> served = serve::extract_result(*response);
      ASSERT_TRUE(served) << *response;
      EXPECT_EQ(*served, direct.payload) << "workers=" << workers << ": " << line;
    }
    server.stop();
  }
}

TEST(Server, UnixSocketEndToEnd) {
  serve::ServerOptions options;
  options.unix_socket = ::testing::TempDir() + "lid_serve_test.sock";
  options.workers = 2;
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  Result<serve::Client> connected = serve::Client::connect_unix(options.unix_socket);
  ASSERT_TRUE(connected) << (connected ? "" : connected.error().to_string());
  serve::Client client = std::move(connected).value();
  const Result<std::string> response = client.call(R"({"id": 1, "verb": "ping"})");
  ASSERT_TRUE(response);
  EXPECT_NE(response->find("\"pong\":true"), std::string::npos);
  client.close();
  server.stop();

  // A second server on the same path recovers the stale socket file.
  serve::Server again(options);
  EXPECT_TRUE(again.start());
  again.stop();
}

TEST(Server, StatsReportConfigurationAndCounters) {
  serve::ServerOptions options = tcp_options(3);
  options.queue_capacity = 17;
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);
  ASSERT_TRUE(client.call(R"({"verb": "ping"})"));
  const Result<std::string> response = client.call(R"({"id": "s", "verb": "stats"})");
  ASSERT_TRUE(response);
  const Result<std::string> stats = serve::extract_result(*response);
  ASSERT_TRUE(stats);
  EXPECT_NE(stats->find("\"workers\":3"), std::string::npos);
  EXPECT_NE(stats->find("\"queue_capacity\":17"), std::string::npos);
  EXPECT_NE(stats->find("\"verb_ping\":1"), std::string::npos);
  EXPECT_NE(stats->find("\"latency\""), std::string::npos);
  server.stop();
}

// ---------------------------------------------------------------------------
// Robustness: cancellation, degradation, retries, fault injection.

TEST(Protocol, ParsesOnDeadlinePolicy) {
  const Result<serve::Request> degrade =
      serve::parse_request(R"({"verb": "ping", "on_deadline": "degrade"})");
  ASSERT_TRUE(degrade);
  EXPECT_EQ(degrade->on_deadline, serve::OnDeadline::kDegrade);

  const Result<serve::Request> error =
      serve::parse_request(R"({"verb": "ping", "on_deadline": "error"})");
  ASSERT_TRUE(error);
  EXPECT_EQ(error->on_deadline, serve::OnDeadline::kError);

  EXPECT_EQ(serve::parse_request(R"({"verb": "ping", "on_deadline": "maybe"})").error().code,
            ErrorCode::kInvalidArgument);
}

TEST(Protocol, CancelledSleepStopsWithinOneSlice) {
  const Result<serve::Request> request =
      serve::parse_request(R"({"verb": "sleep", "ms": 5000})");
  ASSERT_TRUE(request);

  // Already-expired token: no sleeping at all.
  serve::ExecContext expired;
  expired.cancel = util::CancelToken::after_ms(0.0);
  util::Timer timer;
  const serve::Outcome immediate = serve::execute(*request, {}, expired);
  EXPECT_FALSE(immediate.ok);
  EXPECT_EQ(immediate.error_code, serve::codes::kDeadlineExceeded);
  EXPECT_LT(timer.elapsed_ms(), 1000.0);

  // A 50 ms budget against a 5000 ms sleep: the slice loop frees the thread
  // soon after expiry — far sooner than the requested sleep (the loose bound
  // absorbs CI scheduling noise on a single CPU).
  serve::ExecContext armed;
  armed.cancel = util::CancelToken::after_ms(50.0);
  timer = util::Timer();
  const serve::Outcome cancelled = serve::execute(*request, {}, armed);
  EXPECT_FALSE(cancelled.ok);
  EXPECT_EQ(cancelled.error_code, serve::codes::kDeadlineExceeded);
  EXPECT_LT(timer.elapsed_ms(), 2500.0);
}

/// Builds a size-queues request line for `netlist`.
std::string size_queues_line(const std::string& netlist, const std::string& solver,
                             std::int64_t max_nodes, bool degrade_policy,
                             double deadline_ms = 0.0, bool simplify = true) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value("sq");
  w.key("verb").value("size-queues");
  if (deadline_ms > 0.0) w.key("deadline_ms").value_fixed(deadline_ms, 3);
  if (degrade_policy) w.key("on_deadline").value("degrade");
  w.key("solver").value(solver);
  if (max_nodes > 0) w.key("max_nodes").value(max_nodes);
  if (!simplify) w.key("simplify").value(false);
  w.key("netlist").value(netlist);
  w.end_object();
  return w.str();
}

// The acceptance bar for degradation: a degraded response is byte-identical
// to the same request executed with "solver":"heuristic" directly, with the
// degraded tag only in the envelope.
TEST(Protocol, DegradedPayloadIsByteIdenticalToDirectHeuristic) {
  const std::string netlist = kLooseBoundNetlist;

  // With policy "error", a 1-node budget produces the legacy unproven
  // payload — this pins that the fixture genuinely trips the budget (if it
  // proved at the root, the degrade test below would be vacuous).
  const serve::Outcome probe =
      run_line(size_queues_line(netlist, "both", 1, false, 0.0, /*simplify=*/false));
  ASSERT_TRUE(probe.ok) << probe.error_message;
  EXPECT_FALSE(probe.degraded);
  ASSERT_NE(probe.payload.find("\"exact_proved\":false"), std::string::npos)
      << "fixture must trip a 1-node budget: " << probe.payload;

  const serve::Outcome degraded =
      run_line(size_queues_line(netlist, "both", 1, true, 0.0, /*simplify=*/false));
  ASSERT_TRUE(degraded.ok) << degraded.error_message;
  EXPECT_TRUE(degraded.degraded);

  const serve::Outcome heuristic =
      run_line(size_queues_line(netlist, "heuristic", 0, false, 0.0, /*simplify=*/false));
  ASSERT_TRUE(heuristic.ok) << heuristic.error_message;
  EXPECT_FALSE(heuristic.degraded);
  EXPECT_EQ(degraded.payload, heuristic.payload);
}

TEST(Protocol, DeadlineExpiredAtEntryHonorsPolicy) {
  const std::string netlist = netlist_fixture(11);
  serve::ExecContext expired;
  expired.deadline_expired = true;
  expired.cancel = util::CancelToken::after_ms(0.0);

  // Policy "error": deadline_exceeded without solving.
  const Result<serve::Request> strict =
      serve::parse_request(size_queues_line(netlist, "both", 0, false));
  ASSERT_TRUE(strict);
  const serve::Outcome refused = serve::execute(*strict, {}, expired);
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error_code, serve::codes::kDeadlineExceeded);

  // Policy "degrade": the heuristic fallback, tagged, byte-identical to a
  // direct heuristic run.
  const Result<serve::Request> lenient =
      serve::parse_request(size_queues_line(netlist, "both", 0, true));
  ASSERT_TRUE(lenient);
  const serve::Outcome rescued = serve::execute(*lenient, {}, expired);
  ASSERT_TRUE(rescued.ok) << rescued.error_message;
  EXPECT_TRUE(rescued.degraded);
  const serve::Outcome heuristic = run_line(size_queues_line(netlist, "heuristic", 0, false));
  ASSERT_TRUE(heuristic.ok);
  EXPECT_EQ(rescued.payload, heuristic.payload);
}

// End-to-end over a real socket: a request whose deadline expires while
// queued behind a busy worker, sent with "on_deadline":"degrade", comes back
// ok + degraded and matches direct heuristic execution byte for byte.
TEST(Server, QueueExpiredDegradeServesHeuristicFallback) {
  serve::Server server(tcp_options(1));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);
  const std::string netlist = netlist_fixture(11);

  ASSERT_TRUE(client.send_line(R"({"id": "busy", "verb": "sleep", "ms": 200})"));
  ASSERT_TRUE(client.send_line(size_queues_line(netlist, "both", 0, true, 1.0)));

  std::string degraded_response;
  for (int i = 0; i < 2; ++i) {
    const Result<std::string> response = client.recv_line();
    ASSERT_TRUE(response);
    if (response->find("\"sq\"") != std::string::npos) degraded_response = *response;
  }
  ASSERT_FALSE(degraded_response.empty());
  EXPECT_NE(degraded_response.find("\"degraded\":true"), std::string::npos) << degraded_response;
  const Result<std::string> served = serve::extract_result(degraded_response);
  ASSERT_TRUE(served) << degraded_response;
  const serve::Outcome direct = run_line(size_queues_line(netlist, "heuristic", 0, false));
  ASSERT_TRUE(direct.ok);
  EXPECT_EQ(*served, direct.payload);
  server.stop();
}

// The worker-freeing bound of the tentpole: a cancellable request whose
// deadline expires mid-execution must release its worker within a bounded
// interval — here a 5000 ms sleep under a 100 ms deadline answers in far
// less than the sleep would take (bound kept loose for 1-CPU CI).
TEST(Server, DeadlineExpiringMidExecutionFreesTheWorker) {
  serve::Server server(tcp_options(1));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  util::Timer timer;
  const Result<std::string> response =
      client.call(R"({"id": "c", "verb": "sleep", "ms": 5000, "deadline_ms": 100})");
  const double elapsed = timer.elapsed_ms();
  ASSERT_TRUE(response);
  EXPECT_NE(response->find(serve::codes::kDeadlineExceeded), std::string::npos) << *response;
  EXPECT_LT(elapsed, 3000.0) << "worker held far past its deadline";

  // The worker is actually free again: an immediate ping succeeds fast.
  const Result<std::string> pong = client.call(R"({"id": "p", "verb": "ping"})");
  ASSERT_TRUE(pong);
  EXPECT_NE(pong->find("\"pong\":true"), std::string::npos);
  server.stop();
}

TEST(Faults, PlanParsesAndRoundTrips) {
  const Result<serve::FaultPlan> plan =
      serve::FaultPlan::parse("seed=42,stall=0.1:50,torn=0.05,drop=0.02,garbage=0.01");
  ASSERT_TRUE(plan) << plan.error().to_string();
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_DOUBLE_EQ(plan->stall_p, 0.1);
  EXPECT_DOUBLE_EQ(plan->stall_ms, 50.0);
  EXPECT_DOUBLE_EQ(plan->torn_p, 0.05);
  EXPECT_DOUBLE_EQ(plan->drop_p, 0.02);
  EXPECT_DOUBLE_EQ(plan->garbage_p, 0.01);
  EXPECT_TRUE(plan->any());

  const Result<serve::FaultPlan> again = serve::FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(again);
  EXPECT_EQ(again->to_string(), plan->to_string());

  const Result<serve::FaultPlan> empty = serve::FaultPlan::parse("");
  ASSERT_TRUE(empty);
  EXPECT_FALSE(empty->any());

  EXPECT_FALSE(serve::FaultPlan::parse("torn=1.5"));
  EXPECT_FALSE(serve::FaultPlan::parse("bogus=1"));
  EXPECT_FALSE(serve::FaultPlan::parse("torn=abc"));
  EXPECT_FALSE(serve::FaultPlan::parse("torn=0.6,drop=0.6"));  // sum > 1
}

TEST(Faults, InjectorIsSeededAndCountsDecisions) {
  serve::FaultPlan plan;
  plan.seed = 7;
  plan.drop_p = 0.5;
  serve::FaultInjector a(plan);
  serve::FaultInjector b(plan);
  int drops = 0;
  for (int i = 0; i < 200; ++i) {
    const serve::FaultDecision da = a.decide();
    const serve::FaultDecision db = b.decide();
    EXPECT_EQ(da.drop, db.drop) << "same seed must give the same sequence";
    if (da.drop) ++drops;
  }
  EXPECT_EQ(a.drops(), drops);
  EXPECT_GT(drops, 50);   // ~100 expected
  EXPECT_LT(drops, 150);
  EXPECT_NE(a.stats_json().find("\"drops\":" + std::to_string(drops)), std::string::npos);
}

// A retrying client pointed at a server that tears, drops and corrupts
// frames still completes every (idempotent) request — the chaos-smoke CI
// job re-checks this against a real daemon via lid_loadgen.
TEST(Server, RetryingClientSurvivesInjectedFaults) {
  serve::ServerOptions options = tcp_options(2);
  const Result<serve::FaultPlan> plan =
      serve::FaultPlan::parse("seed=3,stall=0.1:5,torn=0.15,drop=0.15,garbage=0.1");
  ASSERT_TRUE(plan);
  options.fault_plan = *plan;
  serve::Server server(options);
  ASSERT_TRUE(server.start());

  serve::RetryPolicy policy;
  policy.max_attempts = 25;          // ~40% fault rate: 25 attempts make
  policy.base_backoff_ms = 1.0;      // failure astronomically unlikely
  policy.max_backoff_ms = 10.0;
  policy.breaker_threshold = 0;      // faults are random; don't trip fast-fail
  serve::RetryingClient client(
      [&]() { return serve::Client::connect_tcp("127.0.0.1", server.port()); }, policy);

  int ok = 0;
  for (int i = 0; i < 40; ++i) {
    const Result<std::string> response =
        client.call(R"({"id": )" + std::to_string(i) + R"(, "verb": "ping"})");
    ASSERT_TRUE(response) << response.error().to_string();
    EXPECT_NE(response->find("\"pong\":true"), std::string::npos);
    ++ok;
  }
  EXPECT_EQ(ok, 40);
  EXPECT_GT(client.stats().retries, 0) << "the plan injected nothing?";
  EXPECT_GT(client.stats().reconnects, 1);
  EXPECT_EQ(client.stats().giveups, 0);

  // The server counted its own injections and exposes them via stats.
  const Result<std::string> stats_line =
      client.call(R"({"id": "s", "verb": "stats"})");
  ASSERT_TRUE(stats_line);
  EXPECT_NE(stats_line->find("\"faults\""), std::string::npos) << *stats_line;
  server.stop();
}

TEST(Retry, CircuitBreakerFailsFastAgainstADeadEndpoint) {
  serve::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_ms = 0.0;
  policy.max_backoff_ms = 0.0;
  policy.breaker_threshold = 2;
  policy.breaker_cooldown_ms = 60'000.0;  // stays open for the whole test
  serve::RetryingClient client(
      [] { return serve::Client::connect_unix("/nonexistent/lid-test.sock"); }, policy);

  const Result<std::string> first = client.call(R"({"verb": "ping"})");
  EXPECT_FALSE(first);
  EXPECT_TRUE(client.breaker_open());

  const Result<std::string> second = client.call(R"({"verb": "ping"})");
  EXPECT_FALSE(second);
  EXPECT_NE(second.error().message.find("circuit breaker open"), std::string::npos);
  EXPECT_EQ(client.stats().breaker_fast_fails, 1);
  // The fast-fail made no network attempt beyond the first call's two.
  EXPECT_EQ(client.stats().attempts, 2);
}

TEST(Retry, OverloadedResponsesAreRetriedWithoutFeedingTheBreaker) {
  serve::ServerOptions options = tcp_options(1);
  options.queue_capacity = 1;
  serve::Server server(options);
  ASSERT_TRUE(server.start());

  // Saturate the single worker + single queue slot.
  serve::Client saturator = connect_or_die(server);
  ASSERT_TRUE(saturator.send_line(R"({"id": "b1", "verb": "sleep", "ms": 400})"));
  ASSERT_TRUE(saturator.send_line(R"({"id": "b2", "verb": "sleep", "ms": 400})"));

  serve::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_backoff_ms = 20.0;
  policy.max_backoff_ms = 100.0;
  serve::RetryingClient client(
      [&]() { return serve::Client::connect_tcp("127.0.0.1", server.port()); }, policy);
  const Result<std::string> response = client.call(R"({"id": "r", "verb": "ping"})");
  ASSERT_TRUE(response) << response.error().to_string();
  EXPECT_NE(response->find("\"pong\":true"), std::string::npos)
      << "retries should outlast the ~800 ms saturation: " << *response;
  EXPECT_FALSE(client.breaker_open());
  server.stop();
}

TEST(Client, RecvTimeoutReturnsTimeoutError) {
  serve::Server server(tcp_options(1));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);
  ASSERT_TRUE(client.send_line(R"({"id": "z", "verb": "sleep", "ms": 400})"));
  const Result<std::string> timed_out = client.recv_line(30.0);
  ASSERT_FALSE(timed_out);
  EXPECT_EQ(timed_out.error().code, ErrorCode::kTimeout);
  // The full response is still readable afterwards (nothing was consumed).
  const Result<std::string> eventual = client.recv_line();
  ASSERT_TRUE(eventual);
  EXPECT_NE(eventual->find("\"slept_ms\":400"), std::string::npos);
  server.stop();
}

// Every malformed corpus input produces a structured error response — the
// server survives the entire corpus on one connection.
TEST(Server, MalformedCorpusGetsStructuredErrors) {
  const std::filesystem::path dir = LID_MALFORMED_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  serve::Server server(tcp_options(1));
  ASSERT_TRUE(server.start());
  serve::Client client = connect_or_die(server);

  int netlists = 0;
  int documents = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (entry.path().extension() == ".lis") {
      ++netlists;
      // The malformed netlist rides inside a valid request: the parser must
      // answer with a structured parse error, not crash or hang.
      util::JsonWriter w;
      w.begin_object().key("id").value(entry.path().filename().string());
      w.key("verb").value("parse").key("netlist").value(buffer.str()).end_object();
      const Result<std::string> response = client.call(w.str());
      ASSERT_TRUE(response) << entry.path().filename();
      EXPECT_NE(response->find("\"ok\":false"), std::string::npos) << *response;
      EXPECT_NE(response->find(serve::codes::kParse), std::string::npos) << *response;
    } else if (entry.path().extension() == ".json") {
      ++documents;
      // The malformed document IS the request line. Multi-line files send
      // only their first line (the protocol is line-delimited); empty files
      // degenerate to a blank line the server ignores, so skip those.
      const std::string line = buffer.str().substr(0, buffer.str().find('\n'));
      if (line.empty()) continue;
      const Result<std::string> response = client.call(line);
      ASSERT_TRUE(response) << entry.path().filename();
      EXPECT_NE(response->find("\"ok\":false"), std::string::npos)
          << entry.path().filename() << " -> " << *response;
    }
  }
  EXPECT_GE(netlists, 6) << "malformed netlist corpus went missing";
  EXPECT_GE(documents, 5);

  // The connection survived everything above.
  const Result<std::string> pong = client.call(R"({"id": "p", "verb": "ping"})");
  ASSERT_TRUE(pong);
  EXPECT_NE(pong->find("\"pong\":true"), std::string::npos);
  server.stop();
}

}  // namespace
