// Property tests for the paper's topology theorems (Sec. IV / Table II):
//   * trees never degrade with q = 1,
//   * cactus SCCs (no reconvergent paths) never degrade with q = 1,
//   * networks of cactus SCCs never degrade with q = 1,
//   * q = r + 1 always suffices (r = total relay stations),
//   * general topologies can and do degrade.
#include <gtest/gtest.h>

#include "core/fixed_qs.hpp"
#include "gen/generator.hpp"
#include "graph/topology.hpp"
#include "lis/lis_graph.hpp"
#include "lis/paper_systems.hpp"
#include "util/rng.hpp"

namespace lid {
namespace {

using util::Rational;

class TreeTheorem : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeTheorem, TreesNeverDegradeWithUnitQueues) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const lis::LisGraph lis =
        gen::generate_tree(rng.uniform_int(2, 20), rng.uniform_int(0, 8), rng);
    ASSERT_EQ(graph::classify(lis.structure()), graph::TopologyClass::kTree);
    EXPECT_EQ(lis::ideal_mst(lis), Rational(1));
    EXPECT_EQ(lis::practical_mst(lis), Rational(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeTheorem, ::testing::Values(1, 2, 3, 4));

class CactusTheorem : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CactusTheorem, CactusSccsNeverDegradeWithUnitQueues) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const lis::LisGraph lis = gen::generate_cactus(rng.uniform_int(1, 5),
                                                   rng.uniform_int(2, 6),
                                                   rng.uniform_int(0, 6), rng);
    const graph::TopologyClass cls = graph::classify(lis.structure());
    ASSERT_EQ(cls, graph::TopologyClass::kCactusScc);
    // The claim: θ(d[G]) = θ(G) with q = 1, whatever the relay stations did
    // to the ideal MST.
    EXPECT_EQ(lis::practical_mst(lis), lis::ideal_mst(lis));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CactusTheorem, ::testing::Values(10, 20, 30, 40));

class NetworkTheorem : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkTheorem, NetworksOfCactusSccsNeverDegradeWithUnitQueues) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    // Build several cacti and join them with a random arborescence (no
    // reconvergent inter-SCC paths).
    const int k = rng.uniform_int(2, 4);
    lis::LisGraph lis;
    std::vector<std::vector<lis::CoreId>> groups;
    for (int g = 0; g < k; ++g) {
      const lis::LisGraph cactus = gen::generate_cactus(rng.uniform_int(1, 3),
                                                        rng.uniform_int(2, 4), 0, rng);
      std::vector<lis::CoreId> members;
      const auto base = static_cast<lis::CoreId>(lis.num_cores());
      for (std::size_t v = 0; v < cactus.num_cores(); ++v) {
        members.push_back(lis.add_core());
      }
      for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(cactus.num_channels()); ++c) {
        const lis::Channel& ch = cactus.channel(c);
        lis.add_channel(base + ch.src, base + ch.dst);
      }
      groups.push_back(std::move(members));
    }
    std::vector<lis::ChannelId> inter;
    for (int g = 1; g < k; ++g) {
      const int parent = rng.uniform_int(0, g - 1);
      inter.push_back(lis.add_channel(rng.pick(groups[static_cast<std::size_t>(parent)]),
                                      rng.pick(groups[static_cast<std::size_t>(g)])));
    }
    // Relay stations anywhere (the theorem does not restrict them).
    for (int r = rng.uniform_int(0, 5); r > 0; --r) {
      const auto ch = static_cast<lis::ChannelId>(rng.uniform_index(lis.num_channels()));
      lis.set_relay_stations(ch, lis.channel(ch).relay_stations + 1);
    }
    ASSERT_EQ(graph::classify(lis.structure()),
              graph::TopologyClass::kNetworkOfCactusSccs);
    EXPECT_EQ(lis::practical_mst(lis), lis::ideal_mst(lis));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkTheorem, ::testing::Values(100, 200, 300));

class RPlusOneBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RPlusOneBound, FixedQueuesOfRPlusOneAlwaysSuffice) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(6, 16);
    params.sccs = rng.uniform_int(1, 4);
    params.min_cycles = rng.uniform_int(0, 3);
    params.relay_stations = rng.uniform_int(0, 6);
    params.reconvergent = true;
    params.policy = rng.flip(0.5) ? gen::RsPolicy::kAny : gen::RsPolicy::kScc;
    lis::LisGraph lis;
    try {
      lis = gen::generate(params, rng);
    } catch (const std::invalid_argument&) {
      continue;
    }
    const int r = lis.total_relay_stations();
    EXPECT_GE(core::fixed_qs_mst(lis, r + 1), lis::ideal_mst(lis))
        << "q = r + 1 failed on a generated system";
    // Monotonicity: larger fixed queues never hurt.
    Rational prev(0);
    for (int q = 1; q <= r + 1; ++q) {
      const Rational mst = core::fixed_qs_mst(lis, q);
      EXPECT_GE(mst, prev);
      prev = mst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RPlusOneBound, ::testing::Values(11, 22, 33, 44));

TEST(SingleRelayStation, QTwoNeverDegrades) {
  // Sec. IX's closing observation: one relay station in an arbitrary system
  // with q = 2 never causes throughput degradation.
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(5, 14);
    params.sccs = rng.uniform_int(1, 3);
    params.min_cycles = rng.uniform_int(0, 3);
    params.relay_stations = 1;
    params.policy = rng.flip(0.5) ? gen::RsPolicy::kAny : gen::RsPolicy::kScc;
    lis::LisGraph lis;
    try {
      lis = gen::generate(params, rng);
    } catch (const std::invalid_argument&) {
      continue;
    }
    EXPECT_GE(core::fixed_qs_mst(lis, 2), lis::ideal_mst(lis));
  }
}

TEST(GeneralTopology, CanDegrade) {
  // The two-core example is the canonical general-topology degradation.
  const lis::LisGraph lis = lis::make_two_core_example();
  EXPECT_EQ(graph::classify(lis.structure()), graph::TopologyClass::kGeneral);
  EXPECT_LT(lis::practical_mst(lis), lis::ideal_mst(lis));
}

TEST(FixedQs, SweepIsWellFormed) {
  const auto points = core::fixed_qs_sweep(lis::make_two_core_example(), 4);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].q, 1);
  EXPECT_EQ(points[0].mst, Rational(2, 3));
  EXPECT_NEAR(points[0].fraction_of_ideal, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(points[1].mst, Rational(1));
  EXPECT_NEAR(points[3].fraction_of_ideal, 1.0, 1e-12);
}

}  // namespace
}  // namespace lid
