// Mesh generator (NoC substrate) and queue-occupancy / latency statistics.
#include <gtest/gtest.h>

#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "graph/topology.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"
#include "util/rng.hpp"

namespace lid {
namespace {

TEST(Mesh, StructureOfA3x4Mesh) {
  util::Rng rng(1);
  const lis::LisGraph mesh = gen::generate_mesh(3, 4, 0, rng);
  EXPECT_EQ(mesh.num_cores(), 12u);
  // Links: horizontal 3*(4-1)=9, vertical (3-1)*4=8, two channels each.
  EXPECT_EQ(mesh.num_channels(), 34u);
  EXPECT_EQ(mesh.core_name(0), "n0_0");
  EXPECT_EQ(lis::ideal_mst(mesh), util::Rational(1));
  // Mesh faces are reconvergent: general class.
  EXPECT_EQ(graph::classify(mesh.structure()), graph::TopologyClass::kGeneral);
}

TEST(Mesh, OneByNIsACactusChain) {
  util::Rng rng(2);
  const lis::LisGraph line = gen::generate_mesh(1, 4, 0, rng);
  // Bidirectional line: 2-cycles joined at articulation points.
  EXPECT_EQ(graph::classify(line.structure()), graph::TopologyClass::kCactusScc);
  EXPECT_EQ(lis::practical_mst(line), lis::ideal_mst(line));
}

TEST(Mesh, RejectsBadDimensions) {
  util::Rng rng(3);
  EXPECT_THROW(gen::generate_mesh(0, 3, 0, rng), std::invalid_argument);
  EXPECT_THROW(gen::generate_mesh(3, 3, -1, rng), std::invalid_argument);
}

class MeshQueueSizing : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshQueueSizing, PipelinedMeshesAreRepairableByQs) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    lis::LisGraph mesh = gen::generate_mesh(rng.uniform_int(2, 3), rng.uniform_int(2, 3),
                                            rng.uniform_int(1, 4), rng);
    const util::Rational ideal = lis::ideal_mst(mesh);
    core::QsOptions options;
    options.method = core::QsMethod::kHeuristic;
    const core::QsReport report = core::size_queues(mesh, options);
    EXPECT_EQ(report.achieved_mst, ideal);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshQueueSizing, ::testing::Values(4, 5, 6));

TEST(Torus, StructureAndRepair) {
  util::Rng rng(3);
  const lis::LisGraph torus = gen::generate_torus(4, 4, 6, rng);
  EXPECT_EQ(torus.num_cores(), 16u);
  EXPECT_EQ(torus.num_channels(), 32u);
  EXPECT_EQ(torus.total_relay_stations(), 6);
  EXPECT_EQ(graph::classify(torus.structure()), graph::TopologyClass::kGeneral);
  // This seed degrades; queue sizing must restore the (relay-lowered) ideal.
  ASSERT_LT(lis::practical_mst(torus), lis::ideal_mst(torus));
  core::QsOptions options;
  options.method = core::QsMethod::kHeuristic;
  const core::QsReport report = core::size_queues(torus, options);
  EXPECT_EQ(report.achieved_mst, lis::ideal_mst(torus));
}

TEST(Torus, RejectsDegenerateDimensions) {
  util::Rng rng(1);
  EXPECT_THROW(gen::generate_torus(1, 4, 0, rng), std::invalid_argument);
}

class MeshImmunity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshImmunity, BidirectionalMeshesNeverDegradeFromBackpressure) {
  // A structural finding from this reproduction: when every link sits on a
  // bidirectional 2-core loop, pipelining any link lowers the ideal MST
  // below every mixed (backpressure) cycle — so θ(d[G]) == θ(G) always.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const lis::LisGraph mesh = gen::generate_mesh(rng.uniform_int(2, 4),
                                                  rng.uniform_int(2, 4),
                                                  rng.uniform_int(0, 6), rng);
    EXPECT_EQ(lis::practical_mst(mesh), lis::ideal_mst(mesh));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshImmunity, ::testing::Values(44, 55, 66));

TEST(Latency, OccupancyTrackedOnTwoCoreExample) {
  lis::ProtocolOptions options;
  options.periods = 3000;
  options.reference = 1;
  const lis::ProtocolResult r = simulate_protocol(lis::make_two_core_example(), options);
  ASSERT_EQ(r.avg_queue_occupancy.size(), 2u);
  // At MST 2/3 with q = 1, the lower queue holds data a good share of the
  // time while the relay-station channel starves.
  EXPECT_GT(r.avg_queue_occupancy[1], 0.1);
  for (const double occ : r.avg_queue_occupancy) {
    EXPECT_GE(occ, 0.0);
    EXPECT_LE(occ, 4.0);  // bounded by q + 2rs + 1
  }
}

TEST(Latency, LittlesLawOnADeterministicPipe) {
  // A free-running pipeline src -> dst: the queue holds exactly one item per
  // period (the one about to be consumed), so occupancy 1 and latency 1.
  lis::LisGraph pipe;
  const lis::CoreId src = pipe.add_core("src");
  const lis::CoreId dst = pipe.add_core("dst");
  const lis::ChannelId ch = pipe.add_channel(src, dst, 0, 2);
  lis::ProtocolOptions options;
  options.periods = 500;
  options.reference = dst;
  options.record_traces = true;  // keep simulating past recurrence
  const lis::ProtocolResult r = simulate_protocol(pipe, options);
  EXPECT_NEAR(r.avg_queue_occupancy[static_cast<std::size_t>(ch)], 1.0, 0.05);
  EXPECT_NEAR(average_queue_latency(pipe, r, ch), 1.0, 0.05);
}

TEST(Latency, GrowingQueuesRaisesOccupancyNotThroughputBeyondMst) {
  // Oversizing queues on the already-optimal system must not change the
  // throughput (still 1) and occupancy stays bounded by what the producer
  // can inject.
  lis::LisGraph sized = lis::make_two_core_example_sized();
  sized.set_all_queue_capacities(6);
  lis::ProtocolOptions options;
  options.periods = 2000;
  options.reference = 1;
  const lis::ProtocolResult r = simulate_protocol(sized, options);
  EXPECT_EQ(r.throughput, util::Rational(1));
  EXPECT_THROW(average_queue_latency(sized, r, 99), std::invalid_argument);
}

}  // namespace
}  // namespace lid
