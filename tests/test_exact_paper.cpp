// The paper's literal exact algorithm (set replication + K-depth search,
// Sec. VII-B) must agree with the branch-and-bound solver everywhere.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/exact.hpp"
#include "core/exact_paper.hpp"
#include "core/heuristic.hpp"
#include "core/qs_problem.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace lid::core {
namespace {

TEST(ExactPaper, SolvesKnownInstances) {
  TdInstance inst;
  inst.deficits = {1, 1, 1};
  inst.set_members = {{0, 1}, {1, 2}, {0, 2}};
  const TdSolution upper = solve_heuristic(inst);
  const ExactResult r = solve_exact_paper(inst, upper);
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_EQ(r.solution->total, 2);
  EXPECT_TRUE(inst.is_feasible(r.solution->weights));
}

TEST(ExactPaper, HandlesMultiTokenDeficits) {
  // One cycle with deficit 3 covered by two sets: any split of 3 works.
  TdInstance inst;
  inst.deficits = {3};
  inst.set_members = {{0}, {0}};
  const TdSolution upper = solve_heuristic(inst);
  const ExactResult r = solve_exact_paper(inst, upper);
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_EQ(r.solution->total, 3);
}

TEST(ExactPaper, EmptyInstance) {
  const ExactResult r = solve_exact_paper(TdInstance{}, TdSolution{});
  ASSERT_TRUE(r.solution.has_value());
  EXPECT_EQ(r.solution->total, 0);
}

TEST(ExactPaper, HonorsTimeout) {
  // A dense instance with a tight node cap must report a cut-off cleanly.
  util::Rng rng(3);
  TdInstance inst;
  for (int c = 0; c < 16; ++c) inst.deficits.push_back(3);
  inst.set_members.resize(12);
  for (int c = 0; c < 16; ++c) {
    for (int k = 0; k < 3; ++k) inst.set_members[rng.uniform_index(12)].push_back(c);
  }
  for (auto& m : inst.set_members) {
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
  }
  const TdSolution upper = solve_heuristic(inst);
  ExactOptions options;
  options.max_nodes = 200;
  const ExactResult r = solve_exact_paper(inst, upper, options);
  if (r.cut_off) {
    EXPECT_FALSE(r.solution.has_value());
  }
}

class ExactSolversAgree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactSolversAgree, OnRandomTdInstances) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n_cycles = rng.uniform_int(1, 5);
    const int n_sets = rng.uniform_int(1, 4);
    TdInstance inst;
    for (int c = 0; c < n_cycles; ++c) inst.deficits.push_back(rng.uniform_int(1, 3));
    inst.set_members.resize(static_cast<std::size_t>(n_sets));
    for (int c = 0; c < n_cycles; ++c) {
      inst.set_members[rng.uniform_index(static_cast<std::size_t>(n_sets))].push_back(c);
      if (rng.flip(0.5)) {
        inst.set_members[rng.uniform_index(static_cast<std::size_t>(n_sets))].push_back(c);
      }
    }
    for (auto& m : inst.set_members) {
      std::sort(m.begin(), m.end());
      m.erase(std::unique(m.begin(), m.end()), m.end());
    }
    const TdSolution upper = solve_heuristic(inst);
    const ExactResult bnb = solve_exact(inst, upper);
    const ExactResult paper = solve_exact_paper(inst, upper);
    ASSERT_TRUE(bnb.solution.has_value());
    ASSERT_TRUE(paper.solution.has_value());
    EXPECT_EQ(bnb.solution->total, paper.solution->total);
    EXPECT_TRUE(inst.is_feasible(paper.solution->weights));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactSolversAgree, ::testing::Values(9, 19, 29, 39));

class ExactSolversAgreeOnLis : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactSolversAgreeOnLis, OnGeneratedSystems) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(10, 24);
    params.sccs = rng.uniform_int(2, 4);
    params.min_cycles = 2;
    params.relay_stations = rng.uniform_int(2, 6);
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    const lis::LisGraph system = gen::generate(params, rng);
    const QsProblem problem = build_qs_problem(system);
    if (!problem.has_degradation()) continue;
    const TdSolution upper = solve_heuristic(problem.td);
    ExactOptions options;
    options.timeout_ms = 10000;
    const ExactResult bnb = solve_exact(problem.td, upper, options);
    const ExactResult paper = solve_exact_paper(problem.td, upper, options);
    if (bnb.solution && paper.solution) {
      EXPECT_EQ(bnb.solution->total, paper.solution->total);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactSolversAgreeOnLis, ::testing::Values(41, 43));

}  // namespace
}  // namespace lid::core
