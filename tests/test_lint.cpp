// The lid_lint static-diagnostics subsystem: every check fires on a minimal
// crafted instance, stays silent on the shipped corpus and the paper's own
// examples, renders to pretty/JSON/SARIF shapes that round-trip through the
// strict util::json parser, and gates analyze/size_queues via the facade
// pre-flight instead of letting broken models die mid-solve.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lid_api.hpp"
#include "lint/checks.hpp"
#include "lint/diagnostic.hpp"
#include "lint/render.hpp"
#include "lis/netlist_io.hpp"
#include "lis/paper_systems.hpp"
#include "util/json.hpp"
#include "util/rational.hpp"

namespace lid::linter {
namespace {

namespace fs = std::filesystem;
using util::Rational;

const char* kDeadlockText =
    "core A\n"
    "core B\n"
    "channel A -> B q=0\n"
    "channel B -> A q=0\n";

Report lint_text(const std::string& text, const LintOptions& options = {}) {
  return run_checks(lis::from_text(text), options);
}

std::vector<std::string> codes_of(const Report& report) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : report.diagnostics) codes.push_back(d.code);
  return codes;
}

// --- Catalog ---------------------------------------------------------------

TEST(Catalog, HasTwelveChecksWithUniqueOrderedCodes) {
  const auto catalog = check_catalog();
  ASSERT_GE(catalog.size(), 12u);
  std::set<std::string> codes;
  std::string prev;
  for (const CheckInfo& info : catalog) {
    EXPECT_TRUE(codes.insert(info.code).second) << info.code;
    EXPECT_LT(prev, info.code);  // catalog is in code order
    prev = info.code;
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.summary, nullptr);
    EXPECT_GT(std::string(info.summary).size(), 10u);
  }
  // The three tiers are all populated.
  EXPECT_EQ(find_check("L001")->severity, Severity::kError);
  EXPECT_EQ(find_check("L101")->severity, Severity::kWarning);
  EXPECT_EQ(find_check("L302")->severity, Severity::kInfo);
  EXPECT_TRUE(find_check("L201")->needs_target);
  EXPECT_FALSE(find_check("L001")->needs_target);
  EXPECT_EQ(find_check("L999"), nullptr);
}

TEST(Catalog, SeverityNames) {
  EXPECT_STREQ(to_string(Severity::kError), "error");
  EXPECT_STREQ(to_string(Severity::kWarning), "warning");
  EXPECT_STREQ(to_string(Severity::kInfo), "info");
  EXPECT_STREQ(sarif_level(Severity::kError), "error");
  EXPECT_STREQ(sarif_level(Severity::kWarning), "warning");
  EXPECT_STREQ(sarif_level(Severity::kInfo), "note");
}

// --- Each check fires on a minimal crafted instance ------------------------

TEST(Checks, L001DeadlockOnZeroTokenCycle) {
  const Report report = lint_text(kDeadlockText);
  EXPECT_TRUE(report.has_code("L001"));
  EXPECT_TRUE(report.has_code("L002"));
  EXPECT_EQ(report.errors(), 3u);  // L001 + one L002 per channel
  const Diagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.code, "L001");
  EXPECT_NE(d.message.find("zero-token cycle"), std::string::npos);
  EXPECT_NE(d.message.find("A -> B"), std::string::npos);
  // Both q=0 channels get a token-restoring fix-it.
  ASSERT_EQ(d.fixits.size(), 2u);
  EXPECT_EQ(d.fixits[0].set_queue_capacity, 1);
}

TEST(Checks, L002ZeroQueueWithoutDeadlockOnFeedForward) {
  const Report report = lint_text("core A\ncore B\nchannel A -> B q=0\n");
  EXPECT_FALSE(report.has_code("L001"));  // no cycle, no deadlock
  ASSERT_TRUE(report.has_code("L002"));
  const Diagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.severity, Severity::kError);
  ASSERT_EQ(d.fixits.size(), 1u);
  EXPECT_EQ(d.fixits[0].channel, 0);
  EXPECT_EQ(d.fixits[0].set_queue_capacity, 1);
}

TEST(Checks, L003EmptyNetlist) {
  const Report report = run_checks(lis::LisGraph{});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, "L003");
  EXPECT_EQ(report.errors(), 1u);
}

TEST(Checks, L101IsolatedCore) {
  const Report report =
      lint_text("core A\ncore B\ncore Orphan\nchannel A -> B\nchannel B -> A\n");
  ASSERT_TRUE(report.has_code("L101"));
  EXPECT_TRUE(report.has_code("L103"));  // the orphan is also its own component
  EXPECT_EQ(report.errors(), 0u);
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code != "L101") continue;
    EXPECT_EQ(d.location.core, 2);
    EXPECT_NE(d.message.find("Orphan"), std::string::npos);
  }
}

TEST(Checks, L102ExactDuplicateChannel) {
  const Report dup =
      lint_text("core A\ncore B\nchannel A -> B\nchannel A -> B\nchannel B -> A\n");
  ASSERT_TRUE(dup.has_code("L102"));
  EXPECT_EQ(dup.infos(), 1u);
  // Parallel channels that differ in rs are NOT duplicates (Fig. 1/2 shape).
  const Report fig1 = run_checks(lis::make_two_core_example());
  EXPECT_FALSE(fig1.has_code("L102"));
}

TEST(Checks, L103DisconnectedComponents) {
  const Report report = lint_text(
      "core A\ncore B\ncore C\ncore D\n"
      "channel A -> B\nchannel B -> A\nchannel C -> D rs=1\nchannel D -> C\n");
  ASSERT_TRUE(report.has_code("L103"));
  EXPECT_FALSE(report.has_code("L101"));
  const Diagnostic& d = report.diagnostics.front();
  EXPECT_NE(d.message.find("2 disconnected components"), std::string::npos);
}

TEST(Checks, L201L202L204FireOnFig1AgainstTargetOne) {
  LintOptions options;
  options.target = Rational(1);
  const Report report = run_checks(lis::make_two_core_example(), options);
  ASSERT_TRUE(report.has_code("L201"));
  ASSERT_TRUE(report.has_code("L202"));
  ASSERT_TRUE(report.has_code("L204"));
  EXPECT_FALSE(report.has_code("L203"));  // target 1 == ideal, not above it
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == "L201") {
      EXPECT_NE(d.message.find("2/3"), std::string::npos);
      EXPECT_NE(d.message.find("critical cycle"), std::string::npos);
    }
    if (d.code == "L202") {
      // Fig. 6's repair: grow the lower queue from 1 to 2.
      ASSERT_EQ(d.fixits.size(), 1u);
      EXPECT_EQ(d.fixits[0].set_queue_capacity, 2);
    }
    if (d.code == "L204") {
      // Fig. 2 (right)'s repair: one more relay station on the lighter path.
      ASSERT_EQ(d.fixits.size(), 1u);
      EXPECT_EQ(d.fixits[0].add_relay_stations, 1);
    }
  }
}

TEST(Checks, L203TargetAboveIdeal) {
  LintOptions options;
  options.target = Rational(2);
  const Report report = run_checks(lis::make_two_core_example(), options);
  ASSERT_TRUE(report.has_code("L203"));
  EXPECT_TRUE(report.has_code("L201"));  // still also misses the target
}

TEST(Checks, L2xxStaySilentWithoutATarget) {
  // Degradation alone is not a lint finding: Fig. 1 is the paper's own
  // example and must lint clean when no target is stated.
  const Report report = run_checks(lis::make_two_core_example());
  for (const std::string& code : codes_of(report)) {
    EXPECT_NE(code[1], '2') << code;
  }
  EXPECT_TRUE(report.empty());
}

TEST(Checks, L2xxSilentWhenTargetAlreadyMet) {
  LintOptions options;
  options.target = Rational(1);
  const Report report = run_checks(lis::make_two_core_example_sized(), options);
  EXPECT_FALSE(report.has_code("L201"));
  EXPECT_FALSE(report.has_code("L202"));
  EXPECT_FALSE(report.has_code("L203"));
}

TEST(Checks, L301FiresOnDenseScc) {
  // K9 with all 72 ordered-pair channels: one SCC of d[G] with 9 transitions
  // and 144 places, cyclomatic number 136 >= the default threshold 60.
  lis::LisGraph dense;
  for (int v = 0; v < 9; ++v) dense.add_core("C" + std::to_string(v));
  for (lis::CoreId a = 0; a < 9; ++a) {
    for (lis::CoreId b = 0; b < 9; ++b) {
      if (a != b) dense.add_channel(a, b);
    }
  }
  const Report report = run_checks(dense);
  ASSERT_TRUE(report.has_code("L301"));
  const Diagnostic& d = report.diagnostics.front();
  // Informational since the default analyze/size-queues/lint paths stopped
  // enumerating cycles: the blowup only concerns the opt-in eager solvers.
  EXPECT_EQ(d.severity, Severity::kInfo);
  EXPECT_NE(d.message.find("2^136"), std::string::npos);
}

TEST(Checks, L301ThresholdIsTunable) {
  // COFDM sits at mu = 49: silent at the shipped default, loud at 30.
  const lis::LisGraph cofdm = lis::load_netlist(std::string(LID_DATA_DIR) + "/cofdm.lis");
  EXPECT_FALSE(run_checks(cofdm).has_code("L301"));
  LintOptions strict;
  strict.blowup_exponent = 30;
  EXPECT_TRUE(run_checks(cofdm, strict).has_code("L301"));
}

TEST(Checks, L302OversizedQueue) {
  const Report report =
      lint_text("core A\ncore B\nchannel A -> B q=5\nchannel B -> A\n");
  ASSERT_TRUE(report.has_code("L302"));
  const Diagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.severity, Severity::kInfo);
  ASSERT_EQ(d.fixits.size(), 1u);
  EXPECT_GE(d.fixits[0].set_queue_capacity, 1);
  EXPECT_LT(d.fixits[0].set_queue_capacity, 5);
  // All-q=1 systems can never be oversized, so the scan short-circuits.
  EXPECT_FALSE(run_checks(lis::make_two_core_example()).has_code("L302"));
}

// --- Tiering ---------------------------------------------------------------

TEST(Tiering, ErrorsOnlySkipsEverythingElse) {
  const std::string text =
      "core A\ncore B\ncore Orphan\nchannel A -> B q=0\nchannel B -> A q=0\n";
  LintOptions options;
  options.errors_only = true;
  const Report report = lint_text(text, options);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.has_code("L101"));
  // run_error_checks is the same tier by definition.
  const Report preflight = run_error_checks(lis::from_text(text));
  EXPECT_EQ(codes_of(preflight), codes_of(report));
}

TEST(Tiering, ErrorsGateTheDeepChecksButNotStructuralWarnings) {
  // Deadlocked AND oversized AND isolated: the structural L101 still
  // reports, but L302 (which runs marked-graph occupancy analysis) must not.
  const Report report = lint_text(
      "core A\ncore B\ncore Orphan\n"
      "channel A -> B q=0\nchannel B -> A q=0\nchannel A -> B q=5\n");
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_code("L101"));
  EXPECT_FALSE(report.has_code("L302"));
}

// --- Report helpers --------------------------------------------------------

TEST(Report, CountsAndSummary) {
  const Report report = lint_text(kDeadlockText);
  EXPECT_EQ(report.errors(), 3u);
  EXPECT_EQ(report.warnings(), 0u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_FALSE(report.empty());
  EXPECT_FALSE(report.has_code("L103"));
  const std::string summary = report.error_summary();
  EXPECT_EQ(summary.find("L001"), 0u);
  EXPECT_NE(summary.find("; L002"), std::string::npos);
  EXPECT_NE(summary.find("(+1 more)"), std::string::npos);
  EXPECT_TRUE(Report{}.error_summary().empty());
}

// --- Corpus silence --------------------------------------------------------

TEST(Corpus, PaperExamplesLintCleanWithoutATarget) {
  for (const lis::LisGraph& g :
       {lis::make_two_core_example(), lis::make_two_core_example_sized(),
        lis::make_two_core_example_balanced(), lis::make_fig15_counterexample()}) {
    const Report report = run_checks(g);
    EXPECT_EQ(report.errors(), 0u);
    EXPECT_EQ(report.warnings(), 0u);
  }
}

TEST(Corpus, ShippedNetlistsLintWarningClean) {
  // Every .lis under data/ (top level and corpus/): no errors, no warnings.
  // Infos are allowed — cofdm.lis legitimately replicates two channels.
  int seen = 0;
  for (const char* dir : {LID_DATA_DIR, LID_DATA_DIR "/corpus"}) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() != ".lis") continue;
      const Report report = run_checks(lis::load_netlist(entry.path().string()));
      EXPECT_EQ(report.errors(), 0u) << entry.path();
      EXPECT_EQ(report.warnings(), 0u) << entry.path();
      ++seen;
    }
  }
  EXPECT_GE(seen, 20);
}

// --- The malformed/lint fixture corpus -------------------------------------

TEST(Fixtures, EveryLintFixtureTriggersItsDocumentedCodes) {
  const std::map<std::string, std::vector<std::string>> expected = {
      {"deadlock_cycle.lis", {"L001", "L002"}},
      {"zero_queue_feedforward.lis", {"L002"}},
      {"isolated_core.lis", {"L101", "L103"}},
      {"split_components.lis", {"L103"}},
      {"duplicate_channel.lis", {"L102"}},
      {"oversized_queue.lis", {"L302"}},
  };
  int seen = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(LID_MALFORMED_DIR "/lint")) {
    const std::string file = entry.path().filename().string();
    const auto it = expected.find(file);
    ASSERT_NE(it, expected.end())
        << file << " is not registered in this test's expectation table";
    // Must parse — these are semantic defects, not syntax errors.
    const lis::LisGraph g = lis::load_netlist(entry.path().string());
    const Report report = run_checks(g);
    for (const std::string& code : it->second) {
      EXPECT_TRUE(report.has_code(code)) << file << " should trigger " << code;
    }
    ++seen;
  }
  EXPECT_EQ(static_cast<std::size_t>(seen), expected.size());
}

TEST(Fixtures, FeedForwardFixtureHasNoDeadlock) {
  const lis::LisGraph g =
      lis::load_netlist(LID_MALFORMED_DIR "/lint/zero_queue_feedforward.lis");
  EXPECT_FALSE(run_checks(g).has_code("L001"));
}

// --- Renderers -------------------------------------------------------------

std::vector<RenderItem> one_item(const lis::ParsedNetlist& parsed, const Report& report) {
  std::vector<RenderItem> items;
  RenderItem item;
  item.lis = &parsed.graph;
  item.report = &report;
  item.provenance = &parsed.provenance;
  items.push_back(item);
  return items;
}

TEST(Render, PrettyShowsFileLineSeverityCodeAndFixits) {
  const lis::ParsedNetlist parsed =
      lis::from_text_with_provenance("core A\ncore B\nchannel A -> B q=0\n", "dead.lis");
  const Report report = run_checks(parsed.graph);
  const std::string text = render_pretty(one_item(parsed, report));
  // The q=0 channel is declared on line 3 of the text.
  EXPECT_NE(text.find("dead.lis:3: error: L002 [zero-capacity-queue]"), std::string::npos);
  EXPECT_NE(text.find("fix: raise the queue on channel A -> B to 1"), std::string::npos);
  EXPECT_NE(text.find("1 error"), std::string::npos);
}

TEST(Render, PrettyOnACleanNetlistSaysSo) {
  const lis::ParsedNetlist parsed =
      lis::from_text_with_provenance("core A\ncore B\nchannel A -> B\nchannel B -> A\n");
  const Report report = run_checks(parsed.graph);
  ASSERT_TRUE(report.empty());
  const std::string text = render_pretty(one_item(parsed, report));
  EXPECT_NE(text.find("0 errors"), std::string::npos);
}

TEST(Render, JsonRoundTripsThroughTheStrictParser) {
  const lis::ParsedNetlist parsed =
      lis::from_text_with_provenance(kDeadlockText, "dead.lis");
  const Report report = run_checks(parsed.graph);
  const util::JsonParse doc = util::json_parse(render_json(one_item(parsed, report)));
  ASSERT_TRUE(doc.ok) << doc.error;

  const util::Json* netlists = doc.value.find("netlists");
  ASSERT_NE(netlists, nullptr);
  ASSERT_EQ(netlists->size(), 1u);
  const util::Json& item = netlists->at(0);
  EXPECT_EQ(item.find("name")->as_string(), "dead.lis");
  EXPECT_EQ(item.find("errors")->as_int(), 3);
  EXPECT_FALSE(item.find("clean")->as_bool(true));

  const util::Json* diags = item.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  ASSERT_EQ(diags->size(), 3u);
  const util::Json& first = diags->at(0);
  EXPECT_EQ(first.find("code")->as_string(), "L001");
  EXPECT_EQ(first.find("severity")->as_string(), "error");
  EXPECT_EQ(first.find("check")->as_string(), "zero-token-cycle");
  EXPECT_FALSE(first.find("message")->as_string().empty());
  ASSERT_NE(first.find("fixits"), nullptr);
  EXPECT_EQ(first.find("fixits")->size(), 2u);

  const util::Json* summary = doc.value.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("errors")->as_int(), 3);

  // Wire-protocol discipline: the whole document is float-free.
  std::vector<const util::Json*> stack = {&doc.value};
  while (!stack.empty()) {
    const util::Json* v = stack.back();
    stack.pop_back();
    EXPECT_NE(v->type(), util::Json::Type::kDouble);
    for (const util::Json& child : v->items()) stack.push_back(&child);
    for (const auto& [key, child] : v->members()) stack.push_back(&child);
  }
}

TEST(Render, SarifMatchesTheCodeScanningShape) {
  const lis::ParsedNetlist parsed =
      lis::from_text_with_provenance(kDeadlockText, "dead.lis");
  const Report report = run_checks(parsed.graph);
  const util::JsonParse doc = util::json_parse(render_sarif(one_item(parsed, report)));
  ASSERT_TRUE(doc.ok) << doc.error;

  EXPECT_EQ(doc.value.find("version")->as_string(), "2.1.0");
  EXPECT_NE(doc.value.find("$schema")->as_string().find("sarif"), std::string::npos);

  const util::Json* runs = doc.value.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 1u);
  const util::Json& run = runs->at(0);

  const util::Json* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->find("name")->as_string(), "lid_lint");
  const util::Json* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  ASSERT_EQ(rules->size(), check_catalog().size());
  EXPECT_EQ(rules->at(0).find("id")->as_string(), "L001");
  EXPECT_EQ(rules->at(0).find("defaultConfiguration")->find("level")->as_string(), "error");
  for (const util::Json& rule : rules->items()) {
    EXPECT_FALSE(rule.find("shortDescription")->find("text")->as_string().empty());
  }

  const util::Json* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), 3u);
  for (const util::Json& result : results->items()) {
    const std::string rule_id = result.find("ruleId")->as_string();
    const std::int64_t index = result.find("ruleIndex")->as_int(-1);
    ASSERT_GE(index, 0);
    ASSERT_LT(static_cast<std::size_t>(index), rules->size());
    EXPECT_EQ(rules->at(static_cast<std::size_t>(index)).find("id")->as_string(), rule_id);
    EXPECT_FALSE(result.find("message")->find("text")->as_string().empty());
    const util::Json* locations = result.find("locations");
    ASSERT_NE(locations, nullptr);
    ASSERT_EQ(locations->size(), 1u);
    const util::Json& physical = *locations->at(0).find("physicalLocation");
    EXPECT_EQ(physical.find("artifactLocation")->find("uri")->as_string(), "dead.lis");
    EXPECT_GE(physical.find("region")->find("startLine")->as_int(), 1);
  }
}

TEST(Render, SarifMapsInfoToNoteLevel) {
  const lis::ParsedNetlist parsed = lis::from_text_with_provenance(
      "core A\ncore B\nchannel A -> B\nchannel A -> B\nchannel B -> A\n", "dup.lis");
  const Report report = run_checks(parsed.graph);
  ASSERT_TRUE(report.has_code("L102"));
  const util::JsonParse doc = util::json_parse(render_sarif(one_item(parsed, report)));
  ASSERT_TRUE(doc.ok) << doc.error;
  const util::Json& result = doc.value.find("runs")->at(0).find("results")->at(0);
  EXPECT_EQ(result.find("level")->as_string(), "note");
}

TEST(Render, ItemDisplayNamePrecedence) {
  RenderItem item;
  EXPECT_EQ(item_display_name(item), "<netlist>");
  item.name = "from-api";
  EXPECT_EQ(item_display_name(item), "from-api");
  lis::Provenance prov;
  prov.file = "from-disk.lis";
  item.provenance = &prov;
  EXPECT_EQ(item_display_name(item), "from-disk.lis");
}

}  // namespace
}  // namespace lid::linter

// --- The facade pre-flight --------------------------------------------------

namespace lid {
namespace {

TEST(Facade, AnalyzeRejectsDeadlockedNetlistWithLintCode) {
  // The deadlocked model *parses* — the rejection must come from the lint
  // pre-flight as a structured error, not from a LID_CHECK mid-solve.
  const Result<Instance> parsed = parse_netlist(linter::kDeadlockText, "dead");
  ASSERT_TRUE(parsed.ok());
  const Result<Analysis> a = analyze(*parsed);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.error().code, ErrorCode::kLint);
  EXPECT_NE(a.error().message.find("L001"), std::string::npos);
  EXPECT_STREQ(to_string(ErrorCode::kLint), "lint");
}

TEST(Facade, SizeQueuesRejectsDeadlockedNetlistWithLintCode) {
  const Result<Instance> parsed = parse_netlist(linter::kDeadlockText, "dead");
  ASSERT_TRUE(parsed.ok());
  const Result<Sizing> s = size_queues(*parsed);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kLint);
}

TEST(Facade, PreflightCanBeDisabledOnHealthyModels) {
  const Instance two = Instance::wrap(lis::make_two_core_example());
  AnalyzeOptions options;
  options.preflight = false;
  EXPECT_TRUE(analyze(two, options).ok());
}

TEST(Facade, LintReturnsTheFullReport) {
  const Instance two = Instance::wrap(lis::make_two_core_example(), "fig1");
  const Result<linter::Report> clean = lint(two);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->empty());

  linter::LintOptions options;
  options.target = util::Rational(1);
  const Result<linter::Report> targeted = lint(two, options);
  ASSERT_TRUE(targeted.ok());
  EXPECT_TRUE(targeted->has_code("L201"));
  EXPECT_TRUE(targeted->has_code("L202"));

  EXPECT_FALSE(lint(Instance{}).ok());
  EXPECT_EQ(lint(Instance{}).error().code, ErrorCode::kInvalidArgument);
}

TEST(Facade, ParsedInstancesCarryProvenanceWrappedOnesDoNot) {
  const Result<Instance> parsed = parse_netlist("core A\n", "solo.lis");
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->provenance(), nullptr);
  EXPECT_EQ(parsed->provenance()->file, "solo.lis");
  EXPECT_EQ(parsed->provenance()->line_of_core(0), 1);

  const Instance wrapped = Instance::wrap(lis::make_two_core_example());
  EXPECT_EQ(wrapped.provenance(), nullptr);
}

}  // namespace
}  // namespace lid
