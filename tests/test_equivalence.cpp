// Cycle-for-cycle equivalence of the two simulators: the token-level
// marked-graph simulator running the doubled expansion and the data-level
// protocol simulator running the netlist must fire every shell in exactly
// the same periods — the protocol IS the marked graph.
#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"
#include "mg/simulate.hpp"
#include "util/rng.hpp"

namespace lid {
namespace {

/// Per-period shell firing matrix from the marked-graph simulator.
std::vector<std::vector<char>> mg_firing_matrix(const lis::LisGraph& system,
                                                std::size_t periods) {
  const lis::Expansion ex = lis::expand_doubled(system);
  std::vector<std::vector<char>> matrix;
  mg::simulate(ex.graph, periods, 0, [&](std::size_t, const std::vector<char>& fired) {
    std::vector<char> shells;
    shells.reserve(system.num_cores());
    for (const mg::TransitionId t : ex.core_transition) {
      shells.push_back(fired[static_cast<std::size_t>(t)]);
    }
    matrix.push_back(std::move(shells));
    return matrix.size() < periods;
  });
  return matrix;
}

/// Per-period shell firing matrix from the protocol simulator.
std::vector<std::vector<char>> protocol_firing_matrix(const lis::LisGraph& system,
                                                      std::size_t periods) {
  std::vector<std::vector<char>> matrix;
  lis::ProtocolOptions options;
  options.periods = periods + 1;
  options.observer = [&](std::size_t, const std::vector<char>& fired) {
    matrix.push_back(fired);
    return matrix.size() < periods;
  };
  simulate_protocol(system, options);
  return matrix;
}

void expect_equivalent(const lis::LisGraph& system, std::size_t periods) {
  const auto mg_matrix = mg_firing_matrix(system, periods);
  const auto proto_matrix = protocol_firing_matrix(system, periods);
  const std::size_t common = std::min(mg_matrix.size(), proto_matrix.size());
  ASSERT_GT(common, 0u);
  for (std::size_t t = 0; t < common; ++t) {
    ASSERT_EQ(mg_matrix[t], proto_matrix[t]) << "divergence at period " << t;
  }
}

TEST(SimulatorEquivalence, TwoCoreExample) {
  expect_equivalent(lis::make_two_core_example(), 50);
}

TEST(SimulatorEquivalence, TwoCoreSized) {
  expect_equivalent(lis::make_two_core_example_sized(), 50);
}

TEST(SimulatorEquivalence, Fig15Counterexample) {
  expect_equivalent(lis::make_fig15_counterexample(), 80);
}

class SimulatorEquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorEquivalenceProperty, OnGeneratedSystems) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(3, 12);
    params.sccs = rng.uniform_int(1, 3);
    params.min_cycles = rng.uniform_int(0, 3);
    params.relay_stations = rng.uniform_int(0, 4);
    params.policy = gen::RsPolicy::kAny;
    params.queue_capacity = rng.uniform_int(1, 3);
    expect_equivalent(gen::generate(params, rng), 60);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorEquivalenceProperty,
                         ::testing::Values(111, 222, 333, 444, 555));

}  // namespace
}  // namespace lid
