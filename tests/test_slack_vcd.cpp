// Wire-pipelining slack analysis and VCD trace export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/slack.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"
#include "lis/vcd_export.hpp"
#include "util/rational.hpp"

namespace lid::core {
namespace {

using util::Rational;

TEST(Slack, Fig15ChannelsOnTheCriticalLoopHaveNoHeadroom) {
  // Fig. 15: channels (A,C) and (C,E) sit on small cycles; even one extra
  // relay station on them drops the ideal MST — zero slack. The long channel
  // (A,E) already carries the critical relay station, so it has no headroom
  // either.
  const lis::LisGraph system = lis::make_fig15_counterexample();
  const std::vector<ChannelSlack> slacks = channel_slacks(system);
  ASSERT_EQ(slacks.size(), system.num_channels());
  for (const ChannelSlack& s : slacks) {
    EXPECT_EQ(s.slack, 0) << "channel " << s.channel;
    EXPECT_LT(s.mst_if_exceeded, Rational(5, 6));
  }
}

TEST(Slack, TwoCoreChannelsAreUnbounded) {
  // No feedback loops: both channels can absorb any number of stations
  // without touching the (acyclic) ideal MST.
  const std::vector<ChannelSlack> slacks = channel_slacks(lis::make_two_core_example());
  for (const ChannelSlack& s : slacks) {
    EXPECT_EQ(s.slack, ChannelSlack::kUnbounded);
  }
}

TEST(Slack, RingSlackMatchesTargetArithmetic) {
  // Ring of 4 cores, no relay stations: ideal MST 1. Against target 2/3, a
  // channel can take k stations while 4/(4+k) >= 2/3, i.e. k <= 2.
  lis::LisGraph ring;
  for (int i = 0; i < 4; ++i) ring.add_core();
  for (int i = 0; i < 4; ++i) ring.add_channel(i, (i + 1) % 4);
  const std::vector<ChannelSlack> slacks = channel_slacks(ring, Rational(2, 3));
  for (const ChannelSlack& s : slacks) {
    EXPECT_EQ(s.slack, 2);
    EXPECT_EQ(s.mst_if_exceeded, Rational(4, 7));
  }
}

TEST(Slack, RejectsNonPositiveTarget) {
  EXPECT_THROW(channel_slacks(lis::make_two_core_example(), Rational(0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lid::core

namespace lid::lis {
namespace {

ProtocolResult traced_run(const LisGraph& system, std::size_t periods) {
  ProtocolOptions options;
  options.periods = periods;
  options.record_traces = true;
  return simulate_protocol(system, options);
}

TEST(Vcd, EmitsHeaderSignalsAndChanges) {
  const LisGraph system = make_two_core_example();
  const std::string vcd = traces_to_vcd(system, traced_run(system, 8));
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // One valid + one data signal per stage: upper channel has 2 stages
  // (A port + relay station), lower has 1 -> 6 $var lines.
  std::size_t vars = 0;
  for (std::size_t pos = vcd.find("$var"); pos != std::string::npos;
       pos = vcd.find("$var", pos + 1)) {
    ++vars;
  }
  EXPECT_EQ(vars, 6u);
  EXPECT_NE(vcd.find("A_to_B_valid"), std::string::npos);
  EXPECT_NE(vcd.find("A_to_B_rs0_valid"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(Vcd, RequiresTraces) {
  const LisGraph system = make_two_core_example();
  ProtocolOptions options;
  options.periods = 4;
  const ProtocolResult result = simulate_protocol(system, options);
  EXPECT_THROW(traces_to_vcd(system, result), std::invalid_argument);
}

TEST(Vcd, ChangesOnlyOnTransitions) {
  // A single always-firing channel never toggles valid after #0: exactly one
  // valid-change record for that signal.
  LisGraph lis;
  const CoreId a = lis.add_core("src");
  lis.add_core("dst");
  lis.add_channel(a, 1, 0, 2);
  const std::string vcd = traces_to_vcd(lis, traced_run(lis, 10));
  // Count "1<code>" valid assertions for the first signal (code '!').
  std::size_t asserts = 0;
  for (std::size_t pos = vcd.find("\n1!"); pos != std::string::npos;
       pos = vcd.find("\n1!", pos + 1)) {
    ++asserts;
  }
  EXPECT_EQ(asserts, 1u);
}

TEST(Vcd, FileWrapperWrites) {
  const std::string path = ::testing::TempDir() + "/lid_test.vcd";
  const LisGraph system = make_two_core_example();
  save_vcd(system, traced_run(system, 4), path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lid::lis
