// End-to-end queue-sizing pipeline tests: instance construction, solver
// integration, SCC-collapse fast path, and full-loop restoration of the
// ideal MST on randomly generated systems.
#include <gtest/gtest.h>

#include <functional>

#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/paper_systems.hpp"
#include "util/rng.hpp"

namespace lid::core {
namespace {

using util::Rational;

TEST(QsProblem, NoDegradationYieldsEmptyInstance) {
  const QsProblem p = build_qs_problem(lis::make_two_core_example_sized());
  EXPECT_FALSE(p.has_degradation());
  EXPECT_EQ(p.td.num_cycles(), 0u);
  EXPECT_TRUE(p.channels.empty());
}

TEST(QsProblem, TwoCoreInstance) {
  const QsProblem p = build_qs_problem(lis::make_two_core_example());
  EXPECT_TRUE(p.has_degradation());
  EXPECT_EQ(p.theta_ideal, Rational(1));
  EXPECT_EQ(p.theta_practical, Rational(2, 3));
  ASSERT_EQ(p.td.num_cycles(), 1u);
  EXPECT_EQ(p.td.deficits.front(), 1);
  // The degrading cycle's only sizable queue is the lower channel's.
  ASSERT_EQ(p.channels.size(), 1u);
  EXPECT_EQ(p.channels.front(), 1);
}

TEST(QsProblem, SccCollapseDetection) {
  // Two rings joined by a pipelined channel: relay stations inter-SCC only.
  lis::LisGraph lis;
  for (int i = 0; i < 6; ++i) lis.add_core();
  lis.add_channel(0, 1);
  lis.add_channel(1, 2);
  lis.add_channel(2, 0);
  lis.add_channel(3, 4);
  lis.add_channel(4, 5);
  lis.add_channel(5, 3);
  lis.add_channel(2, 3, /*relay_stations=*/1);
  EXPECT_TRUE(relay_stations_only_between_sccs(lis));

  lis::LisGraph intra = lis;
  intra.set_relay_stations(0, 1);  // relay station inside the first ring
  EXPECT_FALSE(relay_stations_only_between_sccs(intra));
}

TEST(QsProblem, ApplySolutionGrowsQueues) {
  const lis::LisGraph lis = lis::make_two_core_example();
  const QsProblem p = build_qs_problem(lis);
  const lis::LisGraph sized = apply_solution(lis, p, {2});
  EXPECT_EQ(sized.channel(p.channels.front()).queue_capacity, 3);
  EXPECT_THROW(apply_solution(lis, p, {1, 1}), std::invalid_argument);
  EXPECT_THROW(apply_solution(lis, p, {-1}), std::invalid_argument);
}

TEST(SizeQueues, HeuristicOnlyAndExactOnly) {
  QsOptions heuristic_only;
  heuristic_only.method = QsMethod::kHeuristic;
  const QsReport h = size_queues(lis::make_two_core_example(), heuristic_only);
  EXPECT_TRUE(h.heuristic.has_value());
  EXPECT_FALSE(h.exact.has_value());
  EXPECT_EQ(h.achieved_mst, Rational(1));

  QsOptions exact_only;
  exact_only.method = QsMethod::kExact;
  const QsReport e = size_queues(lis::make_two_core_example(), exact_only);
  EXPECT_FALSE(e.heuristic.has_value());
  ASSERT_TRUE(e.exact.has_value());
  EXPECT_TRUE(e.exact->finished);
  EXPECT_EQ(e.achieved_mst, Rational(1));
}

TEST(QsProblem, TruncatedEnumerationIsReported) {
  // An absurdly small cycle cap: the instance is built from whatever was
  // enumerated and flags the truncation; sizing still applies a feasible
  // (possibly insufficient) solution and verification reports honestly.
  lis::LisGraph lis = lis::make_fig15_counterexample();
  QsBuildOptions build;
  build.max_cycles = 2;
  const QsProblem truncated = build_qs_problem(lis, build);
  EXPECT_TRUE(truncated.truncated);
  QsOptions options;
  options.method = QsMethod::kHeuristic;
  options.build = build;
  const QsReport report = size_queues(lis, options);
  EXPECT_TRUE(report.problem.truncated);
  // achieved_mst is computed on the real sized netlist, so it can fall
  // short of the ideal — but never below the unsized practical MST.
  EXPECT_GE(report.achieved_mst, report.problem.theta_practical);
}

TEST(QsProblem, CancelledEnumerationIsDistinctFromCapTruncation) {
  lis::LisGraph lis = lis::make_fig15_counterexample();
  QsBuildOptions cancelled_build;
  cancelled_build.cancel = util::CancelToken::after_ms(0.0);  // already expired
  const QsProblem cancelled = build_qs_problem(lis, cancelled_build);
  EXPECT_TRUE(cancelled.truncated);
  EXPECT_TRUE(cancelled.cancelled);

  QsBuildOptions capped_build;
  capped_build.max_cycles = 2;
  const QsProblem capped = build_qs_problem(lis, capped_build);
  EXPECT_TRUE(capped.truncated);
  EXPECT_FALSE(capped.cancelled);
}

/// A system whose unsimplified TD instance has a loose counting lower bound
/// (lo = 3 < heuristic upper bound = 4), so solve_exact's binary search must
/// actually probe instead of proving optimality at zero nodes. Most systems
/// (fig. 15 included) have heuristic == lower bound and finish without ever
/// consulting the cancel token or the node budget; cancellation tests need
/// this one. Found by scanning the paper generator (v=8, single SCC, rs on
/// arbitrary channels).
lis::LisGraph make_loose_bound_system() {
  lis::LisGraph lis;
  for (int i = 0; i < 8; ++i) lis.add_core();
  lis.add_channel(5, 3);
  lis.add_channel(3, 2, /*relay_stations=*/1);
  lis.add_channel(2, 1, /*relay_stations=*/2);
  lis.add_channel(1, 7, /*relay_stations=*/2);
  lis.add_channel(7, 0);
  lis.add_channel(0, 6);
  lis.add_channel(6, 4);
  lis.add_channel(4, 5);
  lis.add_channel(3, 7);
  lis.add_channel(5, 6);
  lis.add_channel(6, 7);
  return lis;
}

TEST(SizeQueues, PreCancelledExactSolveReportsCancelled) {
  QsOptions options;
  options.method = QsMethod::kBoth;
  options.simplify = false;
  options.exact.cancel = util::CancelToken::after_ms(0.0);
  const QsReport r = size_queues(make_loose_bound_system(), options);
  ASSERT_TRUE(r.exact.has_value());
  EXPECT_FALSE(r.exact->finished);
  EXPECT_TRUE(r.exact->cancelled);
  EXPECT_EQ(r.exact->nodes_explored, 0);  // stopped at the probe boundary
  // The heuristic path does not consult the exact solver's token, so sizing
  // still lands a feasible repair.
  ASSERT_TRUE(r.heuristic.has_value());
}

TEST(SizeQueues, NodeBudgetCutOffIsDeterministicAndNotCancelled) {
  QsOptions options;
  options.method = QsMethod::kExact;
  options.simplify = false;
  options.exact.max_nodes = 1;
  const QsReport r = size_queues(make_loose_bound_system(), options);
  ASSERT_TRUE(r.exact.has_value());
  EXPECT_FALSE(r.exact->finished);
  EXPECT_FALSE(r.exact->cancelled);
  EXPECT_EQ(r.exact->nodes_explored, 1);  // the budget is a pure node count
}

TEST(SizeQueues, NodeCapAndCancelOnSameNodeReportsBoth) {
  // Regression: when the node budget tripped, CoverSearch returned before
  // polling the cancel token, so a request that was both budgeted AND
  // cancelled reported cancelled=false. after_polls(2) makes the overlap
  // deterministic: poll #1 is the binary search's probe-boundary check
  // (not yet fired), poll #2 fires exactly at the node-cap trip.
  QsOptions options;
  options.method = QsMethod::kExact;
  options.simplify = false;
  options.exact.max_nodes = 2;
  options.exact.cancel = util::CancelToken::after_polls(2);
  const QsReport r = size_queues(make_loose_bound_system(), options);
  ASSERT_TRUE(r.exact.has_value());
  EXPECT_FALSE(r.exact->finished);
  EXPECT_TRUE(r.exact->cancelled);
  // The extra poll must not move the cut-off point: still exactly max_nodes.
  EXPECT_EQ(r.exact->nodes_explored, 2);
}

TEST(SizeQueues, LooseBoundSystemStillProvesWithFullBudget) {
  // Sanity for the fixture above: with no budget the search probes a few
  // nodes and proves; the simplified path collapses the instance entirely.
  QsOptions options;
  options.method = QsMethod::kBoth;
  options.simplify = false;
  const QsReport r = size_queues(make_loose_bound_system(), options);
  ASSERT_TRUE(r.exact.has_value());
  EXPECT_TRUE(r.exact->finished);
  EXPECT_GT(r.exact->nodes_explored, 0);
  EXPECT_LE(r.exact->total_extra_tokens, r.heuristic->total_extra_tokens);
  EXPECT_EQ(r.achieved_mst, r.problem.theta_ideal);
}

TEST(SizeQueues, WithoutSimplification) {
  QsOptions options;
  options.method = QsMethod::kBoth;
  options.simplify = false;
  const QsReport r = size_queues(lis::make_fig15_counterexample(), options);
  EXPECT_EQ(r.achieved_mst, Rational(5, 6));
  ASSERT_TRUE(r.exact.has_value());
  ASSERT_TRUE(r.heuristic.has_value());
  EXPECT_LE(r.exact->total_extra_tokens, r.heuristic->total_extra_tokens);
}

class QueueSizingOnGeneratedSystems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueSizingOnGeneratedSystems, RestoresIdealMst) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(8, 20);
    params.sccs = rng.uniform_int(2, 4);
    params.min_cycles = rng.uniform_int(1, 3);
    params.relay_stations = rng.uniform_int(1, 5);
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    const lis::LisGraph lis = gen::generate(params, rng);

    QsOptions options;
    options.method = QsMethod::kBoth;
    options.exact.timeout_ms = 10000;
    const QsReport report = size_queues(lis, options);

    // With scc insertion the ideal MST is 1 and sizing must recover it.
    EXPECT_EQ(report.problem.theta_ideal, Rational(1));
    EXPECT_EQ(report.achieved_mst, Rational(1)) << "sizing failed to restore ideal MST";

    ASSERT_TRUE(report.heuristic.has_value());
    ASSERT_TRUE(report.exact.has_value());
    if (report.exact->finished) {
      EXPECT_LE(report.exact->total_extra_tokens, report.heuristic->total_extra_tokens);
      // Applying the exact solution must also restore the ideal MST.
      const lis::LisGraph sized =
          apply_solution(lis, report.problem, report.exact->weights);
      EXPECT_EQ(lis::practical_mst(sized), Rational(1));
    }
    // Applying the heuristic solution restores the ideal MST too.
    const lis::LisGraph sized_h =
        apply_solution(lis, report.problem, report.heuristic->weights);
    EXPECT_EQ(lis::practical_mst(sized_h), Rational(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueSizingOnGeneratedSystems,
                         ::testing::Values(2, 4, 8, 16, 32));

class CollapseEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollapseEquivalence, CollapsedSolutionsAreValidUpperBounds) {
  // The SCC-collapse fast path restricts the sizable queues to inter-SCC
  // channels, so its optimum can exceed the full instance's optimum (which
  // may exploit shared intra-SCC queues) — but it must always restore the
  // ideal MST and never beat the full optimum.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(8, 14);
    params.sccs = rng.uniform_int(2, 4);
    params.min_cycles = rng.uniform_int(1, 2);
    params.relay_stations = rng.uniform_int(1, 4);
    params.policy = gen::RsPolicy::kScc;
    const lis::LisGraph lis = gen::generate(params, rng);

    QsOptions with;
    with.method = QsMethod::kExact;
    with.build.allow_scc_collapse = true;
    QsOptions without = with;
    without.build.allow_scc_collapse = false;

    const QsReport a = size_queues(lis, with);
    const QsReport b = size_queues(lis, without);
    if (a.problem.has_degradation()) {
      EXPECT_TRUE(a.problem.scc_collapsed);
    }
    EXPECT_FALSE(b.problem.scc_collapsed);
    ASSERT_TRUE(a.exact.has_value());
    ASSERT_TRUE(b.exact.has_value());
    ASSERT_TRUE(a.exact->finished);
    ASSERT_TRUE(b.exact->finished);
    EXPECT_GE(a.exact->total_extra_tokens, b.exact->total_extra_tokens);
    EXPECT_EQ(a.achieved_mst, b.achieved_mst);
    // The collapsed instance must never enumerate more cycles.
    EXPECT_LE(a.problem.cycles_enumerated, b.problem.cycles_enumerated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseEquivalence, ::testing::Values(5, 15, 25));

/// True minimum extra tokens over ALL queue assignments (brute force over
/// every channel, not just the solver's candidates), bounded by `cap` extra
/// tokens total.
std::int64_t brute_force_min_tokens(const lis::LisGraph& lis, std::int64_t cap) {
  const Rational ideal = lis::ideal_mst(lis);
  const auto channels = static_cast<lis::ChannelId>(lis.num_channels());
  std::int64_t best = cap + 1;
  std::vector<int> extra(lis.num_channels(), 0);
  const std::function<void(lis::ChannelId, std::int64_t)> recurse =
      [&](lis::ChannelId ch, std::int64_t used) {
        if (used >= best) return;
        if (ch == channels) {
          lis::LisGraph sized = lis;
          for (lis::ChannelId c = 0; c < channels; ++c) {
            sized.set_queue_capacity(c, lis.channel(c).queue_capacity + extra[c]);
          }
          if (lis::practical_mst(sized) >= ideal) best = used;
          return;
        }
        for (int w = 0; used + w <= std::min(best - 1, cap); ++w) {
          extra[static_cast<std::size_t>(ch)] = w;
          recurse(ch + 1, used + w);
        }
        extra[static_cast<std::size_t>(ch)] = 0;
      };
  recurse(0, 0);
  return best;
}

class ExactVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBruteForce, SolverMatchesExhaustiveQueueSearch) {
  // End-to-end ground truth: on tiny systems the whole pipeline (cycle
  // enumeration -> deficits -> TD -> exact solver) must find the same
  // minimum total extra queue slots as exhaustive search over assignments.
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(3, 6);
    params.sccs = rng.uniform_int(1, 2);
    params.min_cycles = rng.uniform_int(0, 2);
    params.relay_stations = rng.uniform_int(1, 3);
    params.policy = gen::RsPolicy::kAny;
    const lis::LisGraph system = gen::generate(params, rng);

    QsOptions options;
    options.method = QsMethod::kExact;
    options.build.allow_scc_collapse = false;  // compare the full problem
    const QsReport report = size_queues(system, options);
    ASSERT_TRUE(report.exact.has_value());
    ASSERT_TRUE(report.exact->finished);

    const std::int64_t cap = report.exact->total_extra_tokens;
    const std::int64_t truth = brute_force_min_tokens(system, cap);
    EXPECT_EQ(report.exact->total_extra_tokens, truth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForce, ::testing::Values(3, 7, 11, 13));

}  // namespace
}  // namespace lid::core
