// The exact-rational simplex, the branch-and-bound ILP, and the MILP
// formulation of queue sizing (the Lu–Koh baseline).
#include <gtest/gtest.h>

#include <functional>

#include "core/exact.hpp"
#include "core/exact_milp.hpp"
#include "core/heuristic.hpp"
#include "core/qs_problem.hpp"
#include "gen/generator.hpp"
#include "milp/ilp.hpp"
#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace lid::milp {
namespace {

using util::Rational;

TEST(Simplex, SolvesATextbookLp) {
  // min -3x - 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig).
  LinearProgram lp;
  lp.objective = {Rational(-3), Rational(-5)};
  lp.add_constraint({Rational(1), Rational(0)}, Relation::kLessEq, Rational(4));
  lp.add_constraint({Rational(0), Rational(2)}, Relation::kLessEq, Rational(12));
  lp.add_constraint({Rational(3), Rational(2)}, Relation::kLessEq, Rational(18));
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(-36));
  EXPECT_EQ(r.solution[0], Rational(2));
  EXPECT_EQ(r.solution[1], Rational(6));
}

TEST(Simplex, HandlesGreaterEqAndEquality) {
  // min x + y  s.t.  x + y >= 3, x - y == 1  ->  x = 2, y = 1.
  LinearProgram lp;
  lp.objective = {Rational(1), Rational(1)};
  lp.add_constraint({Rational(1), Rational(1)}, Relation::kGreaterEq, Rational(3));
  lp.add_constraint({Rational(1), Rational(-1)}, Relation::kEqual, Rational(1));
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(3));
  EXPECT_EQ(r.solution[0], Rational(2));
  EXPECT_EQ(r.solution[1], Rational(1));
}

TEST(Simplex, DetectsInfeasibility) {
  // x >= 2 and x <= 1 cannot both hold.
  LinearProgram lp;
  lp.objective = {Rational(1)};
  lp.add_constraint({Rational(1)}, Relation::kGreaterEq, Rational(2));
  lp.add_constraint({Rational(1)}, Relation::kLessEq, Rational(1));
  EXPECT_EQ(solve_lp(lp).status, LpResult::Status::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with only x >= 0: unbounded below.
  LinearProgram lp;
  lp.objective = {Rational(-1)};
  lp.add_constraint({Rational(1)}, Relation::kGreaterEq, Rational(0));
  EXPECT_EQ(solve_lp(lp).status, LpResult::Status::kUnbounded);
}

TEST(Simplex, NegativeRhsIsNormalized) {
  // -x <= -2  is  x >= 2.
  LinearProgram lp;
  lp.objective = {Rational(1)};
  lp.add_constraint({Rational(-1)}, Relation::kLessEq, Rational(-2));
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_EQ(r.solution[0], Rational(2));
}

TEST(Simplex, ExactFractionalOptimum) {
  // min x + y  s.t.  2x + y >= 1, x + 2y >= 1: optimum at x = y = 1/3.
  LinearProgram lp;
  lp.objective = {Rational(1), Rational(1)};
  lp.add_constraint({Rational(2), Rational(1)}, Relation::kGreaterEq, Rational(1));
  lp.add_constraint({Rational(1), Rational(2)}, Relation::kGreaterEq, Rational(1));
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(2, 3));
  EXPECT_EQ(r.solution[0], Rational(1, 3));
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic degenerate LP makes naive pivot rules cycle forever;
  // Bland's rule must terminate at the optimum -1/20.
  //   min -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7
  //   s.t. 1/4 x4 - 60 x5 - 1/25 x6 + 9 x7 <= 0
  //        1/2 x4 - 90 x5 - 1/50 x6 + 3 x7 <= 0
  //        x6 <= 1
  LinearProgram lp;
  lp.objective = {Rational(-3, 4), Rational(150), Rational(-1, 50), Rational(6)};
  lp.add_constraint({Rational(1, 4), Rational(-60), Rational(-1, 25), Rational(9)},
                    Relation::kLessEq, Rational(0));
  lp.add_constraint({Rational(1, 2), Rational(-90), Rational(-1, 50), Rational(3)},
                    Relation::kLessEq, Rational(0));
  lp.add_constraint({Rational(0), Rational(0), Rational(1), Rational(0)},
                    Relation::kLessEq, Rational(1));
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(-1, 20));
  EXPECT_EQ(r.solution[2], Rational(1));  // x6 at its bound
}

TEST(Simplex, DegenerateRedundantEqualities) {
  // Redundant equalities leave zero-level artificials after phase 1; the
  // solver must still reach the optimum.
  LinearProgram lp;
  lp.objective = {Rational(1), Rational(2)};
  lp.add_constraint({Rational(1), Rational(1)}, Relation::kEqual, Rational(4));
  lp.add_constraint({Rational(2), Rational(2)}, Relation::kEqual, Rational(8));  // redundant
  lp.add_constraint({Rational(1), Rational(0)}, Relation::kLessEq, Rational(3));
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpResult::Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(5));  // x = 3, y = 1
}

TEST(Simplex, RejectsMalformedConstraints) {
  LinearProgram lp;
  lp.objective = {Rational(1), Rational(1)};
  lp.add_constraint({Rational(1)}, Relation::kGreaterEq, Rational(1));  // too narrow
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);
}

TEST(Ilp, BranchesToIntegrality) {
  // The fractional LP optimum above (1/3, 1/3) must round up to total 1.
  LinearProgram lp;
  lp.objective = {Rational(1), Rational(1)};
  lp.add_constraint({Rational(2), Rational(1)}, Relation::kGreaterEq, Rational(1));
  lp.add_constraint({Rational(1), Rational(2)}, Relation::kGreaterEq, Rational(1));
  const IlpResult r = solve_ilp(lp);
  ASSERT_EQ(r.status, IlpResult::Status::kOptimal);
  EXPECT_EQ(r.objective, Rational(1));
  EXPECT_EQ(r.solution[0] + r.solution[1], 1);
}

TEST(Ilp, OddCycleCoverNeedsRoundedHalf) {
  // Vertex cover LP of a 5-cycle relaxes to 5/2; the ILP needs 3.
  LinearProgram lp;
  lp.objective.assign(5, Rational(1));
  for (int i = 0; i < 5; ++i) {
    std::vector<Rational> coeffs(5, Rational(0));
    coeffs[static_cast<std::size_t>(i)] = Rational(1);
    coeffs[static_cast<std::size_t>((i + 1) % 5)] = Rational(1);
    lp.add_constraint(std::move(coeffs), Relation::kGreaterEq, Rational(1));
  }
  const LpResult relaxed = solve_lp(lp);
  ASSERT_EQ(relaxed.status, LpResult::Status::kOptimal);
  EXPECT_EQ(relaxed.objective, Rational(5, 2));
  const IlpResult integral = solve_ilp(lp);
  ASSERT_EQ(integral.status, IlpResult::Status::kOptimal);
  EXPECT_EQ(integral.objective, Rational(3));
}

TEST(Ilp, ReportsInfeasibility) {
  LinearProgram lp;
  lp.objective = {Rational(1)};
  lp.add_constraint({Rational(1)}, Relation::kGreaterEq, Rational(2));
  lp.add_constraint({Rational(1)}, Relation::kLessEq, Rational(1));
  EXPECT_EQ(solve_ilp(lp).status, IlpResult::Status::kInfeasible);
}

TEST(Ilp, HonorsNodeCap) {
  LinearProgram lp;
  lp.objective.assign(8, Rational(1));
  util::Rng rng(12);
  for (int c = 0; c < 12; ++c) {
    std::vector<Rational> coeffs(8, Rational(0));
    for (int k = 0; k < 3; ++k) coeffs[rng.uniform_index(8)] = Rational(1);
    lp.add_constraint(std::move(coeffs), Relation::kGreaterEq, Rational(2));
  }
  IlpOptions options;
  options.max_nodes = 2;
  const IlpResult r = solve_ilp(lp, options);
  EXPECT_TRUE(r.status == IlpResult::Status::kCutOff ||
              r.status == IlpResult::Status::kOptimal);
}

class IlpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpVsBruteForce, OnRandomCoveringPrograms) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    const int vars = rng.uniform_int(2, 4);
    const int cons = rng.uniform_int(1, 5);
    LinearProgram lp;
    lp.objective.assign(static_cast<std::size_t>(vars), Rational(1));
    std::vector<std::vector<int>> rows;
    std::vector<int> rhs;
    for (int c = 0; c < cons; ++c) {
      std::vector<Rational> coeffs(static_cast<std::size_t>(vars), Rational(0));
      std::vector<int> row(static_cast<std::size_t>(vars), 0);
      bool any = false;
      for (int j = 0; j < vars; ++j) {
        if (rng.flip(0.6)) {
          coeffs[static_cast<std::size_t>(j)] = Rational(1);
          row[static_cast<std::size_t>(j)] = 1;
          any = true;
        }
      }
      if (!any) {
        coeffs[0] = Rational(1);
        row[0] = 1;
      }
      const int d = rng.uniform_int(1, 3);
      lp.add_constraint(std::move(coeffs), Relation::kGreaterEq, Rational(d));
      rows.push_back(std::move(row));
      rhs.push_back(d);
    }
    const IlpResult ilp = solve_ilp(lp);
    ASSERT_EQ(ilp.status, IlpResult::Status::kOptimal);

    // Brute force over bounded assignments (max rhs bounds any single var).
    std::int64_t best = 1000;
    std::vector<int> w(static_cast<std::size_t>(vars), 0);
    const std::function<void(int, std::int64_t)> rec = [&](int j, std::int64_t used) {
      if (used >= best) return;
      if (j == vars) {
        for (std::size_t c = 0; c < rows.size(); ++c) {
          int got = 0;
          for (int k = 0; k < vars; ++k) got += rows[c][static_cast<std::size_t>(k)] * w[static_cast<std::size_t>(k)];
          if (got < rhs[c]) return;
        }
        best = used;
        return;
      }
      for (int v = 0; v <= 3; ++v) {
        w[static_cast<std::size_t>(j)] = v;
        rec(j + 1, used + v);
      }
      w[static_cast<std::size_t>(j)] = 0;
    };
    rec(0, 0);
    EXPECT_EQ(ilp.objective, Rational(best));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpVsBruteForce, ::testing::Values(31, 41, 51, 61));

}  // namespace
}  // namespace lid::milp

namespace lid::core {
namespace {

TEST(ExactMilp, MatchesCombinatorialExactOnKnownInstances) {
  TdInstance inst;
  inst.deficits = {1, 1, 1};
  inst.set_members = {{0, 1}, {1, 2}, {0, 2}};
  const TdSolution upper = solve_heuristic(inst);
  const ExactResult milp = solve_exact_milp(inst, upper);
  const ExactResult bnb = solve_exact(inst, upper);
  ASSERT_TRUE(milp.solution.has_value());
  ASSERT_TRUE(bnb.solution.has_value());
  EXPECT_EQ(milp.solution->total, bnb.solution->total);
}

class MilpVsCombinatorial : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpVsCombinatorial, AgreeOnGeneratedSystems) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(10, 24);
    params.sccs = rng.uniform_int(2, 4);
    params.min_cycles = 2;
    params.relay_stations = rng.uniform_int(2, 6);
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    const QsProblem problem = build_qs_problem(gen::generate(params, rng));
    if (!problem.has_degradation()) continue;
    const TdSolution upper = solve_heuristic(problem.td);
    ExactOptions options;
    options.timeout_ms = 20000;
    const ExactResult milp = solve_exact_milp(problem.td, upper, options);
    const ExactResult bnb = solve_exact(problem.td, upper, options);
    ASSERT_TRUE(bnb.solution.has_value());
    ASSERT_TRUE(milp.solution.has_value()) << "MILP cut off on a small instance";
    EXPECT_EQ(milp.solution->total, bnb.solution->total);
    EXPECT_TRUE(problem.td.is_feasible(milp.solution->weights));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpVsCombinatorial, ::testing::Values(71, 72, 73));

}  // namespace
}  // namespace lid::core
