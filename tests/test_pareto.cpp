// Budgeted (partial) queue sizing and the tokens-vs-throughput frontier.
#include <gtest/gtest.h>

#include "core/pareto.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/paper_systems.hpp"
#include "soc/cofdm.hpp"
#include "util/rng.hpp"

namespace lid::core {
namespace {

using util::Rational;

TEST(TargetMst, LoweredTargetCostsNoMoreThanFullRepair) {
  lis::LisGraph lis = lis::make_fig15_counterexample();
  QsOptions full;
  full.method = QsMethod::kExact;
  const QsReport full_report = size_queues(lis, full);

  QsOptions partial = full;
  partial.build.target_mst = Rational(4, 5);  // between 3/4 and 5/6
  const QsReport partial_report = size_queues(lis, partial);
  ASSERT_TRUE(partial_report.exact.has_value());
  EXPECT_LE(partial_report.exact->total_extra_tokens, full_report.exact->total_extra_tokens);
  EXPECT_GE(partial_report.achieved_mst, Rational(4, 5));
}

TEST(TargetMst, TargetAboveIdealIsClamped) {
  QsBuildOptions build;
  build.target_mst = Rational(2);
  const QsProblem problem = build_qs_problem(lis::make_two_core_example(), build);
  EXPECT_EQ(problem.theta_target, Rational(1));
}

TEST(TargetMst, TargetBelowPracticalNeedsNothing) {
  QsBuildOptions build;
  build.target_mst = Rational(1, 2);  // below the practical 2/3
  const QsProblem problem = build_qs_problem(lis::make_two_core_example(), build);
  EXPECT_FALSE(problem.has_degradation());
}

TEST(Pareto, TwoCoreFrontierIsASingleStep) {
  const auto frontier = qs_pareto_frontier(lis::make_two_core_example());
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].extra_tokens, 0);
  EXPECT_EQ(frontier[0].achieved_mst, Rational(2, 3));
  EXPECT_EQ(frontier[1].extra_tokens, 1);
  EXPECT_EQ(frontier[1].achieved_mst, Rational(1));
}

TEST(Pareto, CofdmScenarioFrontier) {
  // Fig. 19 scenario: 0 tokens -> 2/3; the full repair needs 2 tokens for
  // 3/4. One token buys the intermediate level where only C4 is fixed.
  lis::LisGraph lis = soc::build_cofdm();
  lis.set_relay_stations(soc::find_channel(lis, soc::kFEC, soc::kSpread), 1);
  lis.set_relay_stations(soc::find_channel(lis, soc::kSpread, soc::kPilot), 1);
  const auto frontier = qs_pareto_frontier(lis);
  ASSERT_GE(frontier.size(), 2u);
  EXPECT_EQ(frontier.front().extra_tokens, 0);
  EXPECT_EQ(frontier.front().achieved_mst, Rational(2, 3));
  EXPECT_EQ(frontier.back().extra_tokens, 2);
  EXPECT_EQ(frontier.back().achieved_mst, Rational(3, 4));
  if (frontier.size() == 3) {
    EXPECT_EQ(frontier[1].extra_tokens, 1);
    EXPECT_EQ(frontier[1].achieved_mst, Rational(5, 7));
  }
}

class ParetoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParetoProperty, FrontierIsAStrictlyIncreasingStaircase) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(8, 16);
    params.sccs = rng.uniform_int(2, 3);
    params.min_cycles = rng.uniform_int(1, 2);
    params.relay_stations = rng.uniform_int(2, 5);
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    const lis::LisGraph lis = gen::generate(params, rng);
    const auto frontier = qs_pareto_frontier(lis);
    ASSERT_FALSE(frontier.empty());
    EXPECT_EQ(frontier.front().extra_tokens, 0);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
      EXPECT_GT(frontier[i].extra_tokens, frontier[i - 1].extra_tokens);
      EXPECT_GT(frontier[i].achieved_mst, frontier[i - 1].achieved_mst);
    }
    // The frontier ends at the full repair: the ideal MST.
    EXPECT_EQ(frontier.back().achieved_mst, lis::ideal_mst(lis));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoProperty, ::testing::Values(14, 24, 34));

}  // namespace
}  // namespace lid::core
