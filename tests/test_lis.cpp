#include <gtest/gtest.h>

#include "lis/lis_graph.hpp"
#include "lis/paper_systems.hpp"
#include "mg/mcm.hpp"
#include "util/rational.hpp"

namespace lid::lis {
namespace {

using util::Rational;

TEST(LisGraph, BasicConstruction) {
  LisGraph lis;
  const CoreId a = lis.add_core("A");
  const CoreId b = lis.add_core();
  const ChannelId c = lis.add_channel(a, b, 2, 3);
  EXPECT_EQ(lis.num_cores(), 2u);
  EXPECT_EQ(lis.num_channels(), 1u);
  EXPECT_EQ(lis.core_name(a), "A");
  EXPECT_EQ(lis.core_name(b), "core1");
  EXPECT_EQ(lis.channel(c).relay_stations, 2);
  EXPECT_EQ(lis.channel(c).queue_capacity, 3);
  EXPECT_EQ(lis.total_relay_stations(), 2);
}

TEST(LisGraph, RejectsBadParameters) {
  LisGraph lis;
  const CoreId a = lis.add_core();
  const CoreId b = lis.add_core();
  EXPECT_THROW(lis.add_channel(a, b, -1), std::invalid_argument);
  EXPECT_THROW(lis.add_channel(a, b, 0, -1), std::invalid_argument);
  const ChannelId c = lis.add_channel(a, b);
  EXPECT_THROW(lis.set_queue_capacity(c, -1), std::invalid_argument);
  EXPECT_THROW(lis.set_relay_stations(c, -2), std::invalid_argument);
  // q = 0 is representable on purpose: it is a semantic defect the lint
  // layer reports (L001/L002), not a construction error.
  EXPECT_EQ(lis.channel(lis.add_channel(a, b, 0, 0)).queue_capacity, 0);
  lis.set_queue_capacity(c, 0);
  EXPECT_EQ(lis.channel(c).queue_capacity, 0);
}

TEST(LisGraph, SetAllQueueCapacities) {
  LisGraph lis = make_two_core_example();
  lis.set_all_queue_capacities(4);
  EXPECT_EQ(lis.channel(0).queue_capacity, 4);
  EXPECT_EQ(lis.channel(1).queue_capacity, 4);
}

TEST(ExpandIdeal, StructureOfPipelinedChannel) {
  LisGraph lis;
  const CoreId a = lis.add_core("A");
  const CoreId b = lis.add_core("B");
  const ChannelId c = lis.add_channel(a, b, 2);
  const Expansion ex = expand_ideal(lis);
  // A, B plus two relay-station transitions.
  EXPECT_EQ(ex.graph.num_transitions(), 4u);
  EXPECT_EQ(ex.graph.num_places(), 3u);  // 3 forward hops, no backedges
  const auto& fwd = ex.forward_places[static_cast<std::size_t>(c)];
  ASSERT_EQ(fwd.size(), 3u);
  // First hop carries A's initial output; relay-station hops start void.
  EXPECT_EQ(ex.graph.tokens(fwd[0]), 1);
  EXPECT_EQ(ex.graph.tokens(fwd[1]), 0);
  EXPECT_EQ(ex.graph.tokens(fwd[2]), 0);
  EXPECT_EQ(ex.queue_place(c), graph::kInvalidEdge);
  EXPECT_TRUE(ex.backward_places[static_cast<std::size_t>(c)].empty());
  // Expansion of an ideal LIS is a valid LIS marked graph.
  EXPECT_NO_THROW(ex.graph.validate_lis_structure());
}

TEST(ExpandDoubled, BackedgeTokensFollowThePaperModel) {
  LisGraph lis;
  const CoreId a = lis.add_core("A");
  const CoreId b = lis.add_core("B");
  const ChannelId c = lis.add_channel(a, b, 2, 3);
  const Expansion ex = expand_doubled(lis);
  const auto& back = ex.backward_places[static_cast<std::size_t>(c)];
  ASSERT_EQ(back.size(), 3u);  // 2 relay-station backedges + queue backedge
  // Hop-level relay-station backedges carry their two slots each.
  EXPECT_EQ(ex.graph.tokens(back[0]), 2);
  EXPECT_EQ(ex.graph.tokens(back[1]), 2);
  // The channel-level queue backedge carries q + 2r = 3 + 4.
  const mg::PlaceId queue = ex.queue_place(c);
  EXPECT_EQ(queue, back.back());
  EXPECT_EQ(ex.graph.tokens(queue), 7);
  // It runs from the destination shell straight back to the source shell.
  EXPECT_EQ(ex.graph.producer(queue), ex.core_transition[static_cast<std::size_t>(b)]);
  EXPECT_EQ(ex.graph.consumer(queue), ex.core_transition[static_cast<std::size_t>(a)]);
  EXPECT_EQ(ex.graph.place_kind(queue), mg::PlaceKind::kBackward);
}

TEST(ExpandDoubled, PlaceChannelMapCoversEverything) {
  const LisGraph lis = make_two_core_example();
  const Expansion ex = expand_doubled(lis);
  ASSERT_EQ(ex.place_channel.size(), ex.graph.num_places());
  for (const ChannelId ch : ex.place_channel) {
    EXPECT_NE(ch, graph::kInvalidEdge);
  }
}

TEST(Mst, SelfLoopChannel) {
  LisGraph lis;
  const CoreId a = lis.add_core();
  lis.add_channel(a, a);
  EXPECT_EQ(ideal_mst(lis), Rational(1));
  EXPECT_EQ(practical_mst(lis), Rational(1));
  lis.set_relay_stations(0, 1);
  // One relay station on a self-loop: cycle of 2 places, 1 token.
  EXPECT_EQ(ideal_mst(lis), Rational(1, 2));
}

TEST(Mst, UplinkFasterThanDownlink) {
  // Sec. III-C: when a faster SCC feeds a slower one, the slower SCC sets
  // the MST of the whole system.
  LisGraph lis;
  const CoreId a0 = lis.add_core();
  const CoreId a1 = lis.add_core();
  const CoreId a2 = lis.add_core();
  const CoreId a3 = lis.add_core();
  lis.add_channel(a0, a1);
  lis.add_channel(a1, a2);
  lis.add_channel(a2, a3);
  lis.add_channel(a3, a0, 1);  // uplink ring: 5 places, 4 tokens -> MST 4/5
  const CoreId b0 = lis.add_core();
  const CoreId b1 = lis.add_core();
  const CoreId b2 = lis.add_core();
  lis.add_channel(b0, b1);
  lis.add_channel(b1, b2);
  lis.add_channel(b2, b0, 1);  // downlink ring: 4 places, 3 tokens -> MST 3/4
  lis.add_channel(a0, b0);     // uplink feeds downlink
  EXPECT_EQ(ideal_mst(lis), Rational(3, 4));
}

TEST(PaperSystems, BuildersExposeDocumentedIds) {
  const LisGraph two = make_two_core_example();
  EXPECT_EQ(two.num_cores(), 2u);
  EXPECT_EQ(two.channel(0).relay_stations, 1);
  EXPECT_EQ(two.channel(1).relay_stations, 0);
  const LisGraph fig15 = make_fig15_counterexample();
  EXPECT_EQ(fig15.num_cores(), 5u);
  EXPECT_EQ(fig15.num_channels(), 7u);
  EXPECT_EQ(fig15.total_relay_stations(), 1);
}

TEST(Mst, DoubledNeverExceedsIdeal) {
  // θ(d[G]) <= θ(G) always: backedges only add cycles.
  const LisGraph systems[] = {make_two_core_example(), make_two_core_example_sized(),
                              make_two_core_example_balanced(), make_fig15_counterexample()};
  for (const LisGraph& lis : systems) {
    EXPECT_LE(practical_mst(lis), ideal_mst(lis));
  }
}

}  // namespace
}  // namespace lid::lis
