#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "graph/cycles.hpp"
#include "graph/scc.hpp"
#include "graph/topology.hpp"
#include "util/rng.hpp"

namespace lid::gen {
namespace {

TEST(Generator, RespectsBasicParameters) {
  util::Rng rng(1);
  GeneratorParams params;
  params.vertices = 30;
  params.sccs = 3;
  params.min_cycles = 2;
  params.relay_stations = 5;
  params.queue_capacity = 2;
  const lis::LisGraph lis = generate(params, rng);
  EXPECT_EQ(lis.num_cores(), 30u);
  EXPECT_EQ(lis.total_relay_stations(), 5);
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    EXPECT_EQ(lis.channel(c).queue_capacity, 2);
  }
  const graph::SccPartition part = graph::scc(lis.structure());
  int cyclic = 0;
  for (int c = 0; c < part.count; ++c) {
    if (part.is_cyclic(c, lis.structure())) ++cyclic;
  }
  EXPECT_EQ(cyclic, 3);
}

TEST(Generator, SccPolicyPlacesRelayStationsBetweenSccsOnly) {
  util::Rng rng(2);
  GeneratorParams params;
  params.vertices = 24;
  params.sccs = 4;
  params.relay_stations = 8;
  params.policy = RsPolicy::kScc;
  const lis::LisGraph lis = generate(params, rng);
  const graph::SccPartition part = graph::scc(lis.structure());
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    const lis::Channel& ch = lis.channel(c);
    if (ch.relay_stations > 0) {
      EXPECT_NE(part.comp_of[static_cast<std::size_t>(ch.src)],
                part.comp_of[static_cast<std::size_t>(ch.dst)]);
    }
  }
}

TEST(Generator, EachSccGetsItsExtraCycles) {
  util::Rng rng(3);
  GeneratorParams params;
  params.vertices = 20;
  params.sccs = 2;
  params.min_cycles = 4;
  params.relay_stations = 0;
  const lis::LisGraph lis = generate(params, rng);
  // Each SCC has a Hamiltonian cycle plus 4 chords: at least 5 cycles each.
  const graph::SccPartition part = graph::scc(lis.structure());
  for (int comp = 0; comp < part.count; ++comp) {
    if (!part.is_cyclic(comp, lis.structure())) continue;
    std::size_t count = 0;
    graph::for_each_cycle(
        lis.structure(),
        [&](const graph::Cycle&) {
          ++count;
          return count < 100000;
        },
        [&](graph::EdgeId e) {
          return part.comp_of[static_cast<std::size_t>(lis.structure().edge(e).src)] == comp &&
                 part.comp_of[static_cast<std::size_t>(lis.structure().edge(e).dst)] == comp;
        });
    EXPECT_GE(count, 5u);
  }
}

TEST(Generator, NoReconvergenceMeansArborescenceBetweenSccs) {
  util::Rng rng(4);
  GeneratorParams params;
  params.vertices = 20;
  params.sccs = 5;
  params.reconvergent = false;
  params.relay_stations = 0;
  const lis::LisGraph lis = generate(params, rng);
  // Condensation must be a forest: #inter-SCC edges == sccs - 1.
  const graph::Condensation cond = graph::condense(lis.structure());
  EXPECT_EQ(cond.dag.num_edges(), 4u);
}

TEST(Generator, DeterministicGivenSeed) {
  GeneratorParams params;
  params.vertices = 15;
  params.sccs = 3;
  params.relay_stations = 4;
  util::Rng rng1(9);
  util::Rng rng2(9);
  const lis::LisGraph a = generate(params, rng1);
  const lis::LisGraph b = generate(params, rng2);
  ASSERT_EQ(a.num_channels(), b.num_channels());
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(a.num_channels()); ++c) {
    EXPECT_EQ(a.channel(c).src, b.channel(c).src);
    EXPECT_EQ(a.channel(c).dst, b.channel(c).dst);
    EXPECT_EQ(a.channel(c).relay_stations, b.channel(c).relay_stations);
  }
}

TEST(Generator, ValidatesParameters) {
  util::Rng rng(5);
  GeneratorParams params;
  params.vertices = 3;
  params.sccs = 5;  // more SCCs than vertices
  EXPECT_THROW(generate(params, rng), std::invalid_argument);
  params.sccs = 1;
  params.relay_stations = -1;
  EXPECT_THROW(generate(params, rng), std::invalid_argument);
}

TEST(Generator, TreeIsATree) {
  util::Rng rng(6);
  const lis::LisGraph tree = generate_tree(12, 4, rng);
  EXPECT_EQ(tree.num_cores(), 12u);
  EXPECT_EQ(tree.num_channels(), 11u);
  EXPECT_EQ(tree.total_relay_stations(), 4);
  EXPECT_EQ(graph::classify(tree.structure()), graph::TopologyClass::kTree);
}

TEST(Generator, CactusIsACactus) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const lis::LisGraph cactus = generate_cactus(4, 5, 3, rng);
    EXPECT_EQ(graph::classify(cactus.structure()), graph::TopologyClass::kCactusScc);
  }
}

TEST(Generator, ExpectedEdgeCountsMatchTableIV) {
  // Table IV row 1: v=50, s=10, c=2 gives ~82 edges with ~12 inter-SCC.
  util::Rng rng(8);
  double edges = 0.0;
  double inter = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    GeneratorParams params;
    params.vertices = 50;
    params.sccs = 10;
    params.min_cycles = 2;
    params.relay_stations = 10;
    params.reconvergent = true;
    params.policy = RsPolicy::kScc;
    const lis::LisGraph lis = generate(params, rng);
    edges += static_cast<double>(lis.num_channels());
    inter += static_cast<double>(graph::condense(lis.structure()).dag.num_edges());
  }
  edges /= trials;
  inter /= trials;
  EXPECT_NEAR(edges, 82.0, 3.0);
  EXPECT_NEAR(inter, 12.0, 1.5);
}

}  // namespace
}  // namespace lid::gen
