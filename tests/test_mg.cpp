#include <gtest/gtest.h>

#include "graph/cycles.hpp"
#include "mg/marked_graph.hpp"
#include "mg/mcm.hpp"
#include "mg/simulate.hpp"
#include "util/rng.hpp"

namespace lid::mg {
namespace {

using util::Rational;

/// A strongly connected marked graph: ring of `n` shells with one token per
/// place except `voids` places with zero tokens (as if relay stations).
MarkedGraph token_ring(int n, int voids) {
  MarkedGraph g;
  std::vector<TransitionId> t;
  for (int i = 0; i < n; ++i) {
    t.push_back(g.add_transition(i < voids ? TransitionKind::kRelayStation
                                           : TransitionKind::kShell));
  }
  for (int i = 0; i < n; ++i) {
    // Place from t[i] to t[i+1]; zero tokens when the producer is a relay
    // station (it outputs τ first).
    const bool rs = g.transition_kind(t[static_cast<std::size_t>(i)]) ==
                    TransitionKind::kRelayStation;
    g.add_place(t[static_cast<std::size_t>(i)],
                t[static_cast<std::size_t>((i + 1) % n)], rs ? 0 : 1);
  }
  return g;
}

TEST(MarkedGraph, BasicAccessors) {
  MarkedGraph g;
  const TransitionId a = g.add_transition(TransitionKind::kShell, "A");
  const TransitionId b = g.add_transition(TransitionKind::kRelayStation);
  const PlaceId p = g.add_place(a, b, 1);
  EXPECT_EQ(g.num_transitions(), 2u);
  EXPECT_EQ(g.num_places(), 1u);
  EXPECT_EQ(g.transition_name(a), "A");
  EXPECT_EQ(g.transition_kind(b), TransitionKind::kRelayStation);
  EXPECT_EQ(g.producer(p), a);
  EXPECT_EQ(g.consumer(p), b);
  EXPECT_EQ(g.tokens(p), 1);
  g.set_tokens(p, 3);
  EXPECT_EQ(g.tokens(p), 3);
  g.add_tokens(p, -2);
  EXPECT_EQ(g.tokens(p), 1);
  EXPECT_THROW(g.add_tokens(p, -5), std::invalid_argument);
  EXPECT_THROW(g.add_place(a, b, -1), std::invalid_argument);
}

TEST(MarkedGraph, CycleTokens) {
  const MarkedGraph g = token_ring(4, 1);
  const auto cycles = graph::enumerate_cycles(g.structure()).cycles;
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(g.cycle_tokens(cycles.front()), 3);
}

TEST(MarkedGraph, ValidateLisStructureAcceptsRing) {
  EXPECT_NO_THROW(token_ring(5, 1).validate_lis_structure());
}

TEST(MarkedGraph, ValidateRejectsTokenFreeCycle) {
  MarkedGraph g = token_ring(3, 3);  // all void: deadlocked ring
  EXPECT_THROW(g.validate_lis_structure(), std::invalid_argument);
}

TEST(MarkedGraph, ValidateRejectsShellWithZeroTokenInput) {
  MarkedGraph g;
  const TransitionId a = g.add_transition(TransitionKind::kShell);
  const TransitionId b = g.add_transition(TransitionKind::kShell);
  g.add_place(a, b, 0);  // a shell's incoming forward place must hold 1
  g.add_place(b, a, 1);
  EXPECT_THROW(g.validate_lis_structure(), std::invalid_argument);
}

TEST(MarkedGraph, ValidateRejectsBranchingRelayStation) {
  MarkedGraph g;
  const TransitionId a = g.add_transition(TransitionKind::kShell);
  const TransitionId rs = g.add_transition(TransitionKind::kRelayStation);
  const TransitionId b = g.add_transition(TransitionKind::kShell);
  g.add_place(a, rs, 1);
  g.add_place(rs, b, 0);
  g.add_place(rs, a, 0);  // second forward output: not a relay station
  EXPECT_THROW(g.validate_lis_structure(), std::invalid_argument);
}

TEST(Mcm, RingMeans) {
  EXPECT_EQ(*min_cycle_mean_karp(token_ring(6, 1)), Rational(5, 6));
  EXPECT_EQ(*min_cycle_mean_karp(token_ring(6, 0)), Rational(1));
  EXPECT_EQ(*min_cycle_mean_karp(token_ring(2, 1)), Rational(1, 2));
}

TEST(Mcm, AcyclicReturnsNothing) {
  MarkedGraph g;
  const TransitionId a = g.add_transition(TransitionKind::kShell);
  const TransitionId b = g.add_transition(TransitionKind::kShell);
  g.add_place(a, b, 1);
  EXPECT_FALSE(min_cycle_mean_karp(g).has_value());
  EXPECT_FALSE(min_cycle_mean_howard(g).has_value());
  EXPECT_EQ(mst(g), Rational(1));
}

TEST(Mcm, HowardReturnsCriticalCycle) {
  MarkedGraph g = token_ring(6, 1);
  const auto mc = min_cycle_mean_howard(g);
  ASSERT_TRUE(mc.has_value());
  EXPECT_EQ(mc->mean, Rational(5, 6));
  EXPECT_EQ(mc->cycle.size(), 6u);
  EXPECT_EQ(g.cycle_tokens(mc->cycle), 5);
}

TEST(Mcm, CycleTimeIsReciprocal) {
  EXPECT_EQ(cycle_time(token_ring(6, 1)), Rational(6, 5));
  EXPECT_THROW(cycle_time(token_ring(3, 3)), std::invalid_argument);  // dead
}

TEST(Mcm, MstTakesSlowestScc) {
  // Ring with mean 2/3 feeding a ring with mean 3/4: MST is 2/3.
  MarkedGraph g;
  std::vector<TransitionId> t;
  for (int i = 0; i < 7; ++i) t.push_back(g.add_transition(TransitionKind::kShell));
  g.add_place(t[0], t[1], 1);
  g.add_place(t[1], t[2], 1);
  g.add_place(t[2], t[0], 0);
  g.add_place(t[3], t[4], 1);
  g.add_place(t[4], t[5], 1);
  g.add_place(t[5], t[6], 1);
  g.add_place(t[6], t[3], 0);
  g.add_place(t[2], t[3], 1);  // uplink -> downlink
  EXPECT_EQ(mst(g), Rational(2, 3));
}

TEST(Mcm, DeadlockedGraphThrowsButAllowingVariantReturnsZero) {
  MarkedGraph g = token_ring(3, 3);
  EXPECT_THROW(mst(g), std::invalid_argument);
  EXPECT_EQ(mst_allowing_deadlock(g), Rational(0));
}

/// Random strongly connected LIS-like marked graph: a Hamiltonian ring plus
/// chords; some transitions act as relay stations (zero-token outputs).
MarkedGraph random_strong_graph(util::Rng& rng) {
  const int n = rng.uniform_int(3, 9);
  MarkedGraph g;
  std::vector<TransitionId> t;
  for (int i = 0; i < n; ++i) {
    t.push_back(g.add_transition(rng.flip(0.25) ? TransitionKind::kRelayStation
                                                : TransitionKind::kShell));
  }
  const auto producer_tokens = [&](int i) {
    return g.transition_kind(t[static_cast<std::size_t>(i)]) == TransitionKind::kShell ? 1 : 0;
  };
  for (int i = 0; i < n; ++i) {
    g.add_place(t[static_cast<std::size_t>(i)], t[static_cast<std::size_t>((i + 1) % n)],
                producer_tokens(i));
  }
  const int chords = rng.uniform_int(0, n);
  for (int c = 0; c < chords; ++c) {
    const int u = rng.uniform_int(0, n - 1);
    const int v = rng.uniform_int(0, n - 1);
    if (u == v) continue;
    g.add_place(t[static_cast<std::size_t>(u)], t[static_cast<std::size_t>(v)],
                producer_tokens(u));
  }
  return g;
}

/// Exact minimum cycle mean by enumerating all elementary cycles.
Rational brute_force_mcm(const MarkedGraph& g) {
  Rational best(1000000);
  for (const auto& c : graph::enumerate_cycles(g.structure()).cycles) {
    best = Rational::min(best, Rational(g.cycle_tokens(c), static_cast<std::int64_t>(c.size())));
  }
  return best;
}

class McmCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McmCrossCheck, KarpHowardAndEnumerationAgree) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const MarkedGraph g = random_strong_graph(rng);
    const auto karp = min_cycle_mean_karp(g);
    ASSERT_TRUE(karp.has_value());
    const auto howard = min_cycle_mean_howard(g);
    ASSERT_TRUE(howard.has_value());
    const Rational brute = brute_force_mcm(g);
    EXPECT_EQ(*karp, brute);
    EXPECT_EQ(howard->mean, brute);
    // Howard's reported cycle must actually achieve the mean.
    EXPECT_EQ(Rational(g.cycle_tokens(howard->cycle),
                       static_cast<std::int64_t>(howard->cycle.size())),
              brute);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmCrossCheck,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(Simulate, RingThroughputMatchesMst) {
  const MarkedGraph g = token_ring(6, 1);
  const SimulationResult r = simulate(g, 1000);
  ASSERT_TRUE(r.periodic_found);
  EXPECT_EQ(r.throughput, Rational(5, 6));
}

TEST(Simulate, SourceTransitionRunsAtFullRate) {
  MarkedGraph g;
  const TransitionId src = g.add_transition(TransitionKind::kShell);
  const TransitionId dst = g.add_transition(TransitionKind::kShell);
  g.add_place(src, dst, 1);
  // Both transitions fire every step, so the marking recurs immediately and
  // the simulator reports the exact rate from one period.
  const SimulationResult r = simulate(g, 50, src);
  ASSERT_TRUE(r.periodic_found);
  EXPECT_EQ(r.throughput, Rational(1));
  EXPECT_EQ(r.firings[static_cast<std::size_t>(src)],
            r.firings[static_cast<std::size_t>(dst)]);
}

TEST(Simulate, DeadlockedGraphNeverFires) {
  const SimulationResult r = simulate(token_ring(3, 3), 100);
  EXPECT_TRUE(r.periodic_found);
  EXPECT_EQ(r.throughput, Rational(0));
}

TEST(Simulate, ObserverSeesFiringsAndCanStop) {
  const MarkedGraph g = token_ring(4, 1);
  std::size_t calls = 0;
  std::int64_t observed_firings = 0;
  const SimulationResult r =
      simulate(g, 100, 0, [&](std::size_t, const std::vector<char>& fired) {
        for (const char f : fired) observed_firings += f;
        return ++calls < 2;
      });
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(r.steps_run, 2u);
  // The observer saw exactly the firings the result reports.
  std::int64_t total = 0;
  for (const std::int64_t f : r.firings) total += f;
  EXPECT_EQ(observed_firings, total);
}

TEST(Simulate, PreCancelledTokenStopsAtStepZero) {
  const MarkedGraph g = token_ring(6, 1);
  const SimulationResult r =
      simulate(g, 1000, 0, nullptr, util::CancelToken::after_ms(0.0));
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.steps_run, 0u);
  EXPECT_FALSE(r.periodic_found);
}

TEST(Simulate, DefaultTokenNeverCancels) {
  const MarkedGraph g = token_ring(6, 1);
  const SimulationResult r = simulate(g, 1000);
  EXPECT_FALSE(r.cancelled);
  ASSERT_TRUE(r.periodic_found);
}

TEST(Simulate, TokenCountOnCycleIsInvariant) {
  MarkedGraph g = token_ring(5, 2);
  const auto cycle = graph::enumerate_cycles(g.structure()).cycles.front();
  const std::int64_t before = g.cycle_tokens(cycle);
  // Run and capture the marking after some steps through the observer by
  // re-simulating and summing place tokens manually: simulate() does not
  // expose markings, so instead verify via throughput consistency — the
  // invariant implies sustained rate tokens/places.
  const SimulationResult r = simulate(g, 500);
  ASSERT_TRUE(r.periodic_found);
  EXPECT_EQ(r.throughput, Rational(before, static_cast<std::int64_t>(cycle.size())));
}

class SimulationVsAnalysis : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationVsAnalysis, ThroughputEqualsMstOnStrongGraphs) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const MarkedGraph g = random_strong_graph(rng);
    if (mst_allowing_deadlock(g) == Rational(0)) continue;
    const Rational theta = mst(g);
    const SimulationResult r = simulate(g, 20000);
    ASSERT_TRUE(r.periodic_found) << "no recurrence within budget";
    EXPECT_EQ(r.throughput, Rational::min(Rational(1), theta));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationVsAnalysis, ::testing::Values(7, 17, 27, 37));

}  // namespace
}  // namespace lid::mg
