// Cluster mode: the consistent-hash ring, the router's transparency
// (payloads byte-identical to a single server and to direct execution),
// failover with model re-registration, drain/rejoin, silent-restart
// detection, and the connect-vs-mid-request failure split in RetryingClient.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lid_api.hpp"
#include "serve/client.hpp"
#include "serve/cluster.hpp"
#include "serve/faults.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace lid;

constexpr const char* kNetlist =
    "core A\ncore B\ncore C\n"
    "channel A -> B\nchannel B -> C rs=1\nchannel C -> A\n";

std::string unique_path(const std::string& stem) {
  static int counter = 0;
  return ::testing::TempDir() + stem + "-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

/// Direct (in-process, no socket) execution of one request line — the
/// byte-identity baseline of invariant 14.
serve::Outcome direct(const std::string& line, serve::Registry* registry = nullptr) {
  const Result<serve::Request> request = serve::parse_request(line);
  EXPECT_TRUE(request.ok()) << line;
  serve::ExecContext context;
  context.registry = registry;
  return serve::execute(*request, {}, context);
}

std::string netlist_request(const char* verb, const std::string& text) {
  util::JsonWriter w;
  w.begin_object().key("verb").value(verb).key("netlist").value(text).end_object();
  return w.str();
}

std::string model_request(const char* verb, const std::string& fingerprint) {
  util::JsonWriter w;
  w.begin_object().key("verb").value(verb).key("model").value(fingerprint).end_object();
  return w.str();
}

std::string error_code_of(const std::string& response) {
  const util::JsonParse parsed = util::json_parse(response);
  if (!parsed || !parsed.value.is_object()) return "<malformed>";
  if (const util::Json* error = parsed.value.find("error");
      error != nullptr && error->is_object()) {
    if (const util::Json* code = error->find("code"); code != nullptr && code->is_string()) {
      return code->as_string();
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// HashRing.

TEST(HashRing, RoutesDeterministicallyWithDistinctFailoverOrder) {
  serve::HashRing ring(64);
  for (int w = 0; w < 4; ++w) ring.add(w);
  EXPECT_EQ(ring.size(), 4u);
  const std::vector<int> order = ring.route("lis-0123456789abcdef", 4);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], ring.primary("lis-0123456789abcdef"));
  EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(), 4u);  // all distinct

  serve::HashRing same(64);
  for (int w = 0; w < 4; ++w) same.add(w);
  for (int k = 0; k < 200; ++k) {
    const std::string key = "key-" + std::to_string(k);
    EXPECT_EQ(ring.primary(key), same.primary(key));
  }
}

TEST(HashRing, SingleWorkerLossMovesAtMostTwoOverNKeys) {
  constexpr int kWorkers = 5;
  constexpr int kKeys = 2'000;
  serve::HashRing ring(64);
  for (int w = 0; w < kWorkers; ++w) ring.add(w);

  std::map<std::string, int> before;
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "model-" + std::to_string(k);
    before[key] = ring.primary(key);
  }
  ring.remove(2);
  int moved = 0;
  for (const auto& [key, owner] : before) {
    const int now = ring.primary(key);
    if (owner == 2) {
      EXPECT_NE(now, 2);  // orphaned keys must move somewhere real
      ++moved;
    } else {
      // Consistent hashing: surviving workers keep their arcs untouched.
      EXPECT_EQ(now, owner) << key;
    }
  }
  // The removed worker owned ~1/N of the keys; 2/N is the contract bound.
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, 2 * kKeys / kWorkers);
}

TEST(HashRing, EmptyRingRoutesNowhere) {
  serve::HashRing ring;
  EXPECT_EQ(ring.primary("anything"), -1);
  EXPECT_TRUE(ring.route("anything", 3).empty());
  ring.add(7);
  ring.remove(7);
  EXPECT_EQ(ring.primary("anything"), -1);
}

// ---------------------------------------------------------------------------
// Cluster over adopted in-process workers.

struct LiveCluster {
  explicit LiveCluster(int workers, serve::FaultPlan fault_on_worker0 = {}) {
    for (int i = 0; i < workers; ++i) {
      serve::ServerOptions options;
      options.unix_socket = unique_path("lid-cluster-worker");
      if (i == 0) options.fault_plan = fault_on_worker0;
      servers.push_back(std::make_unique<serve::Server>(options));
      EXPECT_TRUE(servers.back()->start().ok());
      serve::WorkerSpec spec;
      spec.unix_socket = options.unix_socket;
      spec.spawn = false;
      cluster_options.workers.push_back(spec);
    }
    cluster_options.unix_socket = unique_path("lid-cluster-front");
    cluster_options.probe_interval_ms = 20.0;
    cluster_options.probe_timeout_ms = 500.0;
    cluster_options.eject_after = 2;
    cluster_options.connect_timeout_ms = 500.0;
    cluster_options.forward_timeout_ms = 2'000.0;
    cluster_options.breaker_cooldown_ms = 100.0;
    if (::getenv("LID_TEST_LOG") != nullptr) cluster_options.log = &std::cerr;
    cluster = std::make_unique<serve::Cluster>(cluster_options);
    EXPECT_TRUE(cluster->start().ok());
  }

  ~LiveCluster() {
    cluster->stop();
    for (const std::unique_ptr<serve::Server>& server : servers) server->stop();
  }

  [[nodiscard]] serve::Client connect() const {
    Result<serve::Client> connected =
        serve::Client::connect_unix(cluster_options.unix_socket);
    EXPECT_TRUE(connected.ok());
    return std::move(connected).value();
  }

  serve::ClusterOptions cluster_options;
  std::vector<std::unique_ptr<serve::Server>> servers;
  std::unique_ptr<serve::Cluster> cluster;
};

TEST(Cluster, PayloadsByteIdenticalToSingleServerAndDirect) {
  LiveCluster live(3);
  serve::Client via_cluster = live.connect();

  // One plain single server as the middle term of the identity.
  serve::ServerOptions single_options;
  single_options.unix_socket = unique_path("lid-cluster-single");
  serve::Server single(single_options);
  ASSERT_TRUE(single.start().ok());
  Result<serve::Client> single_connected =
      serve::Client::connect_unix(single_options.unix_socket);
  ASSERT_TRUE(single_connected.ok());
  serve::Client via_single = std::move(single_connected).value();

  const std::vector<std::string> lines = {
      R"({"verb":"ping"})",
      netlist_request("analyze", kNetlist),
      netlist_request("size-queues", kNetlist),
      netlist_request("lint", kNetlist),
      netlist_request("rate-safety", kNetlist),
  };
  for (const std::string& line : lines) {
    const Result<std::string> from_cluster = via_cluster.call(line);
    const Result<std::string> from_single = via_single.call(line);
    ASSERT_TRUE(from_cluster.ok()) << line;
    ASSERT_TRUE(from_single.ok()) << line;
    const Result<std::string> cluster_payload = serve::extract_result(*from_cluster);
    const Result<std::string> single_payload = serve::extract_result(*from_single);
    ASSERT_TRUE(cluster_payload.ok()) << *from_cluster;
    ASSERT_TRUE(single_payload.ok()) << *from_single;
    EXPECT_EQ(*cluster_payload, *single_payload) << line;
    const serve::Outcome baseline = direct(line);
    ASSERT_TRUE(baseline.ok) << line;
    EXPECT_EQ(*cluster_payload, baseline.payload) << line;
  }
  single.stop();
}

TEST(Cluster, DrainedHotModelReRegistersByteIdentically) {
  LiveCluster live(3);
  serve::Client client = live.connect();

  // Register through the router; remember the fingerprint.
  const Result<std::string> registered =
      client.call(netlist_request("register-model", kNetlist));
  ASSERT_TRUE(registered.ok());
  const Result<std::string> reg_payload = serve::extract_result(*registered);
  ASSERT_TRUE(reg_payload.ok()) << *registered;
  const util::JsonParse parsed = util::json_parse(*reg_payload);
  ASSERT_TRUE(parsed && parsed.value.is_object());
  const util::Json* fp = parsed.value.find("model");
  ASSERT_NE(fp, nullptr);
  const std::string fingerprint = fp->as_string();

  // The identity baseline: the same model-addressed request against a fresh
  // direct registry (registered == inline == direct, PR 6's invariant).
  serve::Registry registry{serve::RegistryOptions{}};
  ASSERT_TRUE(direct(netlist_request("register-model", kNetlist), &registry).ok);
  const serve::Outcome baseline = direct(model_request("analyze", fingerprint), &registry);
  ASSERT_TRUE(baseline.ok);

  // Drain every worker in turn. Whichever held the model, the query must
  // keep answering byte-identically — the router re-registers on the
  // failover target; the client never sees unknown_model.
  for (std::size_t i = 0; i < live.servers.size(); ++i) {
    ASSERT_TRUE(live.cluster->drain_worker(i, 5'000.0).ok()) << i;
    const Result<std::string> response = client.call(model_request("analyze", fingerprint));
    ASSERT_TRUE(response.ok()) << i;
    EXPECT_NE(error_code_of(*response), serve::codes::kUnknownModel) << *response;
    const Result<std::string> payload = serve::extract_result(*response);
    ASSERT_TRUE(payload.ok()) << *response;
    EXPECT_EQ(*payload, baseline.payload) << "drained worker " << i;
    ASSERT_TRUE(live.cluster->rejoin_worker(i).ok());
  }

  const util::JsonParse stats = util::json_parse(live.cluster->cluster_stats_json());
  ASSERT_TRUE(stats && stats.value.is_object());
  EXPECT_GE(stats.value.find("reregistrations")->as_int(), 1);
  EXPECT_EQ(stats.value.find("failed")->as_int(), 0);
}

TEST(Cluster, WorkerKilledMidStreamFailsOverTransparently) {
  // Worker 0 drops half its responses (connection shut without writing) —
  // mid-request loss on a worker that still passes probes. With a healthy
  // peer, every request must still answer correctly: drops fail over.
  serve::FaultPlan drops;
  drops.seed = 7;
  drops.drop_p = 0.5;
  LiveCluster live(2, drops);
  serve::Client client = live.connect();

  const serve::Outcome baseline = direct(netlist_request("analyze", kNetlist));
  ASSERT_TRUE(baseline.ok);
  for (int i = 0; i < 8; ++i) {
    util::JsonWriter w;
    w.begin_object().key("id").value(i).key("verb").value("analyze");
    w.key("netlist").value(std::string(kNetlist) + "# variant " + std::to_string(i) + "\n");
    w.end_object();
    const Result<std::string> response = client.call(w.str());
    ASSERT_TRUE(response.ok()) << i;
    const Result<std::string> payload = serve::extract_result(*response);
    ASSERT_TRUE(payload.ok()) << *response;
    EXPECT_EQ(*payload, baseline.payload) << i;  // comments don't change the model
  }
}

TEST(Cluster, AllWorkersDownYieldsStructuredErrorNotAHang) {
  LiveCluster live(1);
  serve::Client client = live.connect();
  ASSERT_TRUE(client.call(R"({"verb":"ping"})").ok());

  live.servers[0]->stop();  // the only worker dies; its socket is unlinked

  util::Timer waited;
  const Result<std::string> response =
      client.call(R"({"id":"gone","verb":"analyze","netlist":"core A\n"})");
  ASSERT_TRUE(response.ok()) << "the router itself must keep answering";
  EXPECT_LT(waited.elapsed_ms(), 10'000.0) << "bounded failure, not a hang";
  EXPECT_EQ(error_code_of(*response), serve::codes::kUpstreamUnavailable) << *response;
  const util::JsonParse parsed = util::json_parse(*response);
  ASSERT_TRUE(parsed && parsed.value.is_object());
  EXPECT_EQ(parsed.value.find("id")->as_string(), "gone");  // id still echoed
}

TEST(Cluster, SilentRestartBumpsGenerationAndCounter) {
  LiveCluster live(2);
  const std::string path = live.cluster_options.workers[1].unix_socket;

  // Replace worker 1 behind the router's back: same socket, new process
  // identity (a fresh Server reports a new start_unix_ms).
  live.servers[1]->stop();
  serve::ServerOptions options;
  options.unix_socket = path;
  serve::Server replacement(options);
  ASSERT_TRUE(replacement.start().ok());

  util::Timer waited;
  std::int64_t silent_restarts = 0;
  while (waited.elapsed_ms() < 10'000.0) {
    const util::JsonParse stats = util::json_parse(live.cluster->cluster_stats_json());
    ASSERT_TRUE(stats && stats.value.is_object());
    silent_restarts = stats.value.find("silent_restarts")->as_int();
    if (silent_restarts >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(silent_restarts, 1) << "the prober must notice the identity change";
  replacement.stop();
}

TEST(Cluster, AggregatedStatsSumWorkersInSingleServerShape) {
  LiveCluster live(3);
  serve::Client client = live.connect();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.call(R"({"verb":"ping"})").ok());
  }
  const Result<std::string> response = client.call(R"({"verb":"stats"})");
  ASSERT_TRUE(response.ok());
  const Result<std::string> payload = serve::extract_result(*response);
  ASSERT_TRUE(payload.ok()) << *response;
  const util::JsonParse stats = util::json_parse(*payload);
  ASSERT_TRUE(stats && stats.value.is_object());
  EXPECT_EQ(stats.value.find("workers")->as_int(), 3);
  EXPECT_EQ(stats.value.find("workers_reachable")->as_int(), 3);
  EXPECT_GE(stats.value.find("executed")->as_int(), 5);  // the pings ran somewhere
  // The merged registry block keeps the single-server keys (loadgen's
  // hit-rate probe reads result.registry.memo_hits / memo_misses).
  const util::Json* registry = stats.value.find("registry");
  ASSERT_NE(registry, nullptr);
  ASSERT_TRUE(registry->is_object());
  EXPECT_NE(registry->find("memo_hits"), nullptr);
  EXPECT_NE(registry->find("memo_misses"), nullptr);
}

// ---------------------------------------------------------------------------
// Satellites: connect timeout, connect_refused vs mid-request counters.

TEST(Session, ConnectTimeoutBoundsFullBacklogConnect) {
  // A listener that never accepts: once its backlog is full, further
  // connects hang forever by default — the connect timeout must bound them.
  const std::string path = unique_path("lid-cluster-backlog");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 0), 0);

  serve::SessionOptions options;
  options.hello = false;
  options.connect_timeout_ms = 100.0;
  bool saw_timeout = false;
  std::vector<serve::Session> pending;  // keep early connects alive
  for (int i = 0; i < 16 && !saw_timeout; ++i) {
    util::Timer waited;
    Result<serve::Session> connected = serve::Session::connect_unix(path, options);
    if (connected.ok()) {
      pending.push_back(std::move(connected).value());
      continue;
    }
    EXPECT_LT(waited.elapsed_ms(), 5'000.0);
    saw_timeout = connected.error().code == ErrorCode::kTimeout;
  }
  EXPECT_TRUE(saw_timeout) << "a full backlog must surface as kTimeout, promptly";
  ::close(listener);
  ::unlink(path.c_str());
}

TEST(Retry, DistinguishesConnectRefusedFromMidRequestLoss) {
  // A socket file with no listener behind it: ECONNREFUSED on every attempt.
  const std::string refused_path = unique_path("lid-cluster-refused");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, refused_path.c_str(), sizeof(addr.sun_path) - 1);
  const int stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stale, 0);
  ASSERT_EQ(::bind(stale, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(stale);  // the path stays; nothing will ever listen

  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0.0;
  policy.max_backoff_ms = 0.0;
  policy.breaker_threshold = 0;
  serve::RetryingClient refused(
      [&] { return serve::Client::connect_unix(refused_path); }, policy);
  EXPECT_FALSE(refused.call(R"({"verb":"ping"})").ok());
  EXPECT_EQ(refused.stats().connect_failures, 3);
  EXPECT_EQ(refused.stats().connect_refused, 3);
  EXPECT_EQ(refused.stats().mid_request_failures, 0);
  ::unlink(refused_path.c_str());

  // A live server that drops every response: connects succeed, requests die
  // mid-flight — the opposite split.
  serve::ServerOptions options;
  options.unix_socket = unique_path("lid-cluster-dropper");
  options.fault_plan.seed = 3;
  options.fault_plan.drop_p = 1.0;
  serve::Server server(options);
  ASSERT_TRUE(server.start().ok());
  serve::RetryingClient dropped(
      [&] { return serve::Client::connect_unix(options.unix_socket); }, policy);
  EXPECT_FALSE(dropped.call(R"({"verb":"ping"})").ok());
  EXPECT_EQ(dropped.stats().connect_failures, 0);
  EXPECT_EQ(dropped.stats().connect_refused, 0);
  EXPECT_EQ(dropped.stats().mid_request_failures, 3);
  server.stop();
}

}  // namespace
