// The static-scheduling baseline (Casu–Macchiarulo): valid for closed
// systems — the replayed schedule runs at θ(G) with zero violations and no
// backpressure — and broken for open systems, where the environment deviates
// and the schedule demands firings the protocol must refuse.
#include <gtest/gtest.h>

#include "core/scheduling.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "lis/paper_systems.hpp"
#include "util/rng.hpp"

namespace lid::core {
namespace {

using util::Rational;

lis::LisGraph pipelined_ring(int n, int rs) {
  lis::LisGraph lis;
  for (int i = 0; i < n; ++i) lis.add_core();
  for (int i = 0; i < n; ++i) {
    lis.add_channel(i, (i + 1) % n, i == 0 ? rs : 0);
  }
  return lis;
}

TEST(Scheduling, RingScheduleMatchesTheIdealMst) {
  const lis::LisGraph ring = pipelined_ring(4, 1);  // θ(G) = 4/5
  const StaticSchedule schedule = compute_static_schedule(ring);
  ASSERT_TRUE(schedule.found);
  EXPECT_EQ(schedule.throughput, Rational(4, 5));
  EXPECT_EQ(schedule.firing.size(), ring.num_cores());
  // Every core fires 4 times per 5-period window in steady state.
  for (lis::CoreId v = 0; v < 4; ++v) {
    int fires = 0;
    for (std::size_t t = schedule.transient; t < schedule.transient + schedule.period; ++t) {
      fires += schedule.fires(v, t) ? 1 : 0;
    }
    EXPECT_EQ(fires * 5, static_cast<int>(schedule.period) * 4);
  }
}

TEST(Scheduling, RateMismatchedSystemHasNoSchedule) {
  // A full-rate source feeding a slower ring (θ = 2/3): tokens accumulate
  // without bound in the ideal run, so no periodic schedule exists.
  lis::LisGraph lis;
  const lis::CoreId src = lis.add_core("src");
  const lis::CoreId b = lis.add_core("B");
  const lis::CoreId c = lis.add_core("C");
  lis.add_channel(src, b);
  lis.add_channel(b, c, /*relay_stations=*/1);
  lis.add_channel(c, b);
  const StaticSchedule schedule = compute_static_schedule(lis, 2000);
  EXPECT_FALSE(schedule.found);
  EXPECT_THROW(replay_schedule(lis, schedule, 100), std::invalid_argument);
}

TEST(Scheduling, ReplayOnClosedSystemIsViolationFree) {
  const lis::LisGraph ring = pipelined_ring(5, 2);  // θ(G) = 5/7
  const StaticSchedule schedule = compute_static_schedule(ring);
  ASSERT_TRUE(schedule.found);
  const ScheduleReplay replay = replay_schedule(ring, schedule, 2000);
  EXPECT_EQ(replay.violations, 0);
  // The replayed rate is a full-run average (gates disable exact recurrence
  // detection), so it converges to the schedule rate with the transient
  // amortized away.
  EXPECT_NEAR(replay.throughput.to_double(), schedule.throughput.to_double(), 0.005);
}

TEST(Scheduling, DeviatingEnvironmentBreaksTheSchedule) {
  // Throttle core 0 below its scheduled rate: the schedule keeps demanding
  // firings downstream that the starved protocol cannot honour.
  const lis::LisGraph ring = pipelined_ring(4, 1);
  const StaticSchedule schedule = compute_static_schedule(ring);
  ASSERT_TRUE(schedule.found);
  const ScheduleReplay replay =
      replay_schedule(ring, schedule, 2000, /*environment_period=*/3);
  EXPECT_GT(replay.violations, 0);
  EXPECT_LT(replay.throughput, schedule.throughput);
}

class SchedulingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulingProperty, ClosedGeneratedSystemsScheduleAtTheirIdealMst) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(4, 10);
    params.sccs = 1;  // one SCC: a closed system
    params.min_cycles = rng.uniform_int(1, 3);
    params.relay_stations = rng.uniform_int(0, 3);
    params.policy = gen::RsPolicy::kAny;
    const lis::LisGraph system = gen::generate(params, rng);
    const StaticSchedule schedule = compute_static_schedule(system);
    ASSERT_TRUE(schedule.found);
    EXPECT_EQ(schedule.throughput, lis::ideal_mst(system));
    const ScheduleReplay replay = replay_schedule(system, schedule, 1500);
    EXPECT_EQ(replay.violations, 0);
    EXPECT_NEAR(replay.throughput.to_double(), schedule.throughput.to_double(), 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingProperty, ::testing::Values(91, 92, 93));

}  // namespace
}  // namespace lid::core
