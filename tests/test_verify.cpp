// Certificates (src/verify): every certificate the emission side produces —
// analyze and sizing, over the paper examples, the COFDM SoC, the 20-netlist
// corpus and 50 generated systems — must pass the standalone checker, the
// JSON codec must round-trip byte-identically, and a corpus of tampered
// witnesses (perturbed cycle edge, off-by-one potential, stale fingerprint,
// truncated constraint set, ...) must each be rejected with the structured
// reason the tampering deserves.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/certify.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/netlist_io.hpp"
#include "lis/paper_systems.hpp"
#include "soc/cofdm.hpp"
#include "util/rng.hpp"
#include "verify/certificate.hpp"

#ifndef LID_DATA_DIR
#define LID_DATA_DIR "data"
#endif

namespace lid::verify {
namespace {

using util::Rational;

/// Emits both certificate kinds for `lis`, checks them, and round-trips the
/// JSON codec: serialize -> parse -> serialize must be byte-identical.
void expect_certifiable(const lis::LisGraph& lis) {
  const Certificate analyze = core::certify_analysis(lis);
  const CheckResult ar = check(lis, analyze);
  EXPECT_TRUE(ar.ok) << to_string(ar.reason) << ": " << ar.detail;

  core::QsOptions options;
  options.method = core::QsMethod::kLazy;
  const core::QsReport report = core::size_queues(lis, options);
  if (report.problem.cancelled) return;
  const Certificate sizing = core::certify_sizing(lis, report);
  const CheckResult sr = check(lis, sizing);
  EXPECT_TRUE(sr.ok) << to_string(sr.reason) << ": " << sr.detail;

  for (const Certificate* cert : {&analyze, &sizing}) {
    const std::string json = to_json(*cert);
    const CertificateParse parsed = parse_certificate_text(json);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(to_json(parsed.certificate), json);
    const CheckResult rr = check(lis, parsed.certificate);
    EXPECT_TRUE(rr.ok) << to_string(rr.reason) << ": " << rr.detail;
  }
}

TEST(Certificates, PaperExamplesCertify) {
  expect_certifiable(lis::make_two_core_example());
  expect_certifiable(lis::make_two_core_example_sized());
  expect_certifiable(lis::make_fig15_counterexample());
}

TEST(Certificates, CofdmSocCertifies) { expect_certifiable(soc::build_cofdm()); }

TEST(Certificates, EveryCorpusNetlistCertifies) {
  std::ifstream manifest(std::string(LID_DATA_DIR) + "/corpus/manifest.txt");
  ASSERT_TRUE(manifest.good()) << "missing corpus manifest";
  std::size_t count = 0;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string file = line.substr(0, line.find(' '));
    SCOPED_TRACE(file);
    expect_certifiable(lis::load_netlist(std::string(LID_DATA_DIR) + "/corpus/" + file));
    ++count;
  }
  EXPECT_EQ(count, 20u);
}

/// 10 seeds x 5 trials = 50 generated systems.
class CertifyGenerated : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertifyGenerated, GeneratedSystemsCertify) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    SCOPED_TRACE(trial);
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(8, 20);
    params.sccs = rng.uniform_int(1, 4);
    params.min_cycles = rng.uniform_int(1, 3);
    params.relay_stations = rng.uniform_int(1, 5);
    params.reconvergent = true;
    params.policy =
        trial % 2 == 0 && params.sccs > 1 ? gen::RsPolicy::kScc : gen::RsPolicy::kAny;
    expect_certifiable(gen::generate(params, rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertifyGenerated,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Certificates, AcyclicIdealExpansionCertifies) {
  lis::LisGraph chain;
  chain.add_core("a");
  chain.add_core("b");
  chain.add_channel(0, 1, /*relay_stations=*/2, /*queue_capacity=*/1);
  const Certificate cert = core::certify_analysis(chain);
  EXPECT_TRUE(cert.ideal.acyclic);
  EXPECT_FALSE(cert.practical.acyclic);  // d[G] always cycles through backedges
  const CheckResult r = check(chain, cert);
  EXPECT_TRUE(r.ok) << to_string(r.reason) << ": " << r.detail;
}

TEST(Certificates, FingerprintMatchesAcrossReload) {
  const lis::LisGraph g = lis::make_fig15_counterexample();
  const lis::LisGraph reloaded = lis::from_text(lis::to_text(g));
  EXPECT_EQ(fingerprint(g), fingerprint(reloaded));
}

TEST(Certificates, MalformedJsonIsRejected) {
  EXPECT_FALSE(parse_certificate_text("{").ok);
  EXPECT_FALSE(parse_certificate_text("[]").ok);
  EXPECT_FALSE(parse_certificate_text(R"({"kind":"analyze"})").ok);
  const CertificateParse bad = parse_certificate_text(R"({"kind":"audit","fingerprint":"x"})");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
}

// ---------------------------------------------------------------------------
// The tampered-witness corpus: each perturbation must be caught with a
// structured reason, never accepted and never a crash.

class TamperedAnalyze : public ::testing::Test {
 protected:
  void SetUp() override {
    lis_ = lis::make_fig15_counterexample();
    cert_ = core::certify_analysis(lis_);
    ASSERT_TRUE(check(lis_, cert_).ok);
    ASSERT_FALSE(cert_.practical.acyclic);
    ASSERT_FALSE(cert_.practical.critical.places.empty());
  }

  lis::LisGraph lis_;
  Certificate cert_;
};

TEST_F(TamperedAnalyze, StaleFingerprintIsRejected) {
  cert_.fingerprint = "lis-0000000000000000";
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kFingerprintMismatch);
}

TEST_F(TamperedAnalyze, PerturbedCycleEdgeIsRejected) {
  // Swap one witness place for its successor place id: the walk either breaks
  // (kBadCycle) or, if it happens to re-close, its mean no longer equals
  // theta (kCycleMeanMismatch). Either way the certificate must die.
  std::vector<std::int64_t>& places = cert_.practical.critical.places;
  const std::size_t n = lis::expand_doubled(lis_).graph.num_places();
  places[0] = (places[0] + 1) % static_cast<std::int64_t>(n);
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_TRUE(r.reason == Reject::kBadCycle || r.reason == Reject::kCycleMeanMismatch)
      << to_string(r.reason);
}

TEST_F(TamperedAnalyze, OffByOnePotentialIsRejected) {
  // Lower the potential at the head of a critical place: that place's
  // inequality was tight, so it goes strictly negative.
  const lis::Expansion doubled = lis::expand_doubled(lis_);
  const auto p = static_cast<mg::PlaceId>(cert_.practical.critical.places[0]);
  const graph::NodeId head = doubled.graph.structure().edge(p).dst;
  cert_.practical.potential[static_cast<std::size_t>(head)] -= 1;
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kPotentialViolation);
}

TEST_F(TamperedAnalyze, InflatedThetaIsRejected) {
  // Claiming a better (higher) practical MST than the true one: the witness
  // cycle's real mean no longer matches, or some class bound undercuts it.
  cert_.practical.theta = cert_.practical.theta + Rational(1);
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_TRUE(r.reason == Reject::kCycleMeanMismatch || r.reason == Reject::kLambdaBelowTheta)
      << to_string(r.reason);
}

TEST(TamperedComponents, AscendingComponentLabelIsRejected) {
  // A netlist whose ideal expansion has several label classes (a chain is a
  // DAG of transitions): inverting the labels turns every descending
  // cross-class place into an ascending one.
  lis::LisGraph chain;
  chain.add_core("a");
  chain.add_core("b");
  chain.add_channel(0, 1, /*relay_stations=*/1, /*queue_capacity=*/1);
  Certificate cert = core::certify_analysis(chain);
  ASSERT_TRUE(check(chain, cert).ok);
  const int classes = static_cast<int>(cert.ideal.lambda.size());
  ASSERT_GE(classes, 2);
  for (int& c : cert.ideal.component) c = classes - 1 - c;
  const CheckResult r = check(chain, cert);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kComponentOrderViolation);
}

class TamperedSizing : public ::testing::Test {
 protected:
  void SetUp() override {
    lis_ = lis::make_fig15_counterexample();
    core::QsOptions options;
    options.method = core::QsMethod::kLazy;
    report_ = core::size_queues(lis_, options);
    ASSERT_TRUE(report_.lazy.has_value());
    ASSERT_FALSE(report_.lazy->fell_back);
    cert_ = core::certify_sizing(lis_, report_);
    ASSERT_TRUE(check(lis_, cert_).ok);
    ASSERT_GE(cert_.constraint_count, 1) << "fig15 sizing should generate constraints";
    ASSERT_FALSE(cert_.weights.empty());
  }

  lis::LisGraph lis_;
  core::QsReport report_;
  Certificate cert_;
};

TEST_F(TamperedSizing, TruncatedConstraintSetIsRejected) {
  cert_.constraints.pop_back();
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kTruncatedConstraints);
}

TEST_F(TamperedSizing, InflatedDeficitIsRejected) {
  cert_.constraints[0].deficit += 1;
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kConstraintUnsound);
}

TEST_F(TamperedSizing, DroppedConstraintChannelIsRejected) {
  ASSERT_FALSE(cert_.constraints[0].channels.empty());
  cert_.constraints[0].channels.pop_back();
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kConstraintUnsound);
}

TEST_F(TamperedSizing, WrongTotalIsRejected) {
  cert_.total += 1;
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kTotalMismatch);
}

TEST_F(TamperedSizing, NegativeWeightIsRejected) {
  cert_.weights[0].extra = -1;
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kWeightsInvalid);
}

TEST_F(TamperedSizing, DuplicateWeightChannelIsRejected) {
  cert_.weights.push_back(cert_.weights[0]);
  const CheckResult r = check(lis_, cert_);
  ASSERT_FALSE(r.ok);
  EXPECT_TRUE(r.reason == Reject::kWeightsInvalid || r.reason == Reject::kTotalMismatch)
      << to_string(r.reason);
}

TEST(TamperedTarget, RaisedTargetIsRejected) {
  // A sizing that legitimately stopped below the ideal (explicit lower
  // target): claiming a higher target afterwards must trip kTargetMissed —
  // the untouched achieved witness still verifies, but no longer reaches.
  const lis::LisGraph lis = lis::make_two_core_example();
  core::QsOptions options;
  options.method = core::QsMethod::kLazy;
  options.build.target_mst = lis::practical_mst(lis);  // already met: no-op sizing
  const core::QsReport report = core::size_queues(lis, options);
  Certificate cert = core::certify_sizing(lis, report);
  ASSERT_TRUE(check(lis, cert).ok);
  cert.target = Rational(1);
  const CheckResult r = check(lis, cert);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.reason, Reject::kTargetMissed);
}

}  // namespace
}  // namespace lid::verify
