// Floorplan-driven relay-station insertion: placements, wire lengths, and
// the reach -> pipelining arithmetic.
#include <gtest/gtest.h>

#include <set>

#include "core/floorplan.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "graph/scc.hpp"
#include "lis/paper_systems.hpp"
#include "util/rng.hpp"

namespace lid::core {
namespace {

TEST(Floorplan, RequiredRelayStationArithmetic) {
  EXPECT_EQ(required_relay_stations(0, 4), 0);
  EXPECT_EQ(required_relay_stations(4, 4), 0);   // fits in one period
  EXPECT_EQ(required_relay_stations(5, 4), 1);   // two segments
  EXPECT_EQ(required_relay_stations(8, 4), 1);
  EXPECT_EQ(required_relay_stations(9, 4), 2);
  EXPECT_EQ(required_relay_stations(12, 3), 3);
  EXPECT_THROW(required_relay_stations(5, 0), std::invalid_argument);
  EXPECT_THROW(required_relay_stations(-1, 4), std::invalid_argument);
}

TEST(Floorplan, RandomPlacementIsInjectiveAndInBounds) {
  util::Rng rng(1);
  gen::GeneratorParams params;
  params.vertices = 20;
  params.sccs = 3;
  const lis::LisGraph lis = gen::generate(params, rng);
  const Placement placement = random_placement(lis, 5, rng);
  ASSERT_EQ(placement.position.size(), 20u);
  std::set<std::pair<int, int>> cells;
  for (const auto& p : placement.position) {
    EXPECT_GE(p.x, 0);
    EXPECT_LT(p.x, 5);
    EXPECT_GE(p.y, 0);
    EXPECT_LT(p.y, 5);
    EXPECT_TRUE(cells.emplace(p.x, p.y).second) << "two cores share a cell";
  }
  EXPECT_THROW(random_placement(lis, 4, rng), std::invalid_argument);  // 16 < 20
}

TEST(Floorplan, ApplySetsTheRightStationCounts) {
  lis::LisGraph lis = lis::make_two_core_example();
  Placement placement;
  placement.position = {{0, 0}, {7, 0}};  // both channels are 7 units long
  const lis::LisGraph placed = apply_floorplan(lis, placement, 3);
  // 7 units at reach 3 -> 3 segments -> 2 stations per channel.
  EXPECT_EQ(placed.channel(0).relay_stations, 2);
  EXPECT_EQ(placed.channel(1).relay_stations, 2);
  EXPECT_EQ(placement.wire_length(lis, 0), 7);
}

TEST(Floorplan, ClusteredPlacementKeepsSccsCompact) {
  util::Rng rng(4);
  gen::GeneratorParams params;
  params.vertices = 24;
  params.sccs = 4;
  params.min_cycles = 2;
  params.policy = gen::RsPolicy::kScc;
  const lis::LisGraph lis = gen::generate(params, rng);
  const Placement clustered = clustered_placement(lis, 5, rng);
  const Placement random = random_placement(lis, 5, rng);
  // Total intra-SCC wire length must be significantly shorter clustered.
  const auto intra_total = [&](const Placement& placement) {
    const graph::SccPartition part = graph::scc(lis.structure());
    int total = 0;
    for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
      const lis::Channel& ch = lis.channel(c);
      if (part.comp_of[static_cast<std::size_t>(ch.src)] ==
          part.comp_of[static_cast<std::size_t>(ch.dst)]) {
        total += placement.wire_length(lis, c);
      }
    }
    return total;
  };
  EXPECT_LT(intra_total(clustered), intra_total(random));
  // Still a valid injective placement.
  std::set<std::pair<int, int>> cells;
  for (const auto& p : clustered.position) {
    EXPECT_TRUE(cells.emplace(p.x, p.y).second);
  }
}

TEST(Floorplan, GenerousReachNeedsNoStationsAndKeepsMstOne) {
  util::Rng rng(2);
  gen::GeneratorParams params;
  params.vertices = 12;
  params.sccs = 2;
  params.policy = gen::RsPolicy::kScc;
  const lis::LisGraph logical = gen::generate(params, rng);
  const Placement placement = random_placement(logical, 6, rng);
  const lis::LisGraph placed = apply_floorplan(logical, placement, 100);
  EXPECT_EQ(placed.total_relay_stations(), 0);
  EXPECT_EQ(lis::practical_mst(placed), lis::ideal_mst(placed));
}

TEST(Floorplan, TighterClocksNeedMoreStationsAndRepairStillWorks) {
  util::Rng rng(3);
  gen::GeneratorParams params;
  params.vertices = 16;
  params.sccs = 3;
  params.min_cycles = 2;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  const lis::LisGraph logical = gen::generate(params, rng);
  const Placement placement = random_placement(logical, 8, rng);
  int previous = -1;
  for (const int reach : {10, 5, 3, 2, 1}) {
    const lis::LisGraph placed = apply_floorplan(logical, placement, reach);
    EXPECT_GE(placed.total_relay_stations(), previous);
    previous = placed.total_relay_stations();
    QsOptions options;
    options.method = QsMethod::kHeuristic;
    const QsReport report = size_queues(placed, options);
    EXPECT_EQ(report.achieved_mst, report.problem.theta_ideal);
  }
}

}  // namespace
}  // namespace lid::core
