// Facade tests: Result<T> semantics, error codes, netlist round trips,
// deterministic generation, and the analyze / size_queues /
// insert_relay_stations workflows over opaque Instance handles.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "lid_api.hpp"
#include "lis/paper_systems.hpp"
#include "util/rational.hpp"

namespace lid {
namespace {

using util::Rational;

TEST(ResultT, HoldsValueOrError) {
  const Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(-1), 42);

  const Result<int> bad = Error{ErrorCode::kParse, "line 3: nope"};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kParse);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_NE(bad.error().to_string().find("line 3"), std::string::npos);
  EXPECT_THROW((void)bad.value(), std::invalid_argument);

  const Result<int> coded(ErrorCode::kTimeout, "budget");
  EXPECT_EQ(coded.error().code, ErrorCode::kTimeout);
}

TEST(ResultT, ErrorCodeNames) {
  EXPECT_STREQ(to_string(ErrorCode::kIo), "io");
  EXPECT_STREQ(to_string(ErrorCode::kParse), "parse");
  EXPECT_STREQ(to_string(ErrorCode::kInvalidArgument), "invalid-argument");
  EXPECT_STREQ(to_string(ErrorCode::kTimeout), "timeout");
  EXPECT_STREQ(to_string(ErrorCode::kInternal), "internal");
}

TEST(InstanceHandle, DefaultIsInvalidAndFailsCleanly) {
  const Instance invalid;
  EXPECT_FALSE(invalid.valid());
  const Result<Analysis> a = analyze(invalid);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.error().code, ErrorCode::kInvalidArgument);
  EXPECT_FALSE(size_queues(invalid).ok());
  EXPECT_FALSE(insert_relay_stations(invalid).ok());
  EXPECT_FALSE(netlist_text(invalid).ok());
}

TEST(InstanceHandle, WrapExposesTheGraph) {
  const Instance two = Instance::wrap(lis::make_two_core_example(), "fig1");
  EXPECT_TRUE(two.valid());
  EXPECT_EQ(two.name(), "fig1");
  EXPECT_EQ(two.num_cores(), 2u);
  EXPECT_EQ(two.num_channels(), 2u);
  EXPECT_EQ(two.total_relay_stations(), 1);
  EXPECT_EQ(two.graph().num_cores(), 2u);
}

TEST(Netlist, LoadMissingFileIsIoError) {
  const Result<Instance> missing = load_netlist("/nonexistent/void.lis");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kIo);
}

TEST(Netlist, ParseErrorsCarryParseCode) {
  const Result<Instance> bad = parse_netlist("core A\nchannel A -> Missing\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kParse);
}

TEST(Netlist, TextRoundTrip) {
  const Instance original = Instance::wrap(lis::make_two_core_example(), "fig1");
  const Result<std::string> text = netlist_text(original);
  ASSERT_TRUE(text.ok());
  const Result<Instance> reparsed = parse_netlist(*text, "fig1-bis");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*netlist_text(*reparsed), *text);
  EXPECT_EQ(reparsed->num_cores(), original.num_cores());
  EXPECT_EQ(reparsed->total_relay_stations(), original.total_relay_stations());
}

TEST(Netlist, SaveAndLoadRoundTrip) {
  const std::string path = "/tmp/lid_api_roundtrip.lis";
  const Instance original = Instance::wrap(lis::make_two_core_example());
  ASSERT_TRUE(save_netlist(original, path).ok());
  const Result<Instance> loaded = load_netlist(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*netlist_text(*loaded), *netlist_text(original));
  std::remove(path.c_str());
  EXPECT_FALSE(save_netlist(original, "/nonexistent/dir/x.lis").ok());
}

TEST(Generate, DeterministicPerSeed) {
  GenerateOptions options;
  options.cores = 15;
  options.sccs = 3;
  options.seed = 99;
  const Result<Instance> a = generate(options);
  const Result<Instance> b = generate(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*netlist_text(*a), *netlist_text(*b));

  options.seed = 100;
  const Result<Instance> c = generate(options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*netlist_text(*a), *netlist_text(*c));
}

TEST(Generate, BadParametersAreInvalidArgument) {
  GenerateOptions options;
  options.cores = 2;
  options.sccs = 10;  // more SCCs than cores
  const Result<Instance> r = generate(options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

TEST(Analyze, TwoCoreExampleMatchesThePaper) {
  const Instance two = Instance::wrap(lis::make_two_core_example());
  const Result<Analysis> a = analyze(two);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->theta_ideal, Rational(1));
  EXPECT_EQ(a->theta_practical, Rational(2, 3));
  EXPECT_TRUE(a->degraded);
  EXPECT_FALSE(a->critical_cycle.empty());
  EXPECT_TRUE(a->rate_safe);

  AnalyzeOptions no_cycle;
  no_cycle.critical_cycle = false;
  const Result<Analysis> lean = analyze(two, no_cycle);
  ASSERT_TRUE(lean.ok());
  EXPECT_TRUE(lean->critical_cycle.empty());
}

TEST(Analyze, CofdmSocIsTheCaseStudy) {
  const Instance soc = cofdm_soc();
  ASSERT_TRUE(soc.valid());
  EXPECT_EQ(soc.num_cores(), 12u);
  const Result<Analysis> a = analyze(soc);
  ASSERT_TRUE(a.ok());
  EXPECT_LE(a->theta_practical, a->theta_ideal);
}

TEST(SizeQueues, RestoresTheIdealMst) {
  const Instance two = Instance::wrap(lis::make_two_core_example());
  const Result<Sizing> s = size_queues(two);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->degraded);
  EXPECT_EQ(s->achieved, s->theta_ideal);
  // The default solver is lazy constraint generation: an exact optimum
  // without the eager enumeration pipeline (so no heuristic pass runs).
  EXPECT_TRUE(s->solver_lazy);
  EXPECT_GE(s->exact_total, 1);
  ASSERT_FALSE(s->changes.empty());
  EXPECT_GT(s->changes.front().after, s->changes.front().before);
  // The sized instance really runs at the ideal rate.
  const Result<Analysis> sized = analyze(s->sized);
  ASSERT_TRUE(sized.ok());
  EXPECT_FALSE(sized->degraded);
}

TEST(SizeQueues, UndegradedInstanceIsANoOp) {
  const Instance sized = Instance::wrap(lis::make_two_core_example_sized());
  const Result<Sizing> s = size_queues(sized);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->degraded);
  EXPECT_TRUE(s->changes.empty());
  EXPECT_EQ(s->achieved, s->theta_ideal);
}

TEST(SizeQueues, HeuristicOnlySkipsTheExactSolver) {
  const Instance two = Instance::wrap(lis::make_two_core_example());
  SizeQueuesOptions options;
  options.solver = Solver::kHeuristic;
  const Result<Sizing> s = size_queues(two, options);
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s->heuristic_total, 1);
  EXPECT_EQ(s->exact_total, -1);
}

TEST(InsertRelayStations, RepairsTheTwoCoreExample) {
  // Start from the un-pipelined variant: drop the relay station so the
  // channel is repairable by insertion.
  const Instance two = Instance::wrap(lis::make_two_core_example());
  InsertRelayStationsOptions options;
  options.budget = 2;
  const Result<RelayInsertion> r = insert_relay_stations(two, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->original_ideal, Rational(1));
  EXPECT_GE(r->added, 0);
  ASSERT_TRUE(r->repaired.valid());
  EXPECT_LE(r->best_practical, r->original_ideal);
}

// ---------------------------------------------------------------------------
// Error paths through the facade: every failure must come back as a
// Result carrying a code and a human-readable message — never an abort,
// never an escaping exception (the serve wire protocol depends on this).

TEST(ErrorPaths, MalformedNetlistsAllCarryParseCodeAndMessage) {
  const char* bad_texts[] = {
      "core A\nchannel A -> Missing\n",   // unknown endpoint
      "core A\ncore A\n",                 // duplicate core
      "chanel A -> B\n",                  // misspelled keyword
      "core A\nchannel A ->\n",           // truncated channel
      "core A\nchannel A -> A rs=-2\n",   // negative relay-station count
      "core A\nchannel A -> A q=-1\n",    // negative queue capacity
  };
  for (const char* text : bad_texts) {
    const Result<Instance> r = parse_netlist(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.error().code, ErrorCode::kParse) << text;
    EXPECT_FALSE(r.error().message.empty()) << text;
  }
}

TEST(ErrorPaths, InvalidGeneratorParametersAreInvalidArgument) {
  const auto expect_invalid = [](GenerateOptions options) {
    const Result<Instance> r = generate(options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
    EXPECT_FALSE(r.error().message.empty());
  };
  GenerateOptions options;
  options.cores = 0;  // no cores at all
  expect_invalid(options);
  options = {};
  options.cores = -5;
  expect_invalid(options);
  options = {};
  options.sccs = 0;
  expect_invalid(options);
  options = {};
  options.relay_stations = -1;
  expect_invalid(options);
  options = {};
  options.queue_capacity = 0;
  expect_invalid(options);
}

TEST(ErrorPaths, NegativeRelayBudgetIsInvalidArgument) {
  const Instance two = Instance::wrap(lis::make_two_core_example());
  InsertRelayStationsOptions options;
  options.budget = -1;
  const Result<RelayInsertion> r = insert_relay_stations(two, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  EXPECT_FALSE(r.error().message.empty());
}

TEST(ErrorPaths, InvalidHandlesFailEveryOperationWithAMessage) {
  const Instance invalid;
  EXPECT_FALSE(analyze(invalid).ok());
  EXPECT_FALSE(analyze(invalid).error().message.empty());
  EXPECT_FALSE(size_queues(invalid).ok());
  EXPECT_FALSE(insert_relay_stations(invalid).ok());
  EXPECT_FALSE(netlist_text(invalid).ok());
  EXPECT_FALSE(save_netlist(invalid, "/tmp/should_not_exist.lis").ok());
}

}  // namespace
}  // namespace lid
