// The sample netlists shipped under data/ must stay parseable and equivalent
// to their in-code builders.
#include <gtest/gtest.h>

#include "lis/netlist_io.hpp"
#include "lis/paper_systems.hpp"
#include "soc/cofdm.hpp"

#ifndef LID_DATA_DIR
#define LID_DATA_DIR "data"
#endif

namespace lid::lis {
namespace {

std::string data_path(const std::string& name) {
  return std::string(LID_DATA_DIR) + "/" + name;
}

TEST(DataFiles, Fig1MatchesTheBuilder) {
  const LisGraph loaded = load_netlist(data_path("fig1.lis"));
  const LisGraph built = make_two_core_example();
  EXPECT_EQ(to_text(loaded), to_text(built));
  EXPECT_EQ(practical_mst(loaded), util::Rational(2, 3));
}

TEST(DataFiles, Fig15MatchesTheBuilder) {
  const LisGraph loaded = load_netlist(data_path("fig15.lis"));
  EXPECT_EQ(to_text(loaded), to_text(make_fig15_counterexample()));
  EXPECT_EQ(ideal_mst(loaded), util::Rational(5, 6));
  EXPECT_EQ(practical_mst(loaded), util::Rational(3, 4));
}

TEST(DataFiles, CofdmMatchesTheBuilder) {
  const LisGraph loaded = load_netlist(data_path("cofdm.lis"));
  EXPECT_EQ(to_text(loaded), to_text(soc::build_cofdm()));
  EXPECT_EQ(loaded.num_cores(), 12u);
  EXPECT_EQ(loaded.num_channels(), 30u);
}

}  // namespace
}  // namespace lid::lis
