// lid_cluster — the sharded multi-process cluster front door.
//
//   lid_cluster --socket /run/lid-cluster.sock --workers 3 \
//               --serve-binary ./lid_serve --worker-dir /tmp/lid-cluster
//
// Spawns (or adopts) N `lid_serve` worker processes and routes the full
// serve protocol across them: consistent hashing on the model fingerprint
// for registry cache affinity, health probes with consecutive-failure
// ejection, per-worker circuit breakers, transparent failover with model
// re-registration, and zero-loss drain/restart admin verbs. See
// src/serve/cluster.hpp for the architecture and docs/cluster.md for the
// operational story. Flags:
//
//   --socket PATH             front-door Unix socket (preferred)
//   --port N [--host A]       front-door TCP socket (0 = kernel-assigned)
//   --workers N               lid_serve processes to spawn        (default 3)
//   --serve-binary PATH       lid_serve executable for spawned workers
//                             (default: "lid_serve" next to this binary)
//   --worker-dir DIR          directory for worker sockets + pid files
//                             (default /tmp)
//   --adopt S1,S2,...         comma-separated Unix sockets of externally
//                             managed lid_serve processes to adopt instead
//                             of (or in addition to) spawning
//   --worker-fault-plan I:SPEC  pass `--fault-plan SPEC` to spawned worker I
//                             (chaos testing; see src/serve/faults.hpp)
//   --serve-threads N         --workers forwarded to each lid_serve  (default 1)
//   --queue-capacity N        --queue-capacity forwarded             (default 64)
//   --probe-interval-ms MS    health-probe period                    (default 100)
//   --probe-timeout-ms MS     per-probe budget                       (default 1000)
//   --eject-after N           consecutive probe failures that eject  (default 3)
//   --ring-replicas N         virtual nodes per worker               (default 64)
//   --connect-timeout-ms MS   backend connect() budget               (default 1000)
//   --forward-timeout-ms MS   one forwarded round trip               (default 30000)
//   --breaker-threshold N     failures that open a worker breaker    (default 3)
//   --breaker-cooldown-ms MS  open-breaker rejection window          (default 500)
//   --quiet                   suppress structured lifecycle log lines (stderr)
//
// SIGINT/SIGTERM stop the router gracefully: the front door closes, in-flight
// requests finish, and spawned workers are SIGTERMed (their own drain) and
// reaped. SIGPIPE is ignored.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "serve/cluster.hpp"
#include "serve/faults.hpp"
#include "util/cli.hpp"

namespace {

lid::serve::Cluster* g_cluster = nullptr;

extern "C" void handle_stop_signal(int) {
  // Async-signal-safe: request_stop is a single write() to a pipe.
  if (g_cluster != nullptr) g_cluster->request_stop();
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) out.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

/// Resolves the default lid_serve path: next to this executable.
std::string sibling_serve_binary(const char* argv0) {
  const std::string self(argv0 == nullptr ? "" : argv0);
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "lid_serve";
  return self.substr(0, slash + 1) + "lid_serve";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lid;
  try {
    const util::Cli cli(argc, argv);
    serve::ClusterOptions options;
    options.unix_socket = cli.get_string("socket", "");
    if (options.unix_socket.empty()) {
      options.tcp_port =
          cli.has("port") ? static_cast<int>(cli.get_int_in("port", 0, 0, 65535)) : -1;
      options.host = cli.get_string("host", "127.0.0.1");
    }
    if (options.unix_socket.empty() && options.tcp_port < 0) {
      std::cerr << "lid_cluster: set --socket PATH or --port N\n";
      return 1;
    }

    const int spawn_count = static_cast<int>(cli.get_int_in("workers", 3, 0, 64));
    const std::string worker_dir = cli.get_string("worker-dir", "/tmp");
    options.serve_binary = cli.get_string("serve-binary", sibling_serve_binary(argv[0]));
    options.serve_threads = static_cast<int>(cli.get_int_in("serve-threads", 1, 1, 1024));
    options.serve_queue_capacity =
        static_cast<std::size_t>(cli.get_int_in("queue-capacity", 64, 1, 1'000'000));
    options.probe_interval_ms = cli.get_double_in("probe-interval-ms", 100.0, 1.0, 60'000.0);
    options.probe_timeout_ms = cli.get_double_in("probe-timeout-ms", 1'000.0, 1.0, 60'000.0);
    options.eject_after = static_cast<int>(cli.get_int_in("eject-after", 3, 1, 1'000));
    options.ring_replicas = static_cast<int>(cli.get_int_in("ring-replicas", 64, 1, 4'096));
    options.connect_timeout_ms =
        cli.get_double_in("connect-timeout-ms", 1'000.0, 1.0, 60'000.0);
    options.forward_timeout_ms =
        cli.get_double_in("forward-timeout-ms", 30'000.0, 1.0, 600'000.0);
    options.breaker_threshold = static_cast<int>(cli.get_int_in("breaker-threshold", 3, 0, 1'000));
    options.breaker_cooldown_ms =
        cli.get_double_in("breaker-cooldown-ms", 500.0, 0.0, 600'000.0);

    // Fault plan for one spawned worker: "IDX:SPEC" (SPEC itself contains
    // commas, so the flag takes a single worker).
    int fault_index = -1;
    std::string fault_spec;
    if (const std::string plan = cli.get_string("worker-fault-plan", ""); !plan.empty()) {
      const std::size_t colon = plan.find(':');
      if (colon == std::string::npos) {
        std::cerr << "lid_cluster: --worker-fault-plan wants INDEX:SPEC\n";
        return 1;
      }
      fault_index = std::stoi(plan.substr(0, colon));
      fault_spec = plan.substr(colon + 1);
      if (const Result<serve::FaultPlan> parsed = serve::FaultPlan::parse(fault_spec); !parsed) {
        std::cerr << "lid_cluster: --worker-fault-plan: " << parsed.error().to_string() << "\n";
        return 1;
      }
    }

    for (int i = 0; i < spawn_count; ++i) {
      serve::WorkerSpec spec;
      spec.unix_socket = worker_dir + "/lid-worker-" + std::to_string(i) + ".sock";
      spec.pid_file = worker_dir + "/lid-worker-" + std::to_string(i) + ".pid";
      spec.spawn = true;
      if (i == fault_index) spec.fault_plan = fault_spec;
      options.workers.push_back(spec);
    }
    for (const std::string& socket : split_commas(cli.get_string("adopt", ""))) {
      serve::WorkerSpec spec;
      spec.unix_socket = socket;
      spec.spawn = false;
      options.workers.push_back(spec);
    }
    if (options.workers.empty()) {
      std::cerr << "lid_cluster: no workers (set --workers N or --adopt SOCKETS)\n";
      return 1;
    }
    if (fault_index >= spawn_count) {
      std::cerr << "lid_cluster: --worker-fault-plan index " << fault_index
                << " is not a spawned worker\n";
      return 1;
    }
    if (!cli.get_bool("quiet", false)) options.log = &std::cerr;

    serve::Cluster cluster(std::move(options));
    g_cluster = &cluster;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGPIPE, SIG_IGN);  // peer resets surface as EPIPE, not a kill

    const Status started = cluster.start();
    if (!started) {
      std::cerr << "lid_cluster: " << started.error().to_string() << "\n";
      return 1;
    }
    // Readiness line on stdout so scripts can wait for it.
    std::cout << "lid_cluster: listening on " << cluster.endpoint() << " ("
              << cluster.worker_count() << " workers)" << std::endl;

    cluster.wait();  // returns after a signal-triggered graceful stop
    std::cout << "lid_cluster: stopped, final stats: " << cluster.cluster_stats_json()
              << std::endl;
    g_cluster = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "lid_cluster: " << e.what() << "\n";
    return 1;
  }
}
