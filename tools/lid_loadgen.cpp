// lid_loadgen — closed-loop load generator for lid_serve.
//
//   lid_loadgen --socket /run/lid.sock [--clients N] [--seconds S]
//               [--verb analyze] [--deadline-ms D] [--on-deadline degrade]
//               [--retries N] [--attempt-timeout-ms T] [--backoff-ms B]
//               [--solver lazy|full|both|exact|heuristic] [--max-nodes N]
//               [--v N --s N --c N --rs N --seed N --instances N]
//               [--sleep-ms N] [--registered] [--transport ndjson|binary]
//               [--certify] [--json]
//
// Each client opens one connection and issues requests back to back (send,
// wait for the response, send the next — a closed loop, so offered load
// adapts to server latency). The workload cycles through `--instances`
// pre-generated netlists. At the end it reports offered load, goodput
// (successful responses/s), shed rate, and exact client-side p50/p95/p99
// latency — the numbers Little's Law and the M/M/1 lens want (see
// EXPERIMENTS.md "Serving under load").
//
// Resilience knobs (docs/robustness.md): `--retries N` allows N retry
// attempts per request through serve::RetryingClient (reconnect + backoff
// with decorrelated jitter + circuit breaker); transport failures then only
// count as errors after retries are exhausted. `--on-deadline degrade` asks
// the server for a heuristic fallback instead of `deadline_exceeded`; the
// summary separately counts `degraded` responses. All protocol verbs are
// idempotent, so retrying is always safe here.
//
// `--solver` is passed through to `size-queues` verbatim; omit it to use the
// server default (lazy constraint generation). "full" is the server's alias
// for the eager heuristic+exact pipeline.
//
// `--certify` (analyze / size-queues workloads) asks the server to attach an
// optimality certificate to every response, then re-checks each one locally
// with the independent O(E) checker (src/verify). The summary reports the
// certified share of successful responses and the verify-failure count; any
// verify failure makes the run exit 2 — a server that returns certificates
// its own clients cannot validate is broken.
//
// Protocol-v2 knobs: `--registered` switches the model-addressed verbs
// (analyze, size-queues, lint, rate-safety) to the register-once/query-many
// pattern — each client registers every workload netlist on connect (via the
// retry layer's session_warmup, so a reconnect re-registers) and then sends
// ~60-byte fingerprint requests instead of inline netlists; the summary adds
// the server's registry memo hit rate. `--transport binary` sends requests on
// the length-prefixed frame lane. Either flag upgrades the connection to
// protocol 2 via `hello`.
//
// Cluster knobs (docs/cluster.md): `--cluster` replaces the single-verb
// workload with a mixed scenario shaped like real traffic against a sharded
// deployment — four analysis verbs, hot/cold model skew (a quarter of the
// models take ~80% of the load, exercising the router's registry affinity),
// and three diurnal phases per cycle (two work-heavy, one quiet with pings).
// `--requests N` runs exactly N requests per client instead of a wall-clock
// budget, so replays are count-exact. `--trace-out F` records the generated
// workload (header + netlists + request templates, all verbatim strings — no
// floats re-parsed, so the file is byte-stable) and `--trace-in F` replays it
// identically; CI's cluster-smoke job records one trace and replays it after
// a rolling restart to prove the same workload survives both topologies.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <fstream>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "lid_api.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/retry.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace lid;

struct ClientStats {
  std::int64_t sent = 0;
  std::int64_t ok = 0;
  std::int64_t degraded = 0;
  std::int64_t shed = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t other_errors = 0;
  std::int64_t retries = 0;
  std::int64_t reconnects = 0;
  std::int64_t breaker_fast_fails = 0;
  std::int64_t certified = 0;        ///< ok responses carrying a certificate
  std::int64_t verify_failures = 0;  ///< certificates the local checker rejected
  std::vector<double> latencies_ms;
  std::string first_error;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// The recorded workload: request templates (each ends at `"id":`, the client
/// splices a per-request id) plus the netlists `--registered` warmup must
/// register. Strings only — replay is byte-exact, no floats are re-parsed.
struct Workload {
  std::string scenario = "default";
  std::uint64_t seed = 0;
  bool registered = false;
  std::vector<std::string> request_bodies;
  std::vector<std::string> netlist_texts;
};

bool write_trace(const std::string& path, const Workload& load) {
  std::ofstream out(path);
  if (!out) return false;
  util::JsonWriter header;
  header.begin_object();
  header.key("lid_trace").value(1);
  header.key("scenario").value(load.scenario);
  header.key("seed").value(static_cast<std::int64_t>(load.seed));
  header.key("registered").value(load.registered);
  header.key("netlists").value(static_cast<std::int64_t>(load.netlist_texts.size()));
  header.key("requests").value(static_cast<std::int64_t>(load.request_bodies.size()));
  header.end_object();
  out << header.str() << "\n";
  for (const std::string& text : load.netlist_texts) {
    util::JsonWriter w;
    w.begin_object().key("netlist").value(text).end_object();
    out << w.str() << "\n";
  }
  for (const std::string& body : load.request_bodies) {
    util::JsonWriter w;
    w.begin_object().key("body").value(body).end_object();
    out << w.str() << "\n";
  }
  return out.good();
}

bool read_trace(const std::string& path, Workload& load, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const util::JsonParse parsed = util::json_parse(line);
    if (!parsed.ok || !parsed.value.is_object()) {
      error = "malformed trace line: " + line.substr(0, 80);
      return false;
    }
    if (!saw_header) {
      const util::Json* version = parsed.value.find("lid_trace");
      if (version == nullptr || !version->is_number() || version->as_int() != 1) {
        error = "not a lid_trace v1 file (bad header)";
        return false;
      }
      if (const util::Json* s = parsed.value.find("scenario")) load.scenario = s->as_string();
      if (const util::Json* s = parsed.value.find("seed")) {
        load.seed = static_cast<std::uint64_t>(s->as_int());
      }
      if (const util::Json* r = parsed.value.find("registered")) load.registered = r->as_bool();
      saw_header = true;
      continue;
    }
    if (const util::Json* netlist = parsed.value.find("netlist")) {
      load.netlist_texts.push_back(netlist->as_string());
    } else if (const util::Json* body = parsed.value.find("body")) {
      load.request_bodies.push_back(body->as_string());
    } else {
      error = "trace record is neither netlist nor body: " + line.substr(0, 80);
      return false;
    }
  }
  if (!saw_header || load.request_bodies.empty()) {
    error = "trace holds no requests";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const std::string socket_path = cli.get_string("socket", "");
    const std::string host = cli.get_string("host", "127.0.0.1");
    const int port = socket_path.empty()
                         ? static_cast<int>(cli.get_int_in("port", 0, 1, 65535))
                         : -1;
    const int clients = static_cast<int>(cli.get_int_in("clients", 4, 1, 1024));
    const double seconds = cli.get_double_in("seconds", 5.0, 0.1, 3600.0);
    const std::string verb = cli.get_string("verb", "analyze");
    const double deadline_ms = cli.get_double_in("deadline-ms", 0.0, 0.0, 1e9);
    const std::string on_deadline = cli.get_string("on-deadline", "error");
    if (on_deadline != "error" && on_deadline != "degrade") {
      std::cerr << "lid_loadgen: --on-deadline must be 'error' or 'degrade'\n";
      return 1;
    }
    const std::string solver = cli.get_string("solver", "");
    const std::int64_t max_nodes = cli.get_int_in("max-nodes", 0, 0, 100'000'000);
    const std::int64_t sleep_ms = cli.get_int_in("sleep-ms", 1, 0, 10'000);
    const int instances = static_cast<int>(cli.get_int_in("instances", 8, 1, 1024));
    const bool as_json = cli.get_bool("json", false);

    const bool registered_flag = cli.get_bool("registered", false);
    const bool certify = cli.get_bool("certify", false);
    const bool cluster_scenario = cli.get_bool("cluster", false);
    const std::string trace_out = cli.get_string("trace-out", "");
    const std::string trace_in = cli.get_string("trace-in", "");
    const std::int64_t requests_per_client = cli.get_int_in("requests", 0, 0, 100'000'000);
    const std::string transport = cli.get_string("transport", "");
    if (!transport.empty() && transport != "ndjson" && transport != "binary") {
      std::cerr << "lid_loadgen: --transport must be 'ndjson' or 'binary'\n";
      return 1;
    }
    if (registered_flag && !cluster_scenario && trace_in.empty() && verb != "analyze" &&
        verb != "size-queues" && verb != "lint" && verb != "rate-safety") {
      std::cerr << "lid_loadgen: --registered applies to analyze, size-queues, lint or "
                   "rate-safety\n";
      return 1;
    }
    // Local verification needs the generated instances in hand, so --certify
    // is a generated-workload knob for the two certifying verbs only.
    if (certify && (cluster_scenario || !trace_in.empty() ||
                    (verb != "analyze" && verb != "size-queues"))) {
      std::cerr << "lid_loadgen: --certify applies to generated analyze or size-queues "
                   "workloads (not --cluster / --trace-in)\n";
      return 1;
    }

    serve::RetryPolicy retry_policy;
    retry_policy.max_attempts =
        1 + static_cast<int>(cli.get_int_in("retries", 0, 0, 100));
    retry_policy.attempt_timeout_ms = cli.get_double_in("attempt-timeout-ms", 0.0, 0.0, 1e9);
    retry_policy.base_backoff_ms = cli.get_double_in("backoff-ms", 5.0, 0.0, 60'000.0);

    // A peer reset while writing must surface as an EPIPE send error the
    // retry layer can handle, not kill the process.
    std::signal(SIGPIPE, SIG_IGN);

    // Pre-generate the request workload: `instances` distinct netlists.
    lid::GenerateOptions gen;
    gen.cores = static_cast<int>(cli.get_int_in("v", 20, 2, 2000));
    gen.sccs = static_cast<int>(cli.get_int_in("s", 3, 1, 2000));
    gen.extra_cycles = static_cast<int>(cli.get_int_in("c", 2, 0, 2000));
    gen.relay_stations = static_cast<int>(cli.get_int_in("rs", 5, 0, 2000));
    // Hoisted so the summary can report the effective seed: reruns of a
    // recorded summary reproduce the exact same workload.
    const std::uint64_t workload_seed =
        static_cast<std::uint64_t>(cli.get_int_in("seed", 1, 0, 1'000'000'000));
    util::Rng seeder(workload_seed);

    Workload load;
    load.seed = workload_seed;
    load.registered = registered_flag;
    // --certify: fingerprint -> generated instance, for local re-checking of
    // returned certificates (read-only once the workload is built).
    std::map<std::string, Instance> verify_instances;
    if (!trace_in.empty()) {
      // Replay: the trace header decides registered/scenario; CLI workload
      // flags are ignored so the replayed byte stream matches the recording.
      load = Workload{};
      std::string trace_error;
      if (!read_trace(trace_in, load, trace_error)) {
        std::cerr << "lid_loadgen: --trace-in: " << trace_error << "\n";
        return 1;
      }
    } else if (cluster_scenario) {
      load.scenario = "cluster";
      // `instances` distinct models; the first quarter are "hot" and absorb
      // ~80% of the model-addressed load, so a consistent-hash router keeps
      // serving most requests from warm registry memos.
      const int hot_models = std::max(1, instances / 4);
      std::vector<std::string> fingerprints;
      for (int i = 0; i < instances; ++i) {
        gen.seed = seeder.fork_seed();
        const Result<Instance> instance = lid::generate(gen);
        if (!instance) {
          std::cerr << "lid_loadgen: generate: " << instance.error().to_string() << "\n";
          return 1;
        }
        const Result<std::string> text = lid::netlist_text(*instance);
        if (!text) {
          std::cerr << "lid_loadgen: " << text.error().to_string() << "\n";
          return 1;
        }
        load.netlist_texts.push_back(*text);
        fingerprints.push_back(serve::Registry::fingerprint(*text));
      }
      // Three diurnal phases per 96-slot cycle: two work-heavy bursts and a
      // quiet phase that mostly pings. Integer draws only — the same seed
      // always yields the same request sequence.
      constexpr int kCycle = 96;
      for (int slot = 0; slot < kCycle; ++slot) {
        const int phase = (slot * 3) / kCycle;
        const int draw = seeder.uniform_int(0, 99);
        const char* slot_verb = nullptr;
        if (phase == 2) {
          slot_verb = draw < 50 ? "ping" : (draw < 80 ? "lint" : "analyze");
        } else {
          slot_verb = draw < 45   ? "analyze"
                      : draw < 65 ? "size-queues"
                      : draw < 85 ? "lint"
                                  : "rate-safety";
        }
        util::JsonWriter w;
        w.begin_object();
        w.key("verb").value(slot_verb);
        if (std::string(slot_verb) != "ping") {
          const bool hot = seeder.uniform_int(0, 99) < 80;
          const std::size_t model =
              hot || instances == hot_models
                  ? static_cast<std::size_t>(seeder.uniform_int(0, hot_models - 1))
                  : static_cast<std::size_t>(seeder.uniform_int(hot_models, instances - 1));
          if (load.registered) {
            w.key("model").value(fingerprints[model]);
          } else {
            w.key("netlist").value(load.netlist_texts[model]);
          }
        }
        w.key("id");
        load.request_bodies.push_back(w.str());
      }
      if (!load.registered) load.netlist_texts.clear();
    } else {
      for (int i = 0; i < instances; ++i) {
        util::JsonWriter w;
        w.begin_object();
        w.key("verb").value(verb);
        if (deadline_ms > 0.0) w.key("deadline_ms").value_fixed(deadline_ms, 3);
        if (on_deadline == "degrade") w.key("on_deadline").value(on_deadline);
        if (verb == "size-queues") {
          if (!solver.empty()) w.key("solver").value(solver);
          if (max_nodes > 0) w.key("max_nodes").value(max_nodes);
        }
        if (certify) w.key("certify").value(true);
        if (verb == "sleep") {
          w.key("ms").value(sleep_ms);
        } else if (verb != "ping" && verb != "stats") {
          gen.seed = seeder.fork_seed();
          const Result<Instance> instance = lid::generate(gen);
          if (!instance) {
            std::cerr << "lid_loadgen: generate: " << instance.error().to_string() << "\n";
            return 1;
          }
          const Result<std::string> text = lid::netlist_text(*instance);
          if (!text) {
            std::cerr << "lid_loadgen: " << text.error().to_string() << "\n";
            return 1;
          }
          if (certify) {
            // Keep the instance for local re-checking, keyed by the same
            // fingerprint recipe the certificate carries.
            verify_instances.emplace(serve::Registry::fingerprint(*text), *instance);
          }
          if (load.registered) {
            // netlist_text output is already canonical, so the fingerprint can
            // be computed locally; warmup registration confirms it server-side.
            load.netlist_texts.push_back(*text);
            w.key("model").value(serve::Registry::fingerprint(*text));
          } else {
            w.key("netlist").value(*text);
          }
        }
        // The per-request id is appended by each client (key must be last-less;
        // JsonWriter cannot reopen, so clients splice it via a template).
        w.key("id");
        load.request_bodies.push_back(w.str());
      }
    }
    if (!trace_out.empty() && !write_trace(trace_out, load)) {
      std::cerr << "lid_loadgen: cannot write trace to " << trace_out << "\n";
      return 1;
    }
    const bool registered = load.registered;
    const std::vector<std::string>& request_bodies = load.request_bodies;
    const std::vector<std::string>& netlist_texts = load.netlist_texts;

    serve::SessionOptions session_options;
    session_options.binary = transport == "binary";
    session_options.protocol = (registered || session_options.binary) ? 2 : 1;
    session_options.hello = session_options.protocol >= 2;

    std::atomic<bool> stop{false};
    std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
    std::vector<std::thread> threads;
    util::Timer run_timer;

    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientStats& s = stats[static_cast<std::size_t>(c)];
        serve::RetryPolicy policy = retry_policy;
        policy.jitter_seed = static_cast<std::uint64_t>(c) + 1;
        if (registered) {
          // Re-register every workload model on each fresh connection so a
          // reconnect (failover, torn connection) never sees unknown_model.
          policy.session_warmup = [&](serve::Client& peer) -> Status {
            for (const std::string& text : netlist_texts) {
              util::JsonWriter reg;
              reg.begin_object();
              reg.key("verb").value("register-model");
              reg.key("netlist").value(text);
              reg.end_object();
              const Result<std::string> response = peer.call(reg.str());
              if (!response) return response.error();
              const util::JsonParse parsed = util::json_parse(*response);
              const util::Json* ok =
                  parsed.ok && parsed.value.is_object() ? parsed.value.find("ok") : nullptr;
              if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
                return Error{ErrorCode::kIo, "register-model failed: " + *response};
              }
            }
            return Unit{};
          };
        }
        serve::RetryingClient client(
            [&]() -> Result<serve::Client> {
              return socket_path.empty()
                         ? serve::Client::connect_tcp(host, port, session_options)
                         : serve::Client::connect_unix(socket_path, session_options);
            },
            policy);
        std::int64_t n = 0;
        while (!stop.load(std::memory_order_relaxed) &&
               (requests_per_client == 0 || n < requests_per_client)) {
          const std::string& body = request_bodies[static_cast<std::size_t>(
              n % static_cast<std::int64_t>(request_bodies.size()))];
          const std::string line =
              body + "\"c" + std::to_string(c) + "-" + std::to_string(n) + "\"}";
          ++n;
          util::Timer timer;
          ++s.sent;
          const Result<std::string> response = client.call(line);
          const double latency = timer.elapsed_ms();
          if (!response) {
            ++s.other_errors;
            if (s.first_error.empty()) s.first_error = response.error().to_string();
            // An open breaker means the server is gone (retries exhausted on
            // consecutive transport failures); stop instead of spinning on
            // fast-fails for the rest of the run.
            if (client.breaker_open()) break;
            continue;
          }
          s.latencies_ms.push_back(latency);
          const util::JsonParse parsed = util::json_parse(*response);
          const util::Json* ok =
              parsed.ok && parsed.value.is_object() ? parsed.value.find("ok") : nullptr;
          if (ok != nullptr && ok->as_bool()) {
            ++s.ok;
            const util::Json* degraded = parsed.value.find("degraded");
            if (degraded != nullptr && degraded->is_bool() && degraded->as_bool()) {
              ++s.degraded;
            }
            if (certify) {
              // Re-check the returned certificate with the independent O(E)
              // checker against the locally generated instance.
              const util::Json* result = parsed.value.find("result");
              const util::Json* cert_json =
                  result != nullptr && result->is_object() ? result->find("certificate") : nullptr;
              if (cert_json != nullptr) {
                ++s.certified;
                const verify::CertificateParse cert = verify::parse_certificate(*cert_json);
                const auto it =
                    cert ? verify_instances.find(cert.certificate.fingerprint)
                         : verify_instances.end();
                bool valid = false;
                if (it != verify_instances.end()) {
                  const Result<verify::CheckResult> verdict =
                      lid::verify_certificate(it->second, cert.certificate);
                  valid = verdict && verdict->ok;
                }
                if (!valid) {
                  ++s.verify_failures;
                  if (s.first_error.empty()) s.first_error = "certificate verify failed: " + *response;
                }
              }
            }
            continue;
          }
          std::string code;
          if (parsed.ok && parsed.value.is_object()) {
            if (const util::Json* error = parsed.value.find("error")) {
              if (const util::Json* code_field = error->find("code")) {
                code = code_field->as_string();
              }
            }
          }
          if (code == serve::codes::kOverloaded) {
            ++s.shed;
          } else if (code == serve::codes::kDeadlineExceeded) {
            ++s.deadline_exceeded;
          } else {
            ++s.other_errors;
            if (s.first_error.empty()) s.first_error = *response;
          }
        }
        const serve::RetryStats& rs = client.stats();
        s.retries = rs.retries;
        s.reconnects = rs.reconnects;
        s.breaker_fast_fails = rs.breaker_fast_fails;
      });
    }

    if (requests_per_client > 0) {
      // Count-exact run: every client performs exactly --requests calls (the
      // retry layer's timeouts bound each one), so replays are comparable
      // request-for-request rather than wall-clock-for-wall-clock.
      for (std::thread& t : threads) t.join();
      stop.store(true);
    } else {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<std::int64_t>(seconds * 1000.0)));
      stop.store(true);
      for (std::thread& t : threads) t.join();
    }
    const double elapsed_s = run_timer.elapsed_s();

    ClientStats total;
    std::vector<double> latencies;
    for (const ClientStats& s : stats) {
      total.sent += s.sent;
      total.ok += s.ok;
      total.degraded += s.degraded;
      total.shed += s.shed;
      total.deadline_exceeded += s.deadline_exceeded;
      total.other_errors += s.other_errors;
      total.retries += s.retries;
      total.reconnects += s.reconnects;
      total.breaker_fast_fails += s.breaker_fast_fails;
      total.certified += s.certified;
      total.verify_failures += s.verify_failures;
      latencies.insert(latencies.end(), s.latencies_ms.begin(), s.latencies_ms.end());
      if (total.first_error.empty() && !s.first_error.empty()) total.first_error = s.first_error;
    }
    std::sort(latencies.begin(), latencies.end());
    const double offered = static_cast<double>(total.sent) / elapsed_s;
    const double goodput = static_cast<double>(total.ok) / elapsed_s;
    const double shed_rate =
        total.sent == 0 ? 0.0 : static_cast<double>(total.shed) / static_cast<double>(total.sent);
    const double p50 = percentile(latencies, 0.50);
    const double p95 = percentile(latencies, 0.95);
    const double p99 = percentile(latencies, 0.99);

    // Registered mode: one post-run stats probe reports how much of the load
    // the server answered from its per-model payload memo.
    std::int64_t memo_hits = 0;
    std::int64_t memo_misses = 0;
    if (registered) {
      Result<serve::Client> probe = socket_path.empty()
                                        ? serve::Client::connect_tcp(host, port)
                                        : serve::Client::connect_unix(socket_path);
      if (probe) {
        serve::Client prober = std::move(probe).value();
        const Result<std::string> response = prober.call("{\"verb\":\"stats\"}");
        if (response) {
          const util::JsonParse parsed = util::json_parse(*response);
          const util::Json* result =
              parsed.ok && parsed.value.is_object() ? parsed.value.find("result") : nullptr;
          const util::Json* registry =
              result != nullptr && result->is_object() ? result->find("registry") : nullptr;
          if (registry != nullptr && registry->is_object()) {
            if (const util::Json* hits = registry->find("memo_hits")) memo_hits = hits->as_int();
            if (const util::Json* misses = registry->find("memo_misses")) {
              memo_misses = misses->as_int();
            }
          }
        }
      }
    }
    const double registry_hit_rate =
        memo_hits + memo_misses == 0
            ? 0.0
            : static_cast<double>(memo_hits) / static_cast<double>(memo_hits + memo_misses);

    if (as_json) {
      util::JsonWriter w;
      w.begin_object();
      w.key("verb").value(load.scenario == "cluster" ? "mixed" : verb);
      w.key("scenario").value(load.scenario);
      w.key("clients").value(clients);
      w.key("seed").value(static_cast<std::int64_t>(load.seed));
      w.key("elapsed_s").value_fixed(elapsed_s, 3);
      w.key("sent").value(total.sent);
      w.key("ok").value(total.ok);
      w.key("degraded").value(total.degraded);
      w.key("shed").value(total.shed);
      w.key("deadline_exceeded").value(total.deadline_exceeded);
      w.key("other_errors").value(total.other_errors);
      w.key("retries").value(total.retries);
      w.key("reconnects").value(total.reconnects);
      w.key("breaker_fast_fails").value(total.breaker_fast_fails);
      w.key("offered_rps").value_fixed(offered, 2);
      w.key("goodput_rps").value_fixed(goodput, 2);
      w.key("shed_rate").value_fixed(shed_rate, 4);
      w.key("p50_ms").value_fixed(p50, 3);
      w.key("p95_ms").value_fixed(p95, 3);
      w.key("p99_ms").value_fixed(p99, 3);
      if (registered) {
        w.key("registered").value(true);
        w.key("registry_memo_hits").value(memo_hits);
        w.key("registry_memo_misses").value(memo_misses);
        w.key("registry_hit_rate").value_fixed(registry_hit_rate, 4);
      }
      if (certify) {
        w.key("certified").value(total.certified);
        w.key("certified_share")
            .value_fixed(total.ok == 0 ? 0.0
                                       : static_cast<double>(total.certified) /
                                             static_cast<double>(total.ok),
                         4);
        w.key("verify_failures").value(total.verify_failures);
      }
      if (!transport.empty()) w.key("transport").value(transport);
      w.end_object();
      std::cout << w.str() << "\n";
    } else {
      util::Table table({"metric", "value"});
      table.add_row({"clients x seconds", std::to_string(clients) + " x " +
                                              util::Table::fmt(elapsed_s, 1)});
      table.add_row({"workload", load.scenario + " (seed " + std::to_string(load.seed) + ")"});
      table.add_row({"requests sent", std::to_string(total.sent)});
      table.add_row({"offered load (req/s)", util::Table::fmt(offered, 1)});
      table.add_row({"goodput (req/s)", util::Table::fmt(goodput, 1)});
      table.add_row({"shed (overloaded)", std::to_string(total.shed) + " (" +
                                              util::Table::fmt(shed_rate * 100.0, 2) + "%)"});
      table.add_row({"deadline exceeded", std::to_string(total.deadline_exceeded)});
      table.add_row({"degraded responses", std::to_string(total.degraded)});
      table.add_row({"other errors", std::to_string(total.other_errors)});
      table.add_row({"retries / reconnects", std::to_string(total.retries) + " / " +
                                                 std::to_string(total.reconnects)});
      table.add_row({"breaker fast-fails", std::to_string(total.breaker_fast_fails)});
      table.add_row({"latency p50 (ms)", util::Table::fmt(p50, 3)});
      table.add_row({"latency p95 (ms)", util::Table::fmt(p95, 3)});
      table.add_row({"latency p99 (ms)", util::Table::fmt(p99, 3)});
      if (registered) {
        table.add_row({"registry hit rate",
                       util::Table::fmt(registry_hit_rate * 100.0, 2) + "% (" +
                           std::to_string(memo_hits) + "/" +
                           std::to_string(memo_hits + memo_misses) + ")"});
      }
      if (certify) {
        const double share = total.ok == 0 ? 0.0
                                           : static_cast<double>(total.certified) * 100.0 /
                                                 static_cast<double>(total.ok);
        table.add_row({"certified responses", std::to_string(total.certified) + " (" +
                                                  util::Table::fmt(share, 2) + "% of ok)"});
        table.add_row({"certificate verify failures", std::to_string(total.verify_failures)});
      }
      table.print(std::cout);
      if (!total.first_error.empty()) {
        std::cout << "first error: " << total.first_error << "\n";
      }
    }
    return total.other_errors == 0 && total.verify_failures == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "lid_loadgen: " << e.what() << "\n";
    return 1;
  }
}
