// lid_selfcheck — a randomized cross-validation harness.
//
//   lid_selfcheck [--seconds N] [--seed S] [--verbose]
//
// Generates random systems and checks, for each, every cross-cutting
// invariant the library promises:
//   1. Karp, Howard and brute-force cycle enumeration agree on the minimum
//      cycle mean of the doubled graph;
//   2. the marked-graph simulator's sustained rate equals the practical MST;
//   3. the protocol simulator fires the same shells in the same periods as
//      the marked-graph semantics;
//   4. queue sizing (heuristic and exact) restores the ideal MST, exact <=
//      heuristic, and the MILP baseline agrees with the exact optimum;
//   5. netlist serialization round-trips;
//   6. simulated place occupancies never exceed the structural bounds.
// Exits nonzero on the first violation, printing the seed that triggers it.
#include <iostream>

#include "core/exact_milp.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "graph/cycles.hpp"
#include "lis/netlist_io.hpp"
#include "lis/protocol_sim.hpp"
#include "mg/analysis.hpp"
#include "mg/mcm.hpp"
#include "mg/simulate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace lid;

#define CHECK_OR_FAIL(cond, what)                                              \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::cerr << "SELFCHECK FAILED [" << what << "] seed=" << trial_seed     \
                << "\n";                                                       \
      return false;                                                            \
    }                                                                          \
  } while (false)

bool check_one(std::uint64_t trial_seed, bool verbose) {
  util::Rng rng(trial_seed);
  gen::GeneratorParams params;
  params.vertices = rng.uniform_int(4, 14);
  params.sccs = rng.uniform_int(1, 3);
  params.min_cycles = rng.uniform_int(0, 3);
  params.relay_stations = rng.uniform_int(0, 5);
  params.reconvergent = true;
  params.policy = rng.flip(0.5) ? gen::RsPolicy::kAny : gen::RsPolicy::kScc;
  params.queue_capacity = rng.uniform_int(1, 2);
  lis::LisGraph system;
  try {
    system = gen::generate(params, rng);
  } catch (const std::invalid_argument&) {
    return true;  // e.g. scc policy with a single SCC: nothing to check
  }
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(system.num_cores()); ++v) {
    if (rng.flip(0.2)) system.set_core_latency(v, rng.uniform_int(2, 3));
  }

  // (1) analytic agreement on the doubled graph.
  const lis::Expansion doubled = lis::expand_doubled(system);
  const auto karp = mg::min_cycle_mean_karp(doubled.graph);
  const auto howard = mg::min_cycle_mean_howard(doubled.graph);
  CHECK_OR_FAIL(karp.has_value() == howard.has_value(), "karp/howard cyclicity");
  if (karp) {
    CHECK_OR_FAIL(*karp == howard->mean, "karp == howard");
    util::Rational brute(1000000);
    for (const auto& c : graph::enumerate_cycles(doubled.graph.structure()).cycles) {
      brute = util::Rational::min(
          brute, util::Rational(doubled.graph.cycle_tokens(c),
                                static_cast<std::int64_t>(c.size())));
    }
    CHECK_OR_FAIL(*karp == brute, "karp == enumeration");
  }

  // (2) simulator rate == practical MST.
  const util::Rational practical = lis::practical_mst(system);
  const mg::SimulationResult mg_sim = mg::simulate(doubled.graph, 30000);
  CHECK_OR_FAIL(mg_sim.periodic_found, "marked-graph recurrence");
  CHECK_OR_FAIL(mg_sim.throughput == util::Rational::min(util::Rational(1), practical),
                "simulated rate == practical MST");

  // (6) occupancy bounds.
  const auto bounds = mg::place_bounds(doubled.graph);
  for (mg::PlaceId p = 0; p < static_cast<mg::PlaceId>(doubled.graph.num_places()); ++p) {
    CHECK_OR_FAIL(bounds[static_cast<std::size_t>(p)].has_value(), "doubled graph bounded");
    CHECK_OR_FAIL(mg_sim.max_tokens[static_cast<std::size_t>(p)] <=
                      *bounds[static_cast<std::size_t>(p)],
                  "occupancy within structural bound");
  }

  // (3) protocol equivalence, period for period.
  std::vector<std::vector<char>> mg_rows;
  mg::simulate(doubled.graph, 50, 0, [&](std::size_t, const std::vector<char>& fired) {
    std::vector<char> shells;
    for (const mg::TransitionId t : doubled.core_transition) {
      shells.push_back(fired[static_cast<std::size_t>(t)]);
    }
    mg_rows.push_back(std::move(shells));
    return mg_rows.size() < 50;
  });
  std::vector<std::vector<char>> proto_rows;
  lis::ProtocolOptions proto_options;
  proto_options.periods = 51;
  proto_options.observer = [&](std::size_t, const std::vector<char>& fired) {
    proto_rows.push_back(fired);
    return proto_rows.size() < 50;
  };
  simulate_protocol(system, proto_options);
  const std::size_t common = std::min(mg_rows.size(), proto_rows.size());
  for (std::size_t t = 0; t < common; ++t) {
    CHECK_OR_FAIL(mg_rows[t] == proto_rows[t], "protocol == marked graph");
  }

  // (4) the queue-sizing stack.
  core::QsOptions qs_options;
  qs_options.method = core::QsMethod::kBoth;
  qs_options.exact.timeout_ms = 5000;
  const core::QsReport report = core::size_queues(system, qs_options);
  CHECK_OR_FAIL(report.achieved_mst == report.problem.theta_ideal, "sizing restores ideal");
  if (report.exact->finished) {
    CHECK_OR_FAIL(report.exact->total_extra_tokens <= report.heuristic->total_extra_tokens,
                  "exact <= heuristic");
    if (report.problem.has_degradation()) {
      const core::TdSolution upper = core::solve_heuristic(report.problem.td);
      const core::ExactResult milp =
          core::solve_exact_milp(report.problem.td, upper, qs_options.exact);
      if (milp.solution) {
        CHECK_OR_FAIL(milp.solution->total == report.exact->total_extra_tokens,
                      "MILP == exact");
      }
    }
  }

  // (5) serialization round trip.
  const lis::LisGraph parsed = lis::from_text(lis::to_text(system));
  CHECK_OR_FAIL(lis::to_text(parsed) == lis::to_text(system), "round trip canonical");
  CHECK_OR_FAIL(lis::practical_mst(parsed) == practical, "round trip MST");

  if (verbose) {
    std::cout << "seed " << trial_seed << ": v=" << system.num_cores()
              << " e=" << system.num_channels() << " MST " << practical.to_string() << " ok\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const double seconds = cli.get_double("seconds", 5.0);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const bool verbose = cli.get_bool("verbose", false);

    util::Rng seeder(seed);
    util::Timer timer;
    std::int64_t trials = 0;
    while (timer.elapsed_s() < seconds) {
      if (!check_one(seeder.fork_seed(), verbose)) return 1;
      ++trials;
    }
    std::cout << "lid_selfcheck: " << trials << " randomized systems, all invariants hold ("
              << timer.elapsed_s() << " s)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "lid_selfcheck: " << e.what() << "\n";
    return 1;
  }
}
