// lid_selfcheck — a randomized cross-validation harness.
//
//   lid_selfcheck [--seconds N] [--seed S] [--verbose]
//
// Generates random systems and checks, for each, every cross-cutting
// invariant the library promises:
//   1. Karp, Howard and brute-force cycle enumeration agree on the minimum
//      cycle mean of the doubled graph;
//   2. the marked-graph simulator's sustained rate equals the practical MST;
//   3. the protocol simulator fires the same shells in the same periods as
//      the marked-graph semantics;
//   4. queue sizing (heuristic and exact) restores the ideal MST, exact <=
//      heuristic, and the MILP baseline agrees with the exact optimum;
//   5. netlist serialization round-trips;
//   6. simulated place occupancies never exceed the structural bounds;
//   7. the batch engine is deterministic across thread counts and its
//      AnalysisCache agrees with the uncached per-module entry points;
//   8. responses observed through an in-process lid_serve server (over a
//      real Unix socket) are byte-identical to executing the same requests
//      directly, at 1 and at 4 workers — the serving layer adds no
//      nondeterminism;
//   9. graceful degradation is honest: whenever the exact solver fails to
//      prove within its node budget and the request says
//      "on_deadline":"degrade", the degraded payload is byte-identical to
//      executing the same request with "solver":"heuristic" directly, and
//      the heuristic total it reports bounds the exact optimum from above;
//  10. lazy constraint generation is equivalent to the full pipeline: on
//      every system, solver "lazy" reaches the same achieved MST as the
//      enumerate-everything pipeline, and when both exact solves prove, the
//      same optimal extra-token total;
//  11. lint hygiene: every generated system passes the error-tier lint
//      checks (the analyze/size-queues pre-flight admits it), and a
//      deadlocked netlist is rejected with the structured `lint` error code
//      through both the facade and the serve protocol — never an abort;
//  12. the model registry is a pure address: for every model-addressed verb,
//      querying a registered fingerprint (protocol v2, over NDJSON and over
//      the binary frame transport) returns a payload byte-identical to
//      sending the same netlist inline, which equals direct execution — at
//      1 and at 4 workers;
//  13. the event-driven simulator (src/des) cross-validates: its
//      deterministic limit reproduces min(1, practical MST) exactly, the
//      sized system simulates at exactly min(1, ideal MST) and — when that
//      rate is 1 — runs stall-free past the transient, and stochastic
//      reports are byte-identical for a given seed;
//  14. the cluster router is a pure transport: payloads read back through a
//      3-worker lid_cluster front door equal the payloads of a single
//      lid_serve and of direct execution, byte for byte — for inline and
//      registered (model-addressed) requests, and still after a worker is
//      stopped mid-run so the router must fail over and re-register;
//  15. certificates are sound and transport-stable: every opt-in analyze /
//      size-queues certificate passes the independent O(E) checker
//      (src/verify) through the facade — typed and JSON forms — and through
//      lid_serve, where certified payloads are byte-identical between inline
//      and registered requests over both the NDJSON and binary transports.
// Exits nonzero on the first violation, printing the seed that triggers it.
#include <unistd.h>

#include <iostream>
#include <memory>

#include "core/exact_milp.hpp"
#include "des/des.hpp"
#include "engine/analysis_cache.hpp"
#include "engine/engine.hpp"
#include "lid_api.hpp"
#include "lint/checks.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "graph/cycles.hpp"
#include "lis/netlist_io.hpp"
#include "lis/protocol_sim.hpp"
#include "mg/analysis.hpp"
#include "mg/mcm.hpp"
#include "mg/simulate.hpp"
#include "serve/client.hpp"
#include "serve/cluster.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace lid;

#define CHECK_OR_FAIL(cond, what)                                              \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::cerr << "SELFCHECK FAILED [" << what << "] seed=" << trial_seed     \
                << "\n";                                                       \
      return false;                                                            \
    }                                                                          \
  } while (false)

bool check_one(std::uint64_t trial_seed, bool verbose) {
  util::Rng rng(trial_seed);
  gen::GeneratorParams params;
  params.vertices = rng.uniform_int(4, 14);
  params.sccs = rng.uniform_int(1, 3);
  params.min_cycles = rng.uniform_int(0, 3);
  params.relay_stations = rng.uniform_int(0, 5);
  params.reconvergent = true;
  params.policy = rng.flip(0.5) ? gen::RsPolicy::kAny : gen::RsPolicy::kScc;
  params.queue_capacity = rng.uniform_int(1, 2);
  lis::LisGraph system;
  try {
    system = gen::generate(params, rng);
  } catch (const std::invalid_argument&) {
    return true;  // e.g. scc policy with a single SCC: nothing to check
  }
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(system.num_cores()); ++v) {
    if (rng.flip(0.2)) system.set_core_latency(v, rng.uniform_int(2, 3));
  }

  // (1) analytic agreement on the doubled graph.
  const lis::Expansion doubled = lis::expand_doubled(system);
  const auto karp = mg::min_cycle_mean_karp(doubled.graph);
  const auto howard = mg::min_cycle_mean_howard(doubled.graph);
  CHECK_OR_FAIL(karp.has_value() == howard.has_value(), "karp/howard cyclicity");
  if (karp) {
    CHECK_OR_FAIL(*karp == howard->mean, "karp == howard");
    util::Rational brute(1000000);
    for (const auto& c : graph::enumerate_cycles(doubled.graph.structure()).cycles) {
      brute = util::Rational::min(
          brute, util::Rational(doubled.graph.cycle_tokens(c),
                                static_cast<std::int64_t>(c.size())));
    }
    CHECK_OR_FAIL(*karp == brute, "karp == enumeration");
  }

  // (2) simulator rate == practical MST.
  const util::Rational practical = lis::practical_mst(system);
  const mg::SimulationResult mg_sim = mg::simulate(doubled.graph, 30000);
  CHECK_OR_FAIL(mg_sim.periodic_found, "marked-graph recurrence");
  CHECK_OR_FAIL(mg_sim.throughput == util::Rational::min(util::Rational(1), practical),
                "simulated rate == practical MST");

  // (6) occupancy bounds.
  const auto bounds = mg::place_bounds(doubled.graph);
  for (mg::PlaceId p = 0; p < static_cast<mg::PlaceId>(doubled.graph.num_places()); ++p) {
    CHECK_OR_FAIL(bounds[static_cast<std::size_t>(p)].has_value(), "doubled graph bounded");
    CHECK_OR_FAIL(mg_sim.max_tokens[static_cast<std::size_t>(p)] <=
                      *bounds[static_cast<std::size_t>(p)],
                  "occupancy within structural bound");
  }

  // (3) protocol equivalence, period for period.
  std::vector<std::vector<char>> mg_rows;
  mg::simulate(doubled.graph, 50, 0, [&](std::size_t, const std::vector<char>& fired) {
    std::vector<char> shells;
    for (const mg::TransitionId t : doubled.core_transition) {
      shells.push_back(fired[static_cast<std::size_t>(t)]);
    }
    mg_rows.push_back(std::move(shells));
    return mg_rows.size() < 50;
  });
  std::vector<std::vector<char>> proto_rows;
  lis::ProtocolOptions proto_options;
  proto_options.periods = 51;
  proto_options.observer = [&](std::size_t, const std::vector<char>& fired) {
    proto_rows.push_back(fired);
    return proto_rows.size() < 50;
  };
  simulate_protocol(system, proto_options);
  const std::size_t common = std::min(mg_rows.size(), proto_rows.size());
  for (std::size_t t = 0; t < common; ++t) {
    CHECK_OR_FAIL(mg_rows[t] == proto_rows[t], "protocol == marked graph");
  }

  // (4) the queue-sizing stack.
  core::QsOptions qs_options;
  qs_options.method = core::QsMethod::kBoth;
  qs_options.exact.timeout_ms = 5000;
  const core::QsReport report = core::size_queues(system, qs_options);
  CHECK_OR_FAIL(report.achieved_mst == report.problem.theta_ideal, "sizing restores ideal");
  if (report.exact->finished) {
    CHECK_OR_FAIL(report.exact->total_extra_tokens <= report.heuristic->total_extra_tokens,
                  "exact <= heuristic");
    if (report.problem.has_degradation()) {
      const core::TdSolution upper = core::solve_heuristic(report.problem.td);
      const core::ExactResult milp =
          core::solve_exact_milp(report.problem.td, upper, qs_options.exact);
      if (milp.solution) {
        CHECK_OR_FAIL(milp.solution->total == report.exact->total_extra_tokens,
                      "MILP == exact");
      }
    }
  }

  // (10) lazy constraint generation == full enumeration (reuses the full
  // pipeline's report from (4) as the reference).
  core::QsOptions lazy_options;
  lazy_options.method = core::QsMethod::kLazy;
  const core::QsReport lazy = core::size_queues(system, lazy_options);
  CHECK_OR_FAIL(lazy.lazy.has_value(), "lazy stats present");
  CHECK_OR_FAIL(lazy.achieved_mst == report.achieved_mst, "lazy achieved == full achieved");
  if (report.exact->finished) {
    CHECK_OR_FAIL(lazy.exact.has_value() && lazy.exact->finished, "lazy solve proves");
    CHECK_OR_FAIL(lazy.exact->total_extra_tokens == report.exact->total_extra_tokens,
                  "lazy total == exact total");
  }

  // (5) serialization round trip.
  const lis::LisGraph parsed = lis::from_text(lis::to_text(system));
  CHECK_OR_FAIL(lis::to_text(parsed) == lis::to_text(system), "round trip canonical");
  CHECK_OR_FAIL(lis::practical_mst(parsed) == practical, "round trip MST");

  // (11) every generated system passes the error-tier lint pre-flight —
  // everything above already analyzed it, so a lint error here would mean
  // the pre-flight rejects models the solvers in fact handle.
  CHECK_OR_FAIL(linter::run_error_checks(system).empty(), "lint: generated system error-clean");

  // (13) DES cross-validation against the analytic stack, reusing the sized
  // netlist from (4).
  {
    des::SimOptions des_options;
    des_options.horizon = 30'000;
    const des::SimReport des_run = des::simulate(system, des_options);
    CHECK_OR_FAIL(des_run.deterministic && des_run.periodic_found, "des: recurrence found");
    CHECK_OR_FAIL(des_run.throughput == util::Rational::min(util::Rational(1), practical),
                  "des: deterministic limit == practical MST");

    const des::SimReport des_sized = des::simulate(report.sized, des_options);
    CHECK_OR_FAIL(des_sized.periodic_found, "des: sized system recurrence");
    CHECK_OR_FAIL(des_sized.throughput ==
                      util::Rational::min(util::Rational(1), report.problem.theta_ideal),
                  "des: sized system == min(1, ideal MST)");
    if (des_sized.throughput == util::Rational(1)) {
      // Rate 1 means every core fires every cycle in steady state, so no
      // credit can bind strictly: a post-warmup window must be stall-free.
      // uniform:1:1 draws the same unit latencies but skips the recurrence
      // early-exit, so the run actually covers the window.
      des::SimOptions steady;
      steady.horizon = 500;
      steady.warmup = 500;
      steady.channel_latency = des::LatencyDist::uniform(1, 1);
      const des::SimReport windowed = des::simulate(report.sized, steady);
      CHECK_OR_FAIL(windowed.total_stall_events == 0, "des: sized rate-1 system stall-free");
    }

    des::SimOptions stochastic;
    stochastic.horizon = 2'000;
    stochastic.seed = trial_seed;
    stochastic.channel_latency = des::LatencyDist::geometric(1, 2);
    stochastic.arrival = des::ArrivalSpec::poisson(1, 2);
    const std::string once = des::simulate(system, stochastic).serialize();
    const std::string twice = des::simulate(system, stochastic).serialize();
    CHECK_OR_FAIL(once == twice, "des: same-seed reports byte-identical");
  }

  if (verbose) {
    std::cout << "seed " << trial_seed << ": v=" << system.num_cores()
              << " e=" << system.num_channels() << " MST " << practical.to_string() << " ok\n";
  }
  return true;
}

// Invariant (7): batch-engine determinism across thread counts, and cache
// agreement with the uncached entry points. Runs once per selfcheck.
bool check_engine(std::uint64_t trial_seed) {
  std::vector<Instance> instances;
  util::Rng seeder(trial_seed);
  for (int i = 0; i < 16; ++i) {
    GenerateOptions options;
    options.cores = 6 + i % 7;
    options.sccs = 1 + i % 3;
    options.extra_cycles = i % 3;
    options.relay_stations = 1 + i % 4;
    // The SCC placement policy needs inter-SCC channels to exist.
    options.rs_anywhere = options.sccs == 1;
    options.seed = seeder.fork_seed();
    const Result<Instance> generated = lid::generate(options);
    CHECK_OR_FAIL(generated.ok(), "engine: generate");
    instances.push_back(*generated);
  }

  engine::EngineOptions options;
  options.analyses = *engine::parse_analyses("all");
  options.exact_max_nodes = 50'000;  // deterministic budget, no wall clock
  options.threads = 1;
  const engine::BatchResult serial = engine::BatchEngine(options).run(instances);
  options.threads = 4;
  const engine::BatchResult parallel = engine::BatchEngine(options).run(instances);
  CHECK_OR_FAIL(serial.serialize() == parallel.serialize(), "engine: 1 vs 4 threads identical");

  for (const engine::InstanceResult& r : serial.results) {
    CHECK_OR_FAIL(r.error.empty(), "engine: no analysis failures");
  }

  // Cached intermediates equal their uncached counterparts.
  for (const Instance& instance : instances) {
    engine::AnalysisCache cache(instance.graph());
    CHECK_OR_FAIL(cache.theta_ideal() == lis::ideal_mst(instance.graph()),
                  "engine: cached ideal MST");
    CHECK_OR_FAIL(cache.theta_practical() == lis::practical_mst(instance.graph()),
                  "engine: cached practical MST");
    const core::QsProblem& cached = cache.qs_problem();
    const core::QsProblem fresh = core::build_qs_problem(instance.graph());
    CHECK_OR_FAIL(cached.td.deficits == fresh.td.deficits &&
                      cached.td.set_members == fresh.td.set_members &&
                      cached.channels == fresh.channels,
                  "engine: cached QS problem == fresh");
    const std::int64_t misses = cache.misses();
    (void)cache.qs_problem();
    CHECK_OR_FAIL(cache.misses() == misses, "engine: repeat qs_problem is a cache hit");
  }
  return true;
}

// Invariant (8): the serving layer is a pure transport. For a randomized
// request set covering every deterministic verb, the `result` payload read
// back through a Unix-socket lid_serve equals the payload of executing the
// same request line directly, byte for byte — at 1 worker and at 4.
bool check_serve(std::uint64_t trial_seed) {
  util::Rng rng(trial_seed);
  std::vector<std::string> lines;
  for (int i = 0; i < 6; ++i) {
    GenerateOptions options;
    options.cores = 5 + static_cast<int>(rng.uniform_int(0, 8));
    options.sccs = 1 + static_cast<int>(rng.uniform_int(0, 2));
    options.extra_cycles = static_cast<int>(rng.uniform_int(0, 2));
    options.relay_stations = 1 + static_cast<int>(rng.uniform_int(0, 3));
    options.rs_anywhere = true;
    options.seed = rng.fork_seed();
    const Result<Instance> generated = lid::generate(options);
    CHECK_OR_FAIL(generated.ok(), "serve: generate");
    const Result<std::string> text = netlist_text(*generated);
    CHECK_OR_FAIL(text.ok(), "serve: netlist text");
    static const char* kVerbs[] = {"parse", "analyze", "size-queues", "insert-rs", "rate-safety"};
    util::JsonWriter w;
    w.begin_object();
    w.key("id").value(i);
    w.key("verb").value(kVerbs[i % 5]);
    w.key("netlist").value(*text);
    w.end_object();
    lines.push_back(w.str());
  }
  lines.push_back(R"({"id": "g", "verb": "generate", "v": 9, "s": 2, "seed": 17})");

  std::vector<std::string> direct;
  for (const std::string& line : lines) {
    const Result<serve::Request> request = serve::parse_request(line);
    CHECK_OR_FAIL(request.ok(), "serve: request parses");
    const serve::Outcome outcome = serve::execute(*request);
    CHECK_OR_FAIL(outcome.ok, "serve: direct execution succeeds");
    direct.push_back(outcome.payload);
  }

  for (const int workers : {1, 4}) {
    serve::ServerOptions options;
    options.unix_socket = "/tmp/lid_selfcheck_" + std::to_string(::getpid()) + ".sock";
    options.workers = workers;
    serve::Server server(options);
    CHECK_OR_FAIL(server.start().ok(), "serve: server starts");
    Result<serve::Client> connected = serve::Client::connect_unix(options.unix_socket);
    CHECK_OR_FAIL(connected.ok(), "serve: client connects");
    serve::Client client = std::move(connected).value();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const Result<std::string> response = client.call(lines[i]);
      CHECK_OR_FAIL(response.ok(), "serve: response arrives");
      const Result<std::string> served = serve::extract_result(*response);
      CHECK_OR_FAIL(served.ok(), "serve: response is ok");
      CHECK_OR_FAIL(*served == direct[i], "serve: served payload == direct payload");
    }
    client.close();
    server.stop();
  }
  return true;
}

// Invariant (12): the model registry is a pure address. Registering a model
// and querying it by fingerprint — over NDJSON and over the binary frame
// transport, at 1 and at 4 workers — answers byte-identically to sending the
// same netlist inline on the same connection, which in turn equals direct
// in-process execution. This covers both the registry's canonicalize/reparse
// path and the per-model payload memo (the second worker sweep replays every
// query against warm memo entries).
bool check_registry(std::uint64_t trial_seed) {
  util::Rng rng(trial_seed);
  std::vector<std::string> texts;
  for (int i = 0; i < 3; ++i) {
    GenerateOptions options;
    options.cores = 5 + static_cast<int>(rng.uniform_int(0, 6));
    options.sccs = 1 + static_cast<int>(rng.uniform_int(0, 2));
    options.extra_cycles = static_cast<int>(rng.uniform_int(0, 2));
    options.relay_stations = 1 + static_cast<int>(rng.uniform_int(0, 3));
    options.rs_anywhere = true;
    options.seed = rng.fork_seed();
    const Result<Instance> generated = lid::generate(options);
    CHECK_OR_FAIL(generated.ok(), "registry: generate");
    const Result<std::string> text = netlist_text(*generated);
    CHECK_OR_FAIL(text.ok(), "registry: netlist text");
    texts.push_back(*text);
  }

  static const char* kVerbs[] = {"analyze", "size-queues", "lint", "rate-safety"};
  const auto inline_line = [&](std::size_t m, const char* verb) {
    util::JsonWriter w;
    w.begin_object();
    w.key("verb").value(verb).key("netlist").value(texts[m]);
    w.end_object();
    return w.str();
  };

  // Direct execution of the inline-netlist form is the reference.
  std::vector<std::vector<std::string>> direct(texts.size());
  for (std::size_t m = 0; m < texts.size(); ++m) {
    for (const char* verb : kVerbs) {
      const Result<serve::Request> request = serve::parse_request(inline_line(m, verb));
      CHECK_OR_FAIL(request.ok(), "registry: request parses");
      const serve::Outcome outcome = serve::execute(*request);
      CHECK_OR_FAIL(outcome.ok, "registry: direct execution succeeds");
      direct[m].push_back(outcome.payload);
    }
  }

  for (const int workers : {1, 4}) {
    serve::ServerOptions options;
    options.unix_socket =
        "/tmp/lid_selfcheck_reg_" + std::to_string(::getpid()) + ".sock";
    options.workers = workers;
    serve::Server server(options);
    CHECK_OR_FAIL(server.start().ok(), "registry: server starts");
    for (const bool binary : {false, true}) {
      serve::SessionOptions session_options;
      session_options.binary = binary;
      Result<serve::Session> connected =
          serve::Session::connect_unix(options.unix_socket, session_options);
      CHECK_OR_FAIL(connected.ok(), "registry: session connects");
      serve::Session session = std::move(connected).value();
      CHECK_OR_FAIL(session.protocol() == 2, "registry: hello negotiates v2");
      for (std::size_t m = 0; m < texts.size(); ++m) {
        const Result<serve::ModelHandle> handle = session.register_model(texts[m]);
        CHECK_OR_FAIL(handle.ok(), "registry: register-model succeeds");
        for (std::size_t v = 0; v < 4; ++v) {
          const Result<std::string> registered = session.query(*handle, kVerbs[v]);
          CHECK_OR_FAIL(registered.ok(), "registry: registered query succeeds");
          CHECK_OR_FAIL(*registered == direct[m][v],
                        "registry: registered payload == direct payload");
          const Result<std::string> response = session.call(inline_line(m, kVerbs[v]));
          CHECK_OR_FAIL(response.ok(), "registry: inline call succeeds");
          const Result<std::string> inlined = serve::extract_result(*response);
          CHECK_OR_FAIL(inlined.ok(), "registry: inline response ok");
          CHECK_OR_FAIL(*inlined == direct[m][v],
                        "registry: inline v2 payload == direct payload");
        }
      }
      session.close();
    }
    server.stop();
  }
  return true;
}

// Invariant (9): graceful degradation is honest. Requests that trip a
// 1-node exact budget with "on_deadline":"degrade" must answer with a
// payload byte-identical to direct heuristic execution, tagged degraded in
// the envelope only; and the heuristic total always upper-bounds the exact
// optimum (when the latter is provable with a generous budget).
bool check_degrade(std::uint64_t trial_seed) {
  util::Rng rng(trial_seed);
  // Four random systems, plus a fixed one whose UNSIMPLIFIED TD instance has
  // a loose counting bound and provably trips a 1-node budget (random
  // instances usually prove at zero search nodes, leaving the degrade branch
  // unexercised; the reductions are disabled on this case for the same
  // reason).
  constexpr const char* kLooseBoundNetlist =
      "core core0\ncore core1\ncore core2\ncore core3\ncore core4\n"
      "core core5\ncore core6\ncore core7\n"
      "channel core5 -> core3\n"
      "channel core3 -> core2 rs=1\n"
      "channel core2 -> core1 rs=2\n"
      "channel core1 -> core7 rs=2\n"
      "channel core7 -> core0\n"
      "channel core0 -> core6\n"
      "channel core6 -> core4\n"
      "channel core4 -> core5\n"
      "channel core3 -> core7\n"
      "channel core5 -> core6\n"
      "channel core6 -> core7\n";
  for (int i = 0; i < 5; ++i) {
    const bool fixed_case = i == 4;
    const bool simplify = !fixed_case;
    std::string text;
    if (fixed_case) {
      text = kLooseBoundNetlist;
    } else {
      GenerateOptions options;
      options.cores = 6 + static_cast<int>(rng.uniform_int(0, 6));
      options.sccs = 1 + static_cast<int>(rng.uniform_int(0, 2));
      options.extra_cycles = static_cast<int>(rng.uniform_int(0, 2));
      options.relay_stations = 1 + static_cast<int>(rng.uniform_int(0, 3));
      options.rs_anywhere = true;
      options.seed = rng.fork_seed();
      const Result<Instance> generated = lid::generate(options);
      CHECK_OR_FAIL(generated.ok(), "degrade: generate");
      const Result<std::string> generated_text = netlist_text(*generated);
      CHECK_OR_FAIL(generated_text.ok(), "degrade: netlist text");
      text = *generated_text;
    }

    const auto request_line = [&](const char* solver, bool degrade_policy,
                                  std::int64_t max_nodes) {
      util::JsonWriter w;
      w.begin_object();
      w.key("id").value(i);
      w.key("verb").value("size-queues");
      w.key("solver").value(solver);
      if (max_nodes > 0) w.key("max_nodes").value(max_nodes);
      if (!simplify) w.key("simplify").value(false);
      if (degrade_policy) w.key("on_deadline").value("degrade");
      w.key("netlist").value(text);
      w.end_object();
      return w.str();
    };
    const auto execute_line = [](const std::string& line) -> serve::Outcome {
      const Result<serve::Request> request = serve::parse_request(line);
      if (!request) return serve::Outcome::failure("parse_error", request.error().message);
      return serve::execute(*request);
    };

    // Probe with policy "error" first: its legacy payload says whether a
    // 1-node budget actually fails the proof on this instance (trivial
    // instances may prove at the root and never degrade).
    const serve::Outcome probe = execute_line(request_line("both", false, 1));
    CHECK_OR_FAIL(probe.ok, "degrade: probe execution succeeds");
    const util::JsonParse probe_json = util::json_parse(probe.payload);
    CHECK_OR_FAIL(probe_json.ok && probe_json.value.is_object(), "degrade: probe payload parses");
    const util::Json* proved = probe_json.value.find("exact_proved");
    const bool budget_trips = proved != nullptr && proved->is_bool() && !proved->as_bool();
    if (fixed_case) {
      CHECK_OR_FAIL(budget_trips, "degrade: fixed loose-bound case trips a 1-node budget");
    }

    const serve::Outcome degraded = execute_line(request_line("both", true, 1));
    CHECK_OR_FAIL(degraded.ok, "degrade: degraded execution succeeds");
    CHECK_OR_FAIL(degraded.degraded == budget_trips, "degrade: tag iff budget tripped");
    if (budget_trips) {
      const serve::Outcome heuristic = execute_line(request_line("heuristic", false, 0));
      CHECK_OR_FAIL(heuristic.ok, "degrade: heuristic execution succeeds");
      CHECK_OR_FAIL(!heuristic.degraded, "degrade: direct heuristic untagged");
      CHECK_OR_FAIL(degraded.payload == heuristic.payload,
                    "degrade: degraded payload == direct heuristic payload");
    }

    // The heuristic total in the (possibly degraded) payload bounds the
    // exact optimum whenever a generous budget proves it.
    const Result<Instance> reparsed = parse_netlist(text);
    CHECK_OR_FAIL(reparsed.ok(), "degrade: reparse");
    SizeQueuesOptions full;
    full.solver = Solver::kBoth;
    full.exact_max_nodes = 200'000;
    full.simplify = simplify;
    const Result<Sizing> sized = size_queues(*reparsed, full);
    CHECK_OR_FAIL(sized.ok(), "degrade: full sizing succeeds");
    if (sized->exact_proved && sized->exact_total >= 0) {
      const util::JsonParse payload = util::json_parse(degraded.payload);
      CHECK_OR_FAIL(payload.ok && payload.value.is_object(), "degrade: payload parses");
      const util::Json* heuristic_total = payload.value.find("heuristic_total");
      if (heuristic_total != nullptr && heuristic_total->is_number()) {
        CHECK_OR_FAIL(heuristic_total->as_int() >= sized->exact_total,
                      "degrade: heuristic total bounds exact optimum");
      }
    }
  }
  return true;
}

// Invariant (11), structured-rejection half: a parseable but deadlocked
// netlist must come back as a `lint` error — with the offending check code in
// the message — through the facade AND through the serve protocol, while the
// lint verb itself succeeds and itemizes the findings. Runs once.
bool check_lint(std::uint64_t trial_seed) {
  constexpr const char* kDeadlocked =
      "core A\ncore B\nchannel A -> B q=0\nchannel B -> A q=0\n";
  const Result<Instance> instance = parse_netlist(kDeadlocked, "deadlocked");
  CHECK_OR_FAIL(instance.ok(), "lint: deadlocked netlist still parses");

  const Result<Analysis> analysis = analyze(*instance);
  CHECK_OR_FAIL(!analysis.ok() && analysis.error().code == ErrorCode::kLint,
                "lint: analyze rejects with kLint");
  CHECK_OR_FAIL(analysis.error().message.find("L001") != std::string::npos,
                "lint: rejection names the check code");
  const Result<Sizing> sizing = size_queues(*instance);
  CHECK_OR_FAIL(!sizing.ok() && sizing.error().code == ErrorCode::kLint,
                "lint: size_queues rejects with kLint");

  const auto execute_line = [](const std::string& line) -> serve::Outcome {
    const Result<serve::Request> request = serve::parse_request(line);
    if (!request) return serve::Outcome::failure("parse_error", request.error().message);
    return serve::execute(*request);
  };
  util::JsonWriter analyze_request;
  analyze_request.begin_object();
  analyze_request.key("verb").value("analyze").key("netlist").value(kDeadlocked);
  analyze_request.end_object();
  const serve::Outcome rejected = execute_line(analyze_request.str());
  CHECK_OR_FAIL(!rejected.ok && rejected.error_code == serve::codes::kLint,
                "lint: serve analyze rejects with the lint wire code");

  util::JsonWriter lint_request;
  lint_request.begin_object();
  lint_request.key("verb").value("lint").key("netlist").value(kDeadlocked);
  lint_request.end_object();
  const serve::Outcome linted = execute_line(lint_request.str());
  CHECK_OR_FAIL(linted.ok, "lint: the lint verb itself succeeds");
  const util::JsonParse payload = util::json_parse(linted.payload);
  CHECK_OR_FAIL(payload.ok && payload.value.is_object(), "lint: payload parses");
  const util::Json* errors = payload.value.find("errors");
  CHECK_OR_FAIL(errors != nullptr && errors->as_int() == 3,
                "lint: payload itemizes the three error findings");
  return true;
}

// Invariant (14): the cluster router is a pure transport. Every payload read
// back through a 3-worker lid_cluster front door equals the payload of a
// single lid_serve and of direct in-process execution, byte for byte —
// inline netlists and registered fingerprints alike — and the identity
// survives stopping a worker mid-run (failover + model re-registration).
bool check_cluster(std::uint64_t trial_seed) {
  util::Rng rng(trial_seed);
  std::vector<std::string> texts;
  for (int i = 0; i < 3; ++i) {
    GenerateOptions options;
    options.cores = 5 + static_cast<int>(rng.uniform_int(0, 6));
    options.sccs = 1 + static_cast<int>(rng.uniform_int(0, 2));
    options.extra_cycles = static_cast<int>(rng.uniform_int(0, 2));
    options.relay_stations = 1 + static_cast<int>(rng.uniform_int(0, 3));
    options.rs_anywhere = true;
    options.seed = rng.fork_seed();
    const Result<Instance> generated = lid::generate(options);
    CHECK_OR_FAIL(generated.ok(), "cluster: generate");
    const Result<std::string> text = netlist_text(*generated);
    CHECK_OR_FAIL(text.ok(), "cluster: netlist text");
    texts.push_back(*text);
  }

  static const char* kVerbs[] = {"analyze", "size-queues", "lint", "rate-safety"};
  const auto inline_line = [&](std::size_t m, const char* verb) {
    util::JsonWriter w;
    w.begin_object();
    w.key("verb").value(verb).key("netlist").value(texts[m]);
    w.end_object();
    return w.str();
  };
  const auto model_line = [&](std::size_t m, const char* verb) {
    util::JsonWriter w;
    w.begin_object();
    w.key("verb").value(verb).key("model").value(serve::Registry::fingerprint(texts[m]));
    w.end_object();
    return w.str();
  };

  // Direct execution is the reference.
  std::vector<std::vector<std::string>> direct(texts.size());
  for (std::size_t m = 0; m < texts.size(); ++m) {
    for (const char* verb : kVerbs) {
      const Result<serve::Request> request = serve::parse_request(inline_line(m, verb));
      CHECK_OR_FAIL(request.ok(), "cluster: request parses");
      const serve::Outcome outcome = serve::execute(*request);
      CHECK_OR_FAIL(outcome.ok, "cluster: direct execution succeeds");
      direct[m].push_back(outcome.payload);
    }
  }

  // Three adopted in-process workers behind a router, plus one plain server
  // as the middle term of the identity.
  const std::string stem = "/tmp/lid_selfcheck_cl_" + std::to_string(::getpid());
  std::vector<std::unique_ptr<serve::Server>> workers;
  serve::ClusterOptions cluster_options;
  for (int i = 0; i < 3; ++i) {
    serve::ServerOptions options;
    options.unix_socket = stem + "_w" + std::to_string(i) + ".sock";
    workers.push_back(std::make_unique<serve::Server>(options));
    CHECK_OR_FAIL(workers.back()->start().ok(), "cluster: worker starts");
    serve::WorkerSpec spec;
    spec.unix_socket = options.unix_socket;
    spec.spawn = false;
    cluster_options.workers.push_back(spec);
  }
  cluster_options.unix_socket = stem + "_front.sock";
  cluster_options.probe_interval_ms = 20.0;
  cluster_options.eject_after = 2;
  serve::Cluster cluster(cluster_options);
  CHECK_OR_FAIL(cluster.start().ok(), "cluster: router starts");

  serve::ServerOptions single_options;
  single_options.unix_socket = stem + "_single.sock";
  serve::Server single(single_options);
  CHECK_OR_FAIL(single.start().ok(), "cluster: single server starts");

  Result<serve::Client> front = serve::Client::connect_unix(cluster_options.unix_socket);
  Result<serve::Client> side = serve::Client::connect_unix(single_options.unix_socket);
  CHECK_OR_FAIL(front.ok() && side.ok(), "cluster: clients connect");
  serve::Client via_cluster = std::move(front).value();
  serve::Client via_single = std::move(side).value();

  const auto payload_of = [](serve::Client& client,
                             const std::string& line) -> Result<std::string> {
    const Result<std::string> response = client.call(line);
    if (!response) return response.error();
    return serve::extract_result(*response);
  };

  // Inline requests: cluster == single server == direct.
  for (std::size_t m = 0; m < texts.size(); ++m) {
    for (std::size_t v = 0; v < 4; ++v) {
      const Result<std::string> clustered = payload_of(via_cluster, inline_line(m, kVerbs[v]));
      const Result<std::string> singled = payload_of(via_single, inline_line(m, kVerbs[v]));
      CHECK_OR_FAIL(clustered.ok() && singled.ok(), "cluster: inline responses ok");
      CHECK_OR_FAIL(*clustered == *singled, "cluster: inline cluster == single server");
      CHECK_OR_FAIL(*clustered == direct[m][v], "cluster: inline cluster == direct");
    }
  }

  // Registered requests through the router (which owns placement).
  for (const std::string& text : texts) {
    util::JsonWriter w;
    w.begin_object();
    w.key("verb").value("register-model").key("netlist").value(text);
    w.end_object();
    const Result<std::string> registered = payload_of(via_cluster, w.str());
    CHECK_OR_FAIL(registered.ok(), "cluster: register-model succeeds");
  }
  for (std::size_t m = 0; m < texts.size(); ++m) {
    for (std::size_t v = 0; v < 4; ++v) {
      const Result<std::string> payload = payload_of(via_cluster, model_line(m, kVerbs[v]));
      CHECK_OR_FAIL(payload.ok(), "cluster: registered query succeeds");
      CHECK_OR_FAIL(*payload == direct[m][v], "cluster: registered payload == direct");
    }
  }

  // Stop one worker: the router must fail over, re-register the displaced
  // models, and keep every payload byte-identical — never unknown_model.
  workers[0]->stop();
  for (std::size_t m = 0; m < texts.size(); ++m) {
    for (std::size_t v = 0; v < 4; ++v) {
      const Result<std::string> payload = payload_of(via_cluster, model_line(m, kVerbs[v]));
      CHECK_OR_FAIL(payload.ok(), "cluster: post-failover query succeeds");
      CHECK_OR_FAIL(*payload == direct[m][v], "cluster: post-failover payload == direct");
    }
  }

  via_cluster.close();
  via_single.close();
  cluster.stop();
  single.stop();
  for (const std::unique_ptr<serve::Server>& worker : workers) worker->stop();
  return true;
}

// Invariant (15): certificates are sound and transport-stable. The facade's
// opt-in certificates (analyze and size-queues) pass the independent O(E)
// checker in both the typed and the JSON form; through lid_serve, the
// certified payloads are byte-identical between inline and registered
// (model-addressed) requests over both the NDJSON and binary transports, and
// the certificate embedded in every served payload re-verifies locally.
bool check_certificates(std::uint64_t trial_seed) {
  util::Rng rng(trial_seed);
  std::vector<Instance> instances;
  std::vector<std::string> texts;
  for (int i = 0; i < 3; ++i) {
    GenerateOptions options;
    options.cores = 5 + static_cast<int>(rng.uniform_int(0, 6));
    options.sccs = 1 + static_cast<int>(rng.uniform_int(0, 2));
    options.extra_cycles = static_cast<int>(rng.uniform_int(0, 2));
    options.relay_stations = 1 + static_cast<int>(rng.uniform_int(0, 3));
    options.rs_anywhere = true;
    options.seed = rng.fork_seed();
    const Result<Instance> generated = lid::generate(options);
    CHECK_OR_FAIL(generated.ok(), "cert: generate");
    const Result<std::string> text = netlist_text(*generated);
    CHECK_OR_FAIL(text.ok(), "cert: netlist text");
    instances.push_back(*generated);
    texts.push_back(*text);
  }

  // Facade: both certifying entry points, typed and JSON checker forms.
  for (const Instance& instance : instances) {
    AnalyzeOptions analyze_options;
    analyze_options.certify = true;
    const Result<Analysis> analysis = analyze(instance, analyze_options);
    CHECK_OR_FAIL(analysis.ok() && analysis->certificate.has_value(), "cert: analyze certifies");
    Result<verify::CheckResult> verdict = verify_certificate(instance, *analysis->certificate);
    CHECK_OR_FAIL(verdict.ok() && verdict->ok, "cert: analyze certificate verifies");
    verdict = verify_certificate(instance, verify::to_json(*analysis->certificate));
    CHECK_OR_FAIL(verdict.ok() && verdict->ok, "cert: analyze JSON form verifies");

    SizeQueuesOptions sizing_options;
    sizing_options.certify = true;
    const Result<Sizing> sizing = size_queues(instance, sizing_options);
    CHECK_OR_FAIL(sizing.ok() && sizing->certificate.has_value(), "cert: sizing certifies");
    verdict = verify_certificate(instance, *sizing->certificate);
    CHECK_OR_FAIL(verdict.ok() && verdict->ok, "cert: sizing certificate verifies");
    verdict = verify_certificate(instance, verify::to_json(*sizing->certificate));
    CHECK_OR_FAIL(verdict.ok() && verdict->ok, "cert: sizing JSON form verifies");
  }

  // A certified payload must embed a certificate that the independent
  // checker accepts against the locally held instance.
  const auto payload_certificate_verifies = [&](const std::string& payload,
                                                std::size_t m) -> bool {
    const util::JsonParse parsed = util::json_parse(payload);
    if (!parsed.ok || !parsed.value.is_object()) return false;
    const util::Json* cert_json = parsed.value.find("certificate");
    if (cert_json == nullptr) return false;
    const verify::CertificateParse cert = verify::parse_certificate(*cert_json);
    if (!cert) return false;
    const Result<verify::CheckResult> verdict =
        verify_certificate(instances[m], cert.certificate);
    return verdict.ok() && verdict->ok;
  };

  static const char* kVerbs[] = {"analyze", "size-queues"};
  const auto inline_line = [&](std::size_t m, const char* verb) {
    util::JsonWriter w;
    w.begin_object();
    w.key("verb").value(verb).key("netlist").value(texts[m]).key("certify").value(true);
    w.end_object();
    return w.str();
  };

  // Direct execution of the certified inline form is the reference.
  std::vector<std::vector<std::string>> direct(texts.size());
  for (std::size_t m = 0; m < texts.size(); ++m) {
    for (const char* verb : kVerbs) {
      const Result<serve::Request> request = serve::parse_request(inline_line(m, verb));
      CHECK_OR_FAIL(request.ok(), "cert: request parses");
      const serve::Outcome outcome = serve::execute(*request);
      CHECK_OR_FAIL(outcome.ok, "cert: direct certified execution succeeds");
      CHECK_OR_FAIL(payload_certificate_verifies(outcome.payload, m),
                    "cert: direct payload certificate verifies");
      direct[m].push_back(outcome.payload);
    }
  }

  serve::ServerOptions server_options;
  server_options.unix_socket = "/tmp/lid_selfcheck_cert_" + std::to_string(::getpid()) + ".sock";
  serve::Server server(server_options);
  CHECK_OR_FAIL(server.start().ok(), "cert: server starts");
  for (const bool binary : {false, true}) {
    serve::SessionOptions session_options;
    session_options.binary = binary;
    Result<serve::Session> connected =
        serve::Session::connect_unix(server_options.unix_socket, session_options);
    CHECK_OR_FAIL(connected.ok(), "cert: session connects");
    serve::Session session = std::move(connected).value();
    for (std::size_t m = 0; m < texts.size(); ++m) {
      const Result<serve::ModelHandle> handle = session.register_model(texts[m]);
      CHECK_OR_FAIL(handle.ok(), "cert: register-model succeeds");
      for (std::size_t v = 0; v < 2; ++v) {
        const Result<std::string> registered =
            session.query(*handle, kVerbs[v], R"({"certify":true})");
        CHECK_OR_FAIL(registered.ok(), "cert: registered certified query succeeds");
        CHECK_OR_FAIL(*registered == direct[m][v],
                      "cert: registered certified payload == inline == direct");
        const Result<std::string> response = session.call(inline_line(m, kVerbs[v]));
        CHECK_OR_FAIL(response.ok(), "cert: inline certified call succeeds");
        const Result<std::string> inlined = serve::extract_result(*response);
        CHECK_OR_FAIL(inlined.ok(), "cert: inline certified response ok");
        CHECK_OR_FAIL(*inlined == direct[m][v], "cert: inline certified payload == direct");
      }
    }
    session.close();
  }
  server.stop();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const double seconds = cli.get_double("seconds", 5.0);
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const bool verbose = cli.get_bool("verbose", false);

    util::Rng seeder(seed);
    util::Timer timer;
    if (!check_engine(seed)) return 1;
    if (!check_serve(seed)) return 1;
    if (!check_registry(seed)) return 1;
    if (!check_degrade(seed)) return 1;
    if (!check_lint(seed)) return 1;
    if (!check_cluster(seed)) return 1;
    if (!check_certificates(seed)) return 1;
    std::int64_t trials = 0;
    while (timer.elapsed_s() < seconds) {
      if (!check_one(seeder.fork_seed(), verbose)) return 1;
      ++trials;
    }
    std::cout << "lid_selfcheck: " << trials << " randomized systems, all invariants hold ("
              << timer.elapsed_s() << " s)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "lid_selfcheck: " << e.what() << "\n";
    return 1;
  }
}
