// lid_tool — command-line front end for the library.
//
//   lid_tool analyze     --netlist sys.lis [--slack] [--rates]
//   lid_tool size-queues --netlist sys.lis [--method heuristic|exact|both]
//                        [--out sized.lis] [--timeout-ms N]
//   lid_tool insert-rs   --netlist sys.lis --budget N [--out repaired.lis]
//   lid_tool simulate    --netlist sys.lis [--periods N] [--reference core] [--vcd out.vcd]
//   lid_tool dot         --netlist sys.lis [--doubled] [--highlight-critical]
//   lid_tool storage     --netlist sys.lis
//   lid_tool pareto      --netlist sys.lis [--timeout-ms N]
//   lid_tool schedule    --netlist sys.lis [--max-periods N]
//   lid_tool generate    --out sys.lis [--v N --s N --c N --rs N --policy scc|any
//                        --seed N --reconvergent 0|1]
#include <iostream>

#include "core/diagnostics.hpp"
#include "core/pareto.hpp"
#include "core/queue_sizing.hpp"
#include "core/rate_safety.hpp"
#include "core/rs_insertion.hpp"
#include "core/scheduling.hpp"
#include "core/slack.hpp"
#include "core/storage.hpp"
#include "gen/generator.hpp"
#include "graph/topology.hpp"
#include "lis/dot_export.hpp"
#include "lis/netlist_io.hpp"
#include "lis/vcd_export.hpp"
#include "lis/protocol_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace lid;

lis::LisGraph load(const util::Cli& cli) {
  const std::string path = cli.get_string("netlist", "");
  if (path.empty()) throw std::invalid_argument("--netlist <file> is required");
  return lis::load_netlist(path);
}

int cmd_analyze(const util::Cli& cli) {
  const lis::LisGraph system = load(cli);
  std::cout << "cores: " << system.num_cores() << ", channels: " << system.num_channels()
            << ", relay stations: " << system.total_relay_stations() << "\n";
  std::cout << "topology class: " << graph::to_string(graph::classify(system.structure()))
            << "\n";
  if (cli.get_bool("rates", false)) {
    std::cout << core::analyze_rate_safety(system).to_string(system);
  }
  std::cout << core::explain_degradation(system).to_string();
  if (cli.get_bool("slack", false)) {
    std::cout << "wire-pipelining slack (extra relay stations each channel absorbs before\n"
                 "the ideal MST drops):\n";
    util::Table table({"channel", "slack", "ideal MST if exceeded"});
    for (const core::ChannelSlack& s : core::channel_slacks(system)) {
      const lis::Channel& ch = system.channel(s.channel);
      table.add_row({system.core_name(ch.src) + " -> " + system.core_name(ch.dst),
                     s.slack == core::ChannelSlack::kUnbounded ? "unbounded"
                                                               : std::to_string(s.slack),
                     s.slack == core::ChannelSlack::kUnbounded
                         ? "-"
                         : s.mst_if_exceeded.to_string()});
    }
    table.print(std::cout);
  }
  return 0;
}

int cmd_size_queues(const util::Cli& cli) {
  const lis::LisGraph system = load(cli);
  const std::string method = cli.get_string("method", "both");
  core::QsOptions options;
  if (method == "heuristic") {
    options.method = core::QsMethod::kHeuristic;
  } else if (method == "exact") {
    options.method = core::QsMethod::kExact;
  } else if (method == "both") {
    options.method = core::QsMethod::kBoth;
  } else {
    throw std::invalid_argument("--method must be heuristic, exact or both");
  }
  options.exact.timeout_ms = cli.get_double("timeout-ms", 60000.0);
  const core::QsReport report = core::size_queues(system, options);

  std::cout << "ideal MST " << report.problem.theta_ideal << ", practical MST "
            << report.problem.theta_practical << "\n";
  if (!report.problem.has_degradation()) {
    std::cout << "no degradation: queues are already sufficient\n";
  } else {
    if (report.heuristic) {
      std::cout << "heuristic: " << report.heuristic->total_extra_tokens << " extra slot(s) in "
                << util::Table::fmt(report.heuristic->cpu_ms, 3) << " ms\n";
    }
    if (report.exact) {
      std::cout << "exact:     " << report.exact->total_extra_tokens << " extra slot(s) in "
                << util::Table::fmt(report.exact->cpu_ms, 3) << " ms"
                << (report.exact->finished ? "" : "  (timed out — heuristic fallback)") << "\n";
    }
    std::cout << "achieved MST " << report.achieved_mst << "\n";
    for (std::size_t s = 0; s < report.problem.channels.size(); ++s) {
      const lis::ChannelId ch = report.problem.channels[s];
      const int grown = report.sized.channel(ch).queue_capacity;
      if (grown != system.channel(ch).queue_capacity) {
        std::cout << "  queue of " << system.core_name(system.channel(ch).dst)
                  << " fed by " << system.core_name(system.channel(ch).src) << ": "
                  << system.channel(ch).queue_capacity << " -> " << grown << "\n";
      }
    }
  }
  const std::string out = cli.get_string("out", "");
  if (!out.empty()) {
    lis::save_netlist(report.sized, out);
    std::cout << "sized netlist written to " << out << "\n";
  }
  return 0;
}

int cmd_insert_rs(const util::Cli& cli) {
  const lis::LisGraph system = load(cli);
  const int budget = static_cast<int>(cli.get_int("budget", 1));
  const core::RsInsertionResult result = core::greedy_rs_insertion(system, budget);
  std::cout << "original ideal MST " << result.original_ideal << "\n";
  std::cout << "added " << result.relay_stations_added << " relay station(s); practical MST "
            << result.best_practical << (result.reached_ideal ? " (ideal reached)" : "") << "\n";
  const std::string out = cli.get_string("out", "");
  if (!out.empty()) {
    lis::save_netlist(result.best, out);
    std::cout << "repaired netlist written to " << out << "\n";
  }
  return result.reached_ideal ? 0 : 2;
}

int cmd_simulate(const util::Cli& cli) {
  const lis::LisGraph system = load(cli);
  lis::ProtocolOptions options;
  options.periods = static_cast<std::size_t>(cli.get_int("periods", 10000));
  const std::string reference = cli.get_string("reference", "");
  if (!reference.empty()) {
    bool found = false;
    for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(system.num_cores()); ++v) {
      if (system.core_name(v) == reference) {
        options.reference = v;
        found = true;
      }
    }
    if (!found) throw std::invalid_argument("unknown core '" + reference + "'");
  }
  const std::string vcd = cli.get_string("vcd", "");
  options.record_traces = !vcd.empty();
  const lis::ProtocolResult result = simulate_protocol(system, options);
  std::cout << "simulated " << result.periods << " period(s); throughput of "
            << system.core_name(options.reference) << " = " << result.throughput.to_string()
            << (result.periodic_found ? " (exact, periodic regime found)" : " (empirical)")
            << "\n";
  if (!vcd.empty()) {
    lis::save_vcd(system, result, vcd);
    std::cout << "waveforms written to " << vcd << "\n";
  }
  return 0;
}

int cmd_dot(const util::Cli& cli) {
  const lis::LisGraph system = load(cli);
  if (cli.get_bool("doubled", false)) {
    std::cout << lis::marked_graph_to_dot(lis::expand_doubled(system).graph);
    return 0;
  }
  lis::DotOptions options;
  options.always_show_queues = cli.get_bool("show-queues", false);
  if (cli.get_bool("highlight-critical", false)) {
    for (const core::CriticalHop& hop : core::explain_degradation(system).critical_cycle) {
      if (hop.channel != graph::kInvalidEdge) options.highlight.push_back(hop.channel);
    }
  }
  std::cout << lis::to_dot(system, options);
  return 0;
}

int cmd_storage(const util::Cli& cli) {
  const lis::LisGraph system = load(cli);
  util::Table table({"channel", "q", "relay stations", "worst-case occupancy"});
  for (const core::ChannelStorage& s : core::storage_bounds(system)) {
    const lis::Channel& ch = system.channel(s.channel);
    table.add_row({system.core_name(ch.src) + " -> " + system.core_name(ch.dst),
                   std::to_string(s.configured_capacity), std::to_string(s.relay_stations),
                   std::to_string(s.occupancy_bound)});
  }
  table.print(std::cout);
  std::cout << "total worst-case storage: " << core::total_storage_bound(system)
            << " item(s)\n";
  return 0;
}

int cmd_pareto(const util::Cli& cli) {
  const lis::LisGraph system = load(cli);
  core::ParetoOptions options;
  options.exact.timeout_ms = cli.get_double("timeout-ms", 60000.0);
  util::Table table({"extra queue slots", "achieved MST"});
  for (const core::ParetoPoint& point : core::qs_pareto_frontier(system, options)) {
    table.add_row({std::to_string(point.extra_tokens), point.achieved_mst.to_string()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_schedule(const util::Cli& cli) {
  const lis::LisGraph system = load(cli);
  const core::StaticSchedule schedule = core::compute_static_schedule(
      system, static_cast<std::size_t>(cli.get_int("max-periods", 20000)));
  if (!schedule.found) {
    std::cout << "no periodic schedule exists (unbalanced rates or budget too small);\n"
                 "this system needs backpressure (Sec. III-C)\n";
    return 2;
  }
  std::cout << "schedule rate " << schedule.throughput << ", transient " << schedule.transient
            << ", period " << schedule.period << "\n";
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(system.num_cores()); ++v) {
    std::cout << "  " << system.core_name(v) << ": ";
    for (std::size_t t = schedule.transient; t < schedule.transient + schedule.period; ++t) {
      std::cout << (schedule.fires(v, t) ? '1' : '.');
    }
    std::cout << "\n";
  }
  std::cout << "per-channel queue requirement:";
  for (const std::int64_t q : schedule.required_queues) std::cout << " " << q;
  std::cout << "\n";
  const core::ScheduleReplay replay = core::replay_schedule(system, schedule, 4000);
  std::cout << "replay: throughput " << replay.throughput.to_string() << ", violations "
            << replay.violations << "\n";
  return 0;
}

int cmd_generate(const util::Cli& cli) {
  const std::string out = cli.get_string("out", "");
  if (out.empty()) throw std::invalid_argument("--out <file> is required");
  gen::GeneratorParams params;
  params.vertices = static_cast<int>(cli.get_int("v", 50));
  params.sccs = static_cast<int>(cli.get_int("s", 5));
  params.min_cycles = static_cast<int>(cli.get_int("c", 5));
  params.relay_stations = static_cast<int>(cli.get_int("rs", 10));
  params.reconvergent = cli.get_bool("reconvergent", true);
  const std::string policy = cli.get_string("policy", "scc");
  if (policy == "scc") {
    params.policy = gen::RsPolicy::kScc;
  } else if (policy == "any") {
    params.policy = gen::RsPolicy::kAny;
  } else {
    throw std::invalid_argument("--policy must be scc or any");
  }
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  lis::save_netlist(gen::generate(params, rng), out);
  std::cout << "generated netlist written to " << out << "\n";
  return 0;
}

void usage() {
  std::cout << "usage: lid_tool <analyze|size-queues|insert-rs|simulate|dot|storage|pareto|schedule|generate> "
               "[--flags]\n  see the header of tools/lid_tool.cpp for details\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    const util::Cli cli(argc - 1, argv + 1);
    if (command == "analyze") return cmd_analyze(cli);
    if (command == "size-queues") return cmd_size_queues(cli);
    if (command == "insert-rs") return cmd_insert_rs(cli);
    if (command == "simulate") return cmd_simulate(cli);
    if (command == "dot") return cmd_dot(cli);
    if (command == "storage") return cmd_storage(cli);
    if (command == "pareto") return cmd_pareto(cli);
    if (command == "schedule") return cmd_schedule(cli);
    if (command == "generate") return cmd_generate(cli);
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "lid_tool " << command << ": " << e.what() << "\n";
    return 1;
  }
}
