// lid_tool — command-line front end, built on the lid:: facade
// (src/lid_api.hpp) and the batch engine (src/engine).
//
// Verb subcommands (legacy spellings kept as aliases):
//   lid_tool analyze   --netlist sys.lis [--slack] [--rates]
//                      [--certify] [--certificate-out cert.json]
//   lid_tool size      --netlist sys.lis [--method heuristic|exact|both|lazy]
//                      [--out sized.lis] [--timeout-ms N] [--max-nodes N]
//                      [--certify] [--certificate-out cert.json]
//                      (alias: size-queues)
//   lid_tool verify    --netlist sys.lis --certificate cert.json
//                      independent O(E) re-check of an analysis / sizing
//                      certificate (src/verify — no solver code); exit 0 on
//                      OK, 2 with a structured reason on rejection
//   lid_tool batch     [--netlists a.lis,b.lis] [--cofdm] [--count N]
//                      [--v N --s N --c N --rs N --policy scc|any --seed N]
//                      [--threads N] [--analyses list|all]
//                      [--metrics] [--metrics-json file] [--out file]
//   lid_tool export    --netlist sys.lis [--format dot|dot-doubled|text]
//                      [--highlight-critical] [--show-queues]  (alias: dot)
//   lid_tool gen       --out sys.lis [--v N --s N --c N --rs N
//                      --policy scc|any --seed N --reconvergent 0|1]
//                      [--stochastic [--max-latency N --max-period N]]
//                      (alias: generate)
//   lid_tool insert-rs --netlist sys.lis --budget N [--out repaired.lis]
//   lid_tool simulate  --netlist sys.lis [--periods N] [--reference core]
//                      [--vcd out.vcd]
//                      DES mode (any of these flags selects the stochastic
//                      event-driven backend, src/des):
//                      [--dist fixed:3|uniform:1:4|geometric:1/2]
//                      [--arrival saturated|rate:P|poisson:N/D|bursty:ON:OFF]
//                      [--horizon N] [--warmup N] [--seed N]
//                      [--occupancy-out occ.csv]
//                      `#!` annotations in the netlist override per channel /
//                      per source (see gen --stochastic, docs/simulation.md)
//   lid_tool storage   --netlist sys.lis
//   lid_tool pareto    --netlist sys.lis [--timeout-ms N]
//   lid_tool schedule  --netlist sys.lis [--max-periods N]
//   lid_tool lint      (--netlist sys.lis | --netlists a.lis,b.lis)
//                      [--target N|N/D] [--errors-only]
//                      [--format pretty|json|sarif] [--out file]
//                      [--fail-on error|warning|info|never]
//                      [--baseline known.sarif]  suppress findings already in
//                      a prior SARIF report (same rule at the same file/line);
//                      only NEW findings render or count toward --fail-on
//   lid_tool client    (--socket PATH | --port N [--host A]) --verb analyze
//                      [--netlist sys.lis | --model FINGERPRINT]
//                      [--deadline-ms N] [--id STR]
//                      [--on-deadline error|degrade] [--retries N]
//                      [--attempt-timeout-ms T]
//                      [--protocol 1|2] [--transport ndjson|binary]
//                      [verb args: --v/--s/--c/--rs/--seed/--policy, --solver,
//                       --max-nodes, --budget, --ms, --certify] [--result-only]
//                      [--stdin]
//                      Protocol-v2 verbs: hello, register-model (--netlist),
//                      evict-model (--model), list-models; analyze /
//                      size-queues / lint / rate-safety / simulate accept
//                      --model to hit a registered model instead of shipping
//                      the netlist.
//
// Numeric flags are range-validated (Cli::get_int_in): zero, negative or
// non-numeric values where they make no sense exit 1 with a message naming
// the flag and the accepted range.
#include <fstream>
#include <iostream>
#include <limits>
#include <set>
#include <sstream>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "util/json.hpp"

#include "core/diagnostics.hpp"
#include "core/pareto.hpp"
#include "des/annotations.hpp"
#include "des/des.hpp"
#include "core/scheduling.hpp"
#include "core/slack.hpp"
#include "core/storage.hpp"
#include "engine/engine.hpp"
#include "lid_api.hpp"
#include "lint/render.hpp"
#include "lis/dot_export.hpp"
#include "lis/protocol_sim.hpp"
#include "lis/vcd_export.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace lid;

/// Loads --netlist through the facade; throws the Result error as an
/// exception so every verb reports failures uniformly.
Instance load(const util::Cli& cli) {
  const std::string path = cli.get_string("netlist", "");
  if (path.empty()) throw std::invalid_argument("--netlist <file> is required");
  Result<Instance> loaded = load_netlist(path);
  if (!loaded) throw std::runtime_error(loaded.error().to_string());
  return *loaded;
}

template <typename T>
T value_or_throw(Result<T> result) {
  if (!result) throw std::runtime_error(result.error().to_string());
  return std::move(result).value();
}

/// Writes an emitted certificate: to --certificate-out when given, else to
/// stdout after the verb's human-readable report.
void emit_certificate(const util::Cli& cli, const verify::Certificate& cert) {
  const std::string json = verify::to_json(cert);
  const std::string out = cli.get_string("certificate-out", "");
  if (out.empty()) {
    std::cout << json << "\n";
    return;
  }
  std::ofstream file(out);
  if (!file) throw std::runtime_error("cannot open '" + out + "' for writing");
  file << json << "\n";
  std::cout << "certificate written to " << out << "\n";
}

/// True when the verb should emit a certificate: --certify, or an implied
/// opt-in via --certificate-out.
bool wants_certificate(const util::Cli& cli) {
  return cli.get_bool("certify", false) || !cli.get_string("certificate-out", "").empty();
}

GenerateOptions generate_options(const util::Cli& cli) {
  GenerateOptions options;
  options.cores = static_cast<int>(cli.get_int_in("v", 50, 2, 1'000'000));
  options.sccs = static_cast<int>(cli.get_int_in("s", 5, 1, 1'000'000));
  options.extra_cycles = static_cast<int>(cli.get_int_in("c", 5, 0, 1'000'000));
  options.relay_stations = static_cast<int>(cli.get_int_in("rs", 10, 0, 1'000'000));
  options.reconvergent = cli.get_bool("reconvergent", true);
  options.seed = static_cast<std::uint64_t>(
      cli.get_int_in("seed", 1, 0, std::numeric_limits<std::int64_t>::max()));
  const std::string policy = cli.get_string("policy", "scc");
  if (policy == "any") {
    options.rs_anywhere = true;
  } else if (policy == "scc") {
    options.rs_anywhere = false;
  } else {
    throw std::invalid_argument("--policy must be scc or any");
  }
  return options;
}

int cmd_analyze(const util::Cli& cli) {
  const Instance system = load(cli);
  AnalyzeOptions options;
  options.rate_safety = cli.get_bool("rates", false);
  options.certify = wants_certificate(cli);
  const Analysis& analysis = value_or_throw(analyze(system, options));
  std::cout << "cores: " << analysis.cores << ", channels: " << analysis.channels
            << ", relay stations: " << analysis.relay_stations << "\n";
  std::cout << "topology class: " << analysis.topology << "\n";
  if (options.rate_safety) {
    std::cout << "rate hazards: " << analysis.rate_hazards
              << (analysis.rate_safe ? " (ideal system safe)" : " (ideal system UNSAFE)") << "\n";
  }
  std::cout << "ideal MST " << analysis.theta_ideal << ", practical MST "
            << analysis.theta_practical << (analysis.degraded ? "  DEGRADED" : "") << "\n";
  if (analysis.degraded && !analysis.critical_cycle.empty()) {
    std::cout << "critical cycle:\n";
    for (const std::string& hop : analysis.critical_cycle) std::cout << "  " << hop << "\n";
  }
  if (cli.get_bool("slack", false)) {
    std::cout << "wire-pipelining slack (extra relay stations each channel absorbs before\n"
                 "the ideal MST drops):\n";
    util::Table table({"channel", "slack", "ideal MST if exceeded"});
    const lis::LisGraph& graph = system.graph();
    for (const core::ChannelSlack& s : core::channel_slacks(graph)) {
      const lis::Channel& ch = graph.channel(s.channel);
      table.add_row({graph.core_name(ch.src) + " -> " + graph.core_name(ch.dst),
                     s.slack == core::ChannelSlack::kUnbounded ? "unbounded"
                                                               : std::to_string(s.slack),
                     s.slack == core::ChannelSlack::kUnbounded
                         ? "-"
                         : s.mst_if_exceeded.to_string()});
    }
    table.print(std::cout);
  }
  if (analysis.certificate) emit_certificate(cli, *analysis.certificate);
  return 0;
}

int cmd_size(const util::Cli& cli) {
  const Instance system = load(cli);
  // Default matches the facade: lazy constraint generation, which never
  // enumerates cycles. The eager solvers stay explicit opt-ins.
  const std::string method = cli.get_string("method", "lazy");
  SizeQueuesOptions options;
  if (method == "heuristic") {
    options.solver = Solver::kHeuristic;
  } else if (method == "exact") {
    options.solver = Solver::kExact;
  } else if (method == "both" || method == "full") {
    options.solver = Solver::kBoth;
  } else if (method == "lazy") {
    options.solver = Solver::kLazy;
  } else {
    throw std::invalid_argument("--method must be heuristic, exact, both or lazy");
  }
  options.exact_timeout_ms = cli.get_double_in("timeout-ms", 60000.0, 0.0, 1e9);
  options.exact_max_nodes = cli.get_int_in("max-nodes", 0, 0, 1'000'000'000);
  options.certify = wants_certificate(cli);
  const Sizing& sizing = value_or_throw(size_queues(system, options));

  std::cout << "ideal MST " << sizing.theta_ideal << ", practical MST " << sizing.theta_practical
            << "\n";
  if (!sizing.degraded) {
    std::cout << "no degradation: queues are already sufficient\n";
  } else {
    if (sizing.heuristic_total >= 0) {
      std::cout << "heuristic: " << sizing.heuristic_total << " extra slot(s) in "
                << util::Table::fmt(sizing.heuristic_ms, 3) << " ms\n";
    }
    if (sizing.exact_total >= 0) {
      std::cout << "exact:     " << sizing.exact_total << " extra slot(s) in "
                << util::Table::fmt(sizing.exact_ms, 3) << " ms"
                << (sizing.exact_proved ? "" : "  (timed out — heuristic fallback)") << "\n";
    }
    if (sizing.solver_lazy) {
      std::cout << "lazy:      " << sizing.lazy_iterations << " separation round(s), "
                << sizing.cycles_generated << " cycle constraint(s), "
                << sizing.howard_warm_restarts << " warm Howard restart(s)"
                << (sizing.lazy_fell_back ? "  (fell back to full enumeration)" : "") << "\n";
    }
    std::cout << "achieved MST " << sizing.achieved << "\n";
    for (const QueueChange& change : sizing.changes) {
      std::cout << "  queue of " << change.dst << " fed by " << change.src << ": "
                << change.before << " -> " << change.after << "\n";
    }
  }
  const std::string out = cli.get_string("out", "");
  if (!out.empty()) {
    const Status saved = save_netlist(sizing.sized, out);
    if (!saved) throw std::runtime_error(saved.error().to_string());
    std::cout << "sized netlist written to " << out << "\n";
  }
  if (sizing.certificate) emit_certificate(cli, *sizing.certificate);
  return 0;
}

/// `verify` — the independent half of the certificate story: load a netlist
/// and a certificate document, run the O(E) checker (src/verify shares no
/// solver code with the emitters), and report the verdict. Exit 0 on OK,
/// 2 with the structured rejection reason otherwise.
int cmd_verify(const util::Cli& cli) {
  const Instance system = load(cli);
  const std::string path = cli.get_string("certificate", "");
  if (path.empty()) throw std::invalid_argument("--certificate <file> is required");
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream text;
  text << file.rdbuf();
  const verify::CertificateParse parsed = verify::parse_certificate_text(text.str());
  if (!parsed) {
    std::cout << "certificate REJECTED: malformed document: " << parsed.error << "\n";
    return 2;
  }
  const char* kind = parsed.certificate.kind == verify::Kind::kSizing ? "sizing" : "analysis";
  const verify::CheckResult result =
      value_or_throw(verify_certificate(system, parsed.certificate));
  if (result.ok) {
    std::cout << "certificate OK (" << kind << ", model " << parsed.certificate.fingerprint
              << ")\n";
    return 0;
  }
  std::cout << "certificate REJECTED (" << kind << "): " << verify::to_string(result.reason);
  if (!result.detail.empty()) std::cout << " — " << result.detail;
  std::cout << "\n";
  return 2;
}

int cmd_batch(const util::Cli& cli) {
  std::vector<Instance> instances;

  // Source 1: explicit netlist files (comma-separated).
  const std::string netlists = cli.get_string("netlists", "");
  std::istringstream paths(netlists);
  std::string path;
  while (std::getline(paths, path, ',')) {
    if (path.empty()) continue;
    Result<Instance> loaded = load_netlist(path);
    if (!loaded) throw std::runtime_error(loaded.error().to_string());
    instances.push_back(*loaded);
  }

  // Source 2: the COFDM SoC case study.
  if (cli.get_bool("cofdm", false)) instances.push_back(cofdm_soc());

  // Source 3: generated instances (the default when nothing else is given).
  std::int64_t count = cli.get_int_in("count", 0, 0, 1'000'000);
  if (count <= 0 && instances.empty()) count = 20;
  if (count > 0) {
    GenerateOptions base = generate_options(cli);
    util::Rng seeder(base.seed);
    for (std::int64_t i = 0; i < count; ++i) {
      base.seed = seeder.fork_seed();
      instances.push_back(value_or_throw(generate(base)));
    }
  }

  engine::EngineOptions options;
  options.threads = static_cast<int>(cli.get_int_in("threads", 1, 1, 1024));
  options.exact_max_nodes = cli.get_int_in("max-nodes", 200'000, 0, 1'000'000'000);
  options.exact_timeout_ms = cli.get_double_in("timeout-ms", 0.0, 0.0, 1e9);
  options.rs_budget = static_cast<int>(cli.get_int_in("rs-budget", 2, 0, 1024));
  options.max_cycles =
      static_cast<std::size_t>(cli.get_int_in("max-cycles", 500'000, 1, 1'000'000'000));
  options.analyses = value_or_throw(
      engine::parse_analyses(cli.get_string("analyses", "mst-ideal,mst-practical,qs-heuristic")));

  const engine::BatchEngine batch_engine(options);
  const engine::BatchResult batch = batch_engine.run(instances);

  const std::string out = cli.get_string("out", "");
  if (out.empty()) {
    std::cout << batch.serialize();
  } else {
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot open '" + out + "' for writing");
    file << batch.serialize();
    std::cout << "batch results written to " << out << "\n";
  }

  if (cli.get_bool("metrics", false)) batch.metrics.print(std::cout);
  const std::string metrics_json = cli.get_string("metrics-json", "");
  if (!metrics_json.empty()) {
    std::ofstream file(metrics_json);
    if (!file) throw std::runtime_error("cannot open '" + metrics_json + "' for writing");
    file << batch.metrics.to_json();
    std::cout << "metrics written to " << metrics_json << "\n";
  }

  for (const engine::InstanceResult& r : batch.results) {
    if (!r.error.empty()) return 2;
  }
  return 0;
}

int cmd_export(const util::Cli& cli) {
  const Instance system = load(cli);
  std::string format = cli.get_string("format", "dot");
  if (cli.get_bool("doubled", false)) format = "dot-doubled";  // legacy spelling
  if (format == "text") {
    std::cout << value_or_throw(netlist_text(system));
    return 0;
  }
  if (format == "dot-doubled") {
    std::cout << lis::marked_graph_to_dot(lis::expand_doubled(system.graph()).graph);
    return 0;
  }
  if (format != "dot") {
    throw std::invalid_argument("--format must be dot, dot-doubled or text");
  }
  lis::DotOptions options;
  options.always_show_queues = cli.get_bool("show-queues", false);
  if (cli.get_bool("highlight-critical", false)) {
    // The facade's critical-cycle strings are for humans; the highlight needs
    // channel ids, so this one path stays on the low-level report.
    for (const core::CriticalHop& hop : core::explain_degradation(system.graph()).critical_cycle) {
      if (hop.channel != graph::kInvalidEdge) options.highlight.push_back(hop.channel);
    }
  }
  std::cout << lis::to_dot(system.graph(), options);
  return 0;
}

int cmd_gen(const util::Cli& cli) {
  const std::string out = cli.get_string("out", "");
  if (out.empty()) throw std::invalid_argument("--out <file> is required");
  const GenerateOptions options = generate_options(cli);
  const Instance generated = value_or_throw(generate(options));
  if (cli.get_bool("stochastic", false)) {
    // Annotate every channel / source with a random latency model and
    // arrival process as `#!` comment lines, which legacy readers skip: the
    // annotated file round-trips through parse/save untouched for them while
    // `simulate` picks the profile up.
    des::RandomProfileOptions profile_options;
    profile_options.max_latency = cli.get_int_in("max-latency", 4, 1, 1'000'000);
    profile_options.max_period = cli.get_int_in("max-period", 8, 1, 1'000'000);
    util::Rng rng(options.seed ^ 0x5371'6f63'6861'7374ULL);
    const des::Profile profile =
        des::random_profile(generated.graph(), profile_options, rng);
    const std::string text =
        value_or_throw(netlist_text(generated)) + des::profile_text(profile, generated.graph());
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot open '" + out + "' for writing");
    file << text;
    std::cout << "generated netlist (stochastic annotations) written to " << out << "\n";
    return 0;
  }
  const Status saved = save_netlist(generated, out);
  if (!saved) throw std::runtime_error(saved.error().to_string());
  std::cout << "generated netlist written to " << out << "\n";
  return 0;
}

int cmd_insert_rs(const util::Cli& cli) {
  const Instance system = load(cli);
  InsertRelayStationsOptions options;
  options.budget = static_cast<int>(cli.get_int_in("budget", 1, 0, 100'000));
  options.exhaustive = cli.get_bool("exhaustive", false);
  const RelayInsertion& result = value_or_throw(insert_relay_stations(system, options));
  std::cout << "original ideal MST " << result.original_ideal << "\n";
  std::cout << "added " << result.added << " relay station(s); practical MST "
            << result.best_practical << (result.reached_ideal ? " (ideal reached)" : "") << "\n";
  const std::string out = cli.get_string("out", "");
  if (!out.empty()) {
    const Status saved = save_netlist(result.repaired, out);
    if (!saved) throw std::runtime_error(saved.error().to_string());
    std::cout << "repaired netlist written to " << out << "\n";
  }
  return result.reached_ideal ? 0 : 2;
}

/// The stochastic DES mode of `simulate` (selected by any DES flag): the
/// src/des backend with per-channel latency models, open-system arrivals and
/// occupancy tracing. `#!` annotations in the netlist file override the
/// --dist/--arrival defaults per channel / per source.
int cmd_simulate_des(const util::Cli& cli) {
  const Instance instance = load(cli);
  const lis::LisGraph& system = instance.graph();
  DesOptions options;
  options.horizon = cli.get_int_in("horizon", 10'000, 1, 1'000'000'000);
  options.warmup = cli.get_int_in("warmup", 0, 0, 1'000'000'000);
  options.seed = static_cast<std::uint64_t>(
      cli.get_int_in("seed", 1, 0, std::numeric_limits<std::int64_t>::max()));
  if (const std::string dist = cli.get_string("dist", ""); !dist.empty()) {
    const std::optional<des::LatencyDist> parsed = des::parse_latency_dist(dist);
    if (!parsed) {
      throw std::invalid_argument("--dist must be fixed:N, uniform:LO:HI or geometric:N/D, got '" +
                                  dist + "'");
    }
    options.channel_latency = *parsed;
  }
  if (const std::string arrival = cli.get_string("arrival", ""); !arrival.empty()) {
    const std::optional<des::ArrivalSpec> parsed = des::parse_arrival_spec(arrival);
    if (!parsed) {
      throw std::invalid_argument(
          "--arrival must be saturated, rate:P, poisson:N/D or bursty:ON:OFF, got '" + arrival +
          "'");
    }
    options.arrival = *parsed;
  }
  options.reference = cli.get_string("reference", "");

  // Per-channel / per-source `#!` annotation overrides from the netlist file.
  {
    std::ifstream file(cli.get_string("netlist", ""));
    std::ostringstream text;
    text << file.rdbuf();
    options.profile = des::parse_profile(text.str(), system);
  }

  const DesReport report = value_or_throw(simulate_des(instance, options));
  std::cout << "simulated " << report.cycles_run << " cycle(s), " << report.events
            << " event(s), " << report.firings << " firing(s)"
            << (report.deterministic ? " [deterministic]" : "") << "\n";
  std::cout << "throughput " << report.throughput.to_string()
            << (report.periodic_found ? " (exact, periodic regime found)" : " (empirical)")
            << "\n";
  if (report.arrivals_generated > 0) {
    std::cout << "arrivals: " << report.arrivals_generated << " generated, "
              << report.arrivals_consumed << " consumed, max backlog " << report.max_backlog
              << "\n";
  }
  std::cout << "backpressure stalls: " << report.total_stall_events << " event(s), "
            << report.total_stall_cycles << " cycle(s)\n";
  util::Table table({"channel", "q", "rs", "in", "out", "stalls", "max", "p50", "p95", "p99",
                     "mean occupancy"});
  for (const des::ChannelStats& ch : report.channels) {
    table.add_row({system.core_name(ch.src) + " -> " + system.core_name(ch.dst),
                   std::to_string(ch.capacity), std::to_string(ch.relay_stations),
                   std::to_string(ch.tokens_in), std::to_string(ch.tokens_out),
                   std::to_string(ch.stall_events), std::to_string(ch.max_occupancy),
                   std::to_string(ch.p50), std::to_string(ch.p95), std::to_string(ch.p99),
                   ch.mean_occupancy.to_string()});
  }
  table.print(std::cout);

  if (const std::string occ = cli.get_string("occupancy-out", ""); !occ.empty()) {
    // The full time-weighted histograms, one row per (channel, level).
    util::CsvWriter csv(occ, {"src", "dst", "capacity", "relay_stations", "occupancy", "cycles"});
    for (const des::ChannelStats& ch : report.channels) {
      for (std::size_t level = 0; level < ch.histogram.size(); ++level) {
        if (ch.histogram[level] == 0) continue;
        csv.add_row({system.core_name(ch.src), system.core_name(ch.dst),
                     std::to_string(ch.capacity), std::to_string(ch.relay_stations),
                     std::to_string(level), std::to_string(ch.histogram[level])});
      }
    }
    std::cout << "occupancy histograms written to " << occ << "\n";
  }
  return 0;
}

int cmd_simulate(const util::Cli& cli) {
  // Any DES flag routes to the stochastic event-driven backend; the flagless
  // form stays the legacy cycle-accurate protocol simulation.
  if (cli.has("dist") || cli.has("arrival") || cli.has("horizon") || cli.has("warmup") ||
      cli.has("seed") || cli.has("occupancy-out")) {
    return cmd_simulate_des(cli);
  }
  const Instance instance = load(cli);
  const lis::LisGraph& system = instance.graph();
  lis::ProtocolOptions options;
  options.periods = static_cast<std::size_t>(cli.get_int_in("periods", 10000, 1, 100'000'000));
  const std::string reference = cli.get_string("reference", "");
  if (!reference.empty()) {
    bool found = false;
    for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(system.num_cores()); ++v) {
      if (system.core_name(v) == reference) {
        options.reference = v;
        found = true;
      }
    }
    if (!found) throw std::invalid_argument("unknown core '" + reference + "'");
  }
  const std::string vcd = cli.get_string("vcd", "");
  options.record_traces = !vcd.empty();
  const lis::ProtocolResult result = simulate_protocol(system, options);
  std::cout << "simulated " << result.periods << " period(s); throughput of "
            << system.core_name(options.reference) << " = " << result.throughput.to_string()
            << (result.periodic_found ? " (exact, periodic regime found)" : " (empirical)")
            << "\n";
  if (!vcd.empty()) {
    lis::save_vcd(system, result, vcd);
    std::cout << "waveforms written to " << vcd << "\n";
  }
  return 0;
}

int cmd_storage(const util::Cli& cli) {
  const Instance instance = load(cli);
  const lis::LisGraph& system = instance.graph();
  util::Table table({"channel", "q", "relay stations", "worst-case occupancy"});
  for (const core::ChannelStorage& s : core::storage_bounds(system)) {
    const lis::Channel& ch = system.channel(s.channel);
    table.add_row({system.core_name(ch.src) + " -> " + system.core_name(ch.dst),
                   std::to_string(s.configured_capacity), std::to_string(s.relay_stations),
                   std::to_string(s.occupancy_bound)});
  }
  table.print(std::cout);
  std::cout << "total worst-case storage: " << core::total_storage_bound(system)
            << " item(s)\n";
  return 0;
}

int cmd_pareto(const util::Cli& cli) {
  const Instance instance = load(cli);
  core::ParetoOptions options;
  options.exact.timeout_ms = cli.get_double_in("timeout-ms", 60000.0, 0.0, 1e9);
  util::Table table({"extra queue slots", "achieved MST"});
  for (const core::ParetoPoint& point : core::qs_pareto_frontier(instance.graph(), options)) {
    table.add_row({std::to_string(point.extra_tokens), point.achieved_mst.to_string()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_schedule(const util::Cli& cli) {
  const Instance instance = load(cli);
  const lis::LisGraph& system = instance.graph();
  const core::StaticSchedule schedule = core::compute_static_schedule(
      system, static_cast<std::size_t>(cli.get_int_in("max-periods", 20000, 1, 100'000'000)));
  if (!schedule.found) {
    std::cout << "no periodic schedule exists (unbalanced rates or budget too small);\n"
                 "this system needs backpressure (Sec. III-C)\n";
    return 2;
  }
  std::cout << "schedule rate " << schedule.throughput << ", transient " << schedule.transient
            << ", period " << schedule.period << "\n";
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(system.num_cores()); ++v) {
    std::cout << "  " << system.core_name(v) << ": ";
    for (std::size_t t = schedule.transient; t < schedule.transient + schedule.period; ++t) {
      std::cout << (schedule.fires(v, t) ? '1' : '.');
    }
    std::cout << "\n";
  }
  std::cout << "per-channel queue requirement:";
  for (const std::int64_t q : schedule.required_queues) std::cout << " " << q;
  std::cout << "\n";
  const core::ScheduleReplay replay = core::replay_schedule(system, schedule, 4000);
  std::cout << "replay: throughput " << replay.throughput.to_string() << ", violations "
            << replay.violations << "\n";
  return 0;
}

/// The "ruleId|uri|startLine" identity used by `lint --baseline` suppression.
/// Must stay aligned with render_sarif's emission so a baseline produced by
/// `lint --format sarif` round-trips: uri is the provenance file ("" when the
/// netlist had none), line 0 when unresolved.
std::string finding_key(const std::string& rule, const std::string& uri, std::int64_t line) {
  return rule + "|" + uri + "|" + std::to_string(line);
}

/// Loads a SARIF baseline into the set of finding keys it contains.
std::set<std::string> load_baseline(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open baseline '" + path + "'");
  std::ostringstream text;
  text << file.rdbuf();
  const util::JsonParse parsed = util::json_parse(text.str());
  if (!parsed.ok || !parsed.value.is_object()) {
    throw std::runtime_error("baseline '" + path + "' is not a valid SARIF document");
  }
  std::set<std::string> keys;
  const util::Json* runs = parsed.value.find("runs");
  if (runs == nullptr || !runs->is_array()) return keys;
  for (const util::Json& run : runs->items()) {
    const util::Json* results = run.find("results");
    if (results == nullptr || !results->is_array()) continue;
    for (const util::Json& result : results->items()) {
      const util::Json* rule = result.find("ruleId");
      if (rule == nullptr || !rule->is_string()) continue;
      std::string uri;
      std::int64_t line = 0;
      if (const util::Json* locations = result.find("locations");
          locations != nullptr && locations->is_array() && locations->size() > 0) {
        if (const util::Json* phys = locations->at(0).find("physicalLocation");
            phys != nullptr) {
          if (const util::Json* artifact = phys->find("artifactLocation"); artifact != nullptr) {
            if (const util::Json* u = artifact->find("uri"); u != nullptr) uri = u->as_string();
          }
          if (const util::Json* region = phys->find("region"); region != nullptr) {
            if (const util::Json* l = region->find("startLine"); l != nullptr) line = l->as_int();
          }
        }
      }
      keys.insert(finding_key(rule->as_string(), uri, line));
    }
  }
  return keys;
}

int cmd_lint(const util::Cli& cli) {
  // Inputs: --netlist one file, or --netlists a comma-separated list.
  std::vector<std::string> files;
  if (const std::string single = cli.get_string("netlist", ""); !single.empty()) {
    files.push_back(single);
  }
  std::istringstream paths(cli.get_string("netlists", ""));
  std::string path;
  while (std::getline(paths, path, ',')) {
    if (!path.empty()) files.push_back(path);
  }
  if (files.empty()) {
    throw std::invalid_argument("lint: --netlist <file> or --netlists <a,b,...> is required");
  }

  linter::LintOptions options;
  options.errors_only = cli.get_bool("errors-only", false);
  if (const std::string target = cli.get_string("target", ""); !target.empty()) {
    options.target = util::rational_from_string(target);
    if (options.target < util::Rational(0)) {
      throw std::invalid_argument("--target must be non-negative");
    }
  }

  // Keep instances and reports alive for the render items that point at them.
  std::vector<Instance> instances;
  std::vector<linter::Report> reports;
  instances.reserve(files.size());
  reports.reserve(files.size());
  for (const std::string& file : files) {
    Result<Instance> loaded = load_netlist(file);
    if (!loaded) throw std::runtime_error(loaded.error().to_string());
    instances.push_back(*loaded);
    reports.push_back(value_or_throw(lint(instances.back(), options)));
  }

  // --baseline <sarif>: findings already recorded in a prior SARIF report —
  // same rule at the same file/line — are dropped before rendering, so they
  // neither appear in the output nor count toward --fail-on. CI gates only on
  // NEW findings while a known-findings backlog is burned down.
  std::size_t suppressed = 0;
  if (const std::string baseline_path = cli.get_string("baseline", "");
      !baseline_path.empty()) {
    const std::set<std::string> baseline = load_baseline(baseline_path);
    for (std::size_t i = 0; i < files.size(); ++i) {
      const auto* provenance = instances[i].provenance();
      const std::string uri = provenance != nullptr ? provenance->file : "";
      std::erase_if(reports[i].diagnostics, [&](const linter::Diagnostic& d) {
        std::int64_t line = 0;
        if (provenance != nullptr) {
          if (d.location.has_channel()) {
            line = provenance->line_of_channel(d.location.channel);
          } else if (d.location.has_core()) {
            line = provenance->line_of_core(d.location.core);
          }
        }
        const bool known = baseline.count(finding_key(d.code, uri, line)) > 0;
        suppressed += known ? 1 : 0;
        return known;
      });
    }
    // stderr so --format json/sarif stdout stays machine-parseable.
    if (suppressed > 0) std::cerr << suppressed << " finding(s) suppressed by baseline\n";
  }

  std::vector<linter::RenderItem> items(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    items[i].lis = &instances[i].graph();
    items[i].report = &reports[i];
    items[i].provenance = instances[i].provenance();
    items[i].name = files[i];
  }

  const std::string format = cli.get_string("format", "pretty");
  std::string rendered;
  if (format == "pretty") {
    rendered = linter::render_pretty(items);
  } else if (format == "json") {
    rendered = linter::render_json(items) + "\n";
  } else if (format == "sarif") {
    rendered = linter::render_sarif(items) + "\n";
  } else {
    throw std::invalid_argument("--format must be pretty, json or sarif");
  }
  const std::string out = cli.get_string("out", "");
  if (out.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot open '" + out + "' for writing");
    file << rendered;
    std::cout << "lint report written to " << out << "\n";
  }

  // Exit status: 0 clean at the threshold, 2 otherwise ("error" counts only
  // errors, "warning" also warnings, "info" any finding, "never" always 0).
  const std::string fail_on = cli.get_string("fail-on", "error");
  std::size_t failing = 0;
  for (const linter::Report& report : reports) {
    if (fail_on == "error") {
      failing += report.errors();
    } else if (fail_on == "warning") {
      failing += report.errors() + report.warnings();
    } else if (fail_on == "info") {
      failing += report.diagnostics.size();
    } else if (fail_on != "never") {
      throw std::invalid_argument("--fail-on must be error, warning, info or never");
    }
  }
  return failing > 0 ? 2 : 0;
}

/// Builds one request line for `client` from the command-line flags. The
/// embedded netlist comes from --netlist (a local file read client-side; the
/// server only ever sees text).
std::string build_client_request(const util::Cli& cli, const std::string& verb) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(cli.get_string("id", "cli"));
  w.key("verb").value(verb);
  const double deadline_ms = cli.get_double_in("deadline-ms", 0.0, 0.0, 1e9);
  if (deadline_ms > 0.0) w.key("deadline_ms").value_fixed(deadline_ms, 3);
  const std::string on_deadline = cli.get_string("on-deadline", "");
  if (!on_deadline.empty()) w.key("on_deadline").value(on_deadline);

  if (verb == "sleep") {
    w.key("ms").value(cli.get_int_in("ms", 0, 0, 10'000));
  } else if (verb == "generate") {
    const GenerateOptions options = generate_options(cli);
    w.key("v").value(options.cores);
    w.key("s").value(options.sccs);
    w.key("c").value(options.extra_cycles);
    w.key("rs").value(options.relay_stations);
    w.key("seed").value(static_cast<std::int64_t>(options.seed));
    w.key("policy").value(options.rs_anywhere ? "any" : "scc");
    w.key("reconvergent").value(options.reconvergent);
  } else if (verb == "hello") {
    w.key("protocol").value(cli.get_int_in("protocol", 2, 1, 2));
  } else if (verb == "evict-model") {
    const std::string model = cli.get_string("model", "");
    if (model.empty()) {
      throw std::invalid_argument("--model <fingerprint> is required for evict-model");
    }
    w.key("model").value(model);
  } else if (verb != "ping" && verb != "stats" && verb != "list-models") {
    // A registered-model fingerprint replaces the inline netlist for the
    // model-addressed verbs; register-model always ships the text.
    const std::string model = verb == "register-model" ? "" : cli.get_string("model", "");
    if (!model.empty()) {
      w.key("model").value(model);
    } else {
      const std::string path = cli.get_string("netlist", "");
      if (path.empty()) throw std::invalid_argument("--netlist <file> is required for " + verb);
      std::ifstream file(path);
      if (!file) throw std::runtime_error("cannot open '" + path + "'");
      std::ostringstream text;
      text << file.rdbuf();
      w.key("netlist").value(text.str());
    }
    // Certificate opt-in, passed through to the certifying verbs; the
    // response then carries a "certificate" section lid_tool verify (or any
    // independent checker) can validate offline.
    if ((verb == "analyze" || verb == "size-queues") && cli.get_bool("certify", false)) {
      w.key("certify").value(true);
    }
    if (verb == "size-queues") {
      // Passed through verbatim; omitted when not given so the server
      // default (lazy) applies. The server also accepts the "full" alias.
      const std::string solver = cli.get_string("solver", "");
      if (!solver.empty()) w.key("solver").value(solver);
      const std::int64_t max_nodes = cli.get_int_in("max-nodes", 0, 0, 1'000'000'000);
      if (max_nodes > 0) w.key("max_nodes").value(max_nodes);
    } else if (verb == "insert-rs") {
      w.key("budget").value(cli.get_int_in("budget", 1, 0, 64));
      if (cli.get_bool("exhaustive", false)) w.key("exhaustive").value(true);
    } else if (verb == "lint") {
      const std::string target = cli.get_string("target", "");
      if (!target.empty()) w.key("target").value(target);
      if (cli.get_bool("errors-only", false)) w.key("errors_only").value(true);
    } else if (verb == "simulate") {
      // DES args pass through verbatim; omitted flags fall to server
      // defaults. Spec strings are validated server-side.
      if (cli.has("horizon")) {
        w.key("horizon").value(cli.get_int_in("horizon", 10'000, 1, 1'000'000'000));
      }
      if (cli.has("warmup")) w.key("warmup").value(cli.get_int_in("warmup", 0, 0, 1'000'000'000));
      if (cli.has("seed")) {
        w.key("seed").value(
            cli.get_int_in("seed", 1, 0, std::numeric_limits<std::int64_t>::max()));
      }
      if (const std::string dist = cli.get_string("dist", ""); !dist.empty()) {
        w.key("dist").value(dist);
      }
      if (const std::string arrival = cli.get_string("arrival", ""); !arrival.empty()) {
        w.key("arrival").value(arrival);
      }
      if (cli.get_bool("occupancy", false)) w.key("occupancy").value(true);
      if (const std::string reference = cli.get_string("reference", ""); !reference.empty()) {
        w.key("reference").value(reference);
      }
    }
  }
  w.end_object();
  return w.str();
}

int cmd_client(const util::Cli& cli) {
  const std::string socket_path = cli.get_string("socket", "");
  const std::string host = cli.get_string("host", "127.0.0.1");
  const int port = socket_path.empty()
                       ? static_cast<int>(cli.get_int_in("port", 0, 1, 65535))
                       : -1;
  // --retries N allows N retry attempts on transport failures (reconnect +
  // jittered backoff); every protocol verb is idempotent, so this is safe.
  serve::RetryPolicy policy;
  policy.max_attempts = 1 + static_cast<int>(cli.get_int_in("retries", 0, 0, 100));
  policy.attempt_timeout_ms = cli.get_double_in("attempt-timeout-ms", 0.0, 0.0, 1e9);

  // --protocol 2 / --transport binary opt into the v2 handshake; the default
  // stays a byte-identical v1 NDJSON connection.
  const std::string transport = cli.get_string("transport", "");
  if (!transport.empty() && transport != "ndjson" && transport != "binary") {
    throw std::invalid_argument("--transport must be ndjson or binary");
  }
  const int protocol = static_cast<int>(cli.get_int_in("protocol", 1, 1, 2));
  serve::SessionOptions session_options;
  session_options.binary = transport == "binary";
  session_options.protocol = (protocol >= 2 || session_options.binary) ? 2 : 1;
  session_options.hello = session_options.protocol >= 2;

  serve::RetryingClient client(
      [socket_path, host, port, session_options]() -> Result<serve::Client> {
        return socket_path.empty()
                   ? serve::Client::connect_tcp(host, port, session_options)
                   : serve::Client::connect_unix(socket_path, session_options);
      },
      policy);

  // Raw mode: forward NDJSON request lines from stdin verbatim, print each
  // response line. Lets scripts drive the full protocol through one
  // connection.
  if (cli.get_bool("stdin", false)) {
    bool all_ok = true;
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      const Result<std::string> response = client.call(line);
      if (!response) throw std::runtime_error(response.error().to_string());
      std::cout << *response << "\n";
      const util::JsonParse parsed = util::json_parse(*response);
      const util::Json* ok =
          parsed.ok && parsed.value.is_object() ? parsed.value.find("ok") : nullptr;
      all_ok = all_ok && ok != nullptr && ok->is_bool() && ok->as_bool();
    }
    return all_ok ? 0 : 2;
  }

  const std::string verb = cli.get_string("verb", "ping");
  const std::string request = build_client_request(cli, verb);
  const Result<std::string> response = client.call(request);
  if (!response) throw std::runtime_error(response.error().to_string());
  if (cli.get_bool("result-only", false)) {
    const Result<std::string> result = serve::extract_result(*response);
    if (!result) throw std::runtime_error(result.error().to_string());
    std::cout << *result << "\n";
    return 0;
  }
  std::cout << *response << "\n";
  const Result<std::string> result = serve::extract_result(*response);
  return result ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<util::Command> commands = {
      {"analyze", {}, "throughput, topology class, critical cycle, rate safety", cmd_analyze},
      {"size", {"size-queues"}, "queue sizing (lazy default; heuristic / exact / both)", cmd_size},
      {"verify", {}, "independent O(E) check of an analysis / sizing certificate", cmd_verify},
      {"batch", {}, "parallel batch analysis over many instances, with metrics", cmd_batch},
      {"export", {"dot"}, "GraphViz / netlist-text export", cmd_export},
      {"gen", {"generate"}, "synthetic netlist generator (Sec. VIII)", cmd_gen},
      {"insert-rs", {}, "relay-station insertion repair (Sec. VI)", cmd_insert_rs},
      {"simulate", {}, "protocol simulation; --dist/--arrival select stochastic DES",
       cmd_simulate},
      {"storage", {}, "worst-case per-channel storage bounds", cmd_storage},
      {"pareto", {}, "cost vs throughput frontier of queue sizing", cmd_pareto},
      {"schedule", {}, "static schedule baseline (Casu–Macchiarulo)", cmd_schedule},
      {"lint", {}, "static diagnostics: deadlocks, broken queues, antipatterns", cmd_lint},
      {"client", {}, "send one request (or --stdin NDJSON) to a lid_serve daemon", cmd_client},
  };
  return util::dispatch_commands(argc, argv, commands, "lid_tool", std::cerr);
}
