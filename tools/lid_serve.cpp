// lid_serve — the analysis service daemon.
//
//   lid_serve --socket /run/lid.sock [--workers N] [--queue-capacity N]
//   lid_serve --port 7421 [--host 127.0.0.1] [--workers N] ...
//
// Serves the lid:: facade over newline-delimited JSON (see
// src/serve/protocol.hpp for the wire schema and docs/api-overview.md for a
// walkthrough). Flags:
//
//   --socket PATH            Unix-domain listening socket (preferred)
//   --port N [--host A]      TCP listening socket (0 = kernel-assigned)
//   --workers N              worker threads executing requests   (default 1)
//   --queue-capacity N       admission-queue bound; beyond it requests are
//                            shed with `overloaded`              (default 64)
//   --max-request-bytes N    request-line size limit             (default 1 MiB)
//   --default-deadline-ms N  deadline for requests without one   (default none)
//   --max-nodes N            exact-QS node-budget cap            (default 200000)
//   --registry-max-bytes N   model-registry byte budget          (default 64 MiB)
//   --registry-max-models N  resident-model cap; 0 disables the registry
//                            (register-model answers registry_full) (default 64)
//   --fault-plan SPEC        seeded fault injection at the response boundary
//                            (chaos testing; see src/serve/faults.hpp), e.g.
//                            seed=42,stall=0.1:50,torn=0.05,drop=0.02,garbage=0.01
//   --pid-file PATH          write the process pid to PATH once listening and
//                            unlink it on graceful exit (supervisors/routers
//                            detect restarts; `stats` also reports pid,
//                            start_unix_ms and uptime_ms)
//   --quiet                  suppress per-request log lines (stderr)
//
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, finish every
// admitted request, flush responses, exit 0. SIGPIPE is ignored so a peer
// closing mid-write surfaces as an EPIPE send error, never a process kill.
#include <unistd.h>

#include <cstdio>
#include <csignal>
#include <fstream>
#include <iostream>

#include "serve/faults.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

lid::serve::Server* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  // Async-signal-safe: request_stop is a single write() to a pipe.
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lid;
  try {
    const util::Cli cli(argc, argv);
    serve::ServerOptions options;
    options.unix_socket = cli.get_string("socket", "");
    if (options.unix_socket.empty()) {
      options.tcp_port = cli.has("port")
                             ? static_cast<int>(cli.get_int_in("port", 0, 0, 65535))
                             : -1;
      options.host = cli.get_string("host", "127.0.0.1");
    }
    options.workers = static_cast<int>(cli.get_int_in("workers", 1, 1, 1024));
    options.queue_capacity =
        static_cast<std::size_t>(cli.get_int_in("queue-capacity", 64, 1, 1'000'000));
    options.max_request_bytes =
        static_cast<std::size_t>(cli.get_int_in("max-request-bytes", 1 << 20, 64, 1 << 28));
    options.default_deadline_ms = cli.get_double_in("default-deadline-ms", 0.0, 0.0, 1e9);
    options.limits.exact_max_nodes = cli.get_int_in("max-nodes", 200'000, 1, 100'000'000);
    options.registry_max_bytes = static_cast<std::size_t>(
        cli.get_int_in("registry-max-bytes", std::int64_t{64} << 20, 0, std::int64_t{1} << 40));
    options.registry_max_models =
        static_cast<std::size_t>(cli.get_int_in("registry-max-models", 64, 0, 1'000'000));
    const std::string fault_spec = cli.get_string("fault-plan", "");
    if (!fault_spec.empty()) {
      Result<serve::FaultPlan> plan = serve::FaultPlan::parse(fault_spec);
      if (!plan) {
        std::cerr << "lid_serve: --fault-plan: " << plan.error().to_string() << "\n";
        return 1;
      }
      options.fault_plan = *plan;
    }
    if (!cli.get_bool("quiet", false)) options.log = &std::cerr;

    if (options.unix_socket.empty() && options.tcp_port < 0) {
      std::cerr << "lid_serve: set --socket PATH or --port N\n";
      return 1;
    }

    serve::Server server(options);
    g_server = &server;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGPIPE, SIG_IGN);  // peer resets surface as EPIPE, not a kill

    const Status started = server.start();
    if (!started) {
      std::cerr << "lid_serve: " << started.error().to_string() << "\n";
      return 1;
    }
    const std::string pid_file = cli.get_string("pid-file", "");
    if (!pid_file.empty()) {
      std::ofstream out(pid_file, std::ios::trunc);
      if (!out) {
        std::cerr << "lid_serve: cannot write --pid-file '" << pid_file << "'\n";
        server.stop();
        return 1;
      }
      out << ::getpid() << "\n";
    }
    // Readiness line on stdout so scripts can wait for it.
    std::cout << "lid_serve: listening on " << server.endpoint() << " (workers="
              << options.workers << ", queue=" << options.queue_capacity;
    if (options.fault_plan.any()) {
      std::cout << ", fault-plan=" << options.fault_plan.to_string();
    }
    std::cout << ")" << std::endl;

    server.wait();  // returns after a signal-triggered graceful drain
    std::cout << "lid_serve: drained, final stats: " << server.stats_json() << std::endl;
    if (!pid_file.empty()) std::remove(pid_file.c_str());
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "lid_serve: " << e.what() << "\n";
    return 1;
  }
}
