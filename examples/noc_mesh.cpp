// Network-on-chip walk-through: a unidirectional 4×4 torus of routers (the
// xpipes-style substrate of the LID literature). Layout forces relay
// stations onto a few long links; the resulting backpressure degradation is
// diagnosed and repaired, and the protocol simulation confirms the numbers.
//
// (A mesh with BIDIRECTIONAL data links turns out structurally immune to
// backpressure degradation: every link sits on a 2-core loop, so pipelining
// a link always lowers the ideal MST below any mixed cycle — try
// gen::generate_mesh to see it.)
//
//   $ ./noc_mesh [--rows N --cols N --rs N --seed N]
#include <iostream>

#include "core/diagnostics.hpp"
#include "core/queue_sizing.hpp"
#include "core/storage.hpp"
#include "gen/generator.hpp"
#include "graph/topology.hpp"
#include "lis/protocol_sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int rows = static_cast<int>(cli.get_int("rows", 4));
  const int cols = static_cast<int>(cli.get_int("cols", 4));
  const int rs = static_cast<int>(cli.get_int("rs", 6));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));

  const lis::LisGraph mesh = gen::generate_torus(rows, cols, rs, rng);
  std::cout << rows << "x" << cols << " torus: " << mesh.num_cores() << " routers, "
            << mesh.num_channels() << " links, " << mesh.total_relay_stations()
            << " relay stations after layout\n";
  std::cout << "topology class: " << graph::to_string(graph::classify(mesh.structure()))
            << " (torus faces are reconvergent)\n\n";

  const core::DegradationReport report = core::explain_degradation(mesh);
  std::cout << report.to_string() << "\n";

  core::QsOptions options;
  options.method = core::QsMethod::kBoth;
  const core::QsReport qs = core::size_queues(mesh, options);
  if (qs.problem.has_degradation()) {
    std::cout << "queue sizing: heuristic " << qs.heuristic->total_extra_tokens
              << " slot(s), exact " << qs.exact->total_extra_tokens << " slot(s) -> MST "
              << qs.achieved_mst.to_string() << "\n";
  } else {
    std::cout << "these relay stations caused no degradation (try more --rs)\n";
  }
  std::cout << "total worst-case link storage after sizing: "
            << core::total_storage_bound(qs.sized) << " flits\n";

  lis::ProtocolOptions sim;
  sim.periods = 4000;
  std::cout << "simulated sustained rate: "
            << simulate_protocol(qs.sized, sim).throughput.to_string() << "\n";
  return 0;
}
