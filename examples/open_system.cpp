// Open-system demo: a LIS whose environment produces valid data at a
// variable rate, simulated with environment gates, with waveforms dumped to
// VCD for inspection in GTKWave.
//
// Schedule-based alternatives to backpressure must know the environment's
// behaviour at design time (Sec. II); the latency-insensitive protocol
// absorbs whatever arrives — the sustained rate is min(environment, MST).
#include <iostream>

#include "lis/lis_graph.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"
#include "lis/vcd_export.hpp"

int main() {
  using namespace lid;

  lis::LisGraph system = lis::make_two_core_example_sized();  // MST 1
  std::cout << "system MST: " << lis::practical_mst(system).to_string() << "\n\n";

  // A bursty environment: 4 valid items, then 4 idle periods (rate 1/2).
  lis::ProtocolOptions options;
  options.periods = 64;
  options.reference = 1;
  options.record_traces = true;
  options.behaviors.resize(system.num_cores());
  options.behaviors[0].environment_gate = [](std::int64_t t) { return (t / 4) % 2 == 0; };

  const lis::ProtocolResult bursty = simulate_protocol(system, options);
  std::cout << "bursty environment (4 on / 4 off):\n";
  std::cout << "  upper port trace: "
            << lis::format_trace(bursty.traces[0][0]).substr(0, 64) << "...\n";
  std::cout << "  sustained throughput over " << bursty.periods
            << " periods: " << bursty.throughput.to_string() << " (~"
            << bursty.throughput.to_double() << ")\n";
  lis::save_vcd(system, bursty, "open_system.vcd");
  std::cout << "  waveforms written to open_system.vcd\n\n";

  // Sweep the environment rate and print the achieved throughput.
  std::cout << "environment rate -> sustained throughput (long run):\n";
  for (int denom = 1; denom <= 6; ++denom) {
    lis::ProtocolOptions sweep;
    sweep.periods = 6000;
    sweep.reference = 1;
    sweep.behaviors.resize(system.num_cores());
    sweep.behaviors[0].environment_gate = [denom](std::int64_t t) { return t % denom == 0; };
    const lis::ProtocolResult r = simulate_protocol(system, sweep);
    std::cout << "  1/" << denom << "  ->  " << r.throughput.to_double() << "\n";
  }
  return 0;
}
