// Quickstart: build a small latency-insensitive system, analyze its
// throughput, watch it run, and let the library size its queues.
//
//   $ ./quickstart
//
// The system is the paper's running example (Figs. 1-6): two cores joined by
// two channels, with a relay station pipelining the longer one.
#include <iostream>

#include "core/queue_sizing.hpp"
#include "lis/lis_graph.hpp"
#include "lis/protocol_sim.hpp"

int main() {
  using namespace lid;

  // 1. Describe the netlist: cores + channels (+ relay stations, queues).
  lis::LisGraph system;
  const lis::CoreId a = system.add_core("A");
  const lis::CoreId b = system.add_core("B");
  system.add_channel(a, b, /*relay_stations=*/1);  // the long, pipelined wire
  system.add_channel(a, b);                        // the short wire

  // 2. Static analysis: ideal vs practical maximal sustainable throughput.
  std::cout << "ideal MST (infinite queues):          " << lis::ideal_mst(system).to_string()
            << "\n";
  std::cout << "practical MST (q = 1 + backpressure): "
            << lis::practical_mst(system).to_string() << "\n";

  // 3. Watch the protocol run: the shells stall periodically and the
  //    measured rate matches the analysis exactly.
  lis::ProtocolOptions sim_options;
  sim_options.periods = 1000;
  sim_options.reference = b;
  const lis::ProtocolResult sim = simulate_protocol(system, sim_options);
  std::cout << "simulated sustained throughput of B:  " << sim.throughput.to_string() << "\n";

  // 4. Fix the degradation: size the input queues (heuristic + exact).
  core::QsOptions qs_options;
  qs_options.method = core::QsMethod::kBoth;
  const core::QsReport report = core::size_queues(system, qs_options);
  std::cout << "queue sizing: " << report.exact->total_extra_tokens
            << " extra slot(s) restore MST " << report.achieved_mst.to_string() << "\n";
  for (std::size_t s = 0; s < report.problem.channels.size(); ++s) {
    if (report.exact->weights[s] == 0) continue;
    const lis::Channel& ch = report.sized.channel(report.problem.channels[s]);
    std::cout << "  channel " << system.core_name(ch.src) << " -> " << system.core_name(ch.dst)
              << ": queue grows to " << ch.queue_capacity << "\n";
  }

  // 5. Verify by running the sized system.
  const lis::ProtocolResult fixed = simulate_protocol(report.sized, sim_options);
  std::cout << "sized system simulated throughput:    " << fixed.throughput.to_string() << "\n";
  return 0;
}
