// The Fig. 15 counterexample, interactively: why relay-station insertion is
// not a complete repair. Prints the system, the degrading cycle, what
// happens on every single-channel insertion, and the queue-sizing repair.
#include <iostream>

#include "core/queue_sizing.hpp"
#include "core/rs_insertion.hpp"
#include "lis/paper_systems.hpp"
#include "util/table.hpp"

int main() {
  using namespace lid;

  const lis::LisGraph system = lis::make_fig15_counterexample();
  std::cout << "Fig. 15 counterexample: 5 cores, 7 channels, one relay station on (A,E).\n";
  std::cout << "ideal MST θ(G) = " << lis::ideal_mst(system).to_string()
            << "  (cycle A→rs→E→D→C→B→A, 5 tokens / 6 places)\n";
  std::cout << "practical MST θ(d[G]) = " << lis::practical_mst(system).to_string()
            << "  (cycle A→rs→E, backedge E→C, backedge C→A)\n\n";

  std::cout << "Effect of inserting ONE extra relay station per channel:\n";
  util::Table table({"channel", "new ideal MST", "new practical MST", "verdict"});
  for (lis::ChannelId ch = 0; ch < static_cast<lis::ChannelId>(system.num_channels()); ++ch) {
    lis::LisGraph modified = system;
    modified.set_relay_stations(ch, system.channel(ch).relay_stations + 1);
    const util::Rational ideal = lis::ideal_mst(modified);
    const util::Rational practical = lis::practical_mst(modified);
    std::string verdict;
    if (ideal < lis::ideal_mst(system)) {
      verdict = "lowers the ideal MST itself";
    } else if (practical >= lis::ideal_mst(system)) {
      verdict = "would fix it";
    } else {
      verdict = "degradation remains";
    }
    const lis::Channel& c = system.channel(ch);
    table.add_row({"(" + system.core_name(c.src) + "," + system.core_name(c.dst) + ")",
                   ideal.to_string(), practical.to_string(), verdict});
  }
  table.print(std::cout);

  const core::RsInsertionResult exhaustive = core::exhaustive_rs_insertion(system, 3);
  std::cout << "\nexhaustive search over up to 3 extra stations ("
            << exhaustive.configurations_tried
            << " configurations): best practical MST = "
            << exhaustive.best_practical.to_string() << " < 5/6 — no assignment works.\n";

  core::QsOptions options;
  options.method = core::QsMethod::kExact;
  const core::QsReport report = core::size_queues(system, options);
  std::cout << "queue sizing instead: " << report.exact->total_extra_tokens
            << " extra token(s) restore MST " << report.achieved_mst.to_string() << ".\n";
  return 0;
}
