// A complete designer workflow on one system: classify the topology, check
// pipelining headroom before placing relay stations, diagnose the resulting
// degradation, explore the repair budget, pick a point, and verify both the
// throughput and the storage bill.
//
//   $ ./design_space [--seed N]
#include <iostream>

#include "core/diagnostics.hpp"
#include "core/pareto.hpp"
#include "core/queue_sizing.hpp"
#include "core/slack.hpp"
#include "core/storage.hpp"
#include "gen/generator.hpp"
#include "graph/scc.hpp"
#include "graph/topology.hpp"
#include "lis/protocol_sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 17)));

  // 1. The netlist after logic design: 24 cores in 4 SCCs.
  gen::GeneratorParams params;
  params.vertices = 24;
  params.sccs = 4;
  params.min_cycles = 2;
  params.relay_stations = 0;  // none yet — wires get pipelined after layout
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  lis::LisGraph system = gen::generate(params, rng);
  std::cout << "netlist: " << system.num_cores() << " cores, " << system.num_channels()
            << " channels, topology class "
            << graph::to_string(graph::classify(system.structure())) << "\n";
  std::cout << "pre-layout MST: " << lis::practical_mst(system).to_string() << "\n\n";

  // 2. Before layout, check how much pipelining each channel tolerates.
  int unbounded = 0;
  int tight = 0;
  for (const core::ChannelSlack& s : core::channel_slacks(system)) {
    if (s.slack == core::ChannelSlack::kUnbounded) {
      ++unbounded;
    } else if (s.slack == 0) {
      ++tight;
    }
  }
  std::cout << "wire-pipelining slack: " << unbounded << " channels unbounded, " << tight
            << " channels with zero headroom (on critical loops)\n\n";

  // 3. Layout forces relay stations onto four long inter-SCC wires.
  {
    const graph::Condensation cond = graph::condense(system.structure());
    int placed = 0;
    for (lis::ChannelId c = 0;
         c < static_cast<lis::ChannelId>(system.num_channels()) && placed < 4; ++c) {
      const lis::Channel& ch = system.channel(c);
      if (cond.partition.comp_of[static_cast<std::size_t>(ch.src)] !=
          cond.partition.comp_of[static_cast<std::size_t>(ch.dst)]) {
        system.set_relay_stations(c, 1 + placed % 2);
        ++placed;
      }
    }
  }
  const core::DegradationReport report = core::explain_degradation(system);
  std::cout << "after pipelining:\n" << report.to_string() << "\n";

  // 4. What does each repair token buy?
  std::cout << "repair budget frontier:\n";
  util::Table frontier_table({"extra queue slots", "achieved MST"});
  const auto frontier = core::qs_pareto_frontier(system);
  for (const core::ParetoPoint& point : frontier) {
    frontier_table.add_row({std::to_string(point.extra_tokens), point.achieved_mst.to_string()});
  }
  frontier_table.print(std::cout);

  // 5. Take the full repair and verify throughput + storage.
  core::QsOptions qs_options;
  qs_options.method = core::QsMethod::kExact;
  const core::QsReport qs = core::size_queues(system, qs_options);
  std::cout << "\nfull repair: " << qs.exact->total_extra_tokens << " slot(s), MST "
            << qs.achieved_mst.to_string() << "\n";
  lis::ProtocolOptions sim_options;
  sim_options.periods = 4000;
  std::cout << "simulated: " << simulate_protocol(qs.sized, sim_options).throughput.to_string()
            << "\n";
  std::cout << "total worst-case channel storage: " << core::total_storage_bound(qs.sized)
            << " items\n";
  return 0;
}
