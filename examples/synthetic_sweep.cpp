// Synthetic design-space sweep: generate random LIS topologies like the
// paper's Sec. VIII experiments and compare three throughput repairs —
// fixed queue sizing, per-queue sizing (heuristic), and greedy relay-station
// insertion — on the same systems.
//
//   $ ./synthetic_sweep --trials 10 --v 40 --s 5 --rs 8 --seed 99
#include <iostream>

#include "core/fixed_qs.hpp"
#include "core/queue_sizing.hpp"
#include "core/rs_insertion.hpp"
#include "gen/generator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 10));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 99)));

  gen::GeneratorParams params;
  params.vertices = static_cast<int>(cli.get_int("v", 40));
  params.sccs = static_cast<int>(cli.get_int("s", 5));
  params.min_cycles = static_cast<int>(cli.get_int("c", 3));
  params.relay_stations = static_cast<int>(cli.get_int("rs", 8));
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;

  util::Table table({"trial", "ideal", "degraded", "fixed q needed", "QS tokens", "QS MST",
                     "greedy RS added", "greedy RS MST"});
  for (int t = 0; t < trials; ++t) {
    const lis::LisGraph system = gen::generate(params, rng);
    const util::Rational ideal = lis::ideal_mst(system);
    const util::Rational degraded = lis::practical_mst(system);

    // Repair 1: the smallest uniform queue size that restores the ideal MST.
    const int fixed_q =
        core::smallest_sufficient_fixed_q(system, system.total_relay_stations() + 1);

    // Repair 2: per-queue sizing with the paper's heuristic.
    core::QsOptions qs_options;
    qs_options.method = core::QsMethod::kHeuristic;
    const core::QsReport report = core::size_queues(system, qs_options);

    // Repair 3: greedy relay-station insertion (may fail; Sec. VI).
    const core::RsInsertionResult rs =
        core::greedy_rs_insertion(system, system.total_relay_stations());

    table.add_row({std::to_string(t), ideal.to_string(), degraded.to_string(),
                   std::to_string(fixed_q), std::to_string(report.heuristic->total_extra_tokens),
                   report.achieved_mst.to_string(), std::to_string(rs.relay_stations_added),
                   rs.best_practical.to_string()});
  }
  table.print(std::cout);
  std::cout << "note: per-queue sizing always restores the ideal MST; relay-station insertion\n"
               "      may not (Sec. VI), and fixed queues can need far more total storage.\n";
  return 0;
}
