// Case study walk-through (Sec. IX): the COFDM UWB transmitter SoC.
//
// Starting from the 12-block / 30-channel netlist, this example pipelines
// two channels chosen after "floorplanning" (the Fig. 19 scenario), shows
// the resulting throughput degradation, inspects the critical cycles, and
// repairs the system with the queue-sizing heuristic.
#include <iostream>

#include "core/queue_sizing.hpp"
#include "graph/cycles.hpp"
#include "lis/protocol_sim.hpp"
#include "soc/cofdm.hpp"

int main() {
  using namespace lid;

  lis::LisGraph soc = soc::build_cofdm();
  std::cout << "COFDM transmitter: " << soc.num_cores() << " blocks, " << soc.num_channels()
            << " channels, "
            << graph::enumerate_cycles(soc.structure()).cycles.size() << " cycles\n";
  std::cout << "without relay stations: MST = " << lis::practical_mst(soc).to_string() << "\n\n";

  // Floorplanning put long wires on (FEC, Spread) and (Spread, Pilot):
  // pipeline them with relay stations to keep the clock period.
  soc.set_relay_stations(soc::find_channel(soc, soc::kFEC, soc::kSpread), 1);
  soc.set_relay_stations(soc::find_channel(soc, soc::kSpread, soc::kPilot), 1);
  std::cout << "after pipelining (FEC,Spread) and (Spread,Pilot):\n";
  std::cout << "  ideal MST     = " << lis::ideal_mst(soc).to_string() << "\n";
  std::cout << "  practical MST = " << lis::practical_mst(soc).to_string()
            << "  <- backpressure degradation\n\n";

  // The cycle-accurate protocol simulation confirms the analysis.
  lis::ProtocolOptions sim_options;
  sim_options.periods = 5000;
  sim_options.reference = soc::kFEC;
  std::cout << "simulated FEC throughput: "
            << simulate_protocol(soc, sim_options).throughput.to_string() << "\n\n";

  // Repair with the queue-sizing heuristic and re-check.
  core::QsOptions qs_options;
  qs_options.method = core::QsMethod::kHeuristic;
  const core::QsReport report = core::size_queues(soc, qs_options);
  std::cout << "heuristic queue sizing adds " << report.heuristic->total_extra_tokens
            << " slot(s):\n";
  for (std::size_t s = 0; s < report.problem.channels.size(); ++s) {
    if (report.heuristic->weights[s] == 0) continue;
    const lis::Channel& ch = soc.channel(report.problem.channels[s]);
    std::cout << "  input queue of " << soc.core_name(ch.dst) << " on channel from "
              << soc.core_name(ch.src) << ": +" << report.heuristic->weights[s] << "\n";
  }
  std::cout << "restored MST = " << report.achieved_mst.to_string() << "\n";
  std::cout << "simulated after sizing: "
            << simulate_protocol(report.sized, sim_options).throughput.to_string() << "\n";
  return 0;
}
