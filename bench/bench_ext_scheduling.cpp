// Extension experiment: static scheduling (Casu–Macchiarulo, Sec. II) vs
// backpressure with queue sizing.
//
// On a closed system both achieve the ideal MST — the schedule without any
// stop wires, queue sizing with q grown on the bottleneck channels. But when
// the environment deviates from what the schedule assumed, the schedule
// demands firings the hardware cannot honour (a correctness violation —
// valid data would be lost or garbage consumed), while the backpressured
// system gracefully tracks min(environment rate, MST).
#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "core/scheduling.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "lis/protocol_sim.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const auto periods = static_cast<std::size_t>(cli.get_int("periods", 4000));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 10)));

  bench::banner("Extension", "static scheduling vs backpressure (closed and open)");

  // A closed system: one SCC with relay stations.
  gen::GeneratorParams params;
  params.vertices = 8;
  params.sccs = 1;
  params.min_cycles = 3;
  params.relay_stations = 2;
  params.policy = gen::RsPolicy::kAny;
  const lis::LisGraph system = gen::generate(params, rng);

  const core::StaticSchedule schedule = core::compute_static_schedule(system);
  if (!schedule.found) {
    std::cout << "generated system had no periodic schedule; rerun with another --seed\n";
    return 1;
  }
  std::cout << "closed system: ideal MST " << lis::ideal_mst(system).to_string()
            << ", schedule period " << schedule.period << " after transient "
            << schedule.transient << "\n\n";

  util::Table table({"environment", "mechanism", "throughput", "schedule violations"});
  const auto run_backpressure = [&](std::size_t env_period) {
    core::QsOptions qs;
    qs.method = core::QsMethod::kHeuristic;
    const core::QsReport report = core::size_queues(system, qs);
    lis::ProtocolOptions options;
    options.periods = periods;
    options.behaviors.resize(system.num_cores());
    if (env_period != 0) {
      options.behaviors[0].environment_gate = [env_period](std::int64_t t) {
        return static_cast<std::size_t>(t) % env_period == 0;
      };
    }
    return simulate_protocol(report.sized, options).throughput;
  };

  const core::ScheduleReplay closed = core::replay_schedule(system, schedule, periods);
  table.add_row({"as designed", "static schedule", util::Table::fmt(closed.throughput.to_double(), 3),
                 std::to_string(closed.violations)});
  table.add_row({"as designed", "backpressure + QS",
                 util::Table::fmt(run_backpressure(0).to_double(), 3), "-"});

  for (const std::size_t env : {2u, 3u}) {
    const core::ScheduleReplay open = core::replay_schedule(system, schedule, periods, env);
    table.add_row({"core 0 throttled to 1/" + std::to_string(env), "static schedule",
                   util::Table::fmt(open.throughput.to_double(), 3),
                   std::to_string(open.violations)});
    table.add_row({"core 0 throttled to 1/" + std::to_string(env), "backpressure + QS",
                   util::Table::fmt(run_backpressure(env).to_double(), 3), "-"});
  }
  table.print(std::cout);
  bench::footnote("a schedule violation means the fixed schedule would clock a core without "
                  "valid inputs — the failure mode Sec. II attributes to schedule-based "
                  "approaches on open systems; backpressure simply adapts");
  return 0;
}
