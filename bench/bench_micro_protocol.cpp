// Micro-benchmarks: protocol-simulator throughput (simulated periods per
// second) across system sizes and feature mixes.
#include <benchmark/benchmark.h>

#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "lis/protocol_sim.hpp"
#include "mg/simulate.hpp"
#include "util/rng.hpp"

namespace {

using namespace lid;

lis::LisGraph system_of(int vertices, bool pipelined_cores) {
  util::Rng rng(49);
  gen::GeneratorParams params;
  params.vertices = vertices;
  params.sccs = 3;
  params.min_cycles = 2;
  params.relay_stations = 6;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  lis::LisGraph system = gen::generate(params, rng);
  if (pipelined_cores) {
    for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(system.num_cores()); v += 3) {
      system.set_core_latency(v, 3);
    }
  }
  return system;
}

void BM_ProtocolSim(benchmark::State& state) {
  const lis::LisGraph system = system_of(static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    lis::ProtocolOptions options;
    options.periods = 2000;
    options.record_traces = true;  // defeat early recurrence exit
    benchmark::DoNotOptimize(simulate_protocol(system, options));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ProtocolSim)->Arg(20)->Arg(50)->Arg(100);

void BM_ProtocolSimPipelined(benchmark::State& state) {
  const lis::LisGraph system = system_of(static_cast<int>(state.range(0)), true);
  for (auto _ : state) {
    lis::ProtocolOptions options;
    options.periods = 2000;
    options.record_traces = true;
    benchmark::DoNotOptimize(simulate_protocol(system, options));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ProtocolSimPipelined)->Arg(20)->Arg(50);

void BM_MarkedGraphSim(benchmark::State& state) {
  // Measures a realistic analysis call: the simulator stops at the first
  // marking recurrence, so runs are shorter than the 2000-step budget.
  const lis::Expansion ex =
      lis::expand_doubled(system_of(static_cast<int>(state.range(0)), false));
  std::size_t steps = 0;
  for (auto _ : state) {
    const mg::SimulationResult r = mg::simulate(ex.graph, 2000);
    steps = r.steps_run;
    benchmark::DoNotOptimize(r);
  }
  state.counters["steps_to_recurrence"] = static_cast<double>(steps);
}
BENCHMARK(BM_MarkedGraphSim)->Arg(20)->Arg(50)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
