// Fig. 16: MST of generated systems (v = 50, s = 5, c = 5, rp = 1, rs = 10)
// with infinite queues (the ideal MST) and with finite queues of size
// q = 1..10, under both relay-station insertion policies. Averages over
// --trials random systems.
//
// Paper shape: with `scc` insertion the ideal MST is 1.0 and finite queues
// degrade it by 15-30% at small q; with `any` insertion the ideal MST is
// itself far lower and queue size barely matters.
#include "bench_common.hpp"
#include "core/fixed_qs.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 50));
  const int q_max = static_cast<int>(cli.get_int("q-max", 10));
  const std::string csv_path = cli.get_string("csv", "");
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 16)));

  gen::GeneratorParams params;
  params.vertices = static_cast<int>(cli.get_int("v", 50));
  params.sccs = static_cast<int>(cli.get_int("s", 5));
  params.min_cycles = static_cast<int>(cli.get_int("c", 5));
  params.relay_stations = static_cast<int>(cli.get_int("rs", 10));
  params.reconvergent = true;

  bench::banner("Fig. 16", "MST with infinite vs finite queues, scc vs any insertion");

  // means[policy][0] = ideal; means[policy][q] = finite MST at queue size q.
  std::vector<std::vector<double>> sums(2, std::vector<double>(static_cast<std::size_t>(q_max) + 1, 0.0));
  for (int t = 0; t < trials; ++t) {
    for (int p = 0; p < 2; ++p) {
      params.policy = (p == 0) ? gen::RsPolicy::kScc : gen::RsPolicy::kAny;
      const lis::LisGraph system = gen::generate(params, rng);
      sums[static_cast<std::size_t>(p)][0] += lis::ideal_mst(system).to_double();
      for (int q = 1; q <= q_max; ++q) {
        sums[static_cast<std::size_t>(p)][static_cast<std::size_t>(q)] +=
            core::fixed_qs_mst(system, q).to_double();
      }
    }
  }

  util::Table table({"queue size", "scc: infinite", "scc: finite", "any: infinite", "any: finite"});
  std::optional<util::CsvWriter> csv;
  if (!csv_path.empty()) {
    csv.emplace(csv_path, std::vector<std::string>{"q", "scc_infinite", "scc_finite",
                                                   "any_infinite", "any_finite"});
  }
  for (int q = 1; q <= q_max; ++q) {
    const double scc_inf = sums[0][0] / trials;
    const double scc_fin = sums[0][static_cast<std::size_t>(q)] / trials;
    const double any_inf = sums[1][0] / trials;
    const double any_fin = sums[1][static_cast<std::size_t>(q)] / trials;
    table.add_row({std::to_string(q), util::Table::fmt(scc_inf), util::Table::fmt(scc_fin),
                   util::Table::fmt(any_inf), util::Table::fmt(any_fin)});
    if (csv) {
      csv->add_row({std::to_string(q), util::Table::fmt(scc_inf, 4), util::Table::fmt(scc_fin, 4),
                    util::Table::fmt(any_inf, 4), util::Table::fmt(any_fin, 4)});
    }
  }
  table.print(std::cout);
  bench::footnote("paper: scc-infinite = 1.0; scc-finite 15-30% below at small q; any ~flat and lower");
  return 0;
}
