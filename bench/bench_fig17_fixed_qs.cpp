// Fig. 17: MST improvement using fixed queues (scc insertion) — the finite-
// queue MST as a fraction of the ideal MST, versus the uniform queue size q,
// for several generator configurations. Paper shape: ~75% of optimal at
// q = 1, above 90% for q >= 5.
#include "bench_common.hpp"
#include "core/fixed_qs.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 50));
  const int q_max = static_cast<int>(cli.get_int("q-max", 10));
  const std::string csv_path = cli.get_string("csv", "");
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 17)));

  bench::banner("Fig. 17", "fraction of ideal MST vs fixed queue size (scc insertion)");

  struct Config {
    const char* name;
    int v, s, c, rs;
  };
  const Config configs[] = {
      {"v=50 s=5 c=5 rs=10", 50, 5, 5, 10},
      {"v=50 s=10 c=2 rs=10", 50, 10, 2, 10},
      {"v=100 s=10 c=1 rs=10", 100, 10, 1, 10},
  };

  std::vector<std::string> header{"queue size"};
  for (const auto& cfg : configs) header.emplace_back(cfg.name);
  util::Table table(header);
  std::optional<util::CsvWriter> csv;
  if (!csv_path.empty()) csv.emplace(csv_path, header);

  std::vector<std::vector<double>> fraction(
      std::size(configs), std::vector<double>(static_cast<std::size_t>(q_max) + 1, 0.0));
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    gen::GeneratorParams params;
    params.vertices = configs[i].v;
    params.sccs = configs[i].s;
    params.min_cycles = configs[i].c;
    params.relay_stations = configs[i].rs;
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    for (int t = 0; t < trials; ++t) {
      const lis::LisGraph system = gen::generate(params, rng);
      const double ideal = lis::ideal_mst(system).to_double();
      for (int q = 1; q <= q_max; ++q) {
        fraction[i][static_cast<std::size_t>(q)] +=
            core::fixed_qs_mst(system, q).to_double() / ideal;
      }
    }
  }

  for (int q = 1; q <= q_max; ++q) {
    std::vector<std::string> row{std::to_string(q)};
    for (std::size_t i = 0; i < std::size(configs); ++i) {
      row.push_back(util::Table::fmt(fraction[i][static_cast<std::size_t>(q)] / trials));
    }
    table.add_row(row);
    if (csv) csv->add_row(row);
  }
  table.print(std::cout);
  bench::footnote("paper: ~0.75 of optimal at q = 1, above 0.90 once q >= 5");
  return 0;
}
