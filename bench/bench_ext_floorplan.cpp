// Extension experiment: the physical design flow end to end. Random logical
// netlists are placed on a grid; sweeping the clock reach (how far a signal
// travels per period) drives how many relay stations the wires need, which
// sets the ideal MST; finite queues then degrade it and queue sizing repairs
// it. The table shows, per reach, the relay-station bill, the throughput
// chain (ideal -> degraded -> repaired) and the repair cost — a physically
// motivated version of Fig. 16's sweep.
#include "bench_common.hpp"
#include "core/floorplan.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 25));
  const int side = static_cast<int>(cli.get_int("grid", 10));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 13)));

  bench::banner("Extension", "clock reach vs pipelining bill, degradation and repair cost");

  struct Row {
    double rs = 0.0;
    double ideal = 0.0;
    double degraded = 0.0;
    double repaired = 0.0;
    double tokens = 0.0;
    int degrading = 0;
  };
  const int reaches[] = {12, 8, 6, 4, 3, 2};
  std::vector<Row> rows(std::size(reaches));

  for (int t = 0; t < trials; ++t) {
    gen::GeneratorParams params;
    params.vertices = 30;
    params.sccs = 5;
    params.min_cycles = 2;
    params.relay_stations = 0;  // the floorplan decides
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    const lis::LisGraph logical = gen::generate(params, rng);
    const core::Placement placement = core::clustered_placement(logical, side, rng);

    for (std::size_t i = 0; i < std::size(reaches); ++i) {
      const lis::LisGraph placed = core::apply_floorplan(logical, placement, reaches[i]);
      core::QsOptions options;
      options.method = core::QsMethod::kHeuristic;
      const core::QsReport report = core::size_queues(placed, options);
      rows[i].rs += placed.total_relay_stations();
      rows[i].ideal += report.problem.theta_ideal.to_double();
      rows[i].degraded += report.problem.theta_practical.to_double();
      rows[i].repaired += report.achieved_mst.to_double();
      rows[i].tokens += static_cast<double>(report.heuristic->total_extra_tokens);
      rows[i].degrading += report.problem.theta_practical < report.problem.theta_ideal ? 1 : 0;
    }
  }

  util::Table table({"clock reach", "avg relay stations", "ideal MST", "degraded MST",
                     "repaired MST", "avg extra slots", "degrading"});
  for (std::size_t i = 0; i < std::size(reaches); ++i) {
    table.add_row({std::to_string(reaches[i]), util::Table::fmt(rows[i].rs / trials),
                   util::Table::fmt(rows[i].ideal / trials),
                   util::Table::fmt(rows[i].degraded / trials),
                   util::Table::fmt(rows[i].repaired / trials),
                   util::Table::fmt(rows[i].tokens / trials),
                   std::to_string(rows[i].degrading) + "/" + std::to_string(trials)});
  }
  table.print(std::cout);
  bench::footnote("the clustered floorplan keeps intra-SCC wires short, so moderate reaches "
                  "pipeline only inter-cluster wires (ideal MST ~1) and backpressure repair is "
                  "cheap; very tight clocks pipeline inside clusters and sink the ideal itself");
  return 0;
}
