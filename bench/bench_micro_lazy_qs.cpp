// Micro-benchmarks: lazy critical-cycle constraint generation vs the
// enumerate-everything pipeline on dense generated systems. A single SCC
// with many chords drives the doubled graph's elementary-cycle count into
// the tens of thousands; the full pipeline enumerates and constrains every
// one of them while the lazy solver touches only the few that are critical.
// Counters record the cycle counts so the asymmetry is visible in the JSON.
#include <benchmark/benchmark.h>

#include "core/lazy_sizing.hpp"
#include "core/qs_problem.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "util/rng.hpp"

namespace {

using namespace lid;

// Dense single-SCC system: Hamiltonian cycle over `vertices` cores plus
// `chords` random chords, with a few relay stations degrading the MST so the
// sizing problem is non-trivial.
lis::LisGraph dense_system(int vertices, int chords) {
  util::Rng rng(4242);
  gen::GeneratorParams params;
  params.vertices = vertices;
  params.sccs = 1;
  params.min_cycles = chords;
  params.relay_stations = 8;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kAny;
  return gen::generate(params, rng);
}

void BM_SizeQueuesFull(benchmark::State& state) {
  const lis::LisGraph system = dense_system(14, static_cast<int>(state.range(0)));
  core::QsOptions options;
  options.method = core::QsMethod::kBoth;
  std::int64_t cycles = 0;
  std::int64_t total = 0;
  for (auto _ : state) {
    const core::QsReport r = core::size_queues(system, options);
    benchmark::DoNotOptimize(r);
    cycles = static_cast<std::int64_t>(r.problem.cycles_enumerated);
    total = r.exact ? r.exact->total_extra_tokens : -1;
  }
  state.counters["cycles_enumerated"] = static_cast<double>(cycles);
  state.counters["total_extra_tokens"] = static_cast<double>(total);
}
BENCHMARK(BM_SizeQueuesFull)->Arg(20)->Arg(24)->Arg(28)->Unit(benchmark::kMillisecond);

void BM_SizeQueuesLazy(benchmark::State& state) {
  const lis::LisGraph system = dense_system(14, static_cast<int>(state.range(0)));
  core::QsOptions options;
  options.method = core::QsMethod::kLazy;
  std::int64_t cycles = 0;
  std::int64_t total = 0;
  std::int64_t fallbacks = 0;
  for (auto _ : state) {
    const core::QsReport r = core::size_queues(system, options);
    benchmark::DoNotOptimize(r);
    cycles = r.lazy->cycles_generated;
    total = r.exact ? r.exact->total_extra_tokens : -1;
    if (r.lazy->fell_back) ++fallbacks;
  }
  state.counters["cycles_generated"] = static_cast<double>(cycles);
  state.counters["total_extra_tokens"] = static_cast<double>(total);
  state.counters["fallbacks"] = static_cast<double>(fallbacks);
}
BENCHMARK(BM_SizeQueuesLazy)->Arg(20)->Arg(24)->Arg(28)->Unit(benchmark::kMillisecond);

// The engine-pooling payoff on re-analysis: one persistent workspace across
// repeated lazy solves of the same netlist (the AnalysisCache hit path).
void BM_SizeQueuesLazyPooledWorkspace(benchmark::State& state) {
  const lis::LisGraph system = dense_system(14, static_cast<int>(state.range(0)));
  core::QsOptions options;
  mg::Workspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::size_queues_lazy(system, options, &workspace));
  }
  state.counters["warm_restarts"] =
      static_cast<double>(workspace.stats().warm_restarts);
}
BENCHMARK(BM_SizeQueuesLazyPooledWorkspace)->Arg(20)->Arg(24)->Arg(28)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
