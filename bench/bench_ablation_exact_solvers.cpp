// Ablation: the three TD solvers — the paper's heuristic, the paper's
// literal exact algorithm (set replication + K-depth search), and the
// branch-and-bound exact solver — on identical instances of growing size.
// Solution totals must agree between the two exact solvers; CPU time shows
// why branch-and-bound is the library default.
#include "bench_common.hpp"
#include "core/exact.hpp"
#include "core/exact_milp.hpp"
#include "core/exact_paper.hpp"
#include "core/heuristic.hpp"
#include "core/qs_problem.hpp"
#include "gen/generator.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 20));
  const double timeout_ms = cli.get_double("timeout-ms", 2000.0);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 6)));

  bench::banner("Ablation A3", "heuristic vs paper-exact vs branch-and-bound");

  struct Config {
    const char* name;
    int v, s, rs;
  };
  const Config configs[] = {{"v=30 s=5 rs=6", 30, 5, 6},
                            {"v=60 s=10 rs=10", 60, 10, 10},
                            {"v=100 s=20 rs=12", 100, 20, 12}};

  util::Table table({"config", "solver", "avg tokens", "avg CPU ms", "timeouts"});
  for (const Config& cfg : configs) {
    std::vector<core::TdInstance> instances;
    for (int t = 0; t < trials; ++t) {
      gen::GeneratorParams params;
      params.vertices = cfg.v;
      params.sccs = cfg.s;
      params.min_cycles = 2;
      params.relay_stations = cfg.rs;
      params.reconvergent = true;
      params.policy = gen::RsPolicy::kScc;
      const core::QsProblem problem =
          core::build_qs_problem(gen::generate(params, rng));
      if (problem.has_degradation()) instances.push_back(problem.td);
    }

    std::vector<double> h_tokens, h_ms, p_tokens, p_ms, b_tokens, b_ms, m_tokens, m_ms;
    int p_timeouts = 0;
    int b_timeouts = 0;
    int m_timeouts = 0;
    for (const core::TdInstance& inst : instances) {
      util::Timer timer;
      const core::TdSolution heur = core::solve_heuristic(inst);
      h_ms.push_back(timer.elapsed_ms());
      h_tokens.push_back(static_cast<double>(heur.total));

      core::ExactOptions options;
      options.timeout_ms = timeout_ms;
      const core::ExactResult paper = core::solve_exact_paper(inst, heur, options);
      if (paper.solution) {
        p_tokens.push_back(static_cast<double>(paper.solution->total));
        p_ms.push_back(paper.elapsed_ms);
      } else {
        ++p_timeouts;
      }
      const core::ExactResult bnb = core::solve_exact(inst, heur, options);
      if (bnb.solution) {
        b_tokens.push_back(static_cast<double>(bnb.solution->total));
        b_ms.push_back(bnb.elapsed_ms);
      } else {
        ++b_timeouts;
      }
      const core::ExactResult milp = core::solve_exact_milp(inst, heur, options);
      if (milp.solution) {
        m_tokens.push_back(static_cast<double>(milp.solution->total));
        m_ms.push_back(milp.elapsed_ms);
      } else {
        ++m_timeouts;
      }
    }
    table.add_row({cfg.name, "heuristic", util::Table::fmt(util::mean(h_tokens)),
                   util::Table::fmt(util::mean(h_ms), 3), "0"});
    table.add_row({cfg.name, "paper exact",
                   p_tokens.empty() ? "-" : util::Table::fmt(util::mean(p_tokens)),
                   p_ms.empty() ? "-" : util::Table::fmt(util::mean(p_ms), 3),
                   std::to_string(p_timeouts)});
    table.add_row({cfg.name, "branch-and-bound",
                   b_tokens.empty() ? "-" : util::Table::fmt(util::mean(b_tokens)),
                   b_ms.empty() ? "-" : util::Table::fmt(util::mean(b_ms), 3),
                   std::to_string(b_timeouts)});
    table.add_row({cfg.name, "MILP (Lu-Koh style)",
                   m_tokens.empty() ? "-" : util::Table::fmt(util::mean(m_tokens)),
                   m_ms.empty() ? "-" : util::Table::fmt(util::mean(m_ms), 3),
                   std::to_string(m_timeouts)});
  }
  table.print(std::cout);
  bench::footnote("all exact solvers prove the same optima where they finish; B&B explores "
                  "the fewest nodes, the exact-rational MILP pays simplex overhead");
  return 0;
}
