// Extension experiment: budgeted repair. For the COFDM Fig. 19 scenario and
// a batch of generated systems, the tokens-vs-throughput Pareto frontier
// shows what each extra queue slot buys — full repair is the last step, but
// most of the loss is usually recovered much earlier.
#include "bench_common.hpp"
#include "core/pareto.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "soc/cofdm.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 10));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 12)));

  bench::banner("Extension", "budgeted repair: tokens vs achieved MST");

  // The COFDM Fig. 19 scenario.
  lis::LisGraph soc = soc::build_cofdm();
  soc.set_relay_stations(soc::find_channel(soc, soc::kFEC, soc::kSpread), 1);
  soc.set_relay_stations(soc::find_channel(soc, soc::kSpread, soc::kPilot), 1);
  std::cout << "COFDM Fig. 19 scenario:\n";
  util::Table soc_table({"extra tokens", "achieved MST", "as decimal"});
  for (const core::ParetoPoint& point : core::qs_pareto_frontier(soc)) {
    soc_table.add_row({std::to_string(point.extra_tokens), point.achieved_mst.to_string(),
                       util::Table::fmt(point.achieved_mst.to_double())});
  }
  soc_table.print(std::cout);

  // Generated systems: how much of the lost throughput does HALF the full
  // budget recover, on average?
  std::vector<double> half_budget_recovery;
  for (int t = 0; t < trials; ++t) {
    gen::GeneratorParams params;
    params.vertices = 40;
    params.sccs = 6;
    params.min_cycles = 2;
    params.relay_stations = 8;
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    const lis::LisGraph system = gen::generate(params, rng);
    const auto frontier = core::qs_pareto_frontier(system);
    if (frontier.size() < 2) continue;
    const double base = frontier.front().achieved_mst.to_double();
    const double full = frontier.back().achieved_mst.to_double();
    const std::int64_t budget = frontier.back().extra_tokens / 2;
    double at_half = base;
    for (const core::ParetoPoint& point : frontier) {
      if (point.extra_tokens <= budget) at_half = point.achieved_mst.to_double();
    }
    if (full > base) half_budget_recovery.push_back((at_half - base) / (full - base));
  }
  std::cout << "\ngenerated systems (" << half_budget_recovery.size()
            << " degraded instances): half the full token budget recovers on average "
            << util::Table::fmt(100.0 * util::mean(half_budget_recovery), 1)
            << "% of the lost throughput\n";
  bench::footnote("the frontier is a staircase of doubled-graph cycle means; each step is "
                  "solved exactly against that target");
  return 0;
}
