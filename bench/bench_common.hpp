// Shared plumbing for the experiment harnesses: every bench binary prints
// the rows of one paper table/figure. Default parameters are scaled so the
// full `for b in build/bench/*; do $b; done` sweep finishes in minutes on a
// laptop; pass --trials / --timeout-ms etc. to reproduce at paper scale.
#pragma once

#include <iostream>
#include <optional>
#include <string>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rational.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace lid::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "==== " << id << " — " << what << " ====\n";
}

/// Prints a paper-vs-measured footnote line.
inline void footnote(const std::string& text) { std::cout << "  note: " << text << "\n"; }

}  // namespace lid::bench
