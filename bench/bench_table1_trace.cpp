// Table I: output traces of the components in the LIS of Fig. 1.
//
// Core A generates even numbers on the upper channel (through one relay
// station) and odd numbers on the lower channel; core B adds its inputs. The
// relay station is initialized void, so B stalls at t1 and its shell buffers
// A's lower output — exactly the interleaving of Table I.
#include <vector>

#include "bench_common.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const auto periods = static_cast<std::size_t>(cli.get_int("periods", 4));

  bench::banner("Table I", "output traces of the Fig. 1 LIS");

  lis::LisGraph system = lis::make_two_core_example();
  system.set_all_queue_capacities(2);  // ample queues: the ideal behaviour
  const lis::CoreId sink = system.add_core("sink");
  system.add_channel(1, sink, 0, 2);

  lis::ProtocolOptions options;
  options.periods = periods;
  options.record_traces = true;
  options.behaviors.resize(3);
  options.behaviors[0].initial_outputs = {0, 1};
  options.behaviors[0].function = [](std::int64_t k, const std::vector<lis::Payload>&) {
    return std::vector<lis::Payload>{2 * (k + 1), 2 * (k + 1) + 1};
  };
  options.behaviors[1].function = [](std::int64_t, const std::vector<lis::Payload>& in) {
    return std::vector<lis::Payload>{in[0] + in[1]};
  };
  const lis::ProtocolResult result = simulate_protocol(system, options);

  util::Table table({"output channel", "trace (t0 t1 t2 ...)"});
  table.add_row({"A (upper)", lis::format_trace(result.traces[0][0])});
  table.add_row({"A (lower)", lis::format_trace(result.traces[1][0])});
  table.add_row({"B", lis::format_trace(result.traces[2][0])});
  table.add_row({"Relay Station", lis::format_trace(result.traces[0][1])});
  table.print(std::cout);
  bench::footnote("paper Table I: A=[0 2 4 6]/[1 3 5 7], B=[0 tau 1 5], RS=[tau 0 2 4]");
  return 0;
}
