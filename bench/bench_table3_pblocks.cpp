// Table III / Figs. 7-14: the anatomy of the NP-completeness gadget.
//
// For one vertex-cover edge (u, v), this bench dissects the reduced LIS's
// doubled graph exactly as the proof does: the edge-construct cycle (Fig. 12,
// mean 4/6 — the cycle forcing a token on u's or v's construct backedge),
// the limiter ring pinning θ(G) = 5/6, and the side-effect cycles (Fig. 13),
// whose means stay >= 5/6 once a cover is applied. Table III's P-block token
// counts depend on the paper's hop-level backedge drawing; this library's
// channel-level queue backedges (docs/model.md) shorten the backward
// traversals, so the segment accounting differs while every cycle-level
// quantity the proof relies on is preserved — which the output verifies.
#include <algorithm>

#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "graph/cycles.hpp"
#include "lis/lis_graph.hpp"
#include "npc/vc_reduction.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  (void)cli;

  bench::banner("Table III / Figs. 7-14", "anatomy of the vertex-cover gadget");

  // The smallest interesting instance: a triangle (cover size 2), which has
  // both the per-edge Fig. 12 cycles and multi-gadget side-effect cycles.
  const npc::VcInstance triangle{3, {{0, 1}, {0, 2}, {1, 2}}};
  const npc::QsReduction red = npc::reduce_vc_to_qs(triangle);

  std::cout << "θ(G) = " << lis::ideal_mst(red.lis).to_string()
            << " (limiter ring, Fig. 10), θ(d[G]) = "
            << lis::practical_mst(red.lis).to_string() << "\n\n";

  const lis::Expansion ex = lis::expand_doubled(red.lis);
  const auto cycles = graph::enumerate_cycles(ex.graph.structure());
  const util::Rational limit(5, 6);

  // Histogram of cycle means below/at/above the 5/6 limit.
  int below = 0;
  int at = 0;
  std::vector<std::pair<util::Rational, std::size_t>> bad_list;
  for (const auto& cycle : cycles.cycles) {
    const util::Rational mean(ex.graph.cycle_tokens(cycle),
                              static_cast<std::int64_t>(cycle.size()));
    if (mean < limit) {
      ++below;
      bad_list.emplace_back(mean, cycle.size());
    } else if (mean == limit) {
      ++at;
    }
  }
  std::sort(bad_list.begin(), bad_list.end());
  std::cout << "doubled-graph cycles: " << cycles.cycles.size() << " total, " << below
            << " below 5/6 (deficient), " << at << " exactly at 5/6\n";
  util::Table table({"deficient cycle", "mean", "places"});
  int id = 0;
  for (const auto& [mean, places] : bad_list) {
    table.add_row({"D" + std::to_string(++id), mean.to_string(), std::to_string(places)});
  }
  table.print(std::cout);
  std::cout << "(the 4/6 rows are the per-VC-edge Fig. 12 cycles; longer rows are the\n"
            << " Fig. 13-style side-effect cycles the proof's Case 1/2 analysis covers)\n\n";

  // The proof's crux, verified: min tokens == min vertex cover == 2.
  core::QsOptions options;
  options.method = core::QsMethod::kExact;
  const core::QsReport report = core::size_queues(red.lis, options);
  std::cout << "optimal queue sizing: " << report.exact->total_extra_tokens
            << " token(s); min vertex cover of the triangle: "
            << npc::min_vertex_cover(triangle) << "; restored MST "
            << report.achieved_mst.to_string() << "\n";
  // And the tokens sit on vertex-construct backedges, as the mapping says.
  int on_constructs = 0;
  for (std::size_t s = 0; s < report.problem.channels.size(); ++s) {
    if (report.exact->weights[s] == 0) continue;
    for (const lis::ChannelId construct : red.vertex_construct) {
      if (report.problem.channels[s] == construct) {
        on_constructs += static_cast<int>(report.exact->weights[s]);
      }
    }
  }
  std::cout << "tokens on vertex-construct backedges: " << on_constructs << " of "
            << report.exact->total_extra_tokens << "\n";
  bench::footnote("paper Table III lists per-P-block tokens/places under hop-level backedges; "
                  "cycle-level totals (4/6 edge cycles, >= 5/6 elsewhere under a cover) match");
  return 0;
}
