// Ablation: heuristic sweep-order and step-size variants. The paper's
// heuristic decrements set weights one unit per sweep in index order; this
// bench compares that against descending-initial-weight ordering and
// greedy maximal steps, on identical generated instances.
#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 30));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 8)));

  bench::banner("Ablation A2", "heuristic sweep order / step size");

  struct Variant {
    const char* name;
    core::HeuristicOptions options;
  };
  Variant variants[4];
  variants[0].name = "paper: index order, unit steps";
  variants[1].name = "descending initial weight";
  variants[1].options.order_by_weight = true;
  variants[2].name = "greedy maximal steps";
  variants[2].options.greedy_steps = true;
  variants[3].name = "descending + greedy";
  variants[3].options.order_by_weight = true;
  variants[3].options.greedy_steps = true;

  std::vector<lis::LisGraph> systems;
  for (int t = 0; t < trials; ++t) {
    gen::GeneratorParams params;
    params.vertices = 80;
    params.sccs = 10;
    params.min_cycles = 2;
    params.relay_stations = 12;
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    systems.push_back(gen::generate(params, rng));
  }
  // One exact reference per system (generous timeout; skip on cut-off).
  std::vector<double> exact_tokens;
  for (const lis::LisGraph& system : systems) {
    core::QsOptions options;
    options.method = core::QsMethod::kExact;
    options.exact.timeout_ms = 3000;
    const core::QsReport report = core::size_queues(system, options);
    exact_tokens.push_back(report.exact->finished
                               ? static_cast<double>(report.exact->total_extra_tokens)
                               : -1.0);
  }

  util::Table table({"variant", "avg tokens", "avg CPU ms", "avg excess over exact"});
  for (const Variant& variant : variants) {
    std::vector<double> tokens, cpu, excess;
    for (std::size_t i = 0; i < systems.size(); ++i) {
      core::QsOptions options;
      options.method = core::QsMethod::kHeuristic;
      options.heuristic = variant.options;
      const core::QsReport report = core::size_queues(systems[i], options);
      tokens.push_back(static_cast<double>(report.heuristic->total_extra_tokens));
      cpu.push_back(report.heuristic->cpu_ms);
      if (exact_tokens[i] > 0.0) {
        excess.push_back(static_cast<double>(report.heuristic->total_extra_tokens) -
                         exact_tokens[i]);
      }
    }
    table.add_row({variant.name, util::Table::fmt(util::mean(tokens)),
                   util::Table::fmt(util::mean(cpu), 3),
                   excess.empty() ? "-" : util::Table::fmt(util::mean(excess))});
  }
  // The LP-rounding alternative, run on the same TD instances.
  {
    std::vector<double> tokens, cpu, excess;
    for (std::size_t i = 0; i < systems.size(); ++i) {
      const core::QsProblem problem = core::build_qs_problem(systems[i]);
      util::Timer timer;
      const core::TdSolution rounded = core::solve_lp_rounding(problem.td);
      cpu.push_back(timer.elapsed_ms());
      tokens.push_back(static_cast<double>(rounded.total));
      if (exact_tokens[i] > 0.0) {
        excess.push_back(static_cast<double>(rounded.total) - exact_tokens[i]);
      }
    }
    table.add_row({"LP relaxation + ceiling", util::Table::fmt(util::mean(tokens)),
                   util::Table::fmt(util::mean(cpu), 3),
                   excess.empty() ? "-" : util::Table::fmt(util::mean(excess))});
  }
  table.print(std::cout);
  bench::footnote("all variants must stay feasible; the paper's order is the baseline");
  return 0;
}
