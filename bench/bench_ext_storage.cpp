// Extension experiment: storage cost of the two repair strategies.
//
// Fixed queue sizing (Sec. IV) is simple but pays for every queue in the
// system; per-queue sizing (Sec. VII) concentrates slots on the backpressure
// bottlenecks. This bench quantifies the difference on generated systems:
// total configured queue slots and worst-case occupancy (the structural
// place bounds of mg/analysis.hpp) for (a) the smallest sufficient uniform
// q, vs (b) the heuristic per-queue solution.
#include "bench_common.hpp"
#include "core/fixed_qs.hpp"
#include "core/queue_sizing.hpp"
#include "core/storage.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"

namespace {

std::int64_t total_configured_slots(const lid::lis::LisGraph& lis) {
  std::int64_t total = 0;
  for (lid::lis::ChannelId c = 0; c < static_cast<lid::lis::ChannelId>(lis.num_channels());
       ++c) {
    total += lis.channel(c).queue_capacity;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 25));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 9)));

  bench::banner("Extension", "storage cost: fixed QS vs per-queue sizing");

  std::vector<double> fixed_q, fixed_slots, fixed_bound, sized_slots, sized_bound;
  int fixed_failures = 0;
  for (int t = 0; t < trials; ++t) {
    gen::GeneratorParams params;
    params.vertices = 40;
    params.sccs = 6;
    params.min_cycles = 2;
    params.relay_stations = 8;
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    const lis::LisGraph system = gen::generate(params, rng);

    const int q = core::smallest_sufficient_fixed_q(system, system.total_relay_stations() + 1);
    if (q == 0) {
      ++fixed_failures;
      continue;
    }
    lis::LisGraph fixed = system;
    fixed.set_all_queue_capacities(q);
    fixed_q.push_back(q);
    fixed_slots.push_back(static_cast<double>(total_configured_slots(fixed)));
    fixed_bound.push_back(static_cast<double>(core::total_storage_bound(fixed)));

    core::QsOptions options;
    options.method = core::QsMethod::kHeuristic;
    const core::QsReport report = core::size_queues(system, options);
    sized_slots.push_back(static_cast<double>(total_configured_slots(report.sized)));
    sized_bound.push_back(static_cast<double>(core::total_storage_bound(report.sized)));
  }

  util::Table table({"strategy", "avg uniform q", "avg configured slots",
                     "avg worst-case occupancy"});
  table.add_row({"fixed QS (smallest sufficient q)", util::Table::fmt(util::mean(fixed_q)),
                 util::Table::fmt(util::mean(fixed_slots)),
                 util::Table::fmt(util::mean(fixed_bound))});
  table.add_row({"per-queue sizing (heuristic)", "-", util::Table::fmt(util::mean(sized_slots)),
                 util::Table::fmt(util::mean(sized_bound))});
  table.print(std::cout);
  const double saving =
      100.0 * (1.0 - util::mean(sized_slots) / std::max(1.0, util::mean(fixed_slots)));
  std::cout << "per-queue sizing saves " << util::Table::fmt(saving, 1)
            << "% of configured queue slots at the same (ideal) throughput\n";
  bench::footnote("both strategies restore the ideal MST; fixed QS pays on every channel");
  return 0;
}
