// Micro-benchmarks for the lid_serve subsystem: wire-protocol parse and
// serialize costs, pure in-process request execution (the work a server
// worker does per request), and full socket round trips through a running
// in-process server over a Unix socket — the serving overhead on top of the
// analysis itself.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "lid_api.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"

namespace {

using namespace lid;

std::string analyze_request_line(int cores, std::uint64_t seed) {
  GenerateOptions options;
  options.cores = cores;
  options.sccs = 3;
  options.extra_cycles = 2;
  options.relay_stations = 5;
  options.seed = seed;
  const Result<Instance> instance = generate(options);
  const Result<std::string> text = netlist_text(*instance);
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(1).key("verb").value("analyze").key("netlist").value(*text);
  w.end_object();
  return w.str();
}

void BM_ParseRequest(benchmark::State& state) {
  const std::string line = analyze_request_line(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::parse_request(line));
  }
  state.counters["bytes"] = static_cast<double>(line.size());
}
BENCHMARK(BM_ParseRequest)->Arg(20)->Arg(100);

void BM_ExecuteAnalyze(benchmark::State& state) {
  const std::string line = analyze_request_line(static_cast<int>(state.range(0)), 7);
  const Result<serve::Request> request = serve::parse_request(line);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::execute(*request));
  }
}
BENCHMARK(BM_ExecuteAnalyze)->Arg(20)->Arg(100);

void BM_ResponseSerialize(benchmark::State& state) {
  const std::string line = analyze_request_line(50, 7);
  const Result<serve::Request> request = serve::parse_request(line);
  const serve::Outcome outcome = serve::execute(*request);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::response_line(*request, outcome, 1.0, 0.1));
  }
}
BENCHMARK(BM_ResponseSerialize);

/// One client, blocking request/response over a Unix socket: measures the
/// full serving overhead (framing, queueing, scheduling, write-back) around
/// the same execute() measured above.
void BM_SocketRoundTrip(benchmark::State& state) {
  serve::ServerOptions options;
  options.unix_socket = "/tmp/lid_bench_serve.sock";
  options.workers = static_cast<int>(state.range(0));
  serve::Server server(options);
  if (!server.start()) {
    state.SkipWithError("server failed to start");
    return;
  }
  Result<serve::Client> connected = serve::Client::connect_unix(options.unix_socket);
  if (!connected) {
    state.SkipWithError("client failed to connect");
    return;
  }
  serve::Client client = std::move(connected).value();
  const std::string line = analyze_request_line(20, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call(line));
  }
  client.close();
  server.stop();
}
BENCHMARK(BM_SocketRoundTrip)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_PingRoundTrip(benchmark::State& state) {
  serve::ServerOptions options;
  options.unix_socket = "/tmp/lid_bench_ping.sock";
  options.workers = 1;
  serve::Server server(options);
  if (!server.start()) {
    state.SkipWithError("server failed to start");
    return;
  }
  Result<serve::Client> connected = serve::Client::connect_unix(options.unix_socket);
  if (!connected) {
    state.SkipWithError("client failed to connect");
    return;
  }
  serve::Client client = std::move(connected).value();
  const std::string line = R"({"id": 1, "verb": "ping"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call(line));
  }
  client.close();
  server.stop();
}
BENCHMARK(BM_PingRoundTrip)->Unit(benchmark::kMicrosecond);

/// Cancellation latency: how long a hot solve keeps running after its token
/// has already fired. Measures execute() on a size-queues request with an
/// expired token — the reported time IS the cancellation-detection overhead
/// plus the degrade fallback (heuristic rerun), i.e. the worker-freeing
/// bound of the robustness docs.
void BM_CancellationLatency(benchmark::State& state) {
  GenerateOptions gen;
  gen.cores = static_cast<int>(state.range(0));
  gen.sccs = 3;
  gen.extra_cycles = 2;
  gen.relay_stations = 5;
  gen.seed = 7;
  const Result<Instance> instance = generate(gen);
  const Result<std::string> text = netlist_text(*instance);
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(1).key("verb").value("size-queues");
  w.key("solver").value("both").key("on_deadline").value("degrade");
  w.key("netlist").value(*text);
  w.end_object();
  const Result<serve::Request> request = serve::parse_request(w.str());
  serve::ExecContext expired;
  expired.cancel = util::CancelToken::after_ms(0.0);
  expired.deadline_expired = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::execute(*request, {}, expired));
  }
}
BENCHMARK(BM_CancellationLatency)->Arg(20)->Arg(100)->Unit(benchmark::kMicrosecond);

/// The protocol-v2 register-once/query-many lane against the inline lane of
/// BM_SocketRoundTrip: the same analyze on the same model, but addressed by
/// fingerprint, so the server answers from the registered model's payload
/// memo after the first hit and the request shrinks from a full netlist to
/// ~60 bytes. Arg switches the transport (0 = NDJSON, 1 = binary frames).
void BM_RegisteredAnalyzeRoundTrip(benchmark::State& state) {
  serve::ServerOptions options;
  options.unix_socket = "/tmp/lid_bench_registered.sock";
  options.workers = 1;
  serve::Server server(options);
  if (!server.start()) {
    state.SkipWithError("server failed to start");
    return;
  }
  serve::SessionOptions session_options;
  session_options.binary = state.range(0) != 0;
  Result<serve::Session> connected =
      serve::Session::connect_unix(options.unix_socket, session_options);
  if (!connected) {
    state.SkipWithError("session failed to connect");
    return;
  }
  serve::Session session = std::move(connected).value();

  GenerateOptions gen;
  gen.cores = 20;
  gen.sccs = 3;
  gen.extra_cycles = 2;
  gen.relay_stations = 5;
  gen.seed = 7;  // the same model BM_SocketRoundTrip sends inline
  const Result<Instance> instance = generate(gen);
  const Result<std::string> text = netlist_text(*instance);
  const Result<serve::ModelHandle> handle = session.register_model(*text);
  if (!handle) {
    state.SkipWithError("register-model failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.query(*handle, "analyze"));
  }
  session.close();
  server.stop();
}
BENCHMARK(BM_RegisteredAnalyzeRoundTrip)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Retry-path overhead: the RetryingClient wrapper around a healthy server
/// (no faults, every call succeeds first try) against the bare Client of
/// BM_PingRoundTrip — the cost of the validation + bookkeeping layer alone.
void BM_RetryOverhead(benchmark::State& state) {
  serve::ServerOptions options;
  options.unix_socket = "/tmp/lid_bench_retry.sock";
  options.workers = 1;
  serve::Server server(options);
  if (!server.start()) {
    state.SkipWithError("server failed to start");
    return;
  }
  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  serve::RetryingClient client(
      [&]() { return serve::Client::connect_unix(options.unix_socket); }, policy);
  const std::string line = R"({"id": 1, "verb": "ping"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call(line));
  }
  server.stop();
}
BENCHMARK(BM_RetryOverhead)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
