// Micro-benchmarks: discrete-event simulator throughput (token-arrival
// events per second) across system sizes, with occupancy tracing on and off
// — the `trace` arg pairs measure the tracing overhead directly (the PR
// budget is <= 2x). Stochastic latencies defeat the recurrence early-exit,
// so every iteration simulates the full horizon.
#include <benchmark/benchmark.h>

#include "des/des.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "util/rng.hpp"

namespace {

using namespace lid;

lis::LisGraph system_of(int vertices) {
  util::Rng rng(49);
  gen::GeneratorParams params;
  params.vertices = vertices;
  params.sccs = 3;
  params.min_cycles = 2;
  params.relay_stations = 6;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  return gen::generate(params, rng);
}

void BM_DesEvents(benchmark::State& state) {
  const lis::LisGraph system = system_of(static_cast<int>(state.range(0)));
  const bool trace = state.range(1) != 0;
  std::int64_t events = 0;
  for (auto _ : state) {
    des::SimOptions options;
    options.horizon = 2'000;
    options.channel_latency = des::LatencyDist::uniform(1, 4);
    options.trace_occupancy = trace;
    const des::SimReport report = des::simulate(system, options);
    events += report.events;
    benchmark::DoNotOptimize(report.firings);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_DesEvents)
    ->ArgNames({"v", "trace"})
    ->Args({20, 0})
    ->Args({20, 1})
    ->Args({60, 0})
    ->Args({60, 1})
    ->Args({120, 0})
    ->Args({120, 1});

// The deterministic limit with recurrence detection: the whole run ends at
// the first state revisit, so this measures detection cost, not horizon.
void BM_DesDeterministicRecurrence(benchmark::State& state) {
  const lis::LisGraph system = system_of(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    des::SimOptions options;
    options.horizon = 30'000;
    options.trace_occupancy = false;
    benchmark::DoNotOptimize(des::simulate(system, options).periodic_found);
  }
}
BENCHMARK(BM_DesDeterministicRecurrence)->ArgNames({"v"})->Arg(20)->Arg(60);

}  // namespace

BENCHMARK_MAIN();
