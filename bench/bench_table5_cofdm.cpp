// Table V: exhaustive insertion of two relay stations on the channels of the
// COFDM transmitter (all C(30,2) = 435 placements, q = 1). For every
// placement that degrades the throughput, queue sizing runs four ways —
// heuristic / exact, each with and without the Sec. VII-A simplification —
// and the table reports average solution sizes and CPU times exactly like
// the paper's Table V.
#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "lis/lis_graph.hpp"
#include "soc/cofdm.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const double timeout_ms = cli.get_double("timeout-ms", 10000.0);

  bench::banner("Table V", "exhaustive 2-relay-station insertion on the COFDM SoC");

  const lis::LisGraph base = soc::build_cofdm();
  const auto channels = static_cast<lis::ChannelId>(base.num_channels());

  struct Acc {
    std::vector<double> solution;
    std::vector<double> cpu_ms;
    int timeouts = 0;
  };
  Acc heur_orig, heur_simp, exact_orig, exact_simp;
  std::vector<double> ideal_values, degraded_values;
  int degraded_count = 0;
  int total = 0;

  for (lis::ChannelId a = 0; a < channels; ++a) {
    for (lis::ChannelId b = a + 1; b < channels; ++b) {
      lis::LisGraph system = base;
      system.set_relay_stations(a, 1);
      system.set_relay_stations(b, 1);
      ++total;
      const util::Rational ideal = lis::ideal_mst(system);
      const util::Rational practical = lis::practical_mst(system);
      if (practical >= ideal) continue;
      ++degraded_count;
      ideal_values.push_back(ideal.to_double());
      degraded_values.push_back(practical.to_double());

      const auto run = [&](core::QsMethod method, bool simplify, Acc& acc) {
        core::QsOptions options;
        options.method = method;
        options.simplify = simplify;
        options.exact.timeout_ms = timeout_ms;
        const core::QsReport report = core::size_queues(system, options);
        const core::SolverOutcome& outcome =
            method == core::QsMethod::kHeuristic ? *report.heuristic : *report.exact;
        if (!outcome.finished) {
          acc.timeouts += 1;
          return;
        }
        acc.solution.push_back(static_cast<double>(outcome.total_extra_tokens));
        acc.cpu_ms.push_back(outcome.cpu_ms);
      };
      run(core::QsMethod::kHeuristic, /*simplify=*/false, heur_orig);
      run(core::QsMethod::kHeuristic, /*simplify=*/true, heur_simp);
      run(core::QsMethod::kExact, /*simplify=*/false, exact_orig);
      run(core::QsMethod::kExact, /*simplify=*/true, exact_simp);
    }
  }

  std::cout << "placements: " << total << ", with throughput degradation: " << degraded_count
            << " (" << util::Table::fmt(100.0 * degraded_count / total, 0) << "%)\n";
  std::cout << "ideal throughput (avg over degraded cases):    "
            << util::Table::fmt(util::mean(ideal_values)) << "\n";
  std::cout << "actual (degraded) throughput (avg):            "
            << util::Table::fmt(util::mean(degraded_values)) << "\n";

  const auto row = [&](const std::string& name, const Acc& acc) {
    const util::Summary cpu = util::summarize(acc.cpu_ms);
    return std::vector<std::string>{
        name,
        util::Table::fmt(util::mean(acc.solution)),
        util::Table::fmt(cpu.mean, 3),
        util::Table::fmt(cpu.median, 4),
        std::to_string(acc.timeouts),
    };
  };
  util::Table table(
      {"algorithm", "solution (extra tokens)", "avg CPU (ms)", "median CPU (ms)", "timeouts"});
  table.add_row(row("heuristic, original", heur_orig));
  table.add_row(row("heuristic, simplified", heur_simp));
  table.add_row(row("exact, original", exact_orig));
  table.add_row(row("exact, simplified", exact_simp));
  table.print(std::cout);
  bench::footnote(
      "paper: 227/435 (52%) degrade; ideal 0.81, degraded 0.71; heuristic 4.00/3.89 vs optimal "
      "3.85/3.84 tokens; heuristic ~4% (1.3% simplified) above optimal and orders faster");
  const double heur_gap =
      100.0 * (util::mean(heur_orig.solution) / util::mean(exact_orig.solution) - 1.0);
  const double heur_gap_simp =
      100.0 * (util::mean(heur_simp.solution) / util::mean(exact_simp.solution) - 1.0);
  std::cout << "measured heuristic excess over optimal: " << util::Table::fmt(heur_gap, 1)
            << "% original, " << util::Table::fmt(heur_gap_simp, 1) << "% simplified\n";
  return 0;
}
