// Extension experiment: open systems. Sec. II notes that schedule-based
// alternatives to backpressure "cannot be applied to open systems that
// operate in an environment that may produce data at a dynamically variable
// rate" — backpressure with sized queues handles them natively. This bench
// sweeps the environment's injection rate on the two-core example and shows
// the sustained throughput is min(environment rate, MST) for both the
// degraded (q = 1, MST 2/3) and the sized (MST 1) implementations.
#include "bench_common.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const auto periods = static_cast<std::size_t>(cli.get_int("periods", 6000));

  bench::banner("Extension", "open systems: environment rate vs sustained throughput");

  const auto run = [&](const lis::LisGraph& system, int numer, int denom) {
    lis::ProtocolOptions options;
    options.periods = periods;
    options.reference = 1;
    options.behaviors.resize(system.num_cores());
    options.behaviors[0].environment_gate = [numer, denom](std::int64_t t) {
      // A periodic pattern admitting `numer` valid items per `denom` cycles.
      return (t % denom) < numer;
    };
    return simulate_protocol(system, options).throughput.to_double();
  };

  const lis::LisGraph degraded = lis::make_two_core_example();        // MST 2/3
  const lis::LisGraph sized = lis::make_two_core_example_sized();     // MST 1

  util::Table table({"environment rate", "throughput (q=1, MST 2/3)",
                     "throughput (sized, MST 1)", "min(rate, MST)"});
  const std::pair<int, int> rates[] = {{1, 6}, {1, 3}, {1, 2}, {2, 3}, {5, 6}, {1, 1}};
  for (const auto& [n, d] : rates) {
    const double rate = static_cast<double>(n) / d;
    const double t_degraded = run(degraded, n, d);
    const double t_sized = run(sized, n, d);
    table.add_row({util::Table::fmt(rate), util::Table::fmt(t_degraded),
                   util::Table::fmt(t_sized),
                   util::Table::fmt(std::min(rate, 2.0 / 3.0)) + " / " +
                       util::Table::fmt(std::min(rate, 1.0))});
  }
  table.print(std::cout);
  bench::footnote("below the MST the environment dominates; above it the internal structure "
                  "caps the rate — queue sizing moves the cap from 2/3 to 1");
  return 0;
}
