// Table VI: the potential critical cycles of the Fig. 19 scenario — relay
// stations on (FEC, Spread) and (Spread, Pilot) — i.e. every doubled-graph
// cycle whose mean falls below the scenario's ideal MST of 0.75, plus the
// queue-sizing fix (one extra token each on the (Pilot, Control) and
// (FFT_in, Control) backedges).
#include <algorithm>

#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "graph/cycles.hpp"
#include "lis/lis_graph.hpp"
#include "soc/cofdm.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  (void)cli;

  bench::banner("Table VI", "sub-critical cycles of the Fig. 19 COFDM scenario");

  lis::LisGraph system = soc::build_cofdm();
  system.set_relay_stations(soc::find_channel(system, soc::kFEC, soc::kSpread), 1);
  system.set_relay_stations(soc::find_channel(system, soc::kSpread, soc::kPilot), 1);

  const util::Rational ideal = lis::ideal_mst(system);
  std::cout << "scenario ideal MST " << ideal.to_string() << " ("
            << util::Table::fmt(ideal.to_double()) << "), practical MST "
            << lis::practical_mst(system).to_string() << " ("
            << util::Table::fmt(lis::practical_mst(system).to_double()) << ")\n";

  const lis::Expansion expansion = lis::expand_doubled(system);
  const auto cycles = graph::enumerate_cycles(expansion.graph.structure());

  struct Row {
    std::string blocks;
    util::Rational mean;
  };
  std::vector<Row> rows;
  for (const auto& cycle : cycles.cycles) {
    const util::Rational mean(expansion.graph.cycle_tokens(cycle),
                              static_cast<std::int64_t>(cycle.size()));
    if (mean >= ideal) continue;
    std::string blocks;
    for (const graph::EdgeId p : cycle) {
      const auto t = expansion.graph.producer(p);
      if (expansion.graph.transition_kind(t) == mg::TransitionKind::kShell) {
        if (!blocks.empty()) blocks += ", ";
        blocks += expansion.graph.transition_name(t);
      }
    }
    rows.push_back({std::move(blocks), mean});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.blocks < b.blocks; });

  util::Table table({"cycle (blocks)", "cycle mean", "as decimal"});
  int id = 0;
  for (const Row& row : rows) {
    table.add_row({"C" + std::to_string(++id) + ": (" + row.blocks + ")", row.mean.to_string(),
                   util::Table::fmt(row.mean.to_double())});
  }
  table.print(std::cout);

  core::QsOptions options;
  options.method = core::QsMethod::kBoth;
  const core::QsReport report = core::size_queues(system, options);
  std::cout << "queue-sizing fix: heuristic " << report.heuristic->total_extra_tokens
            << " token(s), exact " << report.exact->total_extra_tokens
            << " token(s); grown queues:";
  for (std::size_t s = 0; s < report.problem.channels.size(); ++s) {
    if (report.exact->weights[s] > 0) {
      const lis::Channel& ch = system.channel(report.problem.channels[s]);
      std::cout << " (" << system.core_name(ch.dst) << ", " << system.core_name(ch.src)
                << ")+" << report.exact->weights[s];
    }
  }
  std::cout << "; achieved MST " << report.achieved_mst.to_string() << "\n";
  bench::footnote("paper: six cycles, five at 0.71 and one at 0.67; fix = +1 on the "
                  "(Pilot, Control) and (FFT_in, Control) backedges");
  return 0;
}
