// Figs. 2/5/6: the two-core running example — backpressure degrades the MST
// to 2/3 (Fig. 5); growing the lower queue to two (Fig. 6) or balancing the
// channel latencies with an extra relay station (Fig. 2, right) restores 1.
// Both the static analysis and the cycle-accurate protocol simulation are
// reported for each variant.
#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const auto periods = static_cast<std::size_t>(cli.get_int("periods", 5000));

  bench::banner("Figs. 2/5/6", "two-core example: degradation and both repairs");

  const auto report = [&](const std::string& name, const lis::LisGraph& system) {
    lis::ProtocolOptions options;
    options.periods = periods;
    options.reference = 1;
    const lis::ProtocolResult sim = simulate_protocol(system, options);
    util::Table table({"variant", "ideal MST", "practical MST", "simulated throughput"});
    table.add_row({name, lis::ideal_mst(system).to_string(),
                   lis::practical_mst(system).to_string(), sim.throughput.to_string()});
    table.print(std::cout);
  };

  report("Fig. 5: q = 1 everywhere", lis::make_two_core_example());
  report("Fig. 6: lower queue grown to 2", lis::make_two_core_example_sized());
  report("Fig. 2 (right): relay station added on lower channel",
         lis::make_two_core_example_balanced());

  // And the queue-sizing pipeline finds the Fig. 6 repair automatically.
  core::QsOptions options;
  options.method = core::QsMethod::kBoth;
  const core::QsReport qs = core::size_queues(lis::make_two_core_example(), options);
  std::cout << "queue sizing: heuristic adds " << qs.heuristic->total_extra_tokens
            << " token(s), exact adds " << qs.exact->total_extra_tokens
            << " token(s), achieved MST " << qs.achieved_mst.to_string() << "\n";
  bench::footnote("paper: MST 2/3 with q=1; both repairs restore MST 1 with one extra unit");
  return 0;
}
