// Table II: classification of LIS topologies and its consequence for fixed
// queue sizing — trees and (networks of) cactus SCCs never degrade with
// q = 1; general topologies do. Measured over freshly generated systems of
// each class.
#include "bench_common.hpp"
#include "core/fixed_qs.hpp"
#include "gen/generator.hpp"
#include "graph/topology.hpp"
#include "lis/lis_graph.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 50));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2024)));

  bench::banner("Table II", "topology classes vs MST degradation at q = 1");

  struct Row {
    std::string name;
    int degraded = 0;
    int total = 0;
  };
  Row rows[3] = {{"tree", 0, 0},
                 {"SCC with no reconvergent paths", 0, 0},
                 {"general network of SCCs", 0, 0}};

  for (int t = 0; t < trials; ++t) {
    // Tree.
    {
      const lis::LisGraph tree =
          gen::generate_tree(rng.uniform_int(5, 30), rng.uniform_int(1, 8), rng);
      rows[0].total += 1;
      if (lis::practical_mst(tree) < lis::ideal_mst(tree)) rows[0].degraded += 1;
    }
    // Cactus SCC.
    {
      const lis::LisGraph cactus = gen::generate_cactus(
          rng.uniform_int(1, 5), rng.uniform_int(2, 6), rng.uniform_int(1, 6), rng);
      rows[1].total += 1;
      if (lis::practical_mst(cactus) < lis::ideal_mst(cactus)) rows[1].degraded += 1;
    }
    // General (the paper's generator with reconvergent paths, scc policy).
    {
      gen::GeneratorParams params;
      params.vertices = rng.uniform_int(10, 30);
      params.sccs = rng.uniform_int(2, 5);
      params.min_cycles = rng.uniform_int(1, 4);
      params.relay_stations = rng.uniform_int(2, 8);
      params.reconvergent = true;
      params.policy = gen::RsPolicy::kScc;
      const lis::LisGraph general = gen::generate(params, rng);
      rows[2].total += 1;
      if (lis::practical_mst(general) < lis::ideal_mst(general)) rows[2].degraded += 1;
    }
  }

  util::Table table({"topology", "degraded at q=1", "trials", "per Table II"});
  table.add_row({rows[0].name, std::to_string(rows[0].degraded), std::to_string(rows[0].total),
                 "never degrades"});
  table.add_row({rows[1].name, std::to_string(rows[1].degraded), std::to_string(rows[1].total),
                 "never degrades"});
  table.add_row({rows[2].name, std::to_string(rows[2].degraded), std::to_string(rows[2].total),
                 "fixed QS not guaranteed"});
  table.print(std::cout);
  bench::footnote("paper: first two classes provably keep the ideal MST with q = 1 (Sec. IV)");
  return 0;
}
