// Table II: classification of LIS topologies and its consequence for fixed
// queue sizing — trees and (networks of) cactus SCCs never degrade with
// q = 1; general topologies do. Measured over freshly generated systems of
// each class, analyzed through the batch engine (`--threads N` sizes the
// pool; `--metrics` prints the engine's stage table afterwards).
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "gen/generator.hpp"
#include "lid_api.hpp"
#include "lis/lis_graph.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 50));
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  const bool metrics = cli.get_bool("metrics", false);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2024)));

  bench::banner("Table II", "topology classes vs MST degradation at q = 1");

  struct Row {
    std::string name;
    std::vector<Instance> instances;
    int degraded = 0;
  };
  Row rows[3] = {{"tree", {}, 0},
                 {"SCC with no reconvergent paths", {}, 0},
                 {"general network of SCCs", {}, 0}};

  // Same generation order (and thus the same systems per seed) as the
  // original serial sweep; analysis is deferred to the engine.
  for (int t = 0; t < trials; ++t) {
    rows[0].instances.push_back(Instance::wrap(
        gen::generate_tree(rng.uniform_int(5, 30), rng.uniform_int(1, 8), rng)));
    rows[1].instances.push_back(Instance::wrap(gen::generate_cactus(
        rng.uniform_int(1, 5), rng.uniform_int(2, 6), rng.uniform_int(1, 6), rng)));
    gen::GeneratorParams params;
    params.vertices = rng.uniform_int(10, 30);
    params.sccs = rng.uniform_int(2, 5);
    params.min_cycles = rng.uniform_int(1, 4);
    params.relay_stations = rng.uniform_int(2, 8);
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    rows[2].instances.push_back(Instance::wrap(gen::generate(params, rng)));
  }

  engine::EngineOptions options;
  options.threads = threads;
  options.analyses = *engine::parse_analyses("mst-ideal,mst-practical");
  const engine::BatchEngine batch_engine(options);
  engine::Metrics total;
  for (Row& row : rows) {
    const engine::BatchResult batch = batch_engine.run(row.instances);
    for (const engine::InstanceResult& r : batch.results) {
      if (!r.error.empty()) {
        std::cerr << "analysis failed: " << r.error << "\n";
        return 1;
      }
      if (*r.theta_practical < *r.theta_ideal) row.degraded += 1;
    }
    total.merge(batch.metrics);
  }

  util::Table table({"topology", "degraded at q=1", "trials", "per Table II"});
  table.add_row({rows[0].name, std::to_string(rows[0].degraded),
                 std::to_string(rows[0].instances.size()), "never degrades"});
  table.add_row({rows[1].name, std::to_string(rows[1].degraded),
                 std::to_string(rows[1].instances.size()), "never degrades"});
  table.add_row({rows[2].name, std::to_string(rows[2].degraded),
                 std::to_string(rows[2].instances.size()), "fixed QS not guaranteed"});
  table.print(std::cout);
  bench::footnote("paper: first two classes provably keep the ideal MST with q = 1 (Sec. IV)");
  if (metrics) total.print(std::cout);
  return 0;
}
