// Micro-benchmarks: the queue-sizing solvers (TD heuristic and exact
// branch-and-bound) on instances built from generated systems.
#include <benchmark/benchmark.h>

#include "core/exact.hpp"
#include "core/heuristic.hpp"
#include "core/qs_problem.hpp"
#include "core/token_deficit.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace lid;

core::QsProblem make_problem(int vertices, int sccs, std::uint64_t seed) {
  util::Rng rng(seed);
  gen::GeneratorParams params;
  params.vertices = vertices;
  params.sccs = sccs;
  params.min_cycles = 2;
  params.relay_stations = 10;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  return core::build_qs_problem(gen::generate(params, rng));
}

void BM_BuildQsProblem(benchmark::State& state) {
  util::Rng rng(45);
  gen::GeneratorParams params;
  params.vertices = static_cast<int>(state.range(0));
  params.sccs = 10;
  params.min_cycles = 2;
  params.relay_stations = 10;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  const lis::LisGraph system = gen::generate(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_qs_problem(system));
  }
}
BENCHMARK(BM_BuildQsProblem)->Arg(50)->Arg(100)->Arg(200);

void BM_Heuristic(benchmark::State& state) {
  const core::QsProblem problem = make_problem(static_cast<int>(state.range(0)), 10, 46);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_heuristic(problem.td));
  }
  state.counters["cycles"] = static_cast<double>(problem.td.num_cycles());
}
BENCHMARK(BM_Heuristic)->Arg(50)->Arg(100)->Arg(200);

void BM_Simplify(benchmark::State& state) {
  const core::QsProblem problem = make_problem(static_cast<int>(state.range(0)), 10, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simplify(problem.td));
  }
}
BENCHMARK(BM_Simplify)->Arg(50)->Arg(100)->Arg(200);

void BM_Exact(benchmark::State& state) {
  const core::QsProblem problem = make_problem(static_cast<int>(state.range(0)), 10, 48);
  const core::TdSolution upper = core::solve_heuristic(problem.td);
  core::ExactOptions options;
  options.timeout_ms = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_exact(problem.td, upper, options));
  }
}
BENCHMARK(BM_Exact)->Arg(50)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
