// Micro-benchmarks: the queue-sizing solvers (TD heuristic and exact
// branch-and-bound) on instances built from generated systems, plus the
// batch engine running the full analysis stack over an instance pool at
// varying thread counts.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/exact.hpp"
#include "core/heuristic.hpp"
#include "core/qs_problem.hpp"
#include "core/token_deficit.hpp"
#include "engine/analysis_cache.hpp"
#include "engine/engine.hpp"
#include "gen/generator.hpp"
#include "lid_api.hpp"
#include "util/rng.hpp"

namespace {

using namespace lid;

core::QsProblem make_problem(int vertices, int sccs, std::uint64_t seed) {
  util::Rng rng(seed);
  gen::GeneratorParams params;
  params.vertices = vertices;
  params.sccs = sccs;
  params.min_cycles = 2;
  params.relay_stations = 10;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  return core::build_qs_problem(gen::generate(params, rng));
}

void BM_BuildQsProblem(benchmark::State& state) {
  util::Rng rng(45);
  gen::GeneratorParams params;
  params.vertices = static_cast<int>(state.range(0));
  params.sccs = 10;
  params.min_cycles = 2;
  params.relay_stations = 10;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  const lis::LisGraph system = gen::generate(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_qs_problem(system));
  }
}
BENCHMARK(BM_BuildQsProblem)->Arg(50)->Arg(100)->Arg(200);

void BM_Heuristic(benchmark::State& state) {
  const core::QsProblem problem = make_problem(static_cast<int>(state.range(0)), 10, 46);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_heuristic(problem.td));
  }
  state.counters["cycles"] = static_cast<double>(problem.td.num_cycles());
}
BENCHMARK(BM_Heuristic)->Arg(50)->Arg(100)->Arg(200);

void BM_Simplify(benchmark::State& state) {
  const core::QsProblem problem = make_problem(static_cast<int>(state.range(0)), 10, 47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simplify(problem.td));
  }
}
BENCHMARK(BM_Simplify)->Arg(50)->Arg(100)->Arg(200);

void BM_Exact(benchmark::State& state) {
  const core::QsProblem problem = make_problem(static_cast<int>(state.range(0)), 10, 48);
  const core::TdSolution upper = core::solve_heuristic(problem.td);
  core::ExactOptions options;
  options.timeout_ms = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_exact(problem.td, upper, options));
  }
}
BENCHMARK(BM_Exact)->Arg(50)->Arg(100);

// A fixed pool of medium instances for the engine benchmarks: the same pool
// for every thread count, so the runs are directly comparable.
const std::vector<Instance>& instance_pool() {
  static const std::vector<Instance> pool = [] {
    std::vector<Instance> instances;
    util::Rng seeder(2024);
    for (int i = 0; i < 24; ++i) {
      GenerateOptions options;
      options.cores = 30 + 5 * (i % 4);
      options.sccs = 3 + i % 3;
      options.extra_cycles = 1 + i % 3;
      options.relay_stations = 6;
      options.seed = seeder.fork_seed();
      instances.push_back(lid::generate(options).value());
    }
    return instances;
  }();
  return pool;
}

// The batch engine over the pool at 1/2/4/8 threads, full analysis stack
// minus the exact solver (whose budgeted search would dominate the timing).
// UseRealTime: wall clock is the quantity the thread pool improves. On a
// single-CPU host the thread counts time within noise of each other — the
// speedup shows only where the OS grants the process multiple cores.
void BM_EngineBatch(benchmark::State& state) {
  engine::EngineOptions options;
  options.threads = static_cast<int>(state.range(0));
  options.analyses = *engine::parse_analyses("mst-ideal,mst-practical,qs-heuristic,rate-safety");
  const engine::BatchEngine engine(options);
  const std::vector<Instance>& pool = instance_pool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(pool));
  }
  state.counters["instances"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The AnalysisCache payoff: the stacked pipeline (both MSTs + the QS
// problem) with one cache vs re-deriving every intermediate from scratch.
void BM_StackedAnalysesCached(benchmark::State& state) {
  const lis::LisGraph& system = instance_pool()[0].graph();
  for (auto _ : state) {
    engine::AnalysisCache cache(system);
    benchmark::DoNotOptimize(cache.theta_ideal());
    benchmark::DoNotOptimize(cache.theta_practical());
    benchmark::DoNotOptimize(cache.qs_problem());
  }
}
BENCHMARK(BM_StackedAnalysesCached);

void BM_StackedAnalysesUncached(benchmark::State& state) {
  const lis::LisGraph& system = instance_pool()[0].graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::ideal_mst(system));
    benchmark::DoNotOptimize(lis::practical_mst(system));
    benchmark::DoNotOptimize(core::build_qs_problem(system));
  }
}
BENCHMARK(BM_StackedAnalysesUncached);

}  // namespace

BENCHMARK_MAIN();
