// Fig. 15 / Sec. VI: the counterexample where relay-station insertion alone
// cannot recover the ideal MST. Exhaustive search over every distribution of
// up to --max-rs extra relay stations confirms that the best reachable
// practical MST stays below the original ideal of 5/6, while queue sizing
// recovers it with finitely many tokens.
#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "core/rs_insertion.hpp"
#include "lis/paper_systems.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int max_rs = static_cast<int>(cli.get_int("max-rs", 4));

  bench::banner("Fig. 15", "relay-station insertion cannot always repair the MST");

  const lis::LisGraph system = lis::make_fig15_counterexample();
  std::cout << "ideal MST θ(G) = " << lis::ideal_mst(system).to_string()
            << ", practical MST θ(d[G]) = " << lis::practical_mst(system).to_string() << "\n";

  util::Table table({"repair", "budget", "configs tried", "best practical MST", "reaches 5/6?"});
  for (int budget = 1; budget <= max_rs; ++budget) {
    const core::RsInsertionResult r = core::exhaustive_rs_insertion(system, budget);
    table.add_row({"relay-station insertion (exhaustive)", std::to_string(budget),
                   std::to_string(r.configurations_tried), r.best_practical.to_string(),
                   r.reached_ideal ? "yes" : "no"});
  }
  const core::RsInsertionResult greedy = core::greedy_rs_insertion(system, max_rs);
  table.add_row({"relay-station insertion (greedy)", std::to_string(max_rs),
                 std::to_string(greedy.configurations_tried), greedy.best_practical.to_string(),
                 greedy.reached_ideal ? "yes" : "no"});

  core::QsOptions options;
  options.method = core::QsMethod::kExact;
  const core::QsReport qs = core::size_queues(system, options);
  table.add_row({"queue sizing (exact)", std::to_string(qs.exact->total_extra_tokens) + " tokens",
                 "-", qs.achieved_mst.to_string(), qs.achieved_mst >= lis::ideal_mst(system) ? "yes" : "no"});
  table.print(std::cout);
  bench::footnote("paper: inserting on (A,C) or (C,E) lowers the ideal MST itself; QS succeeds");
  return 0;
}
