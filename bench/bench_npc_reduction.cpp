// Sec. V validation: the vertex-cover → queue-sizing reduction, checked
// computationally. For random small VC instances, the minimum extra tokens
// restoring the reduced LIS's ideal MST of 5/6 must equal the minimum vertex
// cover — the crux of the NP-completeness proof.
#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "npc/vc_reduction.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 12));
  const int max_vertices = static_cast<int>(cli.get_int("max-vertices", 6));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));

  bench::banner("Sec. V", "vertex-cover -> queue-sizing reduction validation");

  util::Table table({"VC instance", "min cover", "optimal QS tokens", "heuristic tokens",
                     "θ(G)", "θ(d[G]) before", "after sizing", "match?"});
  int matches = 0;
  for (int t = 0; t < trials; ++t) {
    const npc::VcInstance vc =
        npc::random_vc(rng.uniform_int(2, max_vertices), 0.5, rng);
    const int cover = npc::min_vertex_cover(vc);
    const npc::QsReduction red = npc::reduce_vc_to_qs(vc);

    core::QsOptions options;
    options.method = core::QsMethod::kBoth;
    options.exact.timeout_ms = 30000;
    const core::QsReport report = core::size_queues(red.lis, options);
    const bool match =
        report.exact->finished && report.exact->total_extra_tokens == cover;
    matches += match ? 1 : 0;
    table.add_row({
        "n=" + std::to_string(vc.vertices) + " m=" + std::to_string(vc.edges.size()),
        std::to_string(cover),
        std::to_string(report.exact->total_extra_tokens),
        std::to_string(report.heuristic->total_extra_tokens),
        report.problem.theta_ideal.to_string(),
        report.problem.theta_practical.to_string(),
        report.achieved_mst.to_string(),
        match ? "yes" : "NO",
    });
  }
  table.print(std::cout);
  std::cout << matches << "/" << trials << " instances: optimal QS tokens == min vertex cover\n";
  bench::footnote("the equality is the reduction of the paper's NP-completeness proof (Sec. V)");
  return matches == trials ? 0 : 1;
}
