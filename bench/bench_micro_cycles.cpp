// Micro-benchmarks: elementary-cycle enumeration (the dominant cost of the
// queue-sizing front end — the paper reports 0.22 s below 1000 cycles and
// ~3 s between 1000 and 10000 cycles on 2008 hardware).
#include <benchmark/benchmark.h>

#include "gen/generator.hpp"
#include "graph/cycles.hpp"
#include "lis/lis_graph.hpp"
#include "soc/cofdm.hpp"
#include "util/rng.hpp"

namespace {

using namespace lid;

void BM_EnumerateDoubledCycles(benchmark::State& state) {
  util::Rng rng(44);
  gen::GeneratorParams params;
  params.vertices = static_cast<int>(state.range(0));
  params.sccs = 4;
  params.min_cycles = 2;
  params.relay_stations = 8;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  const lis::Expansion ex = lis::expand_doubled(gen::generate(params, rng));
  std::size_t cycles = 0;
  for (auto _ : state) {
    const auto result = graph::enumerate_cycles(ex.graph.structure(), {200000, nullptr});
    cycles = result.cycles.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_EnumerateDoubledCycles)->Arg(12)->Arg(16)->Arg(20);

void BM_EnumerateCofdmCycles(benchmark::State& state) {
  const lis::Expansion ex = lis::expand_doubled(soc::build_cofdm());
  std::size_t cycles = 0;
  for (auto _ : state) {
    const auto result = graph::enumerate_cycles(ex.graph.structure());
    cycles = result.cycles.size();
    benchmark::DoNotOptimize(result);
  }
  // The paper reports 10.5 s for all cycles of the doubled SoC graph (2008
  // hardware, 2896 cycles); this counter shows our reconstruction's count.
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_EnumerateCofdmCycles);

}  // namespace

BENCHMARK_MAIN();
