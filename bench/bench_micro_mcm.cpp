// Micro-benchmarks: minimum-cycle-mean algorithms (Karp vs Howard) and the
// MST pipeline on generated doubled graphs of growing size.
#include <benchmark/benchmark.h>

#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "mg/mcm.hpp"
#include "util/rng.hpp"

namespace {

using namespace lid;

lis::Expansion doubled_system(int vertices, int sccs) {
  util::Rng rng(42);
  gen::GeneratorParams params;
  params.vertices = vertices;
  params.sccs = sccs;
  params.min_cycles = 3;
  params.relay_stations = 10;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  return lis::expand_doubled(gen::generate(params, rng));
}

void BM_KarpMcm(benchmark::State& state) {
  const lis::Expansion ex = doubled_system(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mg::min_cycle_mean_karp(ex.graph));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KarpMcm)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Complexity();

void BM_HowardMcm(benchmark::State& state) {
  const lis::Expansion ex = doubled_system(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mg::min_cycle_mean_howard(ex.graph));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HowardMcm)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Complexity();

// Warm-start payoff: the lazy queue-sizing loop re-solves MCM after every
// marking change. Cold re-solves pay the full policy iteration each time;
// a persistent mg::Workspace restarts from the previous policy. Both
// variants apply the identical perturbation sequence (add then remove one
// token on a rotating place) so the solved markings match exactly.
void perturb_marking(mg::MarkedGraph& work, std::size_t round) {
  const auto victim = static_cast<mg::PlaceId>((round / 2) % work.num_places());
  const std::int64_t delta = round % 2 == 0 ? 1 : -1;
  work.set_tokens(victim, work.tokens(victim) + delta);
}

void BM_HowardMcmColdPerturbed(benchmark::State& state) {
  mg::MarkedGraph work = doubled_system(static_cast<int>(state.range(0)), 5).graph;
  std::size_t round = 0;
  for (auto _ : state) {
    perturb_marking(work, round++);
    benchmark::DoNotOptimize(mg::min_cycle_mean_howard(work));
  }
}
BENCHMARK(BM_HowardMcmColdPerturbed)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_HowardMcmWarmPerturbed(benchmark::State& state) {
  mg::MarkedGraph work = doubled_system(static_cast<int>(state.range(0)), 5).graph;
  mg::Workspace workspace;
  mg::MeanCycle out;
  std::size_t round = 0;
  for (auto _ : state) {
    perturb_marking(work, round++);
    benchmark::DoNotOptimize(mg::min_cycle_mean_howard(work, workspace, out));
  }
  state.counters["warm_restarts"] =
      static_cast<double>(workspace.stats().warm_restarts);
}
BENCHMARK(BM_HowardMcmWarmPerturbed)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_PracticalMst(benchmark::State& state) {
  util::Rng rng(43);
  gen::GeneratorParams params;
  params.vertices = static_cast<int>(state.range(0));
  params.sccs = 5;
  params.min_cycles = 3;
  params.relay_stations = 10;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  const lis::LisGraph system = gen::generate(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::practical_mst(system));
  }
}
BENCHMARK(BM_PracticalMst)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
