// Micro-benchmarks: minimum-cycle-mean algorithms (Karp vs Howard) and the
// MST pipeline on generated doubled graphs of growing size.
#include <benchmark/benchmark.h>

#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"
#include "mg/mcm.hpp"
#include "util/rng.hpp"

namespace {

using namespace lid;

lis::Expansion doubled_system(int vertices, int sccs) {
  util::Rng rng(42);
  gen::GeneratorParams params;
  params.vertices = vertices;
  params.sccs = sccs;
  params.min_cycles = 3;
  params.relay_stations = 10;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  return lis::expand_doubled(gen::generate(params, rng));
}

void BM_KarpMcm(benchmark::State& state) {
  const lis::Expansion ex = doubled_system(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mg::min_cycle_mean_karp(ex.graph));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KarpMcm)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Complexity();

void BM_HowardMcm(benchmark::State& state) {
  const lis::Expansion ex = doubled_system(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mg::min_cycle_mean_howard(ex.graph));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HowardMcm)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Complexity();

void BM_PracticalMst(benchmark::State& state) {
  util::Rng rng(43);
  gen::GeneratorParams params;
  params.vertices = static_cast<int>(state.range(0));
  params.sccs = 5;
  params.min_cycles = 3;
  params.relay_stations = 10;
  params.reconvergent = true;
  params.policy = gen::RsPolicy::kScc;
  const lis::LisGraph system = gen::generate(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::practical_mst(system));
  }
}
BENCHMARK(BM_PracticalMst)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
