// Extension experiment: stochastic environments. Periodic environments
// achieve exactly min(rate, MST); a Bernoulli(p) environment with the same
// average rate loses extra throughput to burstiness (queues empty out during
// droughts and cap out during bursts), and deeper queues claw some of it
// back. Backpressure keeps everything lossless throughout.
#include "bench_common.hpp"
#include "lis/paper_systems.hpp"
#include "lis/protocol_sim.hpp"
#include <memory>

#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const auto periods = static_cast<std::size_t>(cli.get_int("periods", 30000));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 11)));

  bench::banner("Extension", "periodic vs Bernoulli environments at equal average rate");

  lis::LisGraph base = lis::make_two_core_example();  // MST 2/3 (q = 1)

  const auto run = [&](int num, int den, bool stochastic, int extra_queue) {
    lis::LisGraph system = base;
    if (extra_queue > 0) {
      for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(system.num_channels()); ++c) {
        system.set_queue_capacity(c, system.channel(c).queue_capacity + extra_queue);
      }
    }
    lis::ProtocolOptions options;
    options.periods = periods;
    options.reference = 1;
    options.behaviors.resize(system.num_cores());
    if (stochastic) {
      // Each run draws a fresh deterministic stream from the master seed.
      auto gen = std::make_shared<util::Rng>(rng.fork_seed());
      const double p = static_cast<double>(num) / den;
      options.behaviors[0].environment_gate = [gen, p](std::int64_t) {
        return gen->flip(p);
      };
    } else {
      options.behaviors[0].environment_gate = [num, den](std::int64_t t) {
        return (t % den) < num;
      };
    }
    return simulate_protocol(system, options).throughput.to_double();
  };

  util::Table table({"avg environment rate", "periodic (q=1)", "Bernoulli (q=1)",
                     "Bernoulli (q=5)", "Bernoulli (q=13)"});
  const std::pair<int, int> rates[] = {{1, 2}, {3, 5}, {2, 3}, {4, 5}, {1, 1}};
  for (const auto& [num, den] : rates) {
    table.add_row({util::Table::fmt(static_cast<double>(num) / den),
                   util::Table::fmt(run(num, den, false, 0), 3),
                   util::Table::fmt(run(num, den, true, 0), 3),
                   util::Table::fmt(run(num, den, true, 4), 3),
                   util::Table::fmt(run(num, den, true, 12), 3)});
  }
  table.print(std::cout);
  bench::footnote(
      "three effects on display: (1) at q = 1 burstiness costs throughput whenever a "
      "refused offer is lost; (2) deep queues repair the structural 2/3 degradation AND "
      "absorb bursts, so Bernoulli tracks its offered rate; (3) a periodic pattern "
      "misaligned with the system's natural period can even underperform its average "
      "(the 0.60 row) — only backpressure adapts to all of these (Sec. II)");
  return 0;
}
