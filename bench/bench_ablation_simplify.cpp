// Ablation: the Sec. VII-A simplification machinery, split into its two
// levers — the SCC-collapse fast path (simplification 4, applied while
// building the instance) and the TD-level reductions (simplifications 2/3
// plus dominated-cycle elimination). Each variant runs on identical
// generated systems; the table reports how many doubled-graph cycles the
// builder enumerates, the front-end time, and the solver results.
//
// The paper's observation: "the class of graphs with the greatest MST
// degradation ... can be simplified with a straightforward optimization" —
// collapsing SCCs shrinks the cycle count by orders of magnitude.
#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "lis/lis_graph.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 15));
  const double timeout_ms = cli.get_double("timeout-ms", 3000.0);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));

  bench::banner("Ablation A1", "SCC collapse and TD reductions (Sec. VII-A)");

  struct Variant {
    const char* name;
    bool collapse;
    bool simplify;
  };
  const Variant variants[] = {
      {"full (collapse + TD reductions)", true, true},
      {"no TD reductions", true, false},
      {"no SCC collapse", false, true},
      {"neither", false, false},
  };

  std::vector<lis::LisGraph> systems;
  for (int t = 0; t < trials; ++t) {
    gen::GeneratorParams params;
    params.vertices = static_cast<int>(cli.get_int("v", 100));
    params.sccs = static_cast<int>(cli.get_int("s", 20));
    params.min_cycles = static_cast<int>(cli.get_int("c", 1));
    params.relay_stations = static_cast<int>(cli.get_int("rs", 10));
    params.reconvergent = true;
    params.policy = gen::RsPolicy::kScc;
    systems.push_back(gen::generate(params, rng));
  }

  util::Table table({"variant", "cycles enumerated", "build ms", "exact tokens", "exact ms",
                     "timeouts", "heuristic tokens", "heuristic ms"});
  for (const Variant& variant : variants) {
    std::vector<double> cycles, build_ms, exact_tokens, exact_cpu, heur_tokens, heur_cpu;
    int timeouts = 0;
    for (const lis::LisGraph& system : systems) {
      core::QsOptions options;
      options.method = core::QsMethod::kBoth;
      options.build.allow_scc_collapse = variant.collapse;
      options.simplify = variant.simplify;
      options.exact.timeout_ms = timeout_ms;

      util::Timer build_timer;
      const core::QsProblem probe = core::build_qs_problem(system, options.build);
      build_ms.push_back(build_timer.elapsed_ms());
      cycles.push_back(static_cast<double>(probe.cycles_enumerated));

      const core::QsReport report = core::size_queues(system, options);
      heur_tokens.push_back(static_cast<double>(report.heuristic->total_extra_tokens));
      heur_cpu.push_back(report.heuristic->cpu_ms);
      if (report.exact->finished) {
        exact_tokens.push_back(static_cast<double>(report.exact->total_extra_tokens));
        exact_cpu.push_back(report.exact->cpu_ms);
      } else {
        ++timeouts;
      }
    }
    table.add_row({variant.name, util::Table::fmt(util::mean(cycles)),
                   util::Table::fmt(util::mean(build_ms), 2),
                   exact_tokens.empty() ? "-" : util::Table::fmt(util::mean(exact_tokens)),
                   exact_cpu.empty() ? "-" : util::Table::fmt(util::mean(exact_cpu), 3),
                   std::to_string(timeouts), util::Table::fmt(util::mean(heur_tokens)),
                   util::Table::fmt(util::mean(heur_cpu), 3)});
  }
  table.print(std::cout);
  bench::footnote("token totals agree across variants; collapse shrinks the cycle count and "
                  "the front-end/back-end times");
  return 0;
}
