// Table IV: how good are the solutions returned by the heuristic algorithm?
//
// Four generator configurations (SCCs connected with reconvergent paths, ten
// relay stations inserted only between SCCs), --trials random systems each.
// Reported per configuration, as in the paper: average (V, E), inter-SCC
// edge and cycle counts, average exact and heuristic solution sizes over the
// trials where the exact search finished within the timeout, the fraction
// that finished, and — for the unfinished ones — their cycle counts and
// heuristic solutions.
//
// The paper used a 1-hour timeout on a 2008 Intel Quad; the default here is
// 3 s (override with --timeout-ms) so the whole bench suite stays fast.
#include "bench_common.hpp"
#include "core/queue_sizing.hpp"
#include "gen/generator.hpp"
#include "graph/scc.hpp"
#include "lis/lis_graph.hpp"

int main(int argc, char** argv) {
  using namespace lid;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 50));
  const double timeout_ms = cli.get_double("timeout-ms", 3000.0);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 4)));

  bench::banner("Table IV", "exact vs heuristic queue sizing on generated systems");

  struct Config {
    int v, s, c;
  };
  // c chosen to land on the paper's average edge counts: (50,82), (100,122),
  // (100,144.7), (200,222).
  const Config configs[] = {{50, 10, 2}, {100, 10, 1}, {100, 20, 1}, {200, 10, 1}};

  util::Table table({"(V,E)", "#SCC", "#Edges(inter)", "Cycles(inter)", "RS", "Exact",
                     "Heuristic", "%Exact finished", "#Cycles unfinished", "Heur. (no exact)"});

  for (const Config& cfg : configs) {
    double edges = 0.0;
    double inter_edges = 0.0;
    double inter_cycles = 0.0;
    std::vector<double> exact_solutions;
    std::vector<double> heuristic_solutions;
    std::vector<double> unfinished_cycles;
    std::vector<double> unfinished_heuristic;
    int finished = 0;

    for (int t = 0; t < trials; ++t) {
      gen::GeneratorParams params;
      params.vertices = cfg.v;
      params.sccs = cfg.s;
      params.min_cycles = cfg.c;
      params.relay_stations = 10;
      params.reconvergent = true;
      params.policy = gen::RsPolicy::kScc;
      const lis::LisGraph system = gen::generate(params, rng);
      edges += static_cast<double>(system.num_channels());
      inter_edges += static_cast<double>(graph::condense(system.structure()).dag.num_edges());

      core::QsOptions options;
      options.method = core::QsMethod::kBoth;
      options.exact.timeout_ms = timeout_ms;
      const core::QsReport report = core::size_queues(system, options);
      // "Cycles (inter-SCC)" counts the cycles of the collapsed doubled
      // graph, which is exactly what the builder enumerates here.
      inter_cycles += static_cast<double>(report.problem.cycles_enumerated);

      if (report.exact->finished) {
        ++finished;
        exact_solutions.push_back(static_cast<double>(report.exact->total_extra_tokens));
        heuristic_solutions.push_back(static_cast<double>(report.heuristic->total_extra_tokens));
      } else {
        unfinished_cycles.push_back(static_cast<double>(report.problem.cycles_enumerated));
        unfinished_heuristic.push_back(static_cast<double>(report.heuristic->total_extra_tokens));
      }
    }

    table.add_row({
        "(" + std::to_string(cfg.v) + "," + util::Table::fmt(edges / trials) + ")",
        std::to_string(cfg.s),
        util::Table::fmt(inter_edges / trials),
        util::Table::fmt(inter_cycles / trials),
        "10",
        exact_solutions.empty() ? "-" : util::Table::fmt(util::mean(exact_solutions)),
        heuristic_solutions.empty() ? "-" : util::Table::fmt(util::mean(heuristic_solutions)),
        util::Table::fmt(static_cast<double>(finished) / trials),
        unfinished_cycles.empty() ? "-" : util::Table::fmt(util::mean(unfinished_cycles)),
        unfinished_heuristic.empty() ? "-" : util::Table::fmt(util::mean(unfinished_heuristic)),
    });
  }
  table.print(std::cout);
  bench::footnote("paper (1 h timeout): exact 3.2-3.8, heuristic within 8%, 56-98% finished");
  return 0;
}
