# Renders Fig. 16 / Fig. 17 from the CSVs produced by run_experiments.sh.
#   gnuplot -e "outdir='results'" scripts/plot_figs.gp
if (!exists("outdir")) outdir = "results"
set datafile separator ","
set key bottom right
set xlabel "uniform queue size q"
set grid

set terminal svg size 720,480
set output sprintf("%s/fig16.svg", outdir)
set ylabel "average MST"
set yrange [0:1.05]
set title "Fig. 16 — MST with infinite vs finite queues (v=50 s=5 c=5 rp=1 rs=10)"
plot sprintf("%s/fig16.csv", outdir) using 1:2 with linespoints title "scc: infinite", \
     '' using 1:3 with linespoints title "scc: finite", \
     '' using 1:4 with linespoints title "any: infinite", \
     '' using 1:5 with linespoints title "any: finite"

set output sprintf("%s/fig17.svg", outdir)
set ylabel "fraction of ideal MST"
set title "Fig. 17 — fixed queue sizing (scc insertion)"
plot for [col=2:4] sprintf("%s/fig17.csv", outdir) using 1:col with linespoints \
     title columnheader(col)
