#!/usr/bin/env bash
# CI guard: cycle enumeration must never creep back onto a default path.
#
# The default analyze / size-queues / lint paths are enumeration-free: the
# lazy sizing solver, Howard's MCM, graph::find_cycle (single O(V+E) DFS)
# and the certificate checker cover everything they need. Johnson-style
# elementary-cycle enumeration (graph::enumerate_cycles / for_each_cycle)
# is exponential on dense netlists and is allowed only at the explicit
# opt-in sites below.
#
# If this script fails, either the new call site must be rewritten against
# graph::find_cycle / mg::mcm_evidence, or — when it is a genuinely new
# opt-in verb — added to the allowlist together with a comment at the call
# site explaining why enumeration is acceptable there.
set -euo pipefail

cd "$(dirname "$0")/.."

# Files allowed to mention enumerate_cycles / for_each_cycle:
#   graph/cycles.*        the definitions themselves
#   core/qs_problem.cpp   eager constraint builder (opt-in: Solver::kBoth /
#                         kExact / kHeuristic, never the kLazy default)
#   core/pareto.cpp       Pareto frontier (explicit `pareto` verb only)
ALLOWLIST='^src/(graph/cycles\.(hpp|cpp)|core/qs_problem\.cpp|core/pareto\.cpp)$'

violations=0
while IFS= read -r file; do
  if [[ ! "$file" =~ $ALLOWLIST ]]; then
    echo "error: cycle enumeration call in non-allowlisted file: $file" >&2
    grep -nE 'enumerate_cycles|for_each_cycle' "$file" >&2 || true
    violations=1
  fi
done < <(grep -rlE 'enumerate_cycles|for_each_cycle' src --include='*.cpp' --include='*.hpp' || true)

if [[ "$violations" -ne 0 ]]; then
  echo "" >&2
  echo "Default paths must stay enumeration-free (see docs/lint.md)." >&2
  exit 1
fi
echo "ok: cycle enumeration confined to allowlisted opt-in sites"
