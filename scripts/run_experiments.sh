#!/usr/bin/env bash
# Runs the full experiment suite at paper scale (50 trials, long timeouts)
# and collects CSVs for plotting. Expects an existing build/ directory.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-results}
mkdir -p "$OUT"

echo "== figures (CSV into $OUT) =="
./build/bench/bench_fig16_mst_degradation --trials 50 --csv "$OUT/fig16.csv"
./build/bench/bench_fig17_fixed_qs --trials 50 --csv "$OUT/fig17.csv"

echo "== tables =="
./build/bench/bench_table1_trace
./build/bench/bench_table2_topologies --trials 50
./build/bench/bench_table3_pblocks
./build/bench/bench_table4_exact_vs_heuristic --trials 50 --timeout-ms 60000
./build/bench/bench_table5_cofdm --timeout-ms 60000
./build/bench/bench_table6_critical_cycles

echo "== counterexample, reduction, ablations, extensions =="
./build/bench/bench_fig15_counterexample
./build/bench/bench_npc_reduction
./build/bench/bench_ablation_simplify
./build/bench/bench_ablation_heuristic_order
./build/bench/bench_ablation_exact_solvers
./build/bench/bench_ext_open_system
./build/bench/bench_ext_scheduling
./build/bench/bench_ext_storage
./build/bench/bench_ext_pareto

if command -v gnuplot >/dev/null 2>&1; then
  echo "== plots =="
  gnuplot -e "outdir='$OUT'" scripts/plot_figs.gp
  echo "wrote $OUT/fig16.svg and $OUT/fig17.svg"
fi
