#!/usr/bin/env bash
# Smoke-mode micro-benchmark sweep: runs every pure-CPU google-benchmark
# suite with a short min-time and merges the results into one JSON artifact
# mapping bench name -> ns/op. Record only — no thresholds; CI uploads the
# artifact so regressions show up as trends across runs. The bench_serve
# round-trip lane (inline vs registered-model RTTs over a Unix socket) is
# included by default; set SERVE_BENCHES=0 on runners that cannot create
# sockets. Override BUILD_DIR / MIN_TIME via the environment; the output
# path is the first argument (default BENCH_PR7.json).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD_DIR:-build}
OUT=${1:-BENCH_PR7.json}
MIN_TIME=${MIN_TIME:-0.01}
SERVE_BENCHES=${SERVE_BENCHES:-1}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

SUITES="bench_micro_mcm bench_micro_cycles bench_micro_qs bench_micro_lazy_qs \
bench_micro_protocol bench_des"

for bench in $SUITES; do
  echo "== $bench =="
  "$BUILD/bench/$bench" --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json > "$TMP/$bench.json"
done

if [ "$SERVE_BENCHES" = "1" ]; then
  echo "== bench_serve (round trips) =="
  "$BUILD/bench/bench_serve" --benchmark_filter=RoundTrip \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json > "$TMP/bench_serve.json"
fi

python3 - "$OUT" "$TMP"/*.json <<'EOF'
import json
import sys

out_path, *files = sys.argv[1:]
merged = {}
for path in files:
    with open(path) as f:
        doc = json.load(f)
    for bench in doc.get("benchmarks", []):
        if "real_time" not in bench:  # complexity aggregates (_BigO, _RMS)
            continue
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[bench.get("time_unit", "ns")]
        merged[bench["name"]] = round(bench["real_time"] * scale, 1)
with open(out_path, "w") as f:
    json.dump(dict(sorted(merged.items())), f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(merged)} benchmarks)")
EOF
