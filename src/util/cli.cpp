#include "util/cli.hpp"

#include <algorithm>
#include <exception>
#include <ostream>
#include <stdexcept>

namespace lid::util {
namespace {

bool is_flag(const std::string& arg) { return arg.size() > 2 && arg.rfind("--", 0) == 0; }

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      throw std::invalid_argument("Cli: expected --flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; bare `--name`
    // is a boolean set to "true".
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

std::int64_t Cli::get_int_in(const std::string& name, std::int64_t fallback, std::int64_t min,
                             std::int64_t max) const {
  const std::int64_t v = get_int(name, fallback);
  if (v < min || v > max) {
    throw std::invalid_argument("Cli: flag --" + name + " must be in [" + std::to_string(min) +
                                ", " + std::to_string(max) + "], got " + std::to_string(v));
  }
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

double Cli::get_double_in(const std::string& name, double fallback, double min, double max) const {
  const double v = get_double(name, fallback);
  if (v < min || v > max) {
    throw std::invalid_argument("Cli: flag --" + name + " must be in [" + std::to_string(min) +
                                ", " + std::to_string(max) + "], got " + std::to_string(v));
  }
  return v;
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("Cli: flag --" + name + " expects a boolean, got '" + v + "'");
}

namespace {

void print_usage(const std::vector<Command>& commands, const std::string& tool,
                 std::ostream& err) {
  err << "usage: " << tool << " <";
  for (std::size_t i = 0; i < commands.size(); ++i) {
    err << (i == 0 ? "" : "|") << commands[i].name;
  }
  err << "> [--flags]\n";
  for (const Command& command : commands) {
    err << "  " << command.name;
    for (const std::string& alias : command.aliases) err << " (alias: " << alias << ")";
    err << " — " << command.summary << "\n";
  }
}

}  // namespace

int dispatch_commands(int argc, const char* const* argv, const std::vector<Command>& commands,
                      const std::string& tool, std::ostream& err) {
  if (argc < 2) {
    print_usage(commands, tool, err);
    return 1;
  }
  const std::string verb = argv[1];
  for (const Command& command : commands) {
    const bool matches =
        command.name == verb ||
        std::find(command.aliases.begin(), command.aliases.end(), verb) != command.aliases.end();
    if (!matches) continue;
    try {
      const Cli cli(argc - 1, argv + 1);
      return command.run(cli);
    } catch (const std::exception& e) {
      err << tool << " " << command.name << ": " << e.what() << "\n";
      return 1;
    }
  }
  err << tool << ": unknown command '" << verb << "'\n";
  print_usage(commands, tool, err);
  return 1;
}

}  // namespace lid::util
