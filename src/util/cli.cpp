#include "util/cli.hpp"

#include <stdexcept>

namespace lid::util {
namespace {

bool is_flag(const std::string& arg) { return arg.size() > 2 && arg.rfind("--", 0) == 0; }

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      throw std::invalid_argument("Cli: expected --flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; bare `--name`
    // is a boolean set to "true".
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("Cli: flag --" + name + " expects a boolean, got '" + v + "'");
}

}  // namespace lid::util
