#include "util/json.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"

namespace lid::util {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through unescaped
        }
    }
  }
  out.push_back('"');
  return out;
}

// ---------------------------------------------------------------------------
// JsonWriter.

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_.push_back('\n');
  out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (needs_comma_) out_.push_back(',');
  if (depth_ > 0) newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_.push_back('{');
  ++depth_;
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  LID_ASSERT(depth_ > 0, "JsonWriter::end_object without begin");
  const bool had_members = needs_comma_;
  --depth_;
  if (had_members) newline_indent();
  out_.push_back('}');
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_.push_back('[');
  ++depth_;
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  LID_ASSERT(depth_ > 0, "JsonWriter::end_array without begin");
  const bool had_items = needs_comma_;
  --depth_;
  if (had_items) newline_indent();
  out_.push_back(']');
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (needs_comma_) out_.push_back(',');
  newline_indent();
  out_ += json_quote(name);
  out_.push_back(':');
  if (indent_ > 0) out_.push_back(' ');
  needs_comma_ = false;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += json_quote(v);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  before_value();
  out_ += "null";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc()) {
    out_.append(buf, end);
  } else {
    out_ += "0";
  }
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double v, int precision) {
  before_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  out_ += buf;
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  before_value();
  out_ += json;
  needs_comma_ = true;
  return *this;
}

// ---------------------------------------------------------------------------
// Json.

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool(bool fallback) const { return type_ == Type::kBool ? bool_ : fallback; }

std::int64_t Json::as_int(std::int64_t fallback) const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
  return fallback;
}

double Json::as_double(double fallback) const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return fallback;
}

const std::string& Json::as_string() const {
  static const std::string kEmpty;
  return type_ == Type::kString ? string_ : kEmpty;
}

void Json::push(Json v) {
  LID_ASSERT(type_ == Type::kArray, "Json::push on a non-array");
  items_.push_back(std::move(v));
}

const Json& Json::at(std::size_t i) const {
  LID_ASSERT(i < items_.size(), "Json::at out of range");
  return items_[i];
}

Json& Json::set(std::string key, Json v) {
  LID_ASSERT(type_ == Type::kObject, "Json::set on a non-object");
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::dump_to(JsonWriter& w) const {
  switch (type_) {
    case Type::kNull: w.value_null(); break;
    case Type::kBool: w.value(bool_); break;
    case Type::kInt: w.value(int_); break;
    case Type::kDouble: w.value(double_); break;
    case Type::kString: w.value(string_); break;
    case Type::kArray:
      w.begin_array();
      for (const Json& item : items_) item.dump_to(w);
      w.end_array();
      break;
    case Type::kObject:
      w.begin_object();
      for (const auto& [name, value] : members_) {
        w.key(name);
        value.dump_to(w);
      }
      w.end_object();
      break;
  }
}

std::string Json::dump() const {
  JsonWriter w;
  dump_to(w);
  return w.str();
}

// ---------------------------------------------------------------------------
// Parser.

namespace {

class Parser {
 public:
  Parser(const std::string& text, int max_depth) : text_(text), max_depth_(max_depth) {}

  JsonParse run() {
    JsonParse result;
    skip_ws();
    if (!parse_value(result.value, 0)) {
      result.error = error_ + " at byte " + std::to_string(pos_);
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after document at byte " + std::to_string(pos_);
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool parse_value(Json& out, int depth) {
    if (depth > max_depth_) return fail("nesting deeper than " + std::to_string(max_depth_));
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json::string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = Json::boolean(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = Json::boolean(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = Json();
        return true;
      default: return parse_number(out);
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) {
      return fail(std::string("expected '") + word + "'");
    }
    pos_ += n;
    return true;
  }

  bool parse_object(Json& out, int depth) {
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.set(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Json& out, int depth) {
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.push(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
              text_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return fail("invalid low surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("expected a value");
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      std::int64_t v = 0;
      const auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec == std::errc() && ptr == last) {
        out = Json::number(v);
        return true;
      }
      // Overflowed int64: fall through to double.
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) return fail("malformed number");
    out = Json::number(d);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int max_depth_;
  std::string error_;
};

}  // namespace

JsonParse json_parse(const std::string& text, int max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace lid::util
