#include "util/rational.hpp"

#include <cstdlib>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lid::util {
namespace {

using I64 = std::int64_t;
using I128 = __int128;

I64 narrow_checked(I128 v) {
  if (v > static_cast<I128>(INT64_MAX) || v < static_cast<I128>(INT64_MIN)) {
    throw std::overflow_error("Rational: 64-bit overflow");
  }
  return static_cast<I64>(v);
}

}  // namespace

Rational::Rational(I64 num, I64 den) {
  if (den == 0) throw std::invalid_argument("Rational: zero denominator");
  if (num == 0) {
    num_ = 0;
    den_ = 1;
    return;
  }
  if (den < 0) {
    num = -num;
    den = -den;
  }
  const I64 g = std::gcd(num < 0 ? -num : num, den);
  num_ = num / g;
  den_ = den / g;
}

double Rational::to_double() const { return static_cast<double>(num_) / static_cast<double>(den_); }

std::string Rational::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

I64 Rational::ceil() const {
  const I64 q = num_ / den_;
  return (num_ % den_ > 0) ? q + 1 : q;
}

I64 Rational::floor() const {
  const I64 q = num_ / den_;
  return (num_ % den_ < 0) ? q - 1 : q;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = narrow_checked(-static_cast<I128>(num_));
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  const I128 n = static_cast<I128>(num_) * o.den_ + static_cast<I128>(o.num_) * den_;
  const I128 d = static_cast<I128>(den_) * o.den_;
  // Normalize in 128-bit before narrowing so intermediate blowup is tolerated.
  I128 a = n < 0 ? -n : n;
  I128 b = d;
  while (b != 0) {
    const I128 t = a % b;
    a = b;
    b = t;
  }
  const I128 g = (a == 0) ? 1 : a;
  return Rational(narrow_checked(n / g), narrow_checked(d / g));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce first to keep intermediates small.
  const Rational a(num_, o.den_ == 0 ? 1 : o.den_);
  const Rational b(o.num_, den_);
  const I128 n = static_cast<I128>(a.num_) * b.num_;
  const I128 d = static_cast<I128>(a.den_) * b.den_;
  return Rational(narrow_checked(n), narrow_checked(d));
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) throw std::domain_error("Rational: division by zero");
  const Rational inv(o.den_, o.num_);
  return *this * inv;
}

std::strong_ordering Rational::operator<=>(const Rational& o) const {
  const I128 lhs = static_cast<I128>(num_) * o.den_;
  const I128 rhs = static_cast<I128>(o.num_) * den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (r.den() != 1) os << '/' << r.den();
  return os;
}

namespace {

I64 parse_i64(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("Rational: empty number in '" + text + "'");
  std::size_t pos = 0;
  I64 v = 0;
  try {
    v = std::stoll(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("Rational: bad integer '" + text + "'");
  }
  if (pos != text.size()) throw std::invalid_argument("Rational: bad integer '" + text + "'");
  return v;
}

}  // namespace

Rational rational_from_string(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return Rational(parse_i64(text));
  const I64 num = parse_i64(text.substr(0, slash));
  const I64 den = parse_i64(text.substr(slash + 1));
  if (den <= 0) throw std::invalid_argument("Rational: denominator must be positive in '" + text + "'");
  return Rational(num, den);
}

}  // namespace lid::util
