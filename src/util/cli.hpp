// Minimal command-line flag parsing shared by the tools, bench and example
// binaries, plus the verb-subcommand dispatcher used by lid_tool.
//
// Flags use the form `--name value` or `--name=value`. Unknown flags are an
// error so typos in experiment scripts fail loudly instead of silently
// running the default configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace lid::util {

/// Parsed command line. Construct once from main()'s argc/argv, then query.
class Cli {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  /// Integer flag with a default. Throws if present but not an integer.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Integer flag validated against [min, max]. Throws std::invalid_argument
  /// with a message naming the flag and the accepted range when the value is
  /// non-numeric or out of range — the tools use this for counts, budgets
  /// and ports so that `--threads 0` fails loudly instead of misbehaving.
  [[nodiscard]] std::int64_t get_int_in(const std::string& name, std::int64_t fallback,
                                        std::int64_t min, std::int64_t max) const;

  /// Floating-point flag with a default.
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Floating-point flag validated against [min, max]; see get_int_in.
  [[nodiscard]] double get_double_in(const std::string& name, double fallback, double min,
                                     double max) const;

  /// String flag with a default.
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;

  /// Boolean flag: `--name`, `--name true/false`, or `--name=1/0`.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// One verb of a subcommand-style tool (`tool <verb> [--flags]`).
struct Command {
  /// Canonical verb name.
  std::string name;
  /// Legacy spellings that keep old invocations working (e.g. "size-queues"
  /// for "size").
  std::vector<std::string> aliases;
  /// One-line description shown in the usage listing.
  std::string summary;
  /// The verb body; receives the flags after the verb.
  std::function<int(const Cli&)> run;
};

/// Dispatches argv[1] to a command by name or alias, parses the remaining
/// flags, and runs it. Prints a usage listing (to `err`) and returns 1 when
/// the verb is missing or unknown; converts std::exception escaping the verb
/// into a one-line error and exit code 1.
int dispatch_commands(int argc, const char* const* argv, const std::vector<Command>& commands,
                      const std::string& tool, std::ostream& err);

}  // namespace lid::util
