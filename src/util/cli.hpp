// Minimal command-line flag parsing shared by the bench and example binaries.
//
// Flags use the form `--name value` or `--name=value`. Unknown flags are an
// error so typos in experiment scripts fail loudly instead of silently
// running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace lid::util {

/// Parsed command line. Construct once from main()'s argc/argv, then query.
class Cli {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  /// Integer flag with a default. Throws if present but not an integer.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Floating-point flag with a default.
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// String flag with a default.
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;

  /// Boolean flag: `--name`, `--name true/false`, or `--name=1/0`.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] bool has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace lid::util
