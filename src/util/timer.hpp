// Wall-clock timing helpers for the experiment harnesses and the exact
// algorithm's timeout handling.
#pragma once

#include <chrono>

namespace lid::util {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget; `expired()` turns true once the budget has elapsed.
/// A non-positive budget means "no limit".
class Deadline {
 public:
  explicit Deadline(double budget_ms) : budget_ms_(budget_ms) {}

  [[nodiscard]] bool expired() const {
    return budget_ms_ > 0.0 && timer_.elapsed_ms() >= budget_ms_;
  }

  [[nodiscard]] double budget_ms() const { return budget_ms_; }

 private:
  double budget_ms_;
  Timer timer_;
};

}  // namespace lid::util
