// Seeded random-number utilities.
//
// Every stochastic component of this library (the synthetic LIS generator,
// relay-station placement, experiment trials) draws from an explicitly seeded
// Rng so that all experiments in EXPERIMENTS.md are reproducible bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/check.hpp"

namespace lid::util {

/// A thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    LID_ENSURE(lo <= hi, "uniform_int: empty range");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform std::size_t in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n) {
    LID_ENSURE(n > 0, "uniform_index: empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Bernoulli draw with probability p of true.
  bool flip(double p) { return uniform01() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    LID_ENSURE(!v.empty(), "pick: empty vector");
    return v[uniform_index(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derives an independent child seed (e.g. one per trial).
  std::uint64_t fork_seed() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lid::util
