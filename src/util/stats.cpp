#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lid::util {

double mean(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  return std::accumulate(sample.begin(), sample.end(), 0.0) / static_cast<double>(sample.size());
}

Summary summarize(const std::vector<double>& sample) {
  Summary s;
  if (sample.empty()) return s;
  s.count = sample.size();
  s.mean = mean(sample);
  double sq = 0.0;
  for (const double x : sample) sq += (x - s.mean) * (x - s.mean);
  s.stddev = sample.size() > 1 ? std::sqrt(sq / static_cast<double>(sample.size() - 1)) : 0.0;
  const auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
  s.min = *mn;
  s.max = *mx;
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  return s;
}

}  // namespace lid::util
