// Console table rendering for the benchmark harnesses.
//
// Every bench binary prints the same rows the paper's tables/figures report;
// Table keeps the formatting consistent across all of them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lid::util {

/// A simple left/right-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with aligned columns: first column left-aligned, rest right-aligned.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with the given number of decimals.
  static std::string fmt(double value, int decimals = 2);
  static std::string fmt(std::int64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lid::util
