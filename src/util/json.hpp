// Shared JSON support for the whole library: a streaming writer with correct
// string escaping, a small document model, and a strict parser.
//
// The writer replaces the hand-rolled emission that used to live in
// src/engine/metrics.cpp and is the single place JSON leaves this codebase:
// engine metrics dumps, the lid_serve wire protocol, and the load-generator
// reports all go through it, so escaping bugs cannot diverge per call site.
// The parser exists for the serve subsystem's newline-delimited JSON requests
// and deliberately accepts exactly RFC 8259 documents (no comments, no
// trailing commas), with a nesting-depth cap so hostile input cannot blow the
// stack.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace lid::util {

/// `s` as a double-quoted JSON string literal, with all mandatory escapes
/// (quote, backslash, control characters) applied.
std::string json_quote(const std::string& s);

// ---------------------------------------------------------------------------
// JsonWriter — streaming emission.

/// Builds one JSON document incrementally. `indent` = 0 emits the compact
/// wire form (`{"a":1}`), a positive indent emits the pretty form used by the
/// metrics dumps (newlines, `indent` spaces per level, one space after ':').
///
///   JsonWriter w;
///   w.begin_object().key("verb").value("analyze").key("ok").value(true);
///   w.end_object();
///   send(w.str());
class JsonWriter {
 public:
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be followed by a value or begin_*.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value_null();
  /// Shortest round-trip decimal form (std::to_chars).
  JsonWriter& value(double v);
  /// Fixed-point form with `precision` decimals (metrics timings).
  JsonWriter& value_fixed(double v, int precision);
  /// Splices pre-serialized JSON (e.g. a payload built by another writer).
  JsonWriter& raw(const std::string& json);

  /// The document so far. Call after the outermost end_*.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void before_value();
  void newline_indent();

  std::string out_;
  int indent_ = 0;
  int depth_ = 0;
  bool needs_comma_ = false;
  bool after_key_ = false;
};

// ---------------------------------------------------------------------------
// Json — the document model.

/// One parsed JSON value. Integral numbers are kept exactly as int64 so that
/// parse → dump round-trips the serve wire protocol byte-for-byte (payloads
/// avoid floating point for this reason); non-integral numbers fall back to
/// double. Object members preserve insertion order.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  static Json boolean(bool v);
  static Json number(std::int64_t v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }

  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] const std::string& as_string() const;  // "" when not a string

  // Arrays.
  void push(Json v);
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const Json& at(std::size_t i) const;
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }

  // Objects.
  Json& set(std::string key, Json v);
  /// The member named `key`, or nullptr when absent / not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Compact serialization (JsonWriter with indent 0).
  [[nodiscard]] std::string dump() const;

 private:
  void dump_to(JsonWriter& w) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Outcome of json_parse: `ok` plus either the value or a position-annotated
/// error message. (lid::Result lives above util in the layering, so the
/// parser carries its own tiny result type.)
struct JsonParse {
  bool ok = false;
  Json value;
  std::string error;

  explicit operator bool() const { return ok; }
};

/// Parses one complete JSON document; trailing garbage is an error.
/// `max_depth` bounds array/object nesting.
JsonParse json_parse(const std::string& text, int max_depth = 64);

}  // namespace lid::util
