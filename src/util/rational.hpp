// Exact rational arithmetic on 64-bit integers.
//
// All throughput / cycle-mean quantities in this library are ratios of small
// integers (tokens over places). Comparing them in floating point is unsafe
// exactly at the thresholds the paper's theorems live on (e.g. "is this cycle
// mean below 5/6?"), so every analysis runs on Rational and converts to
// double only for reporting.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace lid::util {

/// An always-normalized rational number num/den with den > 0.
///
/// Overflow policy: operations detect signed-64 overflow and throw
/// std::overflow_error. The graphs this library analyzes keep numerators and
/// denominators tiny (bounded by token and place counts), so overflow
/// indicates a usage bug rather than a capacity limit.
class Rational {
 public:
  /// Zero.
  constexpr Rational() = default;

  /// The integer `value`.
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor)

  /// num/den, normalized. Throws std::invalid_argument if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;

  /// Smallest integer >= this value.
  [[nodiscard]] std::int64_t ceil() const;
  /// Largest integer <= this value.
  [[nodiscard]] std::int64_t floor() const;

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Throws std::domain_error when dividing by zero.
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  /// Exact ordering; never overflows (cross-multiplication in 128-bit).
  std::strong_ordering operator<=>(const Rational& o) const;
  bool operator==(const Rational& o) const = default;

  /// min/max by exact comparison.
  static Rational min(const Rational& a, const Rational& b) { return a < b ? a : b; }
  static Rational max(const Rational& a, const Rational& b) { return a > b ? a : b; }

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Parses "N" or "N/D" (optionally signed N; D > 0) into a Rational — the
/// inverse of to_string(), used by CLI flags and wire-protocol arguments.
/// Throws std::invalid_argument on anything else (floats are rejected on
/// purpose: thresholds must stay exact).
Rational rational_from_string(const std::string& text);

}  // namespace lid::util
