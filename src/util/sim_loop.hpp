// Shared stepping scaffolding for the simulators (mg::simulate, des).
//
// Every bounded simulation loop in the library follows the same pattern: run
// up to N steps/batches, polling a cooperative CancelToken at a fixed stride
// so the poll never dominates the per-step work. This helper centralizes the
// stride bookkeeping so all phases of a simulation (warmup and measurement
// alike) poll at the same stride — a warmup loop that forgets to poll would
// make a request's deadline unobservable for the entire warmup.
#pragma once

#include <cstddef>

#include "util/cancel.hpp"

namespace lid::util {

/// Strided cancel polling: `poll()` is cheap on every call and only consults
/// the token once per `stride` calls. One instance should be shared across
/// all loop phases of a simulation so the stride stays uniform end to end.
class StridedPoller {
 public:
  explicit StridedPoller(const CancelToken& token, std::size_t stride = 256)
      : token_(token), stride_(stride == 0 ? 1 : stride) {}

  /// True when the token has fired; checked every `stride`-th call.
  bool poll() {
    if (!token_.can_cancel()) return false;
    if (calls_++ % stride_ != 0) return false;
    return token_.cancelled();
  }

  [[nodiscard]] std::size_t stride() const { return stride_; }

 private:
  const CancelToken& token_;
  std::size_t stride_;
  std::size_t calls_ = 0;
};

}  // namespace lid::util
