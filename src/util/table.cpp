#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace lid::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LID_ENSURE(!header_.empty(), "Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> row) {
  LID_ENSURE(row.size() == header_.size(), "Table: row width must match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      } else {
        os << std::right << std::setw(static_cast<int>(width[c])) << row[c];
      }
    }
    os << " |\n";
  };

  const auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
    }
    os << "-|\n";
  };

  print_row(header_);
  rule();
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string Table::fmt(std::int64_t value) { return std::to_string(value); }

}  // namespace lid::util
