// Lightweight precondition / invariant checking for the lid libraries.
//
// LID_ENSURE is used at public API boundaries: it throws std::invalid_argument
// so callers can recover. LID_ASSERT guards internal invariants and throws
// std::logic_error — if one fires there is a bug in this library.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lid::util {

[[noreturn]] inline void throw_ensure_failure(const char* expr, const char* file, int line,
                                              const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr, const char* file, int line,
                                              const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace lid::util

#define LID_ENSURE(expr, msg)                                                  \
  do {                                                                         \
    if (!(expr)) ::lid::util::throw_ensure_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define LID_ASSERT(expr, msg)                                                  \
  do {                                                                         \
    if (!(expr)) ::lid::util::throw_assert_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
