// Small descriptive-statistics helpers used by the experiment harnesses.
#pragma once

#include <vector>

namespace lid::util {

/// Summary of a sample: count, mean, (sample) standard deviation, extremes.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a Summary over the sample. Empty samples yield all-zero summaries.
Summary summarize(const std::vector<double>& sample);

/// Arithmetic mean (0 for an empty sample).
double mean(const std::vector<double>& sample);

}  // namespace lid::util
