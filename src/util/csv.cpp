#include "util/csv.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace lid::util {
namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  LID_ENSURE(width_ > 0, "CsvWriter: header must be non-empty");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  LID_ENSURE(row.size() == width_, "CsvWriter: row width must match header");
  write_row(row);
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(row[i]);
  }
  out_ << '\n';
  if (!out_) throw std::runtime_error("CsvWriter: write failed");
}

}  // namespace lid::util
