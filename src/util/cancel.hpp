// Cooperative cancellation for long-running solves.
//
// A CancelToken bundles the two ways an in-flight computation can be told to
// stop — a wall-clock deadline and an externally raised cancel flag — behind
// one cheap `cancelled()` poll. Hot loops (the exact token-deficit search,
// cycle enumeration, the marked-graph simulator) check the token at
// iteration boundaries, so a cancelled solve stops within one loop bound of
// the request instead of running to completion while a caller (e.g. a
// lid_serve worker whose request deadline expired) waits helplessly.
//
// Tokens are value types and cheap to copy; the default-constructed token
// never cancels, so APIs can take one unconditionally. A CancelSource owns
// the shared flag and hands out tokens; dropping the source does not cancel
// outstanding tokens.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace lid::util {

class CancelSource;

/// A poll-only view of a cancellation request: an optional deadline, an
/// optional shared flag, or both. Copyable, thread-safe to poll.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never cancels.
  CancelToken() = default;

  /// A token whose deadline is `budget_ms` from now. A non-positive budget
  /// yields an already-expired token (cancels immediately) — distinct from
  /// the default token, which never cancels.
  static CancelToken after_ms(double budget_ms) {
    CancelToken token;
    token.has_deadline_ = true;
    token.deadline_ = budget_ms > 0.0
                          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                               std::chrono::duration<double, std::milli>(budget_ms))
                          : Clock::now();
    return token;
  }

  /// A token that starts reporting cancelled from its `polls`-th cancelled()
  /// call on (earlier polls return false; `polls` <= 1 fires immediately).
  /// Wall-clock-free, so tests can pin a cancellation to an exact point in a
  /// poll-striding solver's execution on any machine. Copies share the
  /// countdown.
  static CancelToken after_polls(std::int64_t polls) {
    CancelToken token;
    token.countdown_ = std::make_shared<std::atomic<std::int64_t>>(polls);
    return token;
  }

  /// True once the deadline passed or the owning CancelSource fired.
  [[nodiscard]] bool cancelled() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) return true;
    if (countdown_ != nullptr &&
        countdown_->fetch_sub(1, std::memory_order_relaxed) <= 1) {
      return true;
    }
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// False for the default token: polling it can never return true, so hot
  /// loops may skip the check entirely.
  [[nodiscard]] bool can_cancel() const {
    return flag_ != nullptr || countdown_ != nullptr || has_deadline_;
  }

  /// Milliseconds until the deadline (negative once past); +infinity when
  /// the token carries no deadline.
  [[nodiscard]] double remaining_ms() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(deadline_ - Clock::now()).count();
  }

 private:
  friend class CancelSource;

  std::shared_ptr<const std::atomic<bool>> flag_;
  std::shared_ptr<std::atomic<std::int64_t>> countdown_;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// Owns the cancel flag and mints tokens observing it. The typical holder is
/// whoever can decide to abandon the work (a server draining, a caller
/// losing interest); workers only ever see CancelTokens.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Flips every outstanding token to cancelled. Idempotent, thread-safe.
  void cancel() { flag_->store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }

  /// A token observing this source; `budget_ms` > 0 additionally arms a
  /// deadline that far in the future.
  [[nodiscard]] CancelToken token(double budget_ms = 0.0) const {
    CancelToken t = budget_ms > 0.0 ? CancelToken::after_ms(budget_ms) : CancelToken();
    t.flag_ = flag_;
    return t;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace lid::util
