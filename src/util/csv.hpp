// CSV emission so experiment outputs can be post-processed (plotting the
// paper's figures) without re-running the harness.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace lid::util {

/// Streams rows to a CSV file; quoting is applied when a cell needs it.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header. Throws on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; must match the header width.
  void add_row(const std::vector<std::string>& row);

 private:
  void write_row(const std::vector<std::string>& row);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace lid::util
