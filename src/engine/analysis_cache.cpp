#include "engine/analysis_cache.hpp"

#include "mg/mcm.hpp"

namespace lid::engine {
namespace {

bool same_build_options(const core::QsBuildOptions& a, const core::QsBuildOptions& b) {
  return a.max_cycles == b.max_cycles && a.allow_scc_collapse == b.allow_scc_collapse &&
         a.target_mst == b.target_mst;
}

}  // namespace

AnalysisCache::AnalysisCache(const lis::LisGraph& lis, Metrics* metrics)
    : lis_(lis), metrics_(metrics) {}

bool AnalysisCache::note(bool hit) {
  (hit ? hits_ : misses_) += 1;
  if (metrics_ != nullptr) metrics_->count(hit ? "cache.hits" : "cache.misses");
  return hit;
}

const lis::Expansion& AnalysisCache::ideal() {
  if (!note(ideal_.has_value())) {
    std::optional<Metrics::ScopedStage> stage;
    if (metrics_ != nullptr) stage.emplace(*metrics_, "expand_ideal");
    ideal_ = lis::expand_ideal(lis_);
  }
  return *ideal_;
}

const lis::Expansion& AnalysisCache::doubled() {
  if (!note(doubled_.has_value())) {
    std::optional<Metrics::ScopedStage> stage;
    if (metrics_ != nullptr) stage.emplace(*metrics_, "expand_doubled");
    doubled_ = lis::expand_doubled(lis_);
  }
  return *doubled_;
}

const util::Rational& AnalysisCache::theta_ideal() {
  if (!note(theta_ideal_.has_value())) {
    const lis::Expansion& expansion = ideal();
    std::optional<Metrics::ScopedStage> stage;
    if (metrics_ != nullptr) stage.emplace(*metrics_, "mst_ideal");
    // Howard through the shared workspace: exact-rational, so identical to
    // mg::mst (Karp), but warm-startable and allocation-pooled.
    theta_ideal_ = mg::mst_howard(expansion.graph, workspace_);
  }
  return *theta_ideal_;
}

const util::Rational& AnalysisCache::theta_practical() {
  if (!note(theta_practical_.has_value())) {
    const lis::Expansion& expansion = doubled();
    std::optional<Metrics::ScopedStage> stage;
    if (metrics_ != nullptr) stage.emplace(*metrics_, "mst_practical");
    theta_practical_ = mg::mst_howard(expansion.graph, workspace_);
  }
  return *theta_practical_;
}

const core::QsProblem& AnalysisCache::qs_problem(const core::QsBuildOptions& options) {
  if (!note(qs_.has_value() && same_build_options(qs_options_, options))) {
    const util::Rational ideal = theta_ideal();
    const util::Rational practical = theta_practical();
    std::optional<Metrics::ScopedStage> stage;
    if (metrics_ != nullptr) stage.emplace(*metrics_, "build_qs_problem");
    qs_ = core::build_qs_problem_with_mst(lis_, ideal, practical, options);
    qs_options_ = options;
  }
  return *qs_;
}

const core::DegradationReport& AnalysisCache::degradation() {
  if (!note(degradation_.has_value())) {
    std::optional<Metrics::ScopedStage> stage;
    if (metrics_ != nullptr) stage.emplace(*metrics_, "explain_degradation");
    degradation_ = core::explain_degradation(lis_);
  }
  return *degradation_;
}

const core::RateSafetyReport& AnalysisCache::rate_safety() {
  if (!note(rate_safety_.has_value())) {
    std::optional<Metrics::ScopedStage> stage;
    if (metrics_ != nullptr) stage.emplace(*metrics_, "rate_safety");
    rate_safety_ = core::analyze_rate_safety(lis_);
  }
  return *rate_safety_;
}

}  // namespace lid::engine
