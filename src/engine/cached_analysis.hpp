// Cache-pooled twins of lid::analyze / lid::size_queues.
//
// Same inputs, same Result bytes: both paths run the facade's shared
// detail:: assembly (lid_api_detail.hpp), so a response computed here is
// byte-identical to a direct facade call — the serve registry leans on this
// to keep registered-model payloads equal to inline-netlist payloads. The
// difference is purely where the expensive intermediates come from: the
// degradation report, rate-safety report, MSTs and the cycle enumeration are
// read from (and stored into) `cache`, which persists across calls on a
// registered model instead of being rebuilt per request.
//
// Like AnalysisCache itself, these entry points are NOT thread-safe per
// cache; the caller serializes access to one cache (the registry holds a
// per-model mutex for exactly this).
#pragma once

#include "engine/analysis_cache.hpp"
#include "lid_api.hpp"

namespace lid::engine {

/// lid::analyze with the degradation/rate-safety reports pooled in `cache`.
/// `cache` must wrap instance.graph().
Result<Analysis> analyze_cached(AnalysisCache& cache, const Instance& instance,
                                const AnalyzeOptions& options = {});

/// lid::size_queues with the cycle enumeration (eager solvers) or the MSTs
/// (lazy solver) pooled in `cache`. Cancellable requests bypass the pooled
/// problem so a cancel token can never poison the cache with a partial
/// enumeration. `cache` must wrap instance.graph().
Result<Sizing> size_queues_cached(AnalysisCache& cache, const Instance& instance,
                                  const SizeQueuesOptions& options = {});

}  // namespace lid::engine
