#include "engine/task_pool.hpp"

#include <algorithm>

namespace lid::engine {

TaskPool::TaskPool(Options options) : options_(options) {
  options_.threads = std::max(1, options_.threads);
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() { drain(); }

TaskPool::Submit TaskPool::submit(Task task, double deadline_ms) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Submit::kClosed;
    if (options_.queue_capacity > 0 && queue_.size() >= options_.queue_capacity) {
      ++shed_;
      return Submit::kShed;
    }
    queue_.push_back(Entry{std::move(task), deadline_ms, util::Timer()});
    ++submitted_;
  }
  ready_.notify_one();
  return Submit::kAccepted;
}

void TaskPool::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ && workers_.empty()) return;
    closed_ = true;
  }
  ready_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void TaskPool::worker_loop(int worker_index) {
  while (true) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed_ and drained
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    Context context;
    context.worker = worker_index;
    context.queue_wait_ms = entry.queued_at.elapsed_ms();
    context.deadline_expired =
        entry.deadline_ms > 0.0 && context.queue_wait_ms >= entry.deadline_ms;
    if (entry.deadline_ms > 0.0) {
      // Remaining budget after the queue wait; <= 0 yields an already-expired
      // token, matching deadline_expired.
      context.cancel = util::CancelToken::after_ms(entry.deadline_ms - context.queue_wait_ms);
    }
    entry.task(context);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++executed_;
      if (context.deadline_expired) ++expired_;
    }
  }
}

std::size_t TaskPool::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::int64_t TaskPool::submitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

std::int64_t TaskPool::shed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::int64_t TaskPool::executed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

std::int64_t TaskPool::expired() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return expired_;
}

}  // namespace lid::engine
