// Per-instance memoization of the expensive analysis intermediates.
//
// Every analysis of a LIS starts from the same handful of derived objects:
// the ideal expansion G, the doubled expansion d[G], their MSTs, and — for
// queue sizing — the problematic-cycle enumeration (the dominant cost, via
// Johnson's algorithm). Historically each entry point re-derived them from
// scratch, so stacking analyses (ideal MST + practical MST + heuristic QS +
// exact QS) paid for the expansions and the cycle sweep up to four times.
// AnalysisCache computes each intermediate lazily, once, and hands the
// cached object to every subsequent stage.
//
// A cache is NOT thread-safe: the batch engine creates one per instance
// inside the worker that owns that instance, which is also what keeps batch
// results deterministic.
#pragma once

#include <cstdint>
#include <optional>

#include "core/diagnostics.hpp"
#include "core/qs_problem.hpp"
#include "core/rate_safety.hpp"
#include "engine/metrics.hpp"
#include "lis/lis_graph.hpp"
#include "mg/mcm.hpp"
#include "util/rational.hpp"

namespace lid::engine {

/// Lazily computed, memoized analysis intermediates of one netlist.
/// Holds a reference to the netlist, which must outlive the cache.
class AnalysisCache {
 public:
  /// `metrics`, when given, receives per-stage timings (expand_ideal,
  /// expand_doubled, mst_ideal, mst_practical, build_qs_problem) and
  /// cache-hit/miss counters; it must outlive the cache.
  explicit AnalysisCache(const lis::LisGraph& lis, Metrics* metrics = nullptr);

  [[nodiscard]] const lis::LisGraph& lis() const { return lis_; }

  /// The ideal expansion G (forward places only).
  const lis::Expansion& ideal();

  /// The doubled expansion d[G] (forward + backpressure places).
  const lis::Expansion& doubled();

  /// θ(G) — computed from the cached ideal expansion.
  const util::Rational& theta_ideal();

  /// θ(d[G]) — computed from the cached doubled expansion.
  const util::Rational& theta_practical();

  /// The queue-sizing problem (problematic cycles + TD instance), built with
  /// the cached MSTs. Memoized per options: a second call with the same
  /// options is a hit; differing options rebuild.
  const core::QsProblem& qs_problem(const core::QsBuildOptions& options = {});

  /// The degradation report (thetas + critical cycle of d[G]), exactly
  /// core::explain_degradation's result, computed once. This is what the
  /// serve registry pools so repeated `analyze` verbs on a registered model
  /// skip the expansions and MCM solves.
  const core::DegradationReport& degradation();

  /// The Sec. III-C rate-safety report, computed once.
  const core::RateSafetyReport& rate_safety();

  /// Memoization traffic (for tests and the metrics report).
  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }

  /// The cache's Howard workspace. Both MSTs solve through it, so a stacked
  /// analysis (ideal + practical + lazy sizing) warm-starts wherever
  /// structure repeats. Safe because the cache — and therefore the workspace
  /// — is confined to the worker that owns the instance.
  [[nodiscard]] mg::Workspace& mcm_workspace() { return workspace_; }

 private:
  bool note(bool hit);  // updates counters; returns `hit`

  const lis::LisGraph& lis_;
  Metrics* metrics_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;

  std::optional<lis::Expansion> ideal_;
  std::optional<lis::Expansion> doubled_;
  std::optional<util::Rational> theta_ideal_;
  std::optional<util::Rational> theta_practical_;
  std::optional<core::QsProblem> qs_;
  core::QsBuildOptions qs_options_;
  std::optional<core::DegradationReport> degradation_;
  std::optional<core::RateSafetyReport> rate_safety_;
  mg::Workspace workspace_;
};

}  // namespace lid::engine
