#include "engine/cached_analysis.hpp"

#include <exception>
#include <stdexcept>

#include "core/lazy_sizing.hpp"
#include "core/queue_sizing.hpp"
#include "lid_api_detail.hpp"

namespace lid::engine {
namespace {

/// The facade's exception policy (lid_api.cpp `guarded`), duplicated here so
/// error bytes match: std::invalid_argument marks bad input, everything else
/// an internal invariant failure.
template <typename T, typename Fn>
Result<T> guarded(Fn&& body) {
  try {
    return body();
  } catch (const std::invalid_argument& e) {
    return Error{ErrorCode::kInvalidArgument, e.what()};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInternal, e.what()};
  }
}

Error invalid_handle(const char* who) {
  return Error{ErrorCode::kInvalidArgument, std::string(who) + ": invalid (empty) instance handle"};
}

}  // namespace

Result<Analysis> analyze_cached(AnalysisCache& cache, const Instance& instance,
                                const AnalyzeOptions& options) {
  if (!instance.valid()) return invalid_handle("analyze");
  if (options.preflight) {
    if (auto rejected = detail::lint_preflight("analyze", instance.graph())) return *rejected;
  }
  return guarded<Analysis>([&] {
    const lis::LisGraph& lis = instance.graph();
    const core::DegradationReport& report = cache.degradation();
    const core::RateSafetyReport* rates = options.rate_safety ? &cache.rate_safety() : nullptr;
    return detail::analysis_from_reports(lis, report, rates, options);
  });
}

Result<Sizing> size_queues_cached(AnalysisCache& cache, const Instance& instance,
                                  const SizeQueuesOptions& options) {
  if (!instance.valid()) return invalid_handle("size_queues");
  if (options.preflight) {
    if (auto rejected = detail::lint_preflight("size_queues", instance.graph())) return *rejected;
  }
  return guarded<Sizing>([&]() -> Result<Sizing> {
    const lis::LisGraph& lis = instance.graph();
    const core::QsOptions qs = detail::qs_options_from(options);
    core::QsReport report;
    if (options.cancel.can_cancel()) {
      // A firing token would leave a partial (timing-dependent) enumeration
      // in the shared cache, so cancellable requests run the plain pipeline.
      report = core::size_queues(lis, qs);
    } else if (qs.method == core::QsMethod::kLazy) {
      // Cached thetas, but a solve-local Howard workspace: the lazy payload
      // reports iteration/cycle counts, and a pooled warm-started workspace
      // could pick a different (tie-equivalent) critical cycle than the cold
      // solve a direct execution runs — the values must stay byte-identical.
      report = core::size_queues_lazy_with_mst(lis, cache.theta_ideal(),
                                               cache.theta_practical(), qs, nullptr);
    } else {
      report = core::size_queues_on_problem(lis, cache.qs_problem(qs.build), qs);
    }
    return detail::sizing_from_report(lis, report, instance, options);
  });
}

}  // namespace lid::engine
