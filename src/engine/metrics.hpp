// Lightweight metrics for the batch engine: monotonic counters plus
// per-stage wall-clock and thread-CPU timers.
//
// Every engine worker owns a private Metrics and merges it into the batch
// total when its queue drains, so the hot path never contends on a lock.
// The collected numbers are dumped as JSON (for scripts) and as a console
// table (for humans); timings are reporting-only and deliberately excluded
// from the engine's deterministic result serialization.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace lid::engine {

/// Thread-CPU time of the calling thread, in milliseconds (0 when the
/// platform offers no per-thread clock).
double thread_cpu_ms();

/// A named-counter + named-stage-timer registry. Thread-safe; see the header
/// comment for the intended one-per-worker usage.
class Metrics {
 public:
  Metrics() = default;
  // Copyable (snapshot under the source's lock) so results structs that
  // embed a Metrics stay value types.
  Metrics(const Metrics& other);
  Metrics& operator=(const Metrics& other);

  /// Aggregated timings of one pipeline stage.
  struct StageStats {
    std::int64_t calls = 0;
    double wall_ms = 0.0;
    double cpu_ms = 0.0;
  };

  /// Increments counter `name` by `delta` (created at 0 on first use).
  void count(const std::string& name, std::int64_t delta = 1);

  /// Adds one completed stage invocation.
  void record_stage(const std::string& name, double wall_ms, double cpu_ms);

  /// RAII stage timer: records wall + thread-CPU time from construction to
  /// destruction under the given stage name.
  class ScopedStage {
   public:
    ScopedStage(Metrics& metrics, std::string name);
    ~ScopedStage();
    ScopedStage(const ScopedStage&) = delete;
    ScopedStage& operator=(const ScopedStage&) = delete;

   private:
    Metrics& metrics_;
    std::string name_;
    double wall_start_ms_;
    double cpu_start_ms_;
  };

  /// Folds `other` into this registry (counters add, stages accumulate).
  void merge(const Metrics& other);

  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] std::map<std::string, std::int64_t> counters() const;
  [[nodiscard]] std::map<std::string, StageStats> stages() const;

  /// {"counters": {...}, "stages": {"<name>": {"calls": c, "wall_ms": w,
  /// "cpu_ms": u}, ...}} — keys sorted, numbers with fixed precision.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable dump: one table for stages, one line per counter.
  void print(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, StageStats> stages_;
};

}  // namespace lid::engine
