#include "engine/metrics.hpp"

#include <ctime>
#include <ostream>

#include "util/json.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace lid::engine {
namespace {

util::Timer& process_timer() {
  static util::Timer timer;
  return timer;
}

}  // namespace

double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return 0.0;
}

Metrics::Metrics(const Metrics& other)
    : counters_(other.counters()), stages_(other.stages()) {}

Metrics& Metrics::operator=(const Metrics& other) {
  if (this == &other) return *this;
  const std::map<std::string, std::int64_t> counters = other.counters();
  const std::map<std::string, StageStats> stages = other.stages();
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_ = counters;
  stages_ = stages;
  return *this;
}

void Metrics::count(const std::string& name, std::int64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void Metrics::record_stage(const std::string& name, double wall_ms, double cpu_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  StageStats& stats = stages_[name];
  stats.calls += 1;
  stats.wall_ms += wall_ms;
  stats.cpu_ms += cpu_ms;
}

Metrics::ScopedStage::ScopedStage(Metrics& metrics, std::string name)
    : metrics_(metrics),
      name_(std::move(name)),
      wall_start_ms_(process_timer().elapsed_ms()),
      cpu_start_ms_(thread_cpu_ms()) {}

Metrics::ScopedStage::~ScopedStage() {
  metrics_.record_stage(name_, process_timer().elapsed_ms() - wall_start_ms_,
                        thread_cpu_ms() - cpu_start_ms_);
}

void Metrics::merge(const Metrics& other) {
  // Snapshot `other` first so the two locks are never held together.
  const std::map<std::string, std::int64_t> counters = other.counters();
  const std::map<std::string, StageStats> stages = other.stages();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, value] : counters) counters_[name] += value;
  for (const auto& [name, stats] : stages) {
    StageStats& mine = stages_[name];
    mine.calls += stats.calls;
    mine.wall_ms += stats.wall_ms;
    mine.cpu_ms += stats.cpu_ms;
  }
}

std::int64_t Metrics::counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::int64_t> Metrics::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::map<std::string, Metrics::StageStats> Metrics::stages() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

std::string Metrics::to_json() const {
  const std::map<std::string, std::int64_t> counters = this->counters();
  const std::map<std::string, StageStats> stages = this->stages();
  util::JsonWriter w(2);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.key(name).value(value);
  w.end_object();
  w.key("stages").begin_object();
  for (const auto& [name, stats] : stages) {
    w.key(name).begin_object();
    w.key("calls").value(stats.calls);
    w.key("wall_ms").value_fixed(stats.wall_ms, 3);
    w.key("cpu_ms").value_fixed(stats.cpu_ms, 3);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

void Metrics::print(std::ostream& os) const {
  const std::map<std::string, StageStats> stages = this->stages();
  if (!stages.empty()) {
    util::Table table({"stage", "calls", "wall ms", "cpu ms"});
    for (const auto& [name, stats] : stages) {
      table.add_row({name, util::Table::fmt(stats.calls), util::Table::fmt(stats.wall_ms, 3),
                     util::Table::fmt(stats.cpu_ms, 3)});
    }
    table.print(os);
  }
  for (const auto& [name, value] : counters()) {
    os << name << " = " << value << "\n";
  }
}

}  // namespace lid::engine
