// The engine's persistent worker pool.
//
// BatchEngine (one-shot batches) and serve::Server (long-running daemon)
// both execute on this pool. It is a fixed set of std::threads over one
// mutex-guarded FIFO with three properties the serving path depends on:
//
//   * bounded admission — an optional queue capacity; submit() on a full
//     queue returns kShed immediately instead of blocking or growing the
//     queue without bound, which is the server's load-shedding primitive;
//   * submit-with-deadline — each task may carry a wall-clock deadline,
//     measured from enqueue; a task whose deadline has already expired when
//     a worker picks it up is still invoked, but with
//     Context::deadline_expired set, so the caller can answer
//     `deadline_exceeded` without paying for the work (the work itself is
//     bounded by deterministic node budgets, keeping results reproducible).
//     Tasks still within deadline receive a Context::cancel token armed with
//     the remaining budget, so cooperative solvers stop within one loop
//     bound of expiry instead of holding the worker hostage;
//   * queue-depth hooks — queue_depth()/submitted()/shed()/executed() are
//     cheap snapshots for admission decisions and the `stats` verb.
//
// drain() closes admission, waits for every queued and in-flight task to
// finish, and joins the workers; it is the graceful-shutdown path (SIGTERM)
// as well as how BatchEngine ends a batch.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace lid::engine {

class TaskPool {
 public:
  struct Options {
    /// Fixed worker count; values < 1 are clamped to 1.
    int threads = 1;
    /// Max queued (not yet started) tasks; 0 = unbounded.
    std::size_t queue_capacity = 0;
  };

  /// Handed to every task when it runs.
  struct Context {
    /// Stable worker index in [0, threads) — e.g. to index per-worker
    /// metrics without locking.
    int worker = 0;
    /// True when the task's deadline elapsed while it sat in the queue.
    bool deadline_expired = false;
    /// Milliseconds the task waited between submit() and execution.
    double queue_wait_ms = 0.0;
    /// Armed with the deadline's remaining budget when the task carries one
    /// (already expired when deadline_expired); never cancels otherwise.
    /// Thread long-running work through this so the worker frees itself
    /// within one loop bound of expiry.
    util::CancelToken cancel;
  };

  using Task = std::function<void(const Context&)>;

  enum class Submit {
    kAccepted,  ///< queued; the task will run
    kShed,      ///< bounded queue full; the task was rejected and dropped
    kClosed,    ///< pool is draining/stopped; the task was rejected
  };

  explicit TaskPool(Options options);
  /// Drains implicitly if drain() was not called.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `task`. `deadline_ms` <= 0 means no deadline.
  Submit submit(Task task, double deadline_ms = 0.0);

  /// Closes admission and blocks until all queued + running tasks finished
  /// and the workers joined. Idempotent.
  void drain();

  [[nodiscard]] int threads() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] std::size_t queue_capacity() const { return options_.queue_capacity; }

  // Counter snapshots (monotonic except queue_depth).
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::int64_t submitted() const;
  [[nodiscard]] std::int64_t shed() const;
  [[nodiscard]] std::int64_t executed() const;
  [[nodiscard]] std::int64_t expired() const;

 private:
  struct Entry {
    Task task;
    double deadline_ms = 0.0;
    util::Timer queued_at;
  };

  void worker_loop(int worker_index);

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Entry> queue_;
  bool closed_ = false;
  std::int64_t submitted_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t executed_ = 0;
  std::int64_t expired_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace lid::engine
