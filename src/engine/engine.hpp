// The parallel batch-analysis engine.
//
// A BatchEngine takes a set of LIS instances (generated, loaded from netlist
// files, or the COFDM SoC) and a list of analyses, runs them across a
// fixed-size std::thread pool fed by a shared work queue, and returns
// results that are byte-identical regardless of thread count:
//   * the unit of work is one instance (all of its requested analyses run
//     consecutively in one worker, sharing a per-instance AnalysisCache);
//   * results land in a vector slot preassigned by input order;
//   * the exact solver runs under a deterministic node budget by default
//     (opt into wall-clock timeouts only when reproducibility is not
//     required — cut-offs then depend on machine load).
// Each worker collects its own Metrics (stage timers + counters), merged
// into BatchResult::metrics after the pool joins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/metrics.hpp"
#include "lid_api.hpp"
#include "util/rational.hpp"

namespace lid::engine {

/// The analyses the engine can stack on an instance.
enum class AnalysisKind {
  kIdealMst,      ///< θ(G), infinite queues
  kPracticalMst,  ///< θ(d[G]), finite queues
  kQsHeuristic,   ///< queue sizing, paper heuristic
  kQsExact,       ///< queue sizing, exact branch-and-bound (budgeted)
  kQsLazy,        ///< queue sizing, lazy constraint generation (no up-front
                  ///< cycle enumeration; warm-started Howard separation)
  kRsInsertion,   ///< greedy relay-station insertion repair
  kRateSafety,    ///< Sec. III-C producer/consumer rate hazards
  kDes,           ///< deterministic-limit discrete-event simulation (src/des):
                  ///< exact periodic throughput + backpressure stall counters
};

/// Short stable token used in CLIs and serialized output ("mst-ideal", ...).
const char* to_string(AnalysisKind kind);

/// Parses a comma-separated analysis list ("mst-ideal,qs-heuristic").
/// Accepted tokens: mst-ideal, mst-practical, qs-heuristic, qs-exact,
/// qs-lazy, rs-insertion, rate-safety, des, and the umbrella "all".
Result<std::vector<AnalysisKind>> parse_analyses(const std::string& csv);

/// Engine configuration.
struct EngineOptions {
  /// Fixed pool size; values < 1 are clamped to 1.
  int threads = 1;
  /// Analyses to run per instance, in this order.
  std::vector<AnalysisKind> analyses = {AnalysisKind::kIdealMst, AnalysisKind::kPracticalMst,
                                        AnalysisKind::kQsHeuristic};
  /// Deterministic search budget for kQsExact (0 = unlimited).
  std::int64_t exact_max_nodes = 200'000;
  /// Optional wall-clock cap for kQsExact; breaks run-to-run determinism
  /// under load, so it is off by default.
  double exact_timeout_ms = 0.0;
  /// Relay stations kRsInsertion may add.
  int rs_budget = 2;
  /// Cycle-enumeration cap for the queue-sizing analyses (0 = unlimited).
  std::size_t max_cycles = 500'000;
  /// Cycle horizon for kDes (the run usually exits earlier via recurrence
  /// detection; the horizon bounds pathological transients).
  std::int64_t des_horizon = 30'000;
  /// RNG seed for kDes. The engine's DES stage runs the deterministic limit
  /// (fixed unit latencies, saturated sources), so the seed only matters for
  /// reproducing reports, not results.
  std::uint64_t des_seed = 1;
  /// Run the error-tier lint checks before any analysis and reject broken
  /// instances (deadlocked, empty, q = 0) with the diagnostic summary in
  /// InstanceResult::error instead of tripping an invariant mid-solve.
  bool preflight = true;
};

/// Everything the engine learned about one instance. Fields are present only
/// when the corresponding analysis was requested.
struct InstanceResult {
  std::size_t index = 0;
  std::string name;
  std::size_t cores = 0;
  std::size_t channels = 0;
  int relay_stations = 0;
  /// Nonempty when some analysis failed; the remaining fields may be partial.
  std::string error;

  std::optional<util::Rational> theta_ideal;
  std::optional<util::Rational> theta_practical;
  std::optional<std::int64_t> qs_heuristic_total;
  std::optional<std::int64_t> qs_exact_total;
  bool qs_exact_proved = false;
  /// MST after applying the best computed sizing (exact when proven, else
  /// heuristic).
  std::optional<util::Rational> qs_achieved;
  /// Cycles enumerated while building the QS problem.
  std::optional<std::size_t> qs_cycles = {};
  bool qs_truncated = false;
  /// kQsLazy only: separation rounds, constraints generated, and whether the
  /// lazy loop fell back to full enumeration.
  std::optional<std::int64_t> qs_lazy_iterations;
  std::optional<std::int64_t> qs_cycles_generated;
  bool qs_lazy_fell_back = false;
  std::optional<int> rs_added;
  bool rs_reached_ideal = false;
  std::optional<std::size_t> rate_hazards;
  /// kDes: simulated throughput (exact when des_periodic), event count, and
  /// backpressure stall events over the run.
  std::optional<util::Rational> des_throughput;
  std::optional<std::int64_t> des_events;
  std::optional<std::int64_t> des_stalls;
  bool des_periodic = false;

  /// One deterministic "key=value" line (no timings, stable field order).
  [[nodiscard]] std::string serialize() const;
};

/// The batch outcome: per-instance results in input order + merged metrics.
struct BatchResult {
  std::vector<InstanceResult> results;
  Metrics metrics;

  /// Deterministic multi-line report: a header plus one line per instance.
  /// Byte-identical across thread counts and (given deterministic budgets)
  /// across runs; timings live only in `metrics`.
  [[nodiscard]] std::string serialize() const;
};

/// The engine. Construct once, run any number of batches.
class BatchEngine {
 public:
  explicit BatchEngine(EngineOptions options = {});

  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// Analyzes every instance. Invalid handles and per-instance analysis
  /// failures are captured in InstanceResult::error; the batch itself always
  /// completes.
  [[nodiscard]] BatchResult run(const std::vector<Instance>& instances) const;

 private:
  EngineOptions options_;
};

}  // namespace lid::engine
