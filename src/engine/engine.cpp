#include "engine/engine.hpp"

#include <algorithm>
#include <exception>
#include <sstream>

#include "core/lazy_sizing.hpp"
#include "core/qs_problem.hpp"
#include "core/queue_sizing.hpp"
#include "core/rate_safety.hpp"
#include "core/rs_insertion.hpp"
#include "engine/analysis_cache.hpp"
#include "engine/task_pool.hpp"
#include "lint/checks.hpp"

namespace lid::engine {
namespace {

core::QsOptions qs_options_for(const EngineOptions& options, core::QsMethod method) {
  core::QsOptions qs;
  qs.method = method;
  qs.build.max_cycles = options.max_cycles;
  qs.exact.max_nodes = options.exact_max_nodes;
  qs.exact.timeout_ms = options.exact_timeout_ms;
  return qs;
}

void run_qs(const EngineOptions& options, AnalysisCache& cache, Metrics& metrics,
            core::QsMethod method, InstanceResult& out) {
  const core::QsProblem& problem = cache.qs_problem(qs_options_for(options, method).build);
  out.theta_ideal = problem.theta_ideal;
  out.theta_practical = problem.theta_practical;
  out.qs_cycles = problem.cycles_enumerated;
  out.qs_truncated = out.qs_truncated || problem.truncated;

  const char* stage = method == core::QsMethod::kExact ? "qs_exact" : "qs_heuristic";
  const Metrics::ScopedStage timer(metrics, stage);
  const core::QsReport report =
      core::size_queues_on_problem(cache.lis(), problem, qs_options_for(options, method));
  if (report.heuristic) out.qs_heuristic_total = report.heuristic->total_extra_tokens;
  if (report.exact) {
    out.qs_exact_total = report.exact->total_extra_tokens;
    out.qs_exact_proved = report.exact->finished;
  }
  out.qs_achieved = report.achieved_mst;
}

void run_qs_lazy(const EngineOptions& options, AnalysisCache& cache, Metrics& metrics,
                 InstanceResult& out) {
  // No eager cycle enumeration: the lazy driver separates critical cycles on
  // demand, warm-starting Howard through the cache's pooled workspace.
  const Metrics::ScopedStage timer(metrics, "qs_lazy");
  const core::QsReport report = core::size_queues_lazy_with_mst(
      cache.lis(), cache.theta_ideal(), cache.theta_practical(),
      qs_options_for(options, core::QsMethod::kLazy), &cache.mcm_workspace());
  out.theta_ideal = report.problem.theta_ideal;
  out.theta_practical = report.problem.theta_practical;
  out.qs_truncated = out.qs_truncated || report.problem.truncated;
  if (report.exact) {
    out.qs_exact_total = report.exact->total_extra_tokens;
    out.qs_exact_proved = report.exact->finished;
  }
  if (report.heuristic) out.qs_heuristic_total = report.heuristic->total_extra_tokens;
  out.qs_achieved = report.achieved_mst;
  if (report.lazy) {
    out.qs_lazy_iterations = report.lazy->iterations;
    out.qs_cycles_generated = report.lazy->cycles_generated;
    out.qs_lazy_fell_back = report.lazy->fell_back;
    metrics.count("lazy_iterations", report.lazy->iterations);
    metrics.count("cycles_generated", report.lazy->cycles_generated);
    metrics.count("howard_warm_restarts", report.lazy->howard_warm_restarts);
    if (report.lazy->fell_back) metrics.count("lazy_fallbacks");
  }
}

void analyze_one(const EngineOptions& options, const Instance& instance, InstanceResult& out,
                 Metrics& metrics) {
  metrics.count("instances");
  if (!instance.valid()) {
    out.error = "invalid (empty) instance handle";
    metrics.count("failures");
    return;
  }
  out.name = instance.name();
  out.cores = instance.num_cores();
  out.channels = instance.num_channels();
  out.relay_stations = instance.total_relay_stations();

  if (options.preflight) {
    const linter::Report lint = linter::run_error_checks(instance.graph());
    if (lint.has_errors()) {
      out.error = "lint: " + lint.error_summary();
      metrics.count("lint_rejected");
      return;
    }
  }

  AnalysisCache cache(instance.graph(), &metrics);
  try {
    for (const AnalysisKind kind : options.analyses) {
      switch (kind) {
        case AnalysisKind::kIdealMst:
          out.theta_ideal = cache.theta_ideal();
          break;
        case AnalysisKind::kPracticalMst:
          out.theta_practical = cache.theta_practical();
          break;
        case AnalysisKind::kQsHeuristic:
          run_qs(options, cache, metrics, core::QsMethod::kHeuristic, out);
          break;
        case AnalysisKind::kQsExact:
          run_qs(options, cache, metrics, core::QsMethod::kExact, out);
          break;
        case AnalysisKind::kQsLazy:
          run_qs_lazy(options, cache, metrics, out);
          break;
        case AnalysisKind::kRsInsertion: {
          const Metrics::ScopedStage timer(metrics, "rs_insertion");
          const core::RsInsertionResult rs =
              core::greedy_rs_insertion(instance.graph(), options.rs_budget);
          out.rs_added = rs.relay_stations_added;
          out.rs_reached_ideal = rs.reached_ideal;
          break;
        }
        case AnalysisKind::kRateSafety: {
          const Metrics::ScopedStage timer(metrics, "rate_safety");
          out.rate_hazards = core::analyze_rate_safety(instance.graph()).hazards.size();
          break;
        }
        case AnalysisKind::kDes: {
          // Deterministic limit (fixed unit latencies, saturated sources):
          // the throughput is exact once a recurrence is found, so this
          // doubles as a cheap cross-check of mst-practical. Occupancy
          // tracing is off — the batch report carries no histograms.
          const Metrics::ScopedStage timer(metrics, "des");
          des::SimOptions sim;
          sim.horizon = options.des_horizon;
          sim.seed = options.des_seed;
          sim.trace_occupancy = false;
          const des::SimReport report = des::simulate(instance.graph(), sim);
          out.des_throughput = report.throughput;
          out.des_events = report.events;
          out.des_stalls = report.total_stall_events;
          out.des_periodic = report.periodic_found;
          metrics.count("des_events", report.events);
          metrics.count("des_firings", report.firings);
          metrics.count("des_stall_events", report.total_stall_events);
          break;
        }
      }
    }
  } catch (const std::exception& e) {
    out.error = e.what();
    metrics.count("failures");
  }
}

void append_field(std::ostream& os, const char* key, const std::string& value) {
  os << ' ' << key << '=' << value;
}

}  // namespace

const char* to_string(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kIdealMst: return "mst-ideal";
    case AnalysisKind::kPracticalMst: return "mst-practical";
    case AnalysisKind::kQsHeuristic: return "qs-heuristic";
    case AnalysisKind::kQsExact: return "qs-exact";
    case AnalysisKind::kQsLazy: return "qs-lazy";
    case AnalysisKind::kRsInsertion: return "rs-insertion";
    case AnalysisKind::kRateSafety: return "rate-safety";
    case AnalysisKind::kDes: return "des";
  }
  return "unknown";
}

Result<std::vector<AnalysisKind>> parse_analyses(const std::string& csv) {
  static constexpr AnalysisKind kAll[] = {
      AnalysisKind::kIdealMst, AnalysisKind::kPracticalMst, AnalysisKind::kQsHeuristic,
      AnalysisKind::kQsExact,  AnalysisKind::kQsLazy,       AnalysisKind::kRsInsertion,
      AnalysisKind::kRateSafety, AnalysisKind::kDes,
  };
  std::vector<AnalysisKind> kinds;
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    if (token == "all") {
      kinds.assign(std::begin(kAll), std::end(kAll));
      continue;
    }
    bool found = false;
    for (const AnalysisKind kind : kAll) {
      if (token == to_string(kind)) {
        kinds.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown analysis '" + token +
                       "' (expected mst-ideal, mst-practical, qs-heuristic, qs-exact, "
                       "qs-lazy, rs-insertion, rate-safety, des or all)"};
    }
  }
  if (kinds.empty()) {
    return Error{ErrorCode::kInvalidArgument, "empty analysis list"};
  }
  return kinds;
}

std::string InstanceResult::serialize() const {
  std::ostringstream os;
  os << index;
  append_field(os, "name", name.empty() ? "-" : name);
  append_field(os, "cores", std::to_string(cores));
  append_field(os, "channels", std::to_string(channels));
  append_field(os, "rs", std::to_string(relay_stations));
  if (theta_ideal) append_field(os, "ideal", theta_ideal->to_string());
  if (theta_practical) append_field(os, "practical", theta_practical->to_string());
  if (qs_cycles) append_field(os, "cycles", std::to_string(*qs_cycles));
  if (qs_truncated) append_field(os, "truncated", "1");
  if (qs_heuristic_total) append_field(os, "qs_heur", std::to_string(*qs_heuristic_total));
  if (qs_exact_total) {
    append_field(os, "qs_exact", std::to_string(*qs_exact_total));
    append_field(os, "qs_proved", qs_exact_proved ? "1" : "0");
  }
  if (qs_achieved) append_field(os, "achieved", qs_achieved->to_string());
  if (qs_lazy_iterations) {
    append_field(os, "lazy_iters", std::to_string(*qs_lazy_iterations));
    append_field(os, "lazy_cycles", std::to_string(qs_cycles_generated.value_or(0)));
    if (qs_lazy_fell_back) append_field(os, "lazy_fallback", "1");
  }
  if (rs_added) {
    append_field(os, "rs_added", std::to_string(*rs_added));
    append_field(os, "rs_ideal", rs_reached_ideal ? "1" : "0");
  }
  if (rate_hazards) append_field(os, "hazards", std::to_string(*rate_hazards));
  if (des_throughput) {
    append_field(os, "des", des_throughput->to_string());
    append_field(os, "des_periodic", des_periodic ? "1" : "0");
    append_field(os, "des_events", std::to_string(des_events.value_or(0)));
    append_field(os, "des_stalls", std::to_string(des_stalls.value_or(0)));
  }
  if (!error.empty()) append_field(os, "error", '"' + error + '"');
  return os.str();
}

std::string BatchResult::serialize() const {
  std::ostringstream os;
  os << "# lid-batch v1 instances=" << results.size() << "\n";
  for (const InstanceResult& r : results) os << r.serialize() << "\n";
  return os.str();
}

BatchEngine::BatchEngine(EngineOptions options) : options_(std::move(options)) {
  options_.threads = std::max(1, options_.threads);
}

BatchResult BatchEngine::run(const std::vector<Instance>& instances) const {
  BatchResult batch;
  batch.results.resize(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) batch.results[i].index = i;

  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(options_.threads),
                                             std::max<std::size_t>(instances.size(), 1)));
  std::vector<Metrics> worker_metrics(static_cast<std::size_t>(workers));

  // One task per instance on the shared pool; tasks are enqueued in input
  // order and results land in preassigned slots, so serialize() stays
  // byte-identical at any thread count.
  TaskPool pool(TaskPool::Options{workers, /*queue_capacity=*/0});
  for (std::size_t i = 0; i < instances.size(); ++i) {
    pool.submit([&, i](const TaskPool::Context& context) {
      Metrics& metrics = worker_metrics[static_cast<std::size_t>(context.worker)];
      const Metrics::ScopedStage timer(metrics, "instance_total");
      analyze_one(options_, instances[i], batch.results[i], metrics);
    });
  }
  pool.drain();

  batch.metrics.count("threads", workers);
  for (const Metrics& m : worker_metrics) batch.metrics.merge(m);
  return batch;
}

}  // namespace lid::engine
