// Renderers for lint reports: pretty console text, a machine-readable JSON
// document, and SARIF 2.1.0 (the GitHub code-scanning interchange shape).
//
// All three are pure functions of (report, context) — no global state, no
// locale dependence — so golden tests can compare byte-for-byte. The context
// carries the netlist (for core/channel names) and, when the instance was
// parsed from `.lis` text, its provenance, which resolves diagnostics to
// file/line for SARIF `physicalLocation`s.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lis/lis_graph.hpp"
#include "lis/netlist_io.hpp"
#include "util/json.hpp"

namespace lid::linter {

/// One linted netlist plus everything needed to render its findings.
struct RenderItem {
  const lis::LisGraph* lis = nullptr;        ///< required
  const Report* report = nullptr;            ///< required
  const lis::Provenance* provenance = nullptr;  ///< optional (.lis inputs)
  std::string name;  ///< display name; provenance file wins when set
};

/// Display name of an item: provenance file, else `name`, else "<netlist>".
std::string item_display_name(const RenderItem& item);

/// Human console rendering:
///   netlist.lis:7: error: L001 [zero-token-cycle] message
///     fix: raise the queue on channel A -> B to 1
///   1 error, 0 warnings, 0 infos
std::string render_pretty(const std::vector<RenderItem>& items);

/// JSON document: {"netlists":[{name, errors, warnings, infos, clean,
/// diagnostics:[{code, severity, check, message, core?, channel?, line?,
/// fixits:[...]}]}], summary:{...}}. Integers and strings only.
std::string render_json(const std::vector<RenderItem>& items, int indent = 2);

/// Writes one item's report as a JSON object onto `w` ({name, errors,
/// warnings, infos, clean, diagnostics:[...]}); the per-netlist element of
/// render_json, and the serve protocol's `lint` result payload. Emits
/// integers, strings and booleans only — float-free by construction.
void write_report_json(util::JsonWriter& w, const RenderItem& item);

/// SARIF 2.1.0: one run, the full check catalog as the rule table, one
/// result per diagnostic with ruleId/ruleIndex/level/message and a
/// physicalLocation (artifactLocation.uri + region.startLine) whenever the
/// item has provenance.
std::string render_sarif(const std::vector<RenderItem>& items, int indent = 2);

}  // namespace lid::linter
