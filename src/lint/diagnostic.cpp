#include "lint/diagnostic.hpp"

#include <array>

namespace lid::linter {
namespace {

// The registry. Code order is render order; severities here are the ones the
// checks emit (there is no per-run severity remapping — stability of the
// codes and tiers is part of the tool contract, see docs/lint.md).
constexpr std::array<CheckInfo, 12> kCatalog = {{
    {"L001", Severity::kError, "zero-token-cycle",
     "a cycle of d[G] carries no tokens: the marked graph deadlocks and no MST is defined",
     false},
    {"L002", Severity::kError, "zero-capacity-queue",
     "a channel has queue capacity 0: its producer can never be granted space", false},
    {"L003", Severity::kError, "empty-netlist",
     "the netlist declares no cores: every analysis is undefined on it", false},
    {"L101", Severity::kWarning, "isolated-core",
     "a core has no channels at all: it cannot exchange data with the system", false},
    {"L102", Severity::kInfo, "duplicate-channel",
     "two channels with identical endpoints and attributes: possibly a copy-paste "
     "error (replicated channels are legal in a LIS, so this is informational)",
     false},
    {"L103", Severity::kWarning, "disconnected-netlist",
     "the netlist splits into several unconnected components: the MST analysis "
     "silently reports the worst component only",
     false},
    {"L201", Severity::kWarning, "throughput-below-target",
     "the critical cycle of d[G] holds the practical MST below the requested target",
     true},
    {"L202", Severity::kWarning, "under-provisioned-queues",
     "input queues are below their token-deficit lower bound: queue sizing would "
     "reach the target",
     true},
    {"L203", Severity::kWarning, "target-above-ideal",
     "the requested target exceeds the ideal MST theta(G): no queue sizing can reach "
     "it, the relay-station placement itself limits throughput",
     true},
    {"L204", Severity::kInfo, "unbalanced-parallel-channels",
     "reconvergent parallel channels carry different relay-station counts while "
     "throughput misses the target: the shorter path stalls the longer one",
     true},
    {"L301", Severity::kInfo, "cycle-enumeration-blowup",
     "the cyclomatic number of an SCC of d[G] predicts an intractable elementary-"
     "cycle count: informational since the default analyze/size-queues/lint paths "
     "are enumeration-free (it only concerns the opt-in eager solvers)",
     false},
    {"L302", Severity::kInfo, "oversized-queue",
     "a queue is larger than its structural occupancy bound: the extra slots can "
     "never fill",
     false},
}};

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "warning";
}

const char* sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "note";
  }
  return "warning";
}

std::span<const CheckInfo> check_catalog() { return kCatalog; }

const CheckInfo* find_check(const std::string& code) {
  for (const CheckInfo& info : kCatalog) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool Report::has_code(const std::string& code) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

std::string Report::error_summary(std::size_t max_items) const {
  std::string out;
  std::size_t listed = 0;
  std::size_t total = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::kError) continue;
    ++total;
    if (listed < max_items) {
      if (!out.empty()) out += "; ";
      out += d.code + " " + d.message;
      ++listed;
    }
  }
  if (total > listed) {
    out += " (+" + std::to_string(total - listed) + " more)";
  }
  return out;
}

}  // namespace lid::linter
