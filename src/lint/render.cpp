#include "lint/render.hpp"

#include <cstddef>
#include <sstream>

#include "util/json.hpp"

namespace lid::linter {
namespace {

/// Netlist line a diagnostic resolves to, or 0 when the item has no
/// provenance (constructed programmatically) or the finding is global.
int line_of(const RenderItem& item, const Diagnostic& d) {
  if (item.provenance == nullptr) return 0;
  if (d.location.has_channel()) return item.provenance->line_of_channel(d.location.channel);
  if (d.location.has_core()) return item.provenance->line_of_core(d.location.core);
  return 0;
}

/// "core X" / "channel X -> Y" subject of a diagnostic, or "" when global.
std::string subject_of(const RenderItem& item, const Diagnostic& d) {
  if (d.location.has_channel()) {
    const lis::Channel& ch = item.lis->channel(d.location.channel);
    return "channel " + item.lis->core_name(ch.src) + " -> " + item.lis->core_name(ch.dst);
  }
  if (d.location.has_core()) return "core " + item.lis->core_name(d.location.core);
  return {};
}

/// The witness object shared by the JSON and SARIF renderers: the concrete
/// cycle of d[G] behind the finding, re-checkable against expand_doubled.
void write_witness_json(util::JsonWriter& w, const CycleEvidence& evidence) {
  w.begin_object();
  w.key("places").begin_array();
  for (const std::int64_t p : evidence.places) w.value(p);
  w.end_array();
  w.key("tokens").value(evidence.tokens);
  w.key("channels").begin_array();
  for (const lis::ChannelId c : evidence.channels) w.value(static_cast<std::int64_t>(c));
  w.end_array();
  w.end_object();
}

void write_diagnostic_json(util::JsonWriter& w, const RenderItem& item, const Diagnostic& d) {
  w.begin_object();
  w.key("code").value(d.code);
  w.key("severity").value(to_string(d.severity));
  const CheckInfo* info = find_check(d.code);
  w.key("check").value(info != nullptr ? info->name : "");
  w.key("message").value(d.message);
  if (d.location.has_core()) {
    w.key("core").value(item.lis->core_name(d.location.core));
  }
  if (d.location.has_channel()) {
    const lis::Channel& ch = item.lis->channel(d.location.channel);
    w.key("channel").value(static_cast<std::int64_t>(d.location.channel));
    w.key("src").value(item.lis->core_name(ch.src));
    w.key("dst").value(item.lis->core_name(ch.dst));
  }
  if (const int line = line_of(item, d); line > 0) {
    w.key("line").value(line);
  }
  if (d.witness) {
    w.key("witness");
    write_witness_json(w, *d.witness);
  }
  w.key("fixits").begin_array();
  for (const FixIt& fix : d.fixits) {
    w.begin_object();
    w.key("description").value(fix.description);
    if (fix.channel != graph::kInvalidEdge) {
      w.key("channel").value(static_cast<std::int64_t>(fix.channel));
    }
    if (fix.set_queue_capacity >= 0) {
      w.key("set_queue_capacity").value(fix.set_queue_capacity);
    }
    if (fix.add_relay_stations > 0) {
      w.key("add_relay_stations").value(fix.add_relay_stations);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string item_display_name(const RenderItem& item) {
  if (item.provenance != nullptr && !item.provenance->file.empty()) return item.provenance->file;
  if (!item.name.empty()) return item.name;
  return "<netlist>";
}

std::string render_pretty(const std::vector<RenderItem>& items) {
  std::ostringstream os;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  for (const RenderItem& item : items) {
    const std::string name = item_display_name(item);
    for (const Diagnostic& d : item.report->diagnostics) {
      os << name;
      if (const int line = line_of(item, d); line > 0) os << ":" << line;
      os << ": " << to_string(d.severity) << ": " << d.code;
      const CheckInfo* info = find_check(d.code);
      if (info != nullptr) os << " [" << info->name << "]";
      os << " " << d.message;
      if (const std::string subject = subject_of(item, d);
          !subject.empty() && d.message.find(subject) == std::string::npos) {
        os << " (" << subject << ")";
      }
      os << "\n";
      for (const FixIt& fix : d.fixits) {
        os << "  fix: " << fix.description << "\n";
      }
    }
    errors += item.report->errors();
    warnings += item.report->warnings();
    infos += item.report->infos();
  }
  os << errors << " error" << (errors == 1 ? "" : "s") << ", " << warnings << " warning"
     << (warnings == 1 ? "" : "s") << ", " << infos << " info" << (infos == 1 ? "" : "s")
     << " across " << items.size() << " netlist" << (items.size() == 1 ? "" : "s") << "\n";
  return os.str();
}

void write_report_json(util::JsonWriter& w, const RenderItem& item) {
  w.begin_object();
  w.key("name").value(item_display_name(item));
  w.key("errors").value(item.report->errors());
  w.key("warnings").value(item.report->warnings());
  w.key("infos").value(item.report->infos());
  w.key("clean").value(item.report->empty());
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : item.report->diagnostics) {
    write_diagnostic_json(w, item, d);
  }
  w.end_array();
  w.end_object();
}

std::string render_json(const std::vector<RenderItem>& items, int indent) {
  util::JsonWriter w(indent);
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  w.begin_object();
  w.key("netlists").begin_array();
  for (const RenderItem& item : items) {
    write_report_json(w, item);
    errors += item.report->errors();
    warnings += item.report->warnings();
    infos += item.report->infos();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.key("netlists").value(items.size());
  w.key("errors").value(errors);
  w.key("warnings").value(warnings);
  w.key("infos").value(infos);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string render_sarif(const std::vector<RenderItem>& items, int indent) {
  util::JsonWriter w(indent);
  w.begin_object();
  w.key("$schema").value(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json");
  w.key("version").value("2.1.0");
  w.key("runs").begin_array();
  w.begin_object();

  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.key("name").value("lid_lint");
  w.key("informationUri").value("https://github.com/lid/lid");
  w.key("rules").begin_array();
  for (const CheckInfo& info : check_catalog()) {
    w.begin_object();
    w.key("id").value(info.code);
    w.key("name").value(info.name);
    w.key("shortDescription").begin_object().key("text").value(info.summary).end_object();
    w.key("defaultConfiguration")
        .begin_object()
        .key("level")
        .value(sarif_level(info.severity))
        .end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();  // driver
  w.end_object();  // tool

  w.key("results").begin_array();
  for (const RenderItem& item : items) {
    for (const Diagnostic& d : item.report->diagnostics) {
      w.begin_object();
      w.key("ruleId").value(d.code);
      // ruleIndex: position in the rules array above (catalog order).
      std::int64_t rule_index = -1;
      {
        std::int64_t i = 0;
        for (const CheckInfo& info : check_catalog()) {
          if (d.code == info.code) {
            rule_index = i;
            break;
          }
          ++i;
        }
      }
      if (rule_index >= 0) w.key("ruleIndex").value(rule_index);
      w.key("level").value(sarif_level(d.severity));
      std::string text = d.message;
      for (const FixIt& fix : d.fixits) text += "; fix: " + fix.description;
      w.key("message").begin_object().key("text").value(text).end_object();
      // SARIF requires a locations array; emit a physicalLocation whenever we
      // know the source file, with the region only when the line resolved.
      if (item.provenance != nullptr && !item.provenance->file.empty()) {
        w.key("locations").begin_array();
        w.begin_object();
        w.key("physicalLocation").begin_object();
        w.key("artifactLocation")
            .begin_object()
            .key("uri")
            .value(item.provenance->file)
            .end_object();
        if (const int line = line_of(item, d); line > 0) {
          w.key("region").begin_object().key("startLine").value(line).end_object();
        }
        w.end_object();  // physicalLocation
        w.end_object();
        w.end_array();
      }
      // The witness cycle rides in the SARIF property bag so downstream
      // tooling can re-check the finding against the netlist's expansion.
      if (d.witness) {
        w.key("properties").begin_object();
        w.key("witness");
        write_witness_json(w, *d.witness);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();  // results

  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  return w.str();
}

}  // namespace lid::linter
