#include "lint/checks.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/queue_sizing.hpp"
#include "core/storage.hpp"
#include "graph/cycles.hpp"
#include "graph/scc.hpp"
#include "lis/lis_graph.hpp"

namespace lid::linter {
namespace {

std::string channel_desc(const lis::LisGraph& lis, lis::ChannelId c) {
  const lis::Channel& ch = lis.channel(c);
  return lis.core_name(ch.src) + " -> " + lis.core_name(ch.dst);
}

Diagnostic make(const char* code, std::string message) {
  const CheckInfo* info = find_check(code);
  Diagnostic d;
  d.code = code;
  d.severity = info != nullptr ? info->severity : Severity::kWarning;
  d.message = std::move(message);
  return d;
}

// --- L003: empty netlist ---------------------------------------------------

void check_empty(const lis::LisGraph& lis, Report& report) {
  if (lis.num_cores() != 0) return;
  report.diagnostics.push_back(
      make("L003", "the netlist declares no cores; every analysis is undefined on it"));
}

// --- L002: zero-capacity queues --------------------------------------------

void check_zero_queues(const lis::LisGraph& lis, Report& report) {
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    if (lis.channel(c).queue_capacity != 0) continue;
    Diagnostic d = make("L002", "channel " + channel_desc(lis, c) +
                                    " has queue capacity 0; its producer can never be "
                                    "granted space (every correct LIS has q >= 1)");
    d.location.channel = c;
    FixIt fix;
    fix.description = "raise the queue on channel " + channel_desc(lis, c) + " to 1";
    fix.channel = c;
    fix.set_queue_capacity = 1;
    d.fixits.push_back(std::move(fix));
    report.diagnostics.push_back(std::move(d));
  }
}

// --- L001: zero-token cycle (deadlock) -------------------------------------

void check_deadlock(const lis::LisGraph& lis, Report& report) {
  if (lis.num_cores() == 0) return;
  const lis::Expansion doubled = lis::expand_doubled(lis);
  const mg::MarkedGraph& g = doubled.graph;

  // A cycle whose places all carry zero tokens can never fire any of its
  // transitions (Commoner's liveness condition). In a LIS expansion such a
  // cycle must run through backpressure places of channels with q = 0 and
  // rs = 0, so it maps cleanly back to netlist channels. One DFS witness on
  // the zero-token subgraph suffices — O(E) regardless of how many
  // elementary cycles d[G] has.
  const graph::Cycle witness = graph::find_cycle(
      g.structure(), [&g](graph::EdgeId place) { return g.tokens(place) == 0; });
  if (witness.empty()) return;

  // Name the channels on the cycle, in traversal order, deduplicated.
  std::vector<lis::ChannelId> channels;
  for (const graph::EdgeId place : witness) {
    const lis::ChannelId c = doubled.place_channel[static_cast<std::size_t>(place)];
    if (c == graph::kInvalidEdge) continue;
    if (std::find(channels.begin(), channels.end(), c) == channels.end()) channels.push_back(c);
  }

  std::string via;
  for (const lis::ChannelId c : channels) {
    if (!via.empty()) via += ", ";
    via += channel_desc(lis, c);
  }
  Diagnostic d = make("L001", "zero-token cycle in d[G]" +
                                  (via.empty() ? std::string() : " through channel(s) " + via) +
                                  ": the marked graph deadlocks, no sustainable "
                                  "throughput exists");
  CycleEvidence evidence;
  evidence.places.reserve(witness.size());
  for (const graph::EdgeId place : witness) evidence.places.push_back(place);
  evidence.tokens = 0;  // zero by construction — that is the finding
  evidence.channels = channels;
  d.witness = std::move(evidence);
  if (!channels.empty()) d.location.channel = channels.front();
  for (const lis::ChannelId c : channels) {
    if (lis.channel(c).queue_capacity != 0) continue;
    FixIt fix;
    fix.description = "raise the queue on channel " + channel_desc(lis, c) +
                      " to 1 to put a token on the cycle";
    fix.channel = c;
    fix.set_queue_capacity = 1;
    d.fixits.push_back(std::move(fix));
  }
  report.diagnostics.push_back(std::move(d));
}

// --- L101: isolated cores --------------------------------------------------

void check_isolated_cores(const lis::LisGraph& lis, Report& report) {
  const graph::Digraph& g = lis.structure();
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(lis.num_cores()); ++v) {
    if (g.out_degree(v) != 0 || g.in_degree(v) != 0) continue;
    Diagnostic d = make("L101", "core " + lis.core_name(v) +
                                    " has no channels; it cannot exchange data with "
                                    "the rest of the system");
    d.location.core = v;
    report.diagnostics.push_back(std::move(d));
  }
}

// --- L102: duplicate channels ----------------------------------------------

void check_duplicate_channels(const lis::LisGraph& lis, Report& report) {
  std::map<std::tuple<lis::CoreId, lis::CoreId, int, int>, lis::ChannelId> seen;
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    const lis::Channel& ch = lis.channel(c);
    const auto key = std::make_tuple(ch.src, ch.dst, ch.relay_stations, ch.queue_capacity);
    const auto [it, inserted] = seen.emplace(key, c);
    if (inserted) continue;
    Diagnostic d =
        make("L102", "channel " + channel_desc(lis, c) +
                         " duplicates an earlier channel with identical endpoints, rs and q; "
                         "replicated channels are legal but this may be a copy-paste error");
    d.location.channel = c;
    report.diagnostics.push_back(std::move(d));
  }
}

// --- L103: disconnected netlist --------------------------------------------

void check_disconnected(const lis::LisGraph& lis, Report& report) {
  const std::size_t n = lis.num_cores();
  if (n < 2) return;
  // Weak components by union over channel endpoints.
  std::vector<lis::CoreId> parent(n);
  for (std::size_t v = 0; v < n; ++v) parent[v] = static_cast<lis::CoreId>(v);
  const auto find = [&parent](lis::CoreId v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    const lis::Channel& ch = lis.channel(c);
    parent[static_cast<std::size_t>(find(ch.src))] = find(ch.dst);
  }
  std::size_t components = 0;
  lis::CoreId second_root = graph::kInvalidNode;
  for (std::size_t v = 0; v < n; ++v) {
    if (find(static_cast<lis::CoreId>(v)) != static_cast<lis::CoreId>(v)) continue;
    ++components;
    if (components == 2) second_root = static_cast<lis::CoreId>(v);
  }
  if (components < 2) return;
  Diagnostic d = make("L103", "the netlist splits into " + std::to_string(components) +
                                  " disconnected components; the MST analysis reports "
                                  "only the slowest one and the others are dead weight");
  d.location.core = second_root;
  report.diagnostics.push_back(std::move(d));
}

// --- L201/L202/L203/L204: throughput antipatterns (target-gated) -----------

void check_throughput(const lis::LisGraph& lis, const LintOptions& options, Report& report) {
  const util::Rational target = options.target;
  const core::DegradationReport degradation = core::explain_degradation(lis);
  const util::Rational ideal = degradation.theta_ideal;
  const util::Rational practical = degradation.theta_practical;

  if (target > ideal) {
    Diagnostic d = make("L203", "target throughput " + target.to_string() +
                                    " exceeds the ideal MST theta(G) = " + ideal.to_string() +
                                    "; no queue sizing can reach it — the relay-station "
                                    "placement itself limits throughput (Sec. VI repair "
                                    "territory, not Sec. VII)");
    report.diagnostics.push_back(std::move(d));
  }

  if (practical >= target) return;  // target met; nothing below fires

  {
    std::string cycle;
    lis::ChannelId anchor = graph::kInvalidEdge;
    for (const core::CriticalHop& hop : degradation.critical_cycle) {
      if (!cycle.empty()) cycle += ", ";
      cycle += hop.description;
      if (anchor == graph::kInvalidEdge && hop.backward && hop.channel != graph::kInvalidEdge) {
        anchor = hop.channel;
      }
    }
    Diagnostic d = make("L201", "practical MST theta(d[G]) = " + practical.to_string() +
                                    " misses the target " + target.to_string() +
                                    (cycle.empty() ? std::string()
                                                   : "; critical cycle: " + cycle));
    d.location.channel = anchor;
    if (!degradation.cycle_place_ids.empty()) {
      CycleEvidence evidence;
      evidence.places = degradation.cycle_place_ids;
      evidence.tokens = degradation.cycle_tokens;
      for (const core::CriticalHop& hop : degradation.critical_cycle) {
        if (hop.channel == graph::kInvalidEdge) continue;
        if (std::find(evidence.channels.begin(), evidence.channels.end(), hop.channel) ==
            evidence.channels.end()) {
          evidence.channels.push_back(hop.channel);
        }
      }
      d.witness = std::move(evidence);
    }
    report.diagnostics.push_back(std::move(d));
  }

  // L202: if raising input queues alone reaches the (ideal-clamped) target,
  // the current capacities sit below their token-deficit lower bound. The
  // lazy solver's solution is a feasible witness and doubles as the fix-it
  // list — no up-front cycle enumeration on this (default) path.
  {
    core::QsOptions qs;
    qs.method = core::QsMethod::kLazy;
    qs.build.target_mst = target;
    qs.build.max_cycles = options.max_cycles;
    const core::QsReport sized = core::size_queues(lis, qs);
    const util::Rational clamped = std::min(target, ideal);
    const core::SolverOutcome* best =
        sized.exact ? &*sized.exact : sized.heuristic ? &*sized.heuristic : nullptr;
    if (sized.achieved_mst >= clamped && best != nullptr && best->total_extra_tokens > 0) {
      Diagnostic d =
          make("L202", "input queues are " + std::to_string(best->total_extra_tokens) +
                           " slot(s) below their token-deficit lower bound for target " +
                           clamped.to_string() + "; sizing them reaches " +
                           sized.achieved_mst.to_string() +
                           (sized.problem.truncated ? " (cycle enumeration truncated — the "
                                                      "bound may be incomplete)"
                                                    : ""));
      for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
        const int before = lis.channel(c).queue_capacity;
        const int after = sized.sized.channel(c).queue_capacity;
        if (after <= before) continue;
        if (d.location.channel == graph::kInvalidEdge) d.location.channel = c;
        FixIt fix;
        fix.description = "raise the queue on backedge of channel " + channel_desc(lis, c) +
                          " from " + std::to_string(before) + " to " + std::to_string(after);
        fix.channel = c;
        fix.set_queue_capacity = after;
        d.fixits.push_back(std::move(fix));
      }
      report.diagnostics.push_back(std::move(d));
    }
  }

  // L204: reconvergent parallel channels with unbalanced relay-station
  // counts. The lighter path delivers early, fills its queue, and stalls the
  // producer at the heavier path's rate — the Fig. 1 pattern of the paper.
  {
    std::map<std::pair<lis::CoreId, lis::CoreId>, std::vector<lis::ChannelId>> groups;
    for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
      const lis::Channel& ch = lis.channel(c);
      groups[{ch.src, ch.dst}].push_back(c);
    }
    for (const auto& [endpoints, members] : groups) {
      if (members.size() < 2) continue;
      int min_rs = lis.channel(members.front()).relay_stations;
      int max_rs = min_rs;
      for (const lis::ChannelId c : members) {
        min_rs = std::min(min_rs, lis.channel(c).relay_stations);
        max_rs = std::max(max_rs, lis.channel(c).relay_stations);
      }
      if (min_rs == max_rs) continue;
      Diagnostic d = make(
          "L204", "parallel channels " + channel_desc(lis, members.front()) + " carry between " +
                      std::to_string(min_rs) + " and " + std::to_string(max_rs) +
                      " relay stations; the shorter path stalls the longer one while the "
                      "target is missed — balance them or size the shorter path's queue");
      d.location.channel = members.front();
      for (const lis::ChannelId c : members) {
        const int rs = lis.channel(c).relay_stations;
        if (rs >= max_rs) continue;
        FixIt fix;
        fix.description = "insert " + std::to_string(max_rs - rs) +
                          " relay station(s) on channel " + channel_desc(lis, c) +
                          " to balance the reconvergent paths";
        fix.channel = c;
        fix.add_relay_stations = max_rs - rs;
        d.fixits.push_back(std::move(fix));
      }
      report.diagnostics.push_back(std::move(d));
    }
  }
}

// --- L301: cycle-enumeration blowup ----------------------------------------

void check_blowup(const lis::LisGraph& lis, const LintOptions& options, Report& report) {
  if (lis.num_cores() == 0) return;
  const lis::Expansion doubled = lis::expand_doubled(lis);
  const graph::Digraph& g = doubled.graph.structure();
  const graph::SccPartition partition = graph::scc(g);

  // Count places inside each SCC; the cyclomatic number E - V + 1 of a
  // strongly connected graph lower-bounds its independent cycles, and
  // elementary-cycle counts grow exponentially in it for the dense SCCs the
  // generator produces — a cheap structural predictor of Johnson blowup.
  std::vector<std::int64_t> internal_edges(static_cast<std::size_t>(partition.count), 0);
  for (graph::EdgeId e = 0; e < static_cast<graph::EdgeId>(g.num_edges()); ++e) {
    const graph::Edge& edge = g.edge(e);
    const int cs = partition.comp_of[static_cast<std::size_t>(edge.src)];
    const int cd = partition.comp_of[static_cast<std::size_t>(edge.dst)];
    if (cs == cd) ++internal_edges[static_cast<std::size_t>(cs)];
  }
  for (int comp = 0; comp < partition.count; ++comp) {
    const auto nodes =
        static_cast<std::int64_t>(partition.members[static_cast<std::size_t>(comp)].size());
    if (nodes < 2) continue;
    const std::int64_t mu = internal_edges[static_cast<std::size_t>(comp)] - nodes + 1;
    if (mu < options.blowup_exponent) continue;
    Diagnostic d = make(
        "L301", "an SCC of d[G] with " + std::to_string(nodes) + " transitions and " +
                    std::to_string(internal_edges[static_cast<std::size_t>(comp)]) +
                    " places has cyclomatic number " + std::to_string(mu) +
                    "; elementary-cycle enumeration can reach ~2^" + std::to_string(mu) +
                    " cycles — informational: the default analyze/size-queues/lint paths "
                    "are enumeration-free, only the opt-in eager solvers are affected");
    report.diagnostics.push_back(std::move(d));
  }
}

// --- L302: oversized queues ------------------------------------------------

void check_oversized_queues(const lis::LisGraph& lis, Report& report) {
  bool any_big = false;
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    any_big = any_big || lis.channel(c).queue_capacity > 1;
  }
  if (!any_big) return;  // q = 1 everywhere can never be oversized
  for (const core::ChannelStorage& s : core::storage_bounds(lis)) {
    if (s.configured_capacity <= 1) continue;
    if (s.occupancy_bound >= s.configured_capacity) continue;
    Diagnostic d = make(
        "L302", "channel " + channel_desc(lis, s.channel) + " configures q = " +
                    std::to_string(s.configured_capacity) +
                    " but its structural occupancy bound is " + std::to_string(s.occupancy_bound) +
                    "; the extra slots can never fill");
    d.location.channel = s.channel;
    FixIt fix;
    fix.description = "lower the queue on channel " + channel_desc(lis, s.channel) +
                      " toward its occupancy bound " + std::to_string(s.occupancy_bound);
    fix.channel = s.channel;
    fix.set_queue_capacity = static_cast<int>(std::max<std::int64_t>(1, s.occupancy_bound));
    d.fixits.push_back(std::move(fix));
    report.diagnostics.push_back(std::move(d));
  }
}

}  // namespace

Report run_checks(const lis::LisGraph& lis, const LintOptions& options) {
  Report report;
  // Error tier, catalog order (L001 before L002 in the output even though
  // L002's scan is cheaper — order is part of the rendering contract).
  check_deadlock(lis, report);
  check_zero_queues(lis, report);
  check_empty(lis, report);
  if (options.errors_only) return report;

  // Structural warnings are safe on any parseable netlist.
  check_isolated_cores(lis, report);
  check_duplicate_channels(lis, report);
  check_disconnected(lis, report);

  // The deeper tiers run marked-graph analyses that are only defined on
  // error-free models; skip them when the error tier fired.
  if (report.has_errors()) return report;
  if (options.target > util::Rational(0)) check_throughput(lis, options, report);
  check_blowup(lis, options, report);
  check_oversized_queues(lis, report);
  return report;
}

Report run_error_checks(const lis::LisGraph& lis) {
  LintOptions options;
  options.errors_only = true;
  return run_checks(lis, options);
}

}  // namespace lid::linter
