// The lint checks: structural errors, throughput antipatterns, and
// resource-hazard warnings over a LIS netlist and its marked-graph
// expansions. See docs/lint.md for the full catalog.
//
// Checks are tiered. Error-tier checks (L0xx) are cheap — O(cores +
// channels + places) — and gate everything else: when any fires, the model
// is outside the domain the paper's analyses are defined on, so the deeper
// (and more expensive) warning-tier checks are skipped; `analyze` and
// `size_queues` run exactly this error tier as their pre-flight. The
// throughput antipatterns (L2xx) only fire against an explicit target
// throughput — a netlist that merely *has* backpressure degradation is not
// wrong, so without a target they stay silent (the shipped corpus and the
// paper's own examples lint clean).
#pragma once

#include "lint/diagnostic.hpp"
#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::linter {

struct LintOptions {
  /// Target throughput the L2xx antipattern checks measure against.
  /// Zero (the default) disables them.
  util::Rational target = util::Rational(0);
  /// Run only the error tier (L0xx) — the analyze/size-queues pre-flight.
  bool errors_only = false;
  /// L301 fires when an SCC of d[G] has cyclomatic number (places -
  /// transitions + 1) at least this large — i.e. when the elementary-cycle
  /// count can reach 2^exponent. The default sits above the COFDM case
  /// study (mu = 49) and the densest shipped corpus system (mu = 64), both
  /// of which enumerate tractably in practice; truly dense SCCs (complete
  /// digraphs on 9+ cores) blow past 70 immediately.
  int blowup_exponent = 70;
  /// Cycle-enumeration cap for the L202 token-deficit bound (0 = unlimited).
  std::size_t max_cycles = 500'000;
};

/// Runs the registered checks over `lis` in catalog order. Deterministic:
/// diagnostics depend only on the netlist and the options.
Report run_checks(const lis::LisGraph& lis, const LintOptions& options = {});

/// The analyze/size-queues pre-flight: error tier only.
Report run_error_checks(const lis::LisGraph& lis);

}  // namespace lid::linter
