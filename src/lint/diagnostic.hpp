// The diagnostic model of the lid_lint static-analysis subsystem.
//
// A Diagnostic is one finding of one check: a stable code ("L001"...), a
// severity, a human message, an optional location (core/channel id, resolved
// to a netlist file/line when the instance was parsed from `.lis` text with
// provenance), and zero or more machine-applicable fix-it suggestions
// ("raise the queue on channel X to 2", "insert a relay station on Y").
//
// The check catalog (codes, default severities, one-line summaries) lives
// here too, so renderers — including the SARIF one, which must emit a rule
// table — and documentation can enumerate every check without running any.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lis/lis_graph.hpp"
#include "lis/netlist_io.hpp"

namespace lid::linter {

/// Severity tiers. kError marks models the paper's analyses are not defined
/// on (they would previously die in a LID_ENSURE mid-solve); kWarning marks
/// structures that are analyzable but almost certainly wrong or wasteful;
/// kInfo marks suspicious-but-legal patterns.
enum class Severity {
  kError,
  kWarning,
  kInfo,
};

/// "error" / "warning" / "info".
const char* to_string(Severity severity);

/// SARIF 2.1.0 `level` for a severity ("error" / "warning" / "note").
const char* sarif_level(Severity severity);

/// Where a diagnostic points. Core- and channel-anchored locations are
/// mutually exclusive; both may be absent for whole-netlist findings
/// (e.g. L003 empty netlist).
struct Location {
  lis::CoreId core = graph::kInvalidNode;
  lis::ChannelId channel = graph::kInvalidEdge;

  [[nodiscard]] bool has_core() const { return core != graph::kInvalidNode; }
  [[nodiscard]] bool has_channel() const { return channel != graph::kInvalidEdge; }
};

/// One machine-applicable repair suggestion. `description` is the human
/// rendering; the typed fields make the edit applicable without parsing it:
/// a non-negative `set_queue_capacity` sets channel's q, a positive
/// `add_relay_stations` adds that many relay stations to channel.
struct FixIt {
  std::string description;
  lis::ChannelId channel = graph::kInvalidEdge;
  int set_queue_capacity = -1;
  int add_relay_stations = 0;
};

/// Machine-checkable evidence behind a cycle-derived finding: the concrete
/// closed walk of d[G] that triggered it, as place ids (re-checkable against
/// lis::expand_doubled without re-running the analysis), its token count,
/// and the netlist channels it runs through in traversal order (dedup).
/// Checks that derive their finding from a witness cycle attach this (L001
/// zero-token cycle, L201 critical cycle); renderers embed it in JSON and
/// SARIF (`properties.witness`).
struct CycleEvidence {
  std::vector<std::int64_t> places;
  std::int64_t tokens = 0;
  std::vector<lis::ChannelId> channels;
};

/// One finding.
struct Diagnostic {
  std::string code;  ///< stable check code, "L001"...
  Severity severity = Severity::kWarning;
  std::string message;
  Location location;
  std::vector<FixIt> fixits;
  std::optional<CycleEvidence> witness;
};

/// Static description of one registered check.
struct CheckInfo {
  const char* code;
  Severity severity;     ///< the severity its diagnostics carry
  const char* name;      ///< short kebab-case name ("zero-token-cycle")
  const char* summary;   ///< one-line description for rule tables / docs
  bool needs_target;     ///< only fires when LintOptions::target is set
};

/// Every registered check, in code order. This is the SARIF rule table.
std::span<const CheckInfo> check_catalog();

/// Catalog entry for `code`, or nullptr for an unknown code.
const CheckInfo* find_check(const std::string& code);

/// A lint run's findings over one netlist, in deterministic order (checks
/// run in catalog order; each check emits in model order).
struct Report {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const { return count(Severity::kWarning); }
  [[nodiscard]] std::size_t infos() const { return count(Severity::kInfo); }
  [[nodiscard]] bool has_errors() const { return errors() > 0; }
  [[nodiscard]] bool empty() const { return diagnostics.empty(); }

  /// True when some diagnostic carries `code`.
  [[nodiscard]] bool has_code(const std::string& code) const;

  /// Compact one-line summary of the error-tier findings, for embedding in
  /// an Error message: "L001 <msg>; L002 <msg> (+2 more)". Empty when clean.
  [[nodiscard]] std::string error_summary(std::size_t max_items = 2) const;
};

}  // namespace lid::linter
