// Internal assembly helpers shared by the lid:: facade (lid_api.cpp) and the
// engine's cache-pooled execution path (engine/cached_analysis.hpp). They
// exist so the two paths cannot drift: a registered-model `analyze` on the
// serve layer and a direct lid::analyze produce byte-identical results
// because both run the exact same report-to-struct conversion. Not a stable
// public API — include lid_api.hpp instead unless you are one of those two
// call sites.
#pragma once

#include <optional>

#include "core/diagnostics.hpp"
#include "core/queue_sizing.hpp"
#include "core/rate_safety.hpp"
#include "lid_api.hpp"

namespace lid::detail {

/// The analyze/size-queues pre-flight: error-tier lint. Returns the kLint
/// Error to fail with, or nothing when the model is analyzable.
std::optional<Error> lint_preflight(const char* who, const lis::LisGraph& lis);

/// Assembles the public Analysis from precomputed core reports. `rates` must
/// be non-null exactly when options.rate_safety is set. May throw; callers
/// wrap with their exception-to-Error policy.
Analysis analysis_from_reports(const lis::LisGraph& lis, const core::DegradationReport& report,
                               const core::RateSafetyReport* rates, const AnalyzeOptions& options);

/// SizeQueuesOptions -> the core solver configuration, exactly as
/// lid::size_queues builds it (solver mapping, clamps, cancel threading).
core::QsOptions qs_options_from(const SizeQueuesOptions& options);

/// QsReport -> the public Sizing, including the cancelled-enumeration ->
/// kTimeout policy. `original` supplies the name of the sized instance;
/// `options` controls certificate emission (options.certify).
Result<Sizing> sizing_from_report(const lis::LisGraph& lis, const core::QsReport& report,
                                  const Instance& original, const SizeQueuesOptions& options);

}  // namespace lid::detail
