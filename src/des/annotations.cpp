#include "des/annotations.hpp"

#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace lid::des {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

[[noreturn]] void bad_line(const std::string& line, const std::string& why) {
  throw std::invalid_argument("bad DES annotation '" + line + "': " + why);
}

/// "key=value" -> value when the key matches, nullopt otherwise.
std::optional<std::string> keyed(const std::string& token, const std::string& key) {
  if (token.size() <= key.size() + 1 || token.compare(0, key.size(), key) != 0 ||
      token[key.size()] != '=') {
    return std::nullopt;
  }
  return token.substr(key.size() + 1);
}

}  // namespace

Profile parse_profile(const std::string& lis_text, const lis::LisGraph& lis) {
  Profile profile;
  profile.channel_latency.assign(lis.num_channels(), std::nullopt);
  profile.core_arrival.assign(lis.num_cores(), std::nullopt);

  std::istringstream is(lis_text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line.compare(start, 2, "#!") != 0) continue;
    const std::vector<std::string> tokens = tokenize(line.substr(start + 2));
    if (tokens.empty()) bad_line(line, "empty directive");
    if (tokens[0] == "channel") {
      if (tokens.size() != 3) bad_line(line, "expected '#! channel <index> latency=<spec>'");
      std::size_t index = 0;
      try {
        index = std::stoul(tokens[1]);
      } catch (const std::exception&) {
        bad_line(line, "channel index is not a number");
      }
      if (index >= lis.num_channels()) bad_line(line, "channel index out of range");
      const auto spec = keyed(tokens[2], "latency");
      if (!spec) bad_line(line, "expected latency=<spec>");
      const auto dist = parse_latency_dist(*spec);
      if (!dist) bad_line(line, "unparseable latency spec '" + *spec + "'");
      if (profile.channel_latency[index]) bad_line(line, "duplicate channel assignment");
      profile.channel_latency[index] = *dist;
    } else if (tokens[0] == "source") {
      if (tokens.size() != 3) bad_line(line, "expected '#! source <core> arrival=<spec>'");
      lis::CoreId core = graph::kInvalidNode;
      for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(lis.num_cores()); ++v) {
        if (lis.core_name(v) == tokens[1]) {
          core = v;
          break;
        }
      }
      if (core == graph::kInvalidNode) bad_line(line, "unknown core '" + tokens[1] + "'");
      const auto spec = keyed(tokens[2], "arrival");
      if (!spec) bad_line(line, "expected arrival=<spec>");
      const auto arrival = parse_arrival_spec(*spec);
      if (!arrival) bad_line(line, "unparseable arrival spec '" + *spec + "'");
      auto& slot = profile.core_arrival[static_cast<std::size_t>(core)];
      if (slot) bad_line(line, "duplicate source assignment");
      slot = *arrival;
    } else {
      bad_line(line, "unknown directive '" + tokens[0] + "'");
    }
  }
  return profile;
}

std::string profile_text(const Profile& profile, const lis::LisGraph& lis) {
  LID_ENSURE(profile.channel_latency.empty() ||
                 profile.channel_latency.size() == lis.num_channels(),
             "profile_text: profile channel count does not match the netlist");
  LID_ENSURE(profile.core_arrival.empty() || profile.core_arrival.size() == lis.num_cores(),
             "profile_text: profile core count does not match the netlist");
  std::ostringstream os;
  for (std::size_t c = 0; c < profile.channel_latency.size(); ++c) {
    if (!profile.channel_latency[c]) continue;
    os << "#! channel " << c << " latency=" << profile.channel_latency[c]->to_string() << "\n";
  }
  for (std::size_t v = 0; v < profile.core_arrival.size(); ++v) {
    if (!profile.core_arrival[v]) continue;
    os << "#! source " << lis.core_name(static_cast<lis::CoreId>(v))
       << " arrival=" << profile.core_arrival[v]->to_string() << "\n";
  }
  return os.str();
}

Profile random_profile(const lis::LisGraph& lis, const RandomProfileOptions& options,
                       util::Rng& rng) {
  LID_ENSURE(options.max_latency >= 1 && options.max_period >= 1,
             "random_profile: bounds must be at least 1");
  Profile profile;
  profile.channel_latency.assign(lis.num_channels(), std::nullopt);
  profile.core_arrival.assign(lis.num_cores(), std::nullopt);
  const int max_latency = static_cast<int>(options.max_latency);
  const int max_period = static_cast<int>(options.max_period);
  for (std::size_t c = 0; c < lis.num_channels(); ++c) {
    switch (rng.uniform_int(0, 2)) {
      case 0:
        profile.channel_latency[c] = LatencyDist::fixed(rng.uniform_int(1, max_latency));
        break;
      case 1: {
        const int lo = rng.uniform_int(1, max_latency);
        profile.channel_latency[c] = LatencyDist::uniform(lo, rng.uniform_int(lo, max_latency));
        break;
      }
      default: {
        // Success probability in [1/max_latency, 1] keeps the mean <= max.
        const int den = rng.uniform_int(1, max_latency);
        profile.channel_latency[c] = LatencyDist::geometric(1, den);
        break;
      }
    }
  }
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(lis.num_cores()); ++v) {
    if (lis.structure().in_degree(v) != 0) continue;
    switch (rng.uniform_int(0, 2)) {
      case 0:
        profile.core_arrival[static_cast<std::size_t>(v)] =
            ArrivalSpec::periodic(rng.uniform_int(1, max_period));
        break;
      case 1:
        profile.core_arrival[static_cast<std::size_t>(v)] =
            ArrivalSpec::poisson(1, rng.uniform_int(1, max_period));
        break;
      default: {
        const int on = rng.uniform_int(1, max_period);
        const int off = rng.uniform_int(1, max_period);
        profile.core_arrival[static_cast<std::size_t>(v)] = ArrivalSpec::bursty(on, off);
        break;
      }
    }
  }
  return profile;
}

}  // namespace lid::des
