// Event-driven stochastic simulation of latency-insensitive systems.
//
// The paper's framework (and the mg simulator) is synchronous and
// fixed-latency: every transition fires once per clock and every hop takes
// exactly one cycle. Real deployments live elsewhere — channels jitter,
// sources burst, queues fill. This subsystem simulates the doubled marked
// graph d[G] as a discrete-event system over an event calendar keyed on
// timestamped token arrivals (the per-element-timestamped latency-queue
// idiom): each forward hop of a channel draws its latency from a per-channel
// distribution, source cores can be driven by open-system arrival processes,
// and backpressure follows the relay-station protocol exactly (a transition
// fires only when every input place — data *and* credit — holds an arrived
// token, at most once per cycle).
//
// Everything is integer/rational: timestamps are int64 cycles, random draws
// are hand-rolled from raw std::mt19937_64 output (whose sequence the C++
// standard pins down exactly) with rational probabilities, and all statistics
// (throughput, time-weighted occupancy means, percentiles) are exact. Reports
// are therefore byte-identical for a given seed on every platform.
//
// Cross-validation contract (selfcheck invariant 13): in the deterministic
// limit — all latencies fixed at 1, closed system (saturated sources) — the
// simulated throughput equals min(1, θ(d[G])) exactly, via the same
// state-recurrence periodicity detection the mg simulator uses. A system
// whose queues were sized by size_queues() simulates at exactly
// min(1, θ_ideal); when that rate is 1 it also runs stall-free past the
// transient (every core fires every cycle, so no credit can arrive late).
// At rates below 1 steady-state stalls are expected even when sized: credit
// backedges then lie on cycles whose ratio ties the forward critical cycle,
// so backpressure legitimately shares the binding role without costing
// throughput — equal cycle means equalize rates, not earliest schedules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lis/lis_graph.hpp"
#include "util/cancel.hpp"
#include "util/rational.hpp"

namespace lid::des {

// ---------------------------------------------------------------------------
// Latency distributions (per channel)
// ---------------------------------------------------------------------------

enum class DistKind : std::uint8_t {
  kFixed,      ///< every hop traversal takes exactly `lo` cycles
  kUniform,    ///< uniform integer latency in [lo, hi]
  kGeometric,  ///< 1 + Geometric(prob_num/prob_den) failures; mean den/num
};

/// A per-channel forward-hop latency model. All draws are >= 1 cycle, so an
/// event scheduled at time t always lands at t+1 or later — the simulator
/// never has to resolve same-cycle cascades.
struct LatencyDist {
  DistKind kind = DistKind::kFixed;
  std::int64_t lo = 1;  ///< kFixed: the latency; kUniform: lower bound
  std::int64_t hi = 1;  ///< kUniform: upper bound (>= lo)
  /// kGeometric: per-trial success probability prob_num/prob_den; the latency
  /// is the number of trials up to and including the first success (>= 1).
  std::int64_t prob_num = 1;
  std::int64_t prob_den = 2;

  static LatencyDist fixed(std::int64_t cycles);
  static LatencyDist uniform(std::int64_t lo, std::int64_t hi);
  static LatencyDist geometric(std::int64_t num, std::int64_t den);

  /// True when every draw is the same value (the deterministic limit).
  [[nodiscard]] bool is_deterministic() const { return kind == DistKind::kFixed; }
  /// True for fixed:1 — the paper's synchronous unit-latency model.
  [[nodiscard]] bool is_unit() const { return kind == DistKind::kFixed && lo == 1; }

  /// Spec-string form: "fixed:3", "uniform:1:4", "geometric:1/2".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const LatencyDist&) const = default;
};

/// Parses a spec string ("fixed:3" / "uniform:1:4" / "geometric:1/2"; a bare
/// integer "3" is shorthand for fixed:3). Returns nullopt on malformed input
/// or out-of-range parameters (latencies must lie in [1, 1'000'000], the
/// geometric success probability in (0, 1]).
std::optional<LatencyDist> parse_latency_dist(const std::string& spec);

// ---------------------------------------------------------------------------
// Arrival processes (per source core)
// ---------------------------------------------------------------------------

enum class ArrivalKind : std::uint8_t {
  kSaturated,  ///< closed system: the source always has data (mg semantics)
  kPeriodic,   ///< one arrival every `period` cycles, starting at cycle 0
  kPoisson,    ///< Bernoulli(num/den) arrival per cycle (discrete Poisson)
  kBursty,     ///< deterministic on/off: `on` cycles of back-to-back
               ///< arrivals, then `off` silent cycles, repeating
};

/// An open-system arrival process attached to a source core (a core with no
/// incoming channels). Non-saturated sources fire only when their arrival
/// backlog is non-empty; the backlog is unbounded (the open-system boundary
/// has no backpressure — everything inside the system does).
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kSaturated;
  std::int64_t period = 1;  ///< kPeriodic: inter-arrival gap (>= 1)
  std::int64_t num = 1;     ///< kPoisson: per-cycle arrival probability num/den
  std::int64_t den = 2;
  std::int64_t on = 8;   ///< kBursty: burst length in cycles (>= 1)
  std::int64_t off = 8;  ///< kBursty: gap length in cycles (>= 1)

  static ArrivalSpec saturated();
  static ArrivalSpec periodic(std::int64_t period);
  static ArrivalSpec poisson(std::int64_t num, std::int64_t den);
  static ArrivalSpec bursty(std::int64_t on, std::int64_t off);

  /// True when the process involves no random draws.
  [[nodiscard]] bool is_deterministic() const { return kind != ArrivalKind::kPoisson; }

  /// Spec-string form: "saturated", "rate:4", "poisson:1/4", "bursty:8:8".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const ArrivalSpec&) const = default;
};

/// Parses a spec string ("saturated" / "rate:P" / "poisson:N/D" /
/// "bursty:ON:OFF"). Returns nullopt on malformed input or out-of-range
/// parameters (period/on/off in [1, 1'000'000], probability in (0, 1]).
std::optional<ArrivalSpec> parse_arrival_spec(const std::string& spec);

// ---------------------------------------------------------------------------
// Stochastic profile (per-netlist overrides, carried by `#!` annotations)
// ---------------------------------------------------------------------------

/// Per-channel / per-source overrides of the simulation-wide defaults. The
/// annotation layer (annotations.hpp) round-trips a Profile through `#!`
/// comment lines in .lis text, which legacy readers skip as comments.
struct Profile {
  /// channel_latency[ch] overrides the default latency model of channel ch.
  std::vector<std::optional<LatencyDist>> channel_latency;
  /// core_arrival[v] overrides the default arrival process of source core v
  /// (ignored for non-source cores).
  std::vector<std::optional<ArrivalSpec>> core_arrival;

  [[nodiscard]] bool empty() const;
  bool operator==(const Profile&) const = default;
};

// ---------------------------------------------------------------------------
// Simulation options / report
// ---------------------------------------------------------------------------

struct SimOptions {
  /// Measured window in cycles. The run covers [0, warmup + horizon) and
  /// statistics cover [warmup, warmup + horizon).
  std::int64_t horizon = 10'000;
  /// Cycles excluded from occupancy/throughput statistics (transient skip).
  std::int64_t warmup = 0;
  /// RNG seed; reports are byte-identical for identical (netlist, options).
  std::uint64_t seed = 1;
  /// Default forward-hop latency model for every channel.
  LatencyDist channel_latency{};
  /// Default arrival process for every source core.
  ArrivalSpec arrival{};
  /// Per-channel / per-source overrides (e.g. from `#!` annotations).
  Profile profile;
  /// Record per-channel occupancy histograms (p50/p95/p99/max/mean). Off
  /// saves the per-event bookkeeping; counters and throughput still work.
  bool trace_occupancy = true;
  /// Core whose firing rate is reported as throughput. In a connected d[G]
  /// every core has the same asymptotic rate, so this is a labeling choice.
  lis::CoreId reference = 0;
  /// In the fully deterministic regime, detect state recurrence and return
  /// the exact periodic throughput (stopping early). Ignored when any
  /// distribution or arrival process is stochastic.
  bool detect_period = true;
  util::CancelToken cancel;
};

/// Per-channel occupancy and backpressure statistics. Occupancy counts the
/// tokens that have *arrived* at the destination shell's input queue place
/// and not yet been consumed, sampled at the end of each cycle. Its
/// structural bound is q + 2·rs + 1 (queue slots + relay-station slots + the
/// source shell's initial latched output, which the doubled-graph abstraction
/// lets drain forward).
struct ChannelStats {
  lis::ChannelId channel = 0;
  lis::CoreId src = 0;
  lis::CoreId dst = 0;
  int capacity = 0;        ///< configured queue capacity q
  int relay_stations = 0;  ///< rs on the channel

  /// Conservation counters over the whole run (including warmup):
  /// tokens_in == tokens_out + in_flight always holds.
  std::int64_t tokens_in = 0;   ///< tokens injected into the queue place
                                ///< (initial marking + producer firings)
  std::int64_t tokens_out = 0;  ///< tokens consumed by the destination shell
  std::int64_t in_flight = 0;   ///< still traveling or queued at end of run

  /// Backpressure stalls over the measured window: firings where the data
  /// side was ready but a credit (backward place) on this channel arrived
  /// strictly later and delayed the firing.
  std::int64_t stall_events = 0;
  std::int64_t stall_cycles = 0;

  /// Occupancy statistics over the measured window (time-weighted; exact).
  std::int64_t max_occupancy = 0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
  util::Rational mean_occupancy;  ///< Σ occupancy·cycles / measured cycles
  /// histogram[v] = number of measured cycles spent at occupancy v.
  std::vector<std::int64_t> histogram;
};

struct SimReport {
  // Echo of the run configuration (for replayability from the artifact).
  std::int64_t horizon = 0;
  std::int64_t warmup = 0;
  std::uint64_t seed = 0;
  bool deterministic = false;  ///< no stochastic draws anywhere in the run

  /// Cycles actually simulated (< warmup + horizon when a recurrence was
  /// detected or the calendar drained).
  std::int64_t cycles_run = 0;
  std::int64_t events = 0;   ///< token-arrival events processed
  std::int64_t firings = 0;  ///< total transition firings

  /// Reference-core firings inside the measured window.
  std::int64_t reference_firings = 0;
  /// Exact periodic rate when periodic_found, else reference_firings divided
  /// by the measured cycles.
  util::Rational throughput;
  bool periodic_found = false;
  std::int64_t transient_cycles = 0;
  std::int64_t period_cycles = 0;

  /// Open-system arrivals generated / consumed across all sources, and the
  /// largest backlog any source accumulated.
  std::int64_t arrivals_generated = 0;
  std::int64_t arrivals_consumed = 0;
  std::int64_t max_backlog = 0;

  /// Measured-window stall totals (sum over channels plus internal pipeline
  /// backedges, which have no channel to be attributed to).
  std::int64_t total_stall_events = 0;
  std::int64_t total_stall_cycles = 0;

  bool cancelled = false;

  std::vector<ChannelStats> channels;  ///< indexed by ChannelId

  /// Deterministic key=value text rendering (one line per scalar, one line
  /// per channel). Two runs with identical inputs produce byte-identical
  /// serializations — the seed-stability contract tests compare these.
  [[nodiscard]] std::string serialize() const;
};

/// Simulates the doubled marked graph d[G] of `lis` as a discrete-event
/// system. Throws std::invalid_argument on malformed options (non-positive
/// horizon, out-of-range reference core, profile sized to a different
/// netlist). Polls options.cancel once per event batch (strided); a
/// cancelled run returns with cancelled = true and whatever statistics had
/// accumulated.
SimReport simulate(const lis::LisGraph& lis, const SimOptions& options = {});

}  // namespace lid::des
