#include "des/des.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <sstream>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/sim_loop.hpp"

namespace lid::des {

namespace {

constexpr std::int64_t kMaxParam = 1'000'000;

// --- spec-string helpers ----------------------------------------------------

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::optional<std::int64_t> parse_int(const std::string& token) {
  if (token.empty() || token.size() > 18) return std::nullopt;
  std::int64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

/// Parses "N/D" with 1 <= N <= D <= kMaxParam (a probability in (0, 1]).
std::optional<std::pair<std::int64_t, std::int64_t>> parse_prob(const std::string& token) {
  const std::vector<std::string> parts = split(token, '/');
  if (parts.size() != 2) return std::nullopt;
  const auto num = parse_int(parts[0]);
  const auto den = parse_int(parts[1]);
  if (!num || !den) return std::nullopt;
  if (*num < 1 || *den < 1 || *num > *den || *den > kMaxParam) return std::nullopt;
  return std::make_pair(*num, *den);
}

bool in_param_range(std::int64_t v) { return v >= 1 && v <= kMaxParam; }

// --- integer draws from raw mt19937_64 output -------------------------------
//
// The std::mt19937_64 output sequence is specified exactly by the standard,
// but std::uniform_int_distribution and friends are implementation-defined.
// Hand-rolling the transforms keeps reports byte-identical across platforms
// and standard libraries. Modulo bias is acceptable here: ranges are tiny
// (<= kMaxParam) against a 64-bit draw, and determinism matters more than a
// 2^-44 skew.

std::int64_t draw_uniform(std::mt19937_64& eng, std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(eng() % span);
}

bool draw_bernoulli(std::mt19937_64& eng, std::int64_t num, std::int64_t den) {
  return eng() % static_cast<std::uint64_t>(den) < static_cast<std::uint64_t>(num);
}

/// Trials up to and including the first success of Bernoulli(num/den): >= 1.
std::int64_t draw_geometric(std::mt19937_64& eng, std::int64_t num, std::int64_t den) {
  std::int64_t trials = 1;
  while (!draw_bernoulli(eng, num, den)) ++trials;
  return trials;
}

std::int64_t draw_latency(std::mt19937_64& eng, const LatencyDist& dist) {
  switch (dist.kind) {
    case DistKind::kFixed:
      return dist.lo;
    case DistKind::kUniform:
      return draw_uniform(eng, dist.lo, dist.hi);
    case DistKind::kGeometric:
      return draw_geometric(eng, dist.prob_num, dist.prob_den);
  }
  return 1;
}

// --- the simulator ----------------------------------------------------------

enum class EventKind : std::uint8_t { kArrival, kWake, kSourceArrival };

struct Event {
  std::int64_t time = 0;
  EventKind kind = EventKind::kArrival;
  std::int32_t id = 0;  // place / transition / source index, per kind
};

struct LaterFirst {
  bool operator()(const Event& a, const Event& b) const { return a.time > b.time; }
};

/// State of one open-system source (a gated in-degree-0 core).
struct Source {
  lis::CoreId core = 0;
  mg::TransitionId transition = 0;
  ArrivalSpec spec;
  std::deque<std::int64_t> backlog;  // arrival times of items not yet consumed
  std::int64_t next_arrival = 0;     // time of the pending arrival event
};

class Simulator {
 public:
  Simulator(const lis::LisGraph& lis, const SimOptions& opt)
      : lis_(lis), opt_(opt), x_(lis::expand_doubled(lis)), rng_(opt.seed) {}

  SimReport run();

 private:
  const mg::MarkedGraph& g() const { return x_.graph; }

  void init_config();
  void init_state();
  std::int64_t first_arrival_time(const ArrivalSpec& spec);
  std::int64_t next_arrival_time(const ArrivalSpec& spec, std::int64_t current);
  void schedule_token(mg::PlaceId p, std::int64_t now);
  bool enabled(mg::TransitionId t, std::int64_t now) const;
  void fire(mg::TransitionId t, std::int64_t now);
  void note_occupancy(lis::ChannelId ch, std::int64_t now);
  void flush_occupancy(std::int64_t end);
  std::vector<std::int64_t> state_key(std::int64_t now) const;
  void finalize(SimReport& report) const;

  const lis::LisGraph& lis_;
  const SimOptions& opt_;
  lis::Expansion x_;
  util::Rng rng_;

  // Per-place configuration and token state. tokens_[p] holds the arrival
  // timestamps of every scheduled-but-unconsumed token in ascending order
  // (FIFO in-order delivery is enforced at scheduling time); the first
  // avail_[p] entries have already arrived.
  std::vector<LatencyDist> place_dist_;
  std::vector<std::deque<std::int64_t>> tokens_;
  std::vector<std::int64_t> avail_;
  std::vector<std::int64_t> last_scheduled_;
  /// Channel whose input-queue occupancy this place represents (the last
  /// forward hop — the destination shell's input queue), or kInvalidEdge.
  std::vector<lis::ChannelId> queue_of_place_;

  std::vector<std::int64_t> next_fire_;
  std::vector<std::int64_t> firings_;
  /// Index into sources_ for a gated source core's input transition, or -1.
  std::vector<std::int32_t> gate_of_transition_;

  std::vector<Source> sources_;
  std::priority_queue<Event, std::vector<Event>, LaterFirst> calendar_;

  // Per-channel statistics.
  std::vector<std::int64_t> produced_;  // tokens into the queue place
  std::vector<std::int64_t> consumed_;  // tokens out of the queue place
  std::vector<std::int64_t> stall_events_;
  std::vector<std::int64_t> stall_cycles_;
  std::vector<std::vector<std::int64_t>> histogram_;
  std::vector<std::int64_t> occ_value_;  // occupancy since occ_since_
  std::vector<std::int64_t> occ_since_;
  std::vector<std::int64_t> occ_max_;

  mg::TransitionId reference_transition_ = 0;
  bool deterministic_ = false;

  // Run accumulators.
  std::int64_t events_ = 0;
  std::int64_t total_firings_ = 0;
  std::int64_t reference_measured_ = 0;
  std::int64_t reference_total_ = 0;
  std::int64_t arrivals_generated_ = 0;
  std::int64_t arrivals_consumed_ = 0;
  std::int64_t max_backlog_ = 0;
  std::int64_t total_stall_events_ = 0;
  std::int64_t total_stall_cycles_ = 0;

  // Batch scratch.
  std::vector<mg::TransitionId> candidates_;
  std::vector<lis::ChannelId> touched_;
  std::vector<std::int32_t> arrived_sources_;
};

void Simulator::init_config() {
  const std::size_t nc = lis_.num_channels();
  const std::size_t np = g().num_places();
  const std::size_t nt = g().num_transitions();

  // Effective per-place latency model: forward hops of channel ch draw from
  // the channel's distribution; backpressure (credit-return) places and the
  // internal places of pipelined cores are fixed single-cycle wires.
  place_dist_.assign(np, LatencyDist::fixed(1));
  queue_of_place_.assign(np, graph::kInvalidEdge);
  deterministic_ = true;
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(nc); ++c) {
    LatencyDist dist = opt_.channel_latency;
    if (static_cast<std::size_t>(c) < opt_.profile.channel_latency.size() &&
        opt_.profile.channel_latency[static_cast<std::size_t>(c)]) {
      dist = *opt_.profile.channel_latency[static_cast<std::size_t>(c)];
    }
    if (!dist.is_deterministic()) deterministic_ = false;
    for (const mg::PlaceId p : x_.forward_places[static_cast<std::size_t>(c)]) {
      place_dist_[static_cast<std::size_t>(p)] = dist;
    }
    queue_of_place_[static_cast<std::size_t>(
        x_.forward_places[static_cast<std::size_t>(c)].back())] = c;
  }

  // Open-system sources: in-degree-0 cores with a non-saturated arrival spec.
  gate_of_transition_.assign(nt, -1);
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(lis_.num_cores()); ++v) {
    if (lis_.structure().in_degree(v) != 0) continue;
    ArrivalSpec spec = opt_.arrival;
    if (static_cast<std::size_t>(v) < opt_.profile.core_arrival.size() &&
        opt_.profile.core_arrival[static_cast<std::size_t>(v)]) {
      spec = *opt_.profile.core_arrival[static_cast<std::size_t>(v)];
    }
    if (spec.kind == ArrivalKind::kSaturated) continue;
    if (!spec.is_deterministic()) deterministic_ = false;
    const mg::TransitionId t = x_.core_transition[static_cast<std::size_t>(v)];
    gate_of_transition_[static_cast<std::size_t>(t)] =
        static_cast<std::int32_t>(sources_.size());
    sources_.push_back(Source{v, t, spec, {}});
  }

  reference_transition_ = x_.core_transition[static_cast<std::size_t>(opt_.reference)];
}

void Simulator::init_state() {
  const std::size_t nc = lis_.num_channels();
  const std::size_t np = g().num_places();
  const std::size_t nt = g().num_transitions();

  tokens_.assign(np, {});
  avail_.assign(np, 0);
  last_scheduled_.assign(np, -1);
  next_fire_.assign(nt, 0);
  firings_.assign(nt, 0);

  produced_.assign(nc, 0);
  consumed_.assign(nc, 0);
  stall_events_.assign(nc, 0);
  stall_cycles_.assign(nc, 0);
  histogram_.assign(nc, {});
  occ_value_.assign(nc, 0);
  occ_since_.assign(nc, 0);
  occ_max_.assign(nc, 0);

  // Initial marking: every initial token arrived at time 0.
  for (mg::PlaceId p = 0; p < static_cast<mg::PlaceId>(np); ++p) {
    const std::int64_t m = g().tokens(p);
    for (std::int64_t i = 0; i < m; ++i) tokens_[static_cast<std::size_t>(p)].push_back(0);
    avail_[static_cast<std::size_t>(p)] = m;
    if (m > 0) last_scheduled_[static_cast<std::size_t>(p)] = 0;
    const lis::ChannelId ch = queue_of_place_[static_cast<std::size_t>(p)];
    if (ch != graph::kInvalidEdge) {
      produced_[static_cast<std::size_t>(ch)] += m;
      occ_value_[static_cast<std::size_t>(ch)] = m;
      occ_max_[static_cast<std::size_t>(ch)] = 0;  // measured window only
    }
  }

  // Every transition is a firing candidate at time 0, and every gated source
  // gets its first arrival scheduled.
  for (mg::TransitionId t = 0; t < static_cast<mg::TransitionId>(nt); ++t) {
    calendar_.push(Event{0, EventKind::kWake, t});
  }
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    sources_[i].next_arrival = first_arrival_time(sources_[i].spec);
    calendar_.push(
        Event{sources_[i].next_arrival, EventKind::kSourceArrival, static_cast<std::int32_t>(i)});
  }
}

std::int64_t Simulator::first_arrival_time(const ArrivalSpec& spec) {
  switch (spec.kind) {
    case ArrivalKind::kSaturated:
    case ArrivalKind::kPeriodic:
    case ArrivalKind::kBursty:
      return 0;
    case ArrivalKind::kPoisson:
      // Bernoulli(num/den) per cycle starting at cycle 0: the first success
      // lands after the leading failures.
      return draw_geometric(rng_.engine(), spec.num, spec.den) - 1;
  }
  return 0;
}

std::int64_t Simulator::next_arrival_time(const ArrivalSpec& spec, std::int64_t current) {
  switch (spec.kind) {
    case ArrivalKind::kSaturated:
    case ArrivalKind::kPeriodic:
      return current + spec.period;
    case ArrivalKind::kPoisson:
      return current + draw_geometric(rng_.engine(), spec.num, spec.den);
    case ArrivalKind::kBursty: {
      const std::int64_t cycle = spec.on + spec.off;
      const std::int64_t next = current + 1;
      if (next % cycle < spec.on) return next;
      return (next / cycle + 1) * cycle;  // start of the next burst
    }
  }
  return current + 1;
}

void Simulator::schedule_token(mg::PlaceId p, std::int64_t now) {
  const std::size_t pi = static_cast<std::size_t>(p);
  const std::int64_t latency = draw_latency(rng_.engine(), place_dist_[pi]);
  // FIFO in-order delivery: a hop never reorders tokens, so a short draw
  // behind a long one queues behind it (the latency-queue idiom). The +1
  // floor is inactive in the deterministic limit, preserving exactness.
  const std::int64_t arrival = std::max(now + latency, last_scheduled_[pi] + 1);
  last_scheduled_[pi] = arrival;
  tokens_[pi].push_back(arrival);
  calendar_.push(Event{arrival, EventKind::kArrival, p});
  const lis::ChannelId ch = queue_of_place_[pi];
  if (ch != graph::kInvalidEdge) produced_[static_cast<std::size_t>(ch)] += 1;
}

bool Simulator::enabled(mg::TransitionId t, std::int64_t now) const {
  if (next_fire_[static_cast<std::size_t>(t)] > now) return false;
  const std::int32_t gate = gate_of_transition_[static_cast<std::size_t>(t)];
  if (gate >= 0 && sources_[static_cast<std::size_t>(gate)].backlog.empty()) return false;
  for (const mg::PlaceId p : g().structure().in_edges(t)) {
    if (avail_[static_cast<std::size_t>(p)] == 0) return false;
  }
  return true;
}

void Simulator::fire(mg::TransitionId t, std::int64_t now) {
  const std::size_t ti = static_cast<std::size_t>(t);
  // data_ready: the earliest cycle the firing could have happened if
  // backpressure were free — bounded by the unit firing delay (once per
  // cycle) and by the forward-data arrivals it consumes. A firing later than
  // data_ready was delayed by a credit (backward place): a stall.
  std::int64_t data_ready = next_fire_[ti];
  std::int64_t credit_ready = -1;
  mg::PlaceId binding_credit = graph::kInvalidEdge;
  for (const mg::PlaceId p : g().structure().in_edges(t)) {
    const std::size_t pi = static_cast<std::size_t>(p);
    const std::int64_t arrived = tokens_[pi].front();
    tokens_[pi].pop_front();
    avail_[pi] -= 1;
    if (g().place_kind(p) == mg::PlaceKind::kForward) {
      data_ready = std::max(data_ready, arrived);
    } else if (arrived > credit_ready) {
      credit_ready = arrived;
      binding_credit = p;
    }
    const lis::ChannelId ch = queue_of_place_[pi];
    if (ch != graph::kInvalidEdge) {
      consumed_[static_cast<std::size_t>(ch)] += 1;
      touched_.push_back(ch);
    }
  }
  const std::int32_t gate = gate_of_transition_[ti];
  if (gate >= 0) {
    Source& src = sources_[static_cast<std::size_t>(gate)];
    data_ready = std::max(data_ready, src.backlog.front());
    src.backlog.pop_front();
    arrivals_consumed_ += 1;
  }
  if (credit_ready > data_ready && now >= opt_.warmup) {
    // The firing waited on backpressure strictly past data readiness. Like
    // occupancy and throughput, stalls are measured-window statistics: the
    // warmup skips the transient, where even well-sized systems fire behind
    // their credits while the pipeline fills.
    total_stall_events_ += 1;
    total_stall_cycles_ += credit_ready - data_ready;
    const lis::ChannelId ch = x_.place_channel[static_cast<std::size_t>(binding_credit)];
    if (ch != graph::kInvalidEdge) {
      stall_events_[static_cast<std::size_t>(ch)] += 1;
      stall_cycles_[static_cast<std::size_t>(ch)] += credit_ready - data_ready;
    }
  }

  firings_[ti] += 1;
  total_firings_ += 1;
  if (t == reference_transition_) {
    reference_total_ += 1;
    if (now >= opt_.warmup) reference_measured_ += 1;
  }
  next_fire_[ti] = now + 1;
  for (const mg::PlaceId p : g().structure().out_edges(t)) schedule_token(p, now);
  calendar_.push(Event{now + 1, EventKind::kWake, t});
}

void Simulator::note_occupancy(lis::ChannelId ch, std::int64_t now) {
  const std::size_t ci = static_cast<std::size_t>(ch);
  const mg::PlaceId qp = x_.forward_places[ci].back();
  const std::int64_t value = avail_[static_cast<std::size_t>(qp)];
  if (value == occ_value_[ci]) return;
  const std::int64_t begin = std::max(occ_since_[ci], opt_.warmup);
  if (now > begin) {
    auto& hist = histogram_[ci];
    if (static_cast<std::size_t>(occ_value_[ci]) >= hist.size()) {
      hist.resize(static_cast<std::size_t>(occ_value_[ci]) + 1, 0);
    }
    hist[static_cast<std::size_t>(occ_value_[ci])] += now - begin;
    occ_max_[ci] = std::max(occ_max_[ci], occ_value_[ci]);
  }
  occ_value_[ci] = value;
  occ_since_[ci] = now;
}

void Simulator::flush_occupancy(std::int64_t end) {
  for (lis::ChannelId ch = 0; ch < static_cast<lis::ChannelId>(lis_.num_channels()); ++ch) {
    const std::size_t ci = static_cast<std::size_t>(ch);
    const std::int64_t begin = std::max(occ_since_[ci], opt_.warmup);
    if (end > begin) {
      auto& hist = histogram_[ci];
      if (static_cast<std::size_t>(occ_value_[ci]) >= hist.size()) {
        hist.resize(static_cast<std::size_t>(occ_value_[ci]) + 1, 0);
      }
      hist[static_cast<std::size_t>(occ_value_[ci])] += end - begin;
      occ_max_[ci] = std::max(occ_max_[ci], occ_value_[ci]);
    }
    occ_since_[ci] = end;
  }
}

/// Canonical state at the end of an event batch, relative to `now`: for each
/// place the arrived count plus the pending arrival offsets, for each
/// transition its firing-floor offset, for each source its backlog depth,
/// next-arrival offset and (for bursty processes, whose pattern depends on
/// absolute time) the phase. Two equal keys at different times imply the
/// dynamics repeat with their time difference as period.
std::vector<std::int64_t> Simulator::state_key(std::int64_t now) const {
  std::vector<std::int64_t> key;
  key.reserve(3 * g().num_places() + g().num_transitions() + 3 * sources_.size());
  for (std::size_t p = 0; p < g().num_places(); ++p) {
    key.push_back(avail_[p]);
    key.push_back(static_cast<std::int64_t>(tokens_[p].size()) - avail_[p]);
    for (std::size_t i = static_cast<std::size_t>(avail_[p]); i < tokens_[p].size(); ++i) {
      key.push_back(tokens_[p][i] - now);
    }
  }
  for (std::size_t t = 0; t < g().num_transitions(); ++t) {
    key.push_back(std::max<std::int64_t>(next_fire_[t] - (now + 1), 0));
  }
  for (const Source& src : sources_) {
    key.push_back(static_cast<std::int64_t>(src.backlog.size()));
    key.push_back(src.next_arrival - now);
    // A bursty pattern depends on absolute time, so equal offsets at unequal
    // phases are not equivalent states.
    if (src.spec.kind == ArrivalKind::kBursty) {
      key.push_back(src.next_arrival % (src.spec.on + src.spec.off));
    } else {
      key.push_back(0);
    }
  }
  return key;
}

SimReport Simulator::run() {
  init_config();
  init_state();

  SimReport report;
  report.horizon = opt_.horizon;
  report.warmup = opt_.warmup;
  report.seed = opt_.seed;
  report.deterministic = deterministic_;

  const std::int64_t end = opt_.warmup + opt_.horizon;
  const bool detect = deterministic_ && opt_.detect_period;
  // Visited states -> (batch time, reference firings). Only populated in the
  // fully deterministic regime, where a revisit proves periodicity.
  std::map<std::vector<std::int64_t>, std::pair<std::int64_t, std::int64_t>> seen;

  // One poller across every phase of the run (warmup and measurement), so
  // the cancel token is observed at a uniform stride end to end.
  util::StridedPoller poller(opt_.cancel);

  std::int64_t stop = end;
  while (!calendar_.empty()) {
    const std::int64_t now = calendar_.top().time;
    if (now >= end) break;
    if (poller.poll()) {
      report.cancelled = true;
      stop = now;
      break;
    }
    candidates_.clear();
    touched_.clear();
    arrived_sources_.clear();
    while (!calendar_.empty() && calendar_.top().time == now) {
      const Event ev = calendar_.top();
      calendar_.pop();
      switch (ev.kind) {
        case EventKind::kArrival: {
          const std::size_t pi = static_cast<std::size_t>(ev.id);
          avail_[pi] += 1;
          events_ += 1;
          candidates_.push_back(g().consumer(ev.id));
          const lis::ChannelId ch = queue_of_place_[pi];
          if (ch != graph::kInvalidEdge) touched_.push_back(ch);
          break;
        }
        case EventKind::kWake:
          candidates_.push_back(ev.id);
          break;
        case EventKind::kSourceArrival:
          // Deferred below: RNG draws must happen in source order, not heap
          // pop order (which the standard leaves unspecified among ties).
          arrived_sources_.push_back(ev.id);
          break;
      }
    }
    std::sort(arrived_sources_.begin(), arrived_sources_.end());
    for (const std::int32_t si : arrived_sources_) {
      Source& src = sources_[static_cast<std::size_t>(si)];
      src.backlog.push_back(now);
      arrivals_generated_ += 1;
      max_backlog_ = std::max(max_backlog_, static_cast<std::int64_t>(src.backlog.size()));
      src.next_arrival = next_arrival_time(src.spec, now);
      calendar_.push(Event{src.next_arrival, EventKind::kSourceArrival, si});
      candidates_.push_back(src.transition);
    }
    std::sort(candidates_.begin(), candidates_.end());
    candidates_.erase(std::unique(candidates_.begin(), candidates_.end()), candidates_.end());
    for (const mg::TransitionId t : candidates_) {
      if (enabled(t, now)) fire(t, now);
    }
    if (opt_.trace_occupancy) {
      std::sort(touched_.begin(), touched_.end());
      touched_.erase(std::unique(touched_.begin(), touched_.end()), touched_.end());
      for (const lis::ChannelId ch : touched_) note_occupancy(ch, now);
    }
    if (detect) {
      const auto [it, inserted] = seen.emplace(
          state_key(now), std::make_pair(now, reference_total_));
      if (!inserted) {
        report.periodic_found = true;
        report.transient_cycles = it->second.first;
        report.period_cycles = now - it->second.first;
        report.throughput =
            util::Rational(reference_total_ - it->second.second, report.period_cycles);
        stop = now + 1;
        break;
      }
    }
  }
  if (!report.cancelled && !report.periodic_found) stop = end;

  report.cycles_run = stop;
  if (opt_.trace_occupancy) flush_occupancy(stop);
  finalize(report);
  if (!report.periodic_found) {
    const std::int64_t measured = std::max<std::int64_t>(stop - opt_.warmup, 1);
    report.throughput = util::Rational(reference_measured_, measured);
  }
  return report;
}

void Simulator::finalize(SimReport& report) const {
  report.events = events_;
  report.firings = total_firings_;
  report.reference_firings = reference_measured_;
  report.arrivals_generated = arrivals_generated_;
  report.arrivals_consumed = arrivals_consumed_;
  report.max_backlog = max_backlog_;
  report.total_stall_events = total_stall_events_;
  report.total_stall_cycles = total_stall_cycles_;

  report.channels.resize(lis_.num_channels());
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis_.num_channels()); ++c) {
    const std::size_t ci = static_cast<std::size_t>(c);
    const lis::Channel& chan = lis_.channel(c);
    ChannelStats& stats = report.channels[ci];
    stats.channel = c;
    stats.src = chan.src;
    stats.dst = chan.dst;
    stats.capacity = chan.queue_capacity;
    stats.relay_stations = chan.relay_stations;
    stats.tokens_in = produced_[ci];
    stats.tokens_out = consumed_[ci];
    stats.in_flight =
        static_cast<std::int64_t>(tokens_[static_cast<std::size_t>(x_.forward_places[ci].back())].size());
    stats.stall_events = stall_events_[ci];
    stats.stall_cycles = stall_cycles_[ci];
    stats.histogram = histogram_[ci];
    stats.max_occupancy = occ_max_[ci];

    std::int64_t total = 0;
    for (const std::int64_t cycles : stats.histogram) total += cycles;
    if (total > 0) {
      std::int64_t weighted = 0;
      for (std::size_t v = 0; v < stats.histogram.size(); ++v) {
        weighted += static_cast<std::int64_t>(v) * stats.histogram[v];
      }
      stats.mean_occupancy = util::Rational(weighted, total);
      const auto percentile = [&](std::int64_t num, std::int64_t den) {
        // Smallest occupancy v with cum(v)/total >= num/den, exactly.
        std::int64_t cum = 0;
        for (std::size_t v = 0; v < stats.histogram.size(); ++v) {
          cum += stats.histogram[v];
          if (cum * den >= total * num) return static_cast<std::int64_t>(v);
        }
        return static_cast<std::int64_t>(stats.histogram.size()) - 1;
      };
      stats.p50 = percentile(50, 100);
      stats.p95 = percentile(95, 100);
      stats.p99 = percentile(99, 100);
    }
  }
}

}  // namespace

// --- LatencyDist / ArrivalSpec ---------------------------------------------

LatencyDist LatencyDist::fixed(std::int64_t cycles) {
  LID_ENSURE(in_param_range(cycles), "LatencyDist::fixed: latency out of range");
  LatencyDist d;
  d.kind = DistKind::kFixed;
  d.lo = d.hi = cycles;
  return d;
}

LatencyDist LatencyDist::uniform(std::int64_t lo, std::int64_t hi) {
  LID_ENSURE(in_param_range(lo) && in_param_range(hi) && lo <= hi,
             "LatencyDist::uniform: bad range");
  LatencyDist d;
  d.kind = DistKind::kUniform;
  d.lo = lo;
  d.hi = hi;
  return d;
}

LatencyDist LatencyDist::geometric(std::int64_t num, std::int64_t den) {
  LID_ENSURE(num >= 1 && num <= den && den <= kMaxParam,
             "LatencyDist::geometric: probability must be in (0, 1]");
  LatencyDist d;
  d.kind = DistKind::kGeometric;
  d.lo = d.hi = 1;
  d.prob_num = num;
  d.prob_den = den;
  return d;
}

std::string LatencyDist::to_string() const {
  switch (kind) {
    case DistKind::kFixed:
      return "fixed:" + std::to_string(lo);
    case DistKind::kUniform:
      return "uniform:" + std::to_string(lo) + ":" + std::to_string(hi);
    case DistKind::kGeometric:
      return "geometric:" + std::to_string(prob_num) + "/" + std::to_string(prob_den);
  }
  return "fixed:1";
}

std::optional<LatencyDist> parse_latency_dist(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.size() == 1) {
    // Bare integer shorthand for fixed:N.
    const auto n = parse_int(parts[0]);
    if (!n || !in_param_range(*n)) return std::nullopt;
    return LatencyDist::fixed(*n);
  }
  if (parts[0] == "fixed" && parts.size() == 2) {
    const auto n = parse_int(parts[1]);
    if (!n || !in_param_range(*n)) return std::nullopt;
    return LatencyDist::fixed(*n);
  }
  if (parts[0] == "uniform" && parts.size() == 3) {
    const auto lo = parse_int(parts[1]);
    const auto hi = parse_int(parts[2]);
    if (!lo || !hi || !in_param_range(*lo) || !in_param_range(*hi) || *lo > *hi) {
      return std::nullopt;
    }
    return LatencyDist::uniform(*lo, *hi);
  }
  if (parts[0] == "geometric" && parts.size() == 2) {
    const auto prob = parse_prob(parts[1]);
    if (!prob) return std::nullopt;
    return LatencyDist::geometric(prob->first, prob->second);
  }
  return std::nullopt;
}

ArrivalSpec ArrivalSpec::saturated() { return ArrivalSpec{}; }

ArrivalSpec ArrivalSpec::periodic(std::int64_t period) {
  LID_ENSURE(in_param_range(period), "ArrivalSpec::periodic: period out of range");
  ArrivalSpec a;
  a.kind = ArrivalKind::kPeriodic;
  a.period = period;
  return a;
}

ArrivalSpec ArrivalSpec::poisson(std::int64_t num, std::int64_t den) {
  LID_ENSURE(num >= 1 && num <= den && den <= kMaxParam,
             "ArrivalSpec::poisson: probability must be in (0, 1]");
  ArrivalSpec a;
  a.kind = ArrivalKind::kPoisson;
  a.num = num;
  a.den = den;
  return a;
}

ArrivalSpec ArrivalSpec::bursty(std::int64_t on, std::int64_t off) {
  LID_ENSURE(in_param_range(on) && in_param_range(off), "ArrivalSpec::bursty: bad phase length");
  ArrivalSpec a;
  a.kind = ArrivalKind::kBursty;
  a.on = on;
  a.off = off;
  return a;
}

std::string ArrivalSpec::to_string() const {
  switch (kind) {
    case ArrivalKind::kSaturated:
      return "saturated";
    case ArrivalKind::kPeriodic:
      return "rate:" + std::to_string(period);
    case ArrivalKind::kPoisson:
      return "poisson:" + std::to_string(num) + "/" + std::to_string(den);
    case ArrivalKind::kBursty:
      return "bursty:" + std::to_string(on) + ":" + std::to_string(off);
  }
  return "saturated";
}

std::optional<ArrivalSpec> parse_arrival_spec(const std::string& spec) {
  if (spec == "saturated") return ArrivalSpec::saturated();
  const std::vector<std::string> parts = split(spec, ':');
  if (parts[0] == "rate" && parts.size() == 2) {
    const auto p = parse_int(parts[1]);
    if (!p || !in_param_range(*p)) return std::nullopt;
    return ArrivalSpec::periodic(*p);
  }
  if (parts[0] == "poisson" && parts.size() == 2) {
    const auto prob = parse_prob(parts[1]);
    if (!prob) return std::nullopt;
    return ArrivalSpec::poisson(prob->first, prob->second);
  }
  if (parts[0] == "bursty" && parts.size() == 3) {
    const auto on = parse_int(parts[1]);
    const auto off = parse_int(parts[2]);
    if (!on || !off || !in_param_range(*on) || !in_param_range(*off)) return std::nullopt;
    return ArrivalSpec::bursty(*on, *off);
  }
  return std::nullopt;
}

bool Profile::empty() const {
  for (const auto& d : channel_latency) {
    if (d) return false;
  }
  for (const auto& a : core_arrival) {
    if (a) return false;
  }
  return true;
}

// --- report serialization ---------------------------------------------------

std::string SimReport::serialize() const {
  std::ostringstream os;
  os << "horizon=" << horizon << "\nwarmup=" << warmup << "\nseed=" << seed
     << "\ndeterministic=" << (deterministic ? 1 : 0) << "\ncycles_run=" << cycles_run
     << "\nevents=" << events << "\nfirings=" << firings
     << "\nreference_firings=" << reference_firings
     << "\nthroughput=" << throughput.to_string()
     << "\nperiodic=" << (periodic_found ? 1 : 0) << "\ntransient=" << transient_cycles
     << "\nperiod=" << period_cycles << "\narrivals_generated=" << arrivals_generated
     << "\narrivals_consumed=" << arrivals_consumed << "\nmax_backlog=" << max_backlog
     << "\nstall_events=" << total_stall_events << "\nstall_cycles=" << total_stall_cycles
     << "\ncancelled=" << (cancelled ? 1 : 0) << "\n";
  for (const ChannelStats& ch : channels) {
    os << "channel " << ch.channel << " src=" << ch.src << " dst=" << ch.dst
       << " q=" << ch.capacity << " rs=" << ch.relay_stations << " in=" << ch.tokens_in
       << " out=" << ch.tokens_out << " in_flight=" << ch.in_flight
       << " stalls=" << ch.stall_events << " stall_cycles=" << ch.stall_cycles
       << " occ_max=" << ch.max_occupancy << " p50=" << ch.p50 << " p95=" << ch.p95
       << " p99=" << ch.p99 << " mean=" << ch.mean_occupancy.to_string() << "\n";
  }
  return os.str();
}

// --- entry point ------------------------------------------------------------

SimReport simulate(const lis::LisGraph& lis, const SimOptions& options) {
  LID_ENSURE(lis.num_cores() > 0, "simulate_des: empty netlist");
  LID_ENSURE(options.horizon >= 1 && options.horizon <= 1'000'000'000,
             "simulate_des: horizon must be in [1, 1e9]");
  LID_ENSURE(options.warmup >= 0 && options.warmup <= 1'000'000'000,
             "simulate_des: warmup must be in [0, 1e9]");
  LID_ENSURE(options.reference >= 0 &&
                 static_cast<std::size_t>(options.reference) < lis.num_cores(),
             "simulate_des: reference core out of range");
  LID_ENSURE(options.profile.channel_latency.empty() ||
                 options.profile.channel_latency.size() == lis.num_channels(),
             "simulate_des: profile channel count does not match the netlist");
  LID_ENSURE(options.profile.core_arrival.empty() ||
                 options.profile.core_arrival.size() == lis.num_cores(),
             "simulate_des: profile core count does not match the netlist");
  Simulator sim(lis, options);
  return sim.run();
}

}  // namespace lid::des
