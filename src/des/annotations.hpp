// Stochastic-profile annotations carried inside .lis netlist text.
//
// A netlist can carry per-channel latency distributions and per-source
// arrival processes as structured `#!` comment lines:
//
//     #! channel 3 latency=uniform:1:4
//     #! source dct arrival=poisson:1/4
//
// Legacy readers are untouched: netlist_io strips everything after '#', so a
// netlist with annotations parses to the identical LisGraph everywhere, and
// only DES-aware tools (lid_tool simulate, gen --stochastic) interpret the
// profile. Channel ordinals refer to the channel order of the netlist text,
// which to_text/from_text preserve.
#pragma once

#include <string>

#include "des/des.hpp"
#include "lis/lis_graph.hpp"
#include "util/rng.hpp"

namespace lid::des {

/// Extracts the stochastic profile from `#!` lines in .lis text. Lines not
/// starting with "#!" are ignored; malformed directives, out-of-range channel
/// ordinals, unknown core names, and duplicate assignments throw
/// std::invalid_argument (with the offending line in the message). Returns a
/// Profile sized to `lis` (all-nullopt when the text carries no annotations).
Profile parse_profile(const std::string& lis_text, const lis::LisGraph& lis);

/// Renders the profile as `#!` annotation lines (one per assignment, channel
/// lines first, trailing newline; empty string for an empty profile).
/// parse_profile(to_text(g) + profile_text(p, g), g) == p.
std::string profile_text(const Profile& profile, const lis::LisGraph& lis);

/// Knobs for random_profile (the `gen --stochastic` emitter).
struct RandomProfileOptions {
  /// Largest fixed latency / uniform upper bound drawn for a channel.
  std::int64_t max_latency = 4;
  /// Largest inter-arrival period / burst phase drawn for a source.
  std::int64_t max_period = 8;
};

/// Draws a full profile for `lis`: every channel gets a latency model from
/// {fixed, uniform, geometric} and every source core (in-degree 0) an arrival
/// process from {rate, poisson, bursty}, all parameters within `options`.
Profile random_profile(const lis::LisGraph& lis, const RandomProfileOptions& options,
                       util::Rng& rng);

}  // namespace lid::des
