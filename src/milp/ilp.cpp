#include "milp/ilp.hpp"

#include "util/check.hpp"

namespace lid::milp {
namespace {

using util::Rational;

/// Depth-first branch and bound with best-incumbent pruning.
class BranchAndBound {
 public:
  BranchAndBound(const LinearProgram& lp, const IlpOptions& options)
      : lp_(lp), options_(options), deadline_(options.timeout_ms) {}

  IlpResult run() {
    util::Timer timer;
    explore(lp_);
    result_.elapsed_ms = timer.elapsed_ms();
    if (cut_off_) {
      result_.status = IlpResult::Status::kCutOff;
    } else if (unbounded_) {
      result_.status = IlpResult::Status::kUnbounded;
    } else if (incumbent_) {
      result_.status = IlpResult::Status::kOptimal;
      result_.objective = incumbent_objective_;
      result_.solution = *incumbent_;
    } else {
      result_.status = IlpResult::Status::kInfeasible;
    }
    return result_;
  }

 private:
  void explore(const LinearProgram& node) {
    if (cut_off_ || unbounded_) return;
    ++result_.nodes;
    if (deadline_.expired() || (options_.max_nodes > 0 && result_.nodes >= options_.max_nodes)) {
      cut_off_ = true;
      return;
    }
    const LpResult relaxation = solve_lp(node);
    if (relaxation.status == LpResult::Status::kInfeasible) return;
    if (relaxation.status == LpResult::Status::kUnbounded) {
      // The integral problem is unbounded too when the relaxation is (for
      // rational-coefficient covering programs this implies integral rays).
      unbounded_ = true;
      return;
    }
    // Bound: the relaxation value can only go up along this branch.
    if (incumbent_ && relaxation.objective >= incumbent_objective_) return;

    // Find a fractional variable; if none, we have an integral solution.
    std::size_t fractional = node.num_variables();
    for (std::size_t j = 0; j < relaxation.solution.size(); ++j) {
      if (relaxation.solution[j].den() != 1) {
        fractional = j;
        break;
      }
    }
    if (fractional == node.num_variables()) {
      std::vector<std::int64_t> integral;
      integral.reserve(relaxation.solution.size());
      for (const Rational& v : relaxation.solution) integral.push_back(v.num());
      if (!incumbent_ || relaxation.objective < incumbent_objective_) {
        incumbent_ = std::move(integral);
        incumbent_objective_ = relaxation.objective;
      }
      return;
    }

    const Rational value = relaxation.solution[fractional];
    // Branch down: x_j <= floor(value).
    {
      LinearProgram down = node;
      std::vector<Rational> coeffs(node.num_variables(), Rational(0));
      coeffs[fractional] = Rational(1);
      down.add_constraint(std::move(coeffs), Relation::kLessEq, Rational(value.floor()));
      explore(down);
    }
    // Branch up: x_j >= ceil(value).
    {
      LinearProgram up = node;
      std::vector<Rational> coeffs(node.num_variables(), Rational(0));
      coeffs[fractional] = Rational(1);
      up.add_constraint(std::move(coeffs), Relation::kGreaterEq, Rational(value.ceil()));
      explore(up);
    }
  }

  const LinearProgram& lp_;
  const IlpOptions& options_;
  util::Deadline deadline_;

  IlpResult result_;
  std::optional<std::vector<std::int64_t>> incumbent_;
  Rational incumbent_objective_;
  bool cut_off_ = false;
  bool unbounded_ = false;
};

}  // namespace

IlpResult solve_ilp(const LinearProgram& lp, const IlpOptions& options) {
  BranchAndBound search(lp, options);
  return search.run();
}

}  // namespace lid::milp
