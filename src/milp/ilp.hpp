// Integer linear programming by LP-relaxation branch and bound, over the
// exact simplex of simplex.hpp. All variables are nonnegative integers.
// Built for the small covering programs of queue sizing (the Lu–Koh MILP
// baseline), not for industrial-scale MILP.
#pragma once

#include <cstdint>
#include <optional>

#include "milp/simplex.hpp"
#include "util/timer.hpp"

namespace lid::milp {

/// Options for the branch-and-bound search.
struct IlpOptions {
  /// Wall-clock budget; <= 0 means unlimited.
  double timeout_ms = 0.0;
  /// Cap on branch-and-bound nodes; 0 means unlimited.
  std::int64_t max_nodes = 0;
};

/// Outcome of an ILP solve.
struct IlpResult {
  enum class Status { kOptimal, kInfeasible, kUnbounded, kCutOff };
  Status status = Status::kInfeasible;
  util::Rational objective;
  /// Integral assignment (when kOptimal).
  std::vector<std::int64_t> solution;
  /// Branch-and-bound nodes explored.
  std::int64_t nodes = 0;
  double elapsed_ms = 0.0;
};

/// Minimizes lp.objective over integral x >= 0 satisfying lp's constraints.
IlpResult solve_ilp(const LinearProgram& lp, const IlpOptions& options = {});

}  // namespace lid::milp
