#include "milp/simplex.hpp"

#include <limits>

#include "util/check.hpp"

namespace lid::milp {
namespace {

using util::Rational;

/// Dense two-phase simplex over exact rationals with Bland's rule.
class Tableau {
 public:
  explicit Tableau(const LinearProgram& lp) : lp_(lp) {
    const std::size_t n = lp.num_variables();
    for (const Constraint& con : lp.constraints) {
      LID_ENSURE(con.coeffs.size() == n, "solve_lp: constraint width != variable count");
    }
    build();
  }

  LpResult solve() {
    LpResult result;
    // Phase 1: minimize the sum of artificial variables.
    if (num_artificials_ > 0) {
      load_phase_cost(/*phase1=*/true);
      run_simplex();
      if (objective_value() != Rational(0)) {
        result.status = LpResult::Status::kInfeasible;
        return result;
      }
      pivot_out_artificials();
    }
    // Phase 2: minimize the real objective, artificials banned.
    load_phase_cost(/*phase1=*/false);
    if (!run_simplex()) {
      result.status = LpResult::Status::kUnbounded;
      return result;
    }
    result.status = LpResult::Status::kOptimal;
    result.objective = objective_value();
    result.solution.assign(lp_.num_variables(), Rational(0));
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < lp_.num_variables()) {
        result.solution[basis_[i]] = cell(i, rhs_col_);
      }
    }
    return result;
  }

 private:
  Rational& cell(std::size_t row, std::size_t col) { return tab_[row * stride_ + col]; }
  const Rational& cell(std::size_t row, std::size_t col) const {
    return tab_[row * stride_ + col];
  }

  void build() {
    const std::size_t n = lp_.num_variables();
    rows_ = lp_.constraints.size();
    // Column layout: structural | slack/surplus | artificial | rhs.
    std::size_t num_slacks = 0;
    for (const Constraint& con : lp_.constraints) {
      if (con.relation != Relation::kEqual) ++num_slacks;
    }
    slack_base_ = n;
    artificial_base_ = n + num_slacks;
    // Artificial needed when a row has no natural basic slack: >= and ==
    // rows (after normalizing rhs >= 0), and <= rows whose slack would start
    // negative — normalization makes that impossible, so count after
    // normalization below. First normalize into local copies.
    struct Row {
      std::vector<Rational> coeffs;
      Relation relation;
      Rational rhs;
    };
    std::vector<Row> rows;
    rows.reserve(rows_);
    for (const Constraint& con : lp_.constraints) {
      Row row{con.coeffs, con.relation, con.rhs};
      if (row.rhs < Rational(0)) {
        for (Rational& c : row.coeffs) c = -c;
        row.rhs = -row.rhs;
        if (row.relation == Relation::kLessEq) {
          row.relation = Relation::kGreaterEq;
        } else if (row.relation == Relation::kGreaterEq) {
          row.relation = Relation::kLessEq;
        }
      }
      rows.push_back(std::move(row));
    }
    num_artificials_ = 0;
    for (const Row& row : rows) {
      if (row.relation != Relation::kLessEq) ++num_artificials_;
    }
    num_columns_ = n + num_slacks + num_artificials_;
    rhs_col_ = num_columns_;
    stride_ = num_columns_ + 1;
    tab_.assign((rows_ + 1) * stride_, Rational(0));  // +1: cost row
    basis_.assign(rows_, 0);

    std::size_t slack = slack_base_;
    std::size_t artificial = artificial_base_;
    for (std::size_t i = 0; i < rows_; ++i) {
      const Row& row = rows[i];
      for (std::size_t j = 0; j < n; ++j) cell(i, j) = row.coeffs[j];
      cell(i, rhs_col_) = row.rhs;
      switch (row.relation) {
        case Relation::kLessEq:
          cell(i, slack) = Rational(1);
          basis_[i] = slack++;
          break;
        case Relation::kGreaterEq:
          cell(i, slack) = Rational(-1);
          ++slack;
          cell(i, artificial) = Rational(1);
          basis_[i] = artificial++;
          break;
        case Relation::kEqual:
          cell(i, artificial) = Rational(1);
          basis_[i] = artificial++;
          break;
      }
    }
  }

  /// Installs the reduced-cost row for the requested phase.
  void load_phase_cost(bool phase1) {
    phase1_ = phase1;
    const std::size_t n = lp_.num_variables();
    // Raw costs: phase 1 prices artificials at 1; phase 2 uses lp_.objective.
    const auto raw_cost = [&](std::size_t j) {
      if (phase1_) return j >= artificial_base_ ? Rational(1) : Rational(0);
      return j < n ? lp_.objective[j] : Rational(0);
    };
    // Reduced costs: r_j = c_j - sum_i c_B(i) * T[i][j]. The cost-row rhs
    // stores the NEGATED objective value -z (so the uniform pivot update
    // keeps it consistent): with c_rhs = 0 the same formula yields -z.
    for (std::size_t j = 0; j <= num_columns_; ++j) {
      Rational value = (j < num_columns_) ? raw_cost(j) : Rational(0);
      for (std::size_t i = 0; i < rows_; ++i) {
        const Rational cb = raw_cost(basis_[i]);
        if (cb != Rational(0)) value -= cb * cell(i, j);
      }
      cell(rows_, j) = value;
    }
  }

  [[nodiscard]] Rational objective_value() const { return -cell(rows_, rhs_col_); }

  [[nodiscard]] bool column_allowed(std::size_t j) const {
    // Artificials are banned in phase 2.
    return phase1_ || j < artificial_base_;
  }

  /// Runs Bland-rule simplex to optimality. Returns false on unboundedness.
  bool run_simplex() {
    for (;;) {
      // Entering: lowest-index allowed column with negative reduced cost.
      std::size_t entering = num_columns_;
      for (std::size_t j = 0; j < num_columns_; ++j) {
        if (column_allowed(j) && cell(rows_, j) < Rational(0)) {
          entering = j;
          break;
        }
      }
      if (entering == num_columns_) return true;  // optimal
      // Leaving: minimum ratio, ties by lowest basis index (Bland).
      std::size_t leaving = rows_;
      Rational best_ratio;
      for (std::size_t i = 0; i < rows_; ++i) {
        if (cell(i, entering) <= Rational(0)) continue;
        const Rational ratio = cell(i, rhs_col_) / cell(i, entering);
        if (leaving == rows_ || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leaving])) {
          leaving = i;
          best_ratio = ratio;
        }
      }
      if (leaving == rows_) return false;  // unbounded
      pivot(leaving, entering);
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    const Rational p = cell(row, col);
    LID_ASSERT(p != Rational(0), "simplex: zero pivot");
    for (std::size_t j = 0; j <= num_columns_; ++j) cell(row, j) /= p;
    for (std::size_t i = 0; i <= rows_; ++i) {
      if (i == row) continue;
      const Rational factor = cell(i, col);
      if (factor == Rational(0)) continue;
      for (std::size_t j = 0; j <= num_columns_; ++j) {
        cell(i, j) -= factor * cell(row, j);
      }
    }
    basis_[row] = col;
  }

  /// After phase 1, drive any zero-level artificial out of the basis (or
  /// leave it at zero if its row has no eligible pivot — the row is then a
  /// redundant constraint and keeping the artificial at zero is harmless as
  /// long as it stays banned, which a zero rhs guarantees under Bland).
  void pivot_out_artificials() {
    for (std::size_t i = 0; i < rows_; ++i) {
      if (basis_[i] < artificial_base_) continue;
      for (std::size_t j = 0; j < artificial_base_; ++j) {
        if (cell(i, j) != Rational(0)) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  const LinearProgram& lp_;
  std::vector<Rational> tab_;
  std::vector<std::size_t> basis_;
  std::size_t rows_ = 0;
  std::size_t num_columns_ = 0;
  std::size_t rhs_col_ = 0;
  std::size_t stride_ = 0;
  std::size_t slack_base_ = 0;
  std::size_t artificial_base_ = 0;
  std::size_t num_artificials_ = 0;
  bool phase1_ = true;
};

}  // namespace

void LinearProgram::add_constraint(std::vector<util::Rational> coeffs, Relation relation,
                                   util::Rational rhs) {
  Constraint con;
  con.coeffs = std::move(coeffs);
  con.relation = relation;
  con.rhs = rhs;
  constraints.push_back(std::move(con));
}

LpResult solve_lp(const LinearProgram& lp) {
  if (lp.num_variables() == 0) {
    // Degenerate: feasible iff every constraint holds with x empty.
    LpResult result;
    for (const Constraint& con : lp.constraints) {
      const bool ok = (con.relation == Relation::kLessEq && Rational(0) <= con.rhs) ||
                      (con.relation == Relation::kGreaterEq && Rational(0) >= con.rhs) ||
                      (con.relation == Relation::kEqual && con.rhs == Rational(0));
      if (!ok) return result;  // infeasible
    }
    result.status = LpResult::Status::kOptimal;
    return result;
  }
  Tableau tableau(lp);
  return tableau.solve();
}

}  // namespace lid::milp
