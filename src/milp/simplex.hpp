// An exact-rational linear-programming solver (two-phase primal simplex).
//
// Prior work solved queue sizing with mixed integer linear programming
// (Lu & Koh [35], [36]; Prakash & Martin [44] for slack matching). To compare
// the paper's combinatorial approach against that baseline faithfully, this
// module implements LP from scratch over util::Rational — no floating-point
// tolerance games — with Bland's rule for guaranteed termination. Problem
// sizes in this domain are tiny (tens of variables, hundreds of
// constraints), so a dense tableau is the right tool.
#pragma once

#include <vector>

#include "util/rational.hpp"

namespace lid::milp {

/// Constraint sense.
enum class Relation {
  kLessEq,
  kGreaterEq,
  kEqual,
};

/// One linear constraint: coeffs · x  (rel)  rhs.
struct Constraint {
  std::vector<util::Rational> coeffs;
  Relation relation = Relation::kGreaterEq;
  util::Rational rhs;
};

/// min objective · x  subject to constraints and x >= 0.
struct LinearProgram {
  std::vector<util::Rational> objective;
  std::vector<Constraint> constraints;

  [[nodiscard]] std::size_t num_variables() const { return objective.size(); }

  /// Convenience builder for a constraint.
  void add_constraint(std::vector<util::Rational> coeffs, Relation relation,
                      util::Rational rhs);
};

/// Outcome of an LP solve.
struct LpResult {
  enum class Status { kOptimal, kInfeasible, kUnbounded };
  Status status = Status::kInfeasible;
  /// Optimal objective value (when kOptimal).
  util::Rational objective;
  /// Optimal assignment, one value per variable (when kOptimal).
  std::vector<util::Rational> solution;
};

/// Solves the LP exactly. Throws std::invalid_argument on malformed input
/// (constraint width != variable count).
LpResult solve_lp(const LinearProgram& lp);

}  // namespace lid::milp
