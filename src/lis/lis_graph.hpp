// The latency-insensitive system (LIS) netlist model.
//
// A LIS is a set of cores, each encapsulated in a shell, connected by
// point-to-point channels. A channel may be pipelined by relay stations
// (clocked buffers with twofold capacity) and terminates in an input queue of
// the destination shell (capacity q >= 1). This module owns the netlist
// representation and its expansion into the two marked graphs of the paper:
//   * the ideal graph G        — forward places only (infinite queues), and
//   * the doubled graph d[G]   — forward places plus one backpressure place
//                                per hop (finite queues, Sec. III-D).
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "mg/marked_graph.hpp"
#include "util/rational.hpp"

namespace lid::lis {

using CoreId = graph::NodeId;
using ChannelId = graph::EdgeId;

/// One point-to-point channel of the LIS.
struct Channel {
  CoreId src = graph::kInvalidNode;
  CoreId dst = graph::kInvalidNode;
  /// Number of relay stations pipelining the channel.
  int relay_stations = 0;
  /// Capacity of the destination shell's input queue for this channel. A
  /// correct LIS has q >= 1; q = 0 is representable so the lint layer can
  /// diagnose it (L002, and L001 when it deadlocks a cycle) instead of the
  /// model rejecting the netlist outright.
  int queue_capacity = 1;
};

/// A LIS netlist: cores + channels, with per-channel relay-station counts and
/// queue capacities.
class LisGraph {
 public:
  LisGraph() = default;

  /// Adds a core (shell); returns its id.
  CoreId add_core(std::string name = {});

  /// Sets the core's pipeline latency (>= 1). A core with latency L takes L
  /// clock periods from consuming its inputs to presenting the outputs
  /// (footnote 3 of the paper: e.g. a three-stage multiplier has L = 3).
  /// The expansion models the extra L - 1 stages as void-initialized
  /// internal transitions, so loops through the core lose throughput exactly
  /// as loops through relay stations do.
  void set_core_latency(CoreId v, int latency);

  /// The core's pipeline latency (default 1).
  [[nodiscard]] int core_latency(CoreId v) const;

  /// Adds a channel src -> dst with `relay_stations` relay stations and a
  /// destination input queue of `queue_capacity` slots.
  ChannelId add_channel(CoreId src, CoreId dst, int relay_stations = 0, int queue_capacity = 1);

  [[nodiscard]] std::size_t num_cores() const { return structure_.num_nodes(); }
  [[nodiscard]] std::size_t num_channels() const { return structure_.num_edges(); }

  [[nodiscard]] const graph::Digraph& structure() const { return structure_; }
  [[nodiscard]] const Channel& channel(ChannelId c) const;
  [[nodiscard]] const std::string& core_name(CoreId v) const;

  void set_relay_stations(ChannelId c, int relay_stations);
  void set_queue_capacity(ChannelId c, int queue_capacity);

  /// Sets every channel's queue capacity to `q` (fixed queue sizing, Sec. IV).
  void set_all_queue_capacities(int q);

  /// Total relay stations across all channels.
  [[nodiscard]] int total_relay_stations() const;

 private:
  void check_channel(ChannelId c) const {
    LID_ENSURE(c >= 0 && static_cast<std::size_t>(c) < channels_.size(), "channel id out of range");
  }

  graph::Digraph structure_;
  std::vector<Channel> channels_;
  std::vector<std::string> names_;
  std::vector<int> latencies_;
};

/// A marked graph expanded from a LisGraph, with the maps needed to relate
/// places back to channels.
struct Expansion {
  mg::MarkedGraph graph;

  /// Input (AND-firing) transition of each core — for a simple core the one
  /// and only shell transition; for a pipelined core the stage consuming the
  /// input queues.
  std::vector<mg::TransitionId> core_transition;

  /// Output transition of each core (== core_transition for latency 1).
  /// Channels leave from here, and queue backedges return here.
  std::vector<mg::TransitionId> core_output_transition;

  /// forward_places[ch][i] = i-th forward hop of channel ch, from the source
  /// shell through its relay stations to the destination shell
  /// (relay_stations + 1 hops).
  std::vector<std::vector<mg::PlaceId>> forward_places;

  /// Backpressure places of channel ch; empty for ideal expansions. Entries
  /// 0..rs-1 are the hop-level relay-station backedges (relay station i back
  /// to its upstream element, 2 tokens each — fixed hardware capacity); the
  /// last entry is the channel-level input-queue backedge (destination shell
  /// back to the source shell, q tokens — the only one a designer can size).
  std::vector<std::vector<mg::PlaceId>> backward_places;

  /// Channel that produced each place (indexed by PlaceId).
  std::vector<ChannelId> place_channel;

  /// The input-queue backpressure place of channel ch, or kInvalidEdge for
  /// ideal expansions.
  [[nodiscard]] mg::PlaceId queue_place(ChannelId ch) const {
    const auto& back = backward_places[static_cast<std::size_t>(ch)];
    return back.empty() ? graph::kInvalidEdge : back.back();
  }
};

/// Expands to the ideal marked graph G: forward places only. Forward place
/// tokens follow Fig. 3: one token when the producing transition is a shell,
/// zero when it is a relay station.
Expansion expand_ideal(const LisGraph& lis);

/// Expands to the doubled graph d[G]: forward places as in expand_ideal plus
/// backpressure places — a hop-level backedge per relay station (2 tokens)
/// and a channel-level input-queue backedge per channel (q tokens).
Expansion expand_doubled(const LisGraph& lis);

/// θ(G): MST of the ideal LIS (infinite queues, no backpressure).
util::Rational ideal_mst(const LisGraph& lis);

/// θ(d[G]): MST of the practical LIS (finite queues with backpressure).
util::Rational practical_mst(const LisGraph& lis);

}  // namespace lid::lis
