#include "lis/lis_graph.hpp"

#include "mg/mcm.hpp"

namespace lid::lis {

CoreId LisGraph::add_core(std::string name) {
  const CoreId v = structure_.add_node();
  if (name.empty()) name = "core" + std::to_string(v);
  names_.push_back(std::move(name));
  latencies_.push_back(1);
  return v;
}

void LisGraph::set_core_latency(CoreId v, int latency) {
  LID_ENSURE(v >= 0 && static_cast<std::size_t>(v) < latencies_.size(), "core id out of range");
  LID_ENSURE(latency >= 1, "set_core_latency: latency must be at least 1");
  latencies_[static_cast<std::size_t>(v)] = latency;
}

int LisGraph::core_latency(CoreId v) const {
  LID_ENSURE(v >= 0 && static_cast<std::size_t>(v) < latencies_.size(), "core id out of range");
  return latencies_[static_cast<std::size_t>(v)];
}

ChannelId LisGraph::add_channel(CoreId src, CoreId dst, int relay_stations, int queue_capacity) {
  LID_ENSURE(relay_stations >= 0, "add_channel: negative relay-station count");
  // q = 0 is representable (the lint layer diagnoses it as L002/L001) so that
  // broken-but-parseable netlists can be analyzed statically instead of being
  // rejected at construction; a correct LIS always has q >= 1.
  LID_ENSURE(queue_capacity >= 0, "add_channel: negative queue capacity");
  const ChannelId c = structure_.add_edge(src, dst);
  channels_.push_back(Channel{src, dst, relay_stations, queue_capacity});
  return c;
}

const Channel& LisGraph::channel(ChannelId c) const {
  check_channel(c);
  return channels_[static_cast<std::size_t>(c)];
}

const std::string& LisGraph::core_name(CoreId v) const {
  LID_ENSURE(v >= 0 && static_cast<std::size_t>(v) < names_.size(), "core id out of range");
  return names_[static_cast<std::size_t>(v)];
}

void LisGraph::set_relay_stations(ChannelId c, int relay_stations) {
  check_channel(c);
  LID_ENSURE(relay_stations >= 0, "set_relay_stations: negative count");
  channels_[static_cast<std::size_t>(c)].relay_stations = relay_stations;
}

void LisGraph::set_queue_capacity(ChannelId c, int queue_capacity) {
  check_channel(c);
  LID_ENSURE(queue_capacity >= 0, "set_queue_capacity: negative capacity");
  channels_[static_cast<std::size_t>(c)].queue_capacity = queue_capacity;
}

void LisGraph::set_all_queue_capacities(int q) {
  LID_ENSURE(q >= 1, "set_all_queue_capacities: capacity must be at least 1");
  for (auto& ch : channels_) ch.queue_capacity = q;
}

int LisGraph::total_relay_stations() const {
  int total = 0;
  for (const auto& ch : channels_) total += ch.relay_stations;
  return total;
}

namespace {

Expansion expand(const LisGraph& lis, bool with_backedges) {
  Expansion out;
  out.core_transition.reserve(lis.num_cores());
  out.core_output_transition.reserve(lis.num_cores());
  for (CoreId v = 0; v < static_cast<CoreId>(lis.num_cores()); ++v) {
    const int latency = lis.core_latency(v);
    if (latency == 1) {
      // A simple core: one shell transition is both input and output stage.
      const mg::TransitionId t =
          out.graph.add_transition(mg::TransitionKind::kShell, lis.core_name(v));
      out.core_transition.push_back(t);
      out.core_output_transition.push_back(t);
      continue;
    }
    // A pipelined core (footnote 3): the input stage AND-fires on the input
    // queues, L - 1 void-initialized places delay the result, and the output
    // stage (which holds the initial latched output) drives the channels.
    // In the doubled graph every internal stage is elastic with twofold
    // capacity (like a relay station's master/slave pair), which keeps the
    // pipeline bounded without throttling it below one item per period.
    const mg::TransitionId in =
        out.graph.add_transition(mg::TransitionKind::kPipelineStage, lis.core_name(v) + ".in");
    mg::TransitionId prev = in;
    std::vector<mg::TransitionId> internal_chain{in};
    for (int stage = 1; stage + 1 < latency; ++stage) {
      const mg::TransitionId mid = out.graph.add_transition(
          mg::TransitionKind::kPipelineStage,
          lis.core_name(v) + ".p" + std::to_string(stage));
      out.graph.add_place(prev, mid, 0, mg::PlaceKind::kForward);
      prev = mid;
      internal_chain.push_back(mid);
    }
    const mg::TransitionId outp =
        out.graph.add_transition(mg::TransitionKind::kShell, lis.core_name(v));
    out.graph.add_place(prev, outp, 0, mg::PlaceKind::kForward);
    internal_chain.push_back(outp);
    if (with_backedges) {
      for (std::size_t hop = 0; hop + 1 < internal_chain.size(); ++hop) {
        out.graph.add_place(internal_chain[hop + 1], internal_chain[hop], 2,
                            mg::PlaceKind::kBackward);
      }
    }
    out.core_transition.push_back(in);
    out.core_output_transition.push_back(outp);
  }
  out.forward_places.resize(lis.num_channels());
  out.backward_places.resize(lis.num_channels());

  for (ChannelId c = 0; c < static_cast<ChannelId>(lis.num_channels()); ++c) {
    const Channel& ch = lis.channel(c);
    // Transition chain along the channel: src core's output stage, relay
    // stations, dst core's input stage.
    std::vector<mg::TransitionId> chain;
    chain.push_back(out.core_output_transition[static_cast<std::size_t>(ch.src)]);
    for (int r = 0; r < ch.relay_stations; ++r) {
      chain.push_back(out.graph.add_transition(
          mg::TransitionKind::kRelayStation,
          lis.core_name(ch.src) + "->" + lis.core_name(ch.dst) + ".rs" + std::to_string(r)));
    }
    chain.push_back(out.core_transition[static_cast<std::size_t>(ch.dst)]);

    auto& fwd = out.forward_places[static_cast<std::size_t>(c)];
    auto& back = out.backward_places[static_cast<std::size_t>(c)];
    for (std::size_t hop = 0; hop + 1 < chain.size(); ++hop) {
      const mg::TransitionId producer = chain[hop];
      const mg::TransitionId consumer = chain[hop + 1];
      const bool producer_is_shell =
          out.graph.transition_kind(producer) == mg::TransitionKind::kShell;
      fwd.push_back(out.graph.add_place(producer, consumer, producer_is_shell ? 1 : 0,
                                        mg::PlaceKind::kForward));
    }
    if (with_backedges) {
      // Backpressure per Fig. 3 and Sec. III-B. Each relay station has a
      // hop-level backedge to its immediate upstream element carrying its two
      // free slots; the destination shell's input queue has a channel-level
      // backedge to the source shell carrying the end-to-end free storage the
      // source can see: q queue slots plus the 2r relay-station slots.
      //
      // This is the token placement that reproduces the paper exactly: the
      // critical cycle of Fig. 5 {A, rs, B, A} gets mean 2/3 via the *other*
      // channel's backedge, SCCs without reconvergent paths never degrade
      // (Sec. IV), the NP-reduction's edge-construct cycle has mean 4/6
      // (Fig. 12), and the Table VI cycle means come out to 5/7 and 4/6.
      for (int r = 0; r < ch.relay_stations; ++r) {
        const mg::TransitionId rs = chain[static_cast<std::size_t>(r) + 1];
        const mg::TransitionId upstream = chain[static_cast<std::size_t>(r)];
        back.push_back(out.graph.add_place(rs, upstream, 2, mg::PlaceKind::kBackward));
      }
      back.push_back(out.graph.add_place(
          chain.back(), chain.front(),
          static_cast<std::int64_t>(ch.queue_capacity) + 2 * ch.relay_stations,
          mg::PlaceKind::kBackward));
    }
  }

  out.place_channel.assign(out.graph.num_places(), graph::kInvalidEdge);
  for (ChannelId c = 0; c < static_cast<ChannelId>(lis.num_channels()); ++c) {
    for (const mg::PlaceId p : out.forward_places[static_cast<std::size_t>(c)]) {
      out.place_channel[static_cast<std::size_t>(p)] = c;
    }
    for (const mg::PlaceId p : out.backward_places[static_cast<std::size_t>(c)]) {
      out.place_channel[static_cast<std::size_t>(p)] = c;
    }
  }
  return out;
}

}  // namespace

Expansion expand_ideal(const LisGraph& lis) { return expand(lis, /*with_backedges=*/false); }

Expansion expand_doubled(const LisGraph& lis) { return expand(lis, /*with_backedges=*/true); }

util::Rational ideal_mst(const LisGraph& lis) { return mg::mst(expand_ideal(lis).graph); }

util::Rational practical_mst(const LisGraph& lis) { return mg::mst(expand_doubled(lis).graph); }

}  // namespace lid::lis
