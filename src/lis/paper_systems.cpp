#include "lis/paper_systems.hpp"

namespace lid::lis {

LisGraph make_two_core_example() {
  LisGraph lis;
  const CoreId a = lis.add_core("A");
  const CoreId b = lis.add_core("B");
  lis.add_channel(a, b, /*relay_stations=*/1, /*queue_capacity=*/1);  // upper
  lis.add_channel(a, b, /*relay_stations=*/0, /*queue_capacity=*/1);  // lower
  return lis;
}

LisGraph make_two_core_example_sized() {
  LisGraph lis = make_two_core_example();
  lis.set_queue_capacity(1, 2);  // lower channel queue grows to two (Fig. 6)
  return lis;
}

LisGraph make_two_core_example_balanced() {
  LisGraph lis = make_two_core_example();
  lis.set_relay_stations(1, 1);  // equalize latencies (Fig. 2, right)
  return lis;
}

LisGraph make_fig15_counterexample() {
  LisGraph lis;
  const CoreId a = lis.add_core("A");
  const CoreId b = lis.add_core("B");
  const CoreId c = lis.add_core("C");
  const CoreId d = lis.add_core("D");
  const CoreId e = lis.add_core("E");
  lis.add_channel(a, e, /*relay_stations=*/1);  // the pipelined long channel
  lis.add_channel(e, d);
  lis.add_channel(d, c);
  lis.add_channel(c, b);
  lis.add_channel(b, a);
  lis.add_channel(a, c);
  lis.add_channel(c, e);
  return lis;
}

}  // namespace lid::lis
