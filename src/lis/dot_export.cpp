#include "lis/dot_export.hpp"

#include <algorithm>
#include <sstream>

namespace lid::lis {
namespace {

/// DOT identifiers: quote everything, escaping quotes and backslashes.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_dot(const LisGraph& lis, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph lis {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=box, style=rounded];\n";
  for (CoreId v = 0; v < static_cast<CoreId>(lis.num_cores()); ++v) {
    os << "  " << quoted(lis.core_name(v));
    if (lis.core_latency(v) != 1) {
      os << " [label=" << quoted(lis.core_name(v) + "\\nL=" + std::to_string(lis.core_latency(v)))
         << "]";
    }
    os << ";\n";
  }
  for (ChannelId c = 0; c < static_cast<ChannelId>(lis.num_channels()); ++c) {
    const Channel& ch = lis.channel(c);
    const bool highlighted = std::find(options.highlight.begin(), options.highlight.end(), c) !=
                             options.highlight.end();
    std::string label;
    if (ch.relay_stations > 0) label += "rs=" + std::to_string(ch.relay_stations);
    if (ch.queue_capacity != 1 || options.always_show_queues) {
      if (!label.empty()) label += ", ";
      label += "q=" + std::to_string(ch.queue_capacity);
    }
    os << "  " << quoted(lis.core_name(ch.src)) << " -> " << quoted(lis.core_name(ch.dst));
    std::vector<std::string> attrs;
    if (!label.empty()) attrs.push_back("label=" + quoted(label));
    if (highlighted) attrs.push_back("color=red, penwidth=2");
    if (!attrs.empty()) {
      os << " [";
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (i > 0) os << ", ";
        os << attrs[i];
      }
      os << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string marked_graph_to_dot(const mg::MarkedGraph& graph) {
  std::ostringstream os;
  os << "digraph marked_graph {\n";
  os << "  rankdir=LR;\n";
  for (mg::TransitionId t = 0; t < static_cast<mg::TransitionId>(graph.num_transitions()); ++t) {
    const bool shell = graph.transition_kind(t) == mg::TransitionKind::kShell;
    os << "  " << quoted(graph.transition_name(t)) << " [shape="
       << (shell ? "box, style=rounded" : "box, style=filled, fillcolor=lightgray") << "];\n";
  }
  for (mg::PlaceId p = 0; p < static_cast<mg::PlaceId>(graph.num_places()); ++p) {
    const bool backward = graph.place_kind(p) == mg::PlaceKind::kBackward;
    os << "  " << quoted(graph.transition_name(graph.producer(p))) << " -> "
       << quoted(graph.transition_name(graph.consumer(p))) << " [label=\"" << graph.tokens(p)
       << "\"" << (backward ? ", style=dashed" : "") << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace lid::lis
