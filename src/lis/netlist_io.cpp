#include "lis/netlist_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace lid::lis {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("netlist line " + std::to_string(line) + ": " + message);
}

/// Parses "key=value" where value must be a nonnegative integer.
int parse_kv(const std::string& token, const std::string& key, std::size_t line) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) fail(line, "expected " + key + "=<n>, got '" + token + "'");
  const std::string value = token.substr(prefix.size());
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size() || v < 0) throw std::invalid_argument("bad");
    return v;
  } catch (const std::exception&) {
    fail(line, "bad integer in '" + token + "'");
  }
}

}  // namespace

std::string to_text(const LisGraph& lis) {
  std::ostringstream os;
  os << "# latency-insensitive system: " << lis.num_cores() << " cores, " << lis.num_channels()
     << " channels\n";
  for (CoreId v = 0; v < static_cast<CoreId>(lis.num_cores()); ++v) {
    os << "core " << lis.core_name(v);
    if (lis.core_latency(v) != 1) os << " latency=" << lis.core_latency(v);
    os << "\n";
  }
  for (ChannelId c = 0; c < static_cast<ChannelId>(lis.num_channels()); ++c) {
    const Channel& ch = lis.channel(c);
    os << "channel " << lis.core_name(ch.src) << " -> " << lis.core_name(ch.dst);
    if (ch.relay_stations != 0) os << " rs=" << ch.relay_stations;
    if (ch.queue_capacity != 1) os << " q=" << ch.queue_capacity;
    os << "\n";
  }
  return os.str();
}

LisGraph from_text(const std::string& text) {
  return from_text_with_provenance(text).graph;
}

ParsedNetlist from_text_with_provenance(const std::string& text, std::string file) {
  ParsedNetlist out;
  out.provenance.file = std::move(file);
  LisGraph& lis = out.graph;
  std::map<std::string, CoreId> cores;

  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string directive;
    if (!(line >> directive)) continue;  // blank line

    if (directive == "core") {
      std::string name;
      if (!(line >> name)) fail(line_no, "core needs a name");
      int latency = 1;
      std::string token;
      while (line >> token) {
        if (token.rfind("latency=", 0) == 0) {
          latency = parse_kv(token, "latency", line_no);
          if (latency < 1) fail(line_no, "latency must be at least 1");
        } else {
          fail(line_no, "unknown core attribute '" + token + "'");
        }
      }
      const auto [it, inserted] = cores.emplace(name, CoreId{});
      if (!inserted) fail(line_no, "duplicate core '" + name + "'");
      it->second = lis.add_core(name);
      lis.set_core_latency(it->second, latency);
      out.provenance.core_line.push_back(static_cast<int>(line_no));
      continue;
    }
    if (directive == "channel") {
      std::string src;
      std::string arrow;
      std::string dst;
      if (!(line >> src >> arrow >> dst) || arrow != "->") {
        fail(line_no, "expected: channel <src> -> <dst> [rs=N] [q=N]");
      }
      const auto src_it = cores.find(src);
      if (src_it == cores.end()) fail(line_no, "unknown core '" + src + "'");
      const auto dst_it = cores.find(dst);
      if (dst_it == cores.end()) fail(line_no, "unknown core '" + dst + "'");
      int rs = 0;
      int q = 1;
      std::string token;
      while (line >> token) {
        if (token.rfind("rs=", 0) == 0) {
          rs = parse_kv(token, "rs", line_no);
        } else if (token.rfind("q=", 0) == 0) {
          // q = 0 parses: it is a semantic defect (lint L002/L001), not a
          // syntax error, so static diagnostics can point at this line.
          q = parse_kv(token, "q", line_no);
        } else {
          fail(line_no, "unknown channel attribute '" + token + "'");
        }
      }
      lis.add_channel(src_it->second, dst_it->second, rs, q);
      out.provenance.channel_line.push_back(static_cast<int>(line_no));
      continue;
    }
    fail(line_no, "unknown directive '" + directive + "'");
  }
  return out;
}

LisGraph load_netlist(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open netlist file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return from_text(buffer.str());
}

void save_netlist(const LisGraph& lis, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write netlist file: " + path);
  out << to_text(lis);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace lid::lis
