#include "lis/vcd_export.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace lid::lis {
namespace {

/// VCD identifier codes: short strings over the printable range '!'..'~'.
std::string code_for(std::size_t index) {
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return code;
}

std::string binary64(Payload value) {
  std::string bits = "b";
  auto u = static_cast<std::uint64_t>(value);
  bool leading = true;
  for (int i = 63; i >= 0; --i) {
    const bool bit = ((u >> i) & 1u) != 0;
    if (bit) leading = false;
    if (!leading || i == 0) bits += bit ? '1' : '0';
  }
  return bits;
}

/// Signal names: "<src>_to_<dst>[.rs<i>]" sanitized for VCD.
std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == ' ' || c == '-' || c == '>') c = '_';
  }
  return name;
}

}  // namespace

std::string traces_to_vcd(const LisGraph& lis, const ProtocolResult& result) {
  LID_ENSURE(!result.traces.empty(), "traces_to_vcd: simulation was run without record_traces");
  LID_ENSURE(result.traces.size() == lis.num_channels(),
             "traces_to_vcd: result does not match the netlist");

  std::ostringstream os;
  os << "$comment lid protocol simulation, " << result.periods << " periods $end\n";
  os << "$timescale 1ns $end\n";
  os << "$scope module lis $end\n";

  struct Signal {
    const std::vector<Item>* trace;
    std::string valid_code;
    std::string data_code;
  };
  std::vector<Signal> signals;
  std::size_t next_code = 0;
  for (ChannelId c = 0; c < static_cast<ChannelId>(lis.num_channels()); ++c) {
    const Channel& ch = lis.channel(c);
    const auto& stages = result.traces[static_cast<std::size_t>(c)];
    for (std::size_t stage = 0; stage < stages.size(); ++stage) {
      std::string base = lis.core_name(ch.src) + "_to_" + lis.core_name(ch.dst);
      if (stage > 0) base += "_rs" + std::to_string(stage - 1);
      base = sanitize(base);
      Signal sig;
      sig.trace = &stages[stage];
      sig.valid_code = code_for(next_code++);
      sig.data_code = code_for(next_code++);
      os << "$var wire 1 " << sig.valid_code << " " << base << "_valid $end\n";
      os << "$var wire 64 " << sig.data_code << " " << base << "_data $end\n";
      signals.push_back(std::move(sig));
    }
  }
  os << "$upscope $end\n";
  os << "$enddefinitions $end\n";

  // Emit changes only (proper VCD), tracking the previous value per signal.
  std::vector<Item> previous(signals.size(), Item{Payload{-1}});
  std::vector<char> have_previous(signals.size(), 0);
  for (std::size_t t = 0; t < result.periods; ++t) {
    std::ostringstream step;
    for (std::size_t s = 0; s < signals.size(); ++s) {
      if (t >= signals[s].trace->size()) continue;
      const Item& item = (*signals[s].trace)[t];
      const bool valid_changed = !have_previous[s] || item.is_void() != previous[s].is_void();
      const bool data_changed =
          !item.is_void() &&
          (!have_previous[s] || previous[s].is_void() || *item.value != *previous[s].value);
      if (valid_changed) step << (item.is_void() ? "0" : "1") << signals[s].valid_code << "\n";
      if (data_changed) step << binary64(*item.value) << " " << signals[s].data_code << "\n";
      if (valid_changed || data_changed) {
        previous[s] = item;
        have_previous[s] = 1;
      }
    }
    const std::string changes = step.str();
    if (!changes.empty()) os << "#" << t << "\n" << changes;
  }
  os << "#" << result.periods << "\n";
  return os.str();
}

void save_vcd(const LisGraph& lis, const ProtocolResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write VCD file: " + path);
  out << traces_to_vcd(lis, result);
  if (!out) throw std::runtime_error("VCD write failed: " + path);
}

}  // namespace lid::lis
