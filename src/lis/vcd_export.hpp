// VCD (Value Change Dump) export of protocol-simulation traces, so the
// valid/void activity of a LIS can be inspected in any waveform viewer
// (GTKWave etc.). Each recorded channel stage contributes two signals: a
// 1-bit `valid` and a 64-bit `data` (data is meaningful only while valid).
#pragma once

#include <string>

#include "lis/lis_graph.hpp"
#include "lis/protocol_sim.hpp"

namespace lid::lis {

/// Renders the traces of `result` (which must have been produced with
/// record_traces = true from `lis`) as a VCD document. Throws
/// std::invalid_argument when the result carries no traces.
std::string traces_to_vcd(const LisGraph& lis, const ProtocolResult& result);

/// Convenience wrapper writing straight to a file (throws on I/O failure).
void save_vcd(const LisGraph& lis, const ProtocolResult& result, const std::string& path);

}  // namespace lid::lis
