#include "lis/protocol_sim.hpp"

#include <map>
#include <sstream>
#include <utility>

namespace lid::lis {
namespace {

/// Mutable state of one channel. Flow control mirrors the doubled marked
/// graph exactly: the source shell holds end-to-end credits for the channel's
/// total storage (the channel-level backedge — q queue slots plus 2 per relay
/// station) and must additionally find a free slot in the first relay station
/// (the hop-level backedge, 2 credits); relay stations forward into the next
/// station when it has a slot credit and into the input queue unconditionally
/// — room there is guaranteed by the end-to-end credit the source consumed at
/// injection.
struct ChannelState {
  std::vector<std::deque<Payload>> rs_buffers;
  std::deque<Payload> input_queue;
  /// Slot credits of each relay station (initially 2 each, per Fig. 3).
  std::vector<int> rs_credits;
  /// End-to-end credits as seen by the source (initially q + 2·rs).
  int queue_credits = 0;
  int queue_capacity = 1;

  /// True when the source shell can inject: an end-to-end credit is
  /// available and the first relay station (if any) has a slot credit.
  [[nodiscard]] bool source_can_inject() const {
    if (queue_credits < 1) return false;
    if (!rs_credits.empty() && rs_credits.front() < 1) return false;
    return true;
  }

  /// Accepts a newly produced item into the first pipeline stage. The
  /// initial latched output bypasses credit accounting (it occupies the
  /// source shell's output latch, not a storage slot — this matches the
  /// initial marking of the doubled graph, where the initial forward token
  /// coexists with the full complement of backedge tokens).
  void push_first_stage(Payload v) {
    if (!rs_buffers.empty()) {
      rs_buffers.front().push_back(v);
    } else {
      input_queue.push_back(v);
    }
  }
};

std::vector<Payload> default_outputs(std::int64_t firing_index, std::size_t n) {
  return std::vector<Payload>(n, firing_index + 1);
}

}  // namespace

ProtocolResult simulate_protocol(const LisGraph& lis, const ProtocolOptions& options) {
  const std::size_t num_cores = lis.num_cores();
  const std::size_t num_channels = lis.num_channels();
  LID_ENSURE(options.reference >= 0 && static_cast<std::size_t>(options.reference) < num_cores,
             "simulate_protocol: reference core out of range");
  LID_ENSURE(options.behaviors.empty() || options.behaviors.size() == num_cores,
             "simulate_protocol: behaviors must be empty or one per core");
  LID_ENSURE(options.periods >= 1, "simulate_protocol: need at least one period");

  ProtocolResult result;
  result.core_firings.assign(num_cores, 0);
  result.avg_queue_occupancy.assign(num_channels, 0.0);
  std::size_t occupancy_samples = 0;
  // Accumulates queue sizes; normalized into avg_queue_occupancy on return.
  std::vector<std::int64_t> occupancy_sum(num_channels, 0);
  const auto finalize_occupancy = [&] {
    if (occupancy_samples == 0) return;
    for (std::size_t c = 0; c < num_channels; ++c) {
      result.avg_queue_occupancy[c] =
          static_cast<double>(occupancy_sum[c]) / static_cast<double>(occupancy_samples);
    }
  };

  // Per-core channel lists, ordered by channel id (the CoreFunction contract).
  std::vector<std::vector<ChannelId>> in_channels(num_cores);
  std::vector<std::vector<ChannelId>> out_channels(num_cores);
  for (ChannelId c = 0; c < static_cast<ChannelId>(num_channels); ++c) {
    const Channel& ch = lis.channel(c);
    out_channels[static_cast<std::size_t>(ch.src)].push_back(c);
    in_channels[static_cast<std::size_t>(ch.dst)].push_back(c);
  }

  // Internal pipelines of cores with latency > 1 (footnote 3): latency - 1
  // elastic stages (two slot credits each, like relay stations) between the
  // AND-firing input and the output latch; each stage advances one result
  // bundle per period and the output stage is additionally gated by channel
  // credits — exactly the marked-graph expansion.
  struct CorePipe {
    std::vector<std::deque<std::vector<Payload>>> stages;  // size latency - 1
    std::vector<int> credits;                              // 2 free slots each
    std::vector<char> shift;                               // per-period decisions
  };
  std::vector<CorePipe> pipes(num_cores);
  for (CoreId v = 0; v < static_cast<CoreId>(num_cores); ++v) {
    auto& pipe = pipes[static_cast<std::size_t>(v)];
    pipe.stages.resize(static_cast<std::size_t>(lis.core_latency(v) - 1));
    pipe.credits.assign(pipe.stages.size(), 2);
    pipe.shift.assign(pipe.stages.size(), 0);
  }

  // Channel state, prefilled with each source shell's initial latched output.
  std::vector<ChannelState> state(num_channels);
  for (ChannelId c = 0; c < static_cast<ChannelId>(num_channels); ++c) {
    const Channel& ch = lis.channel(c);
    auto& cs = state[static_cast<std::size_t>(c)];
    cs.rs_buffers.resize(static_cast<std::size_t>(ch.relay_stations));
    cs.rs_credits.assign(static_cast<std::size_t>(ch.relay_stations), 2);
    cs.queue_capacity = ch.queue_capacity;
    cs.queue_credits = ch.queue_capacity + 2 * ch.relay_stations;
  }
  for (CoreId v = 0; v < static_cast<CoreId>(num_cores); ++v) {
    const auto& outs = out_channels[static_cast<std::size_t>(v)];
    std::vector<Payload> initial(outs.size(), 0);
    if (!options.behaviors.empty()) {
      const auto& given = options.behaviors[static_cast<std::size_t>(v)].initial_outputs;
      if (!given.empty()) {
        LID_ENSURE(given.size() == outs.size(),
                   "simulate_protocol: initial_outputs size must match out-degree");
        initial = given;
      }
    }
    for (std::size_t i = 0; i < outs.size(); ++i) {
      state[static_cast<std::size_t>(outs[i])].push_first_stage(initial[i]);
    }
  }

  if (options.record_traces) {
    result.traces.resize(num_channels);
    for (ChannelId c = 0; c < static_cast<ChannelId>(num_channels); ++c) {
      const Channel& ch = lis.channel(c);
      auto& per_stage = result.traces[static_cast<std::size_t>(c)];
      per_stage.resize(static_cast<std::size_t>(ch.relay_stations) + 1);
      // Period 0: shells drive their initial latched output, relay stations τ.
      const std::size_t chan = static_cast<std::size_t>(c);
      const Payload init = state[chan].rs_buffers.empty()
                               ? state[chan].input_queue.back()
                               : state[chan].rs_buffers.front().back();
      per_stage[0].push_back(Item{init});
      for (std::size_t s = 1; s < per_stage.size(); ++s) per_stage[s].push_back(Item{});
    }
  }

  // Environment gates make firing decisions time-dependent, which breaks the
  // occupancy-recurrence argument below.
  bool has_gates = false;
  for (const auto& behavior : options.behaviors) {
    if (behavior.environment_gate) has_gates = true;
  }

  // Occupancy-state recurrence detection: firing decisions depend only on
  // fill levels and credit counts, so a repeated occupancy vector proves the
  // behaviour is periodic from there on.
  std::map<std::vector<int>, std::pair<std::size_t, std::int64_t>> seen;
  const auto occupancy = [&] {
    std::vector<int> occ;
    occ.reserve(num_channels * 3 + num_cores);
    for (const auto& cs : state) {
      for (const auto& buf : cs.rs_buffers) occ.push_back(static_cast<int>(buf.size()));
      for (const int cr : cs.rs_credits) occ.push_back(cr);
      occ.push_back(static_cast<int>(cs.input_queue.size()));
      occ.push_back(cs.queue_credits);
    }
    for (const auto& pipe : pipes) {
      for (const auto& stage : pipe.stages) occ.push_back(static_cast<int>(stage.size()));
    }
    return occ;
  };
  seen.emplace(occupancy(), std::make_pair(std::size_t{0}, std::int64_t{0}));

  std::vector<char> core_fires(num_cores, 0);
  std::vector<std::vector<char>> rs_fires(num_channels);
  for (ChannelId c = 0; c < static_cast<ChannelId>(num_channels); ++c) {
    rs_fires[static_cast<std::size_t>(c)].assign(
        static_cast<std::size_t>(lis.channel(c).relay_stations), 0);
  }

  // Period 0 is the initial latched state; each loop iteration advances one
  // clock period, so `periods` total periods need periods - 1 updates.
  result.periods = options.periods;
  for (std::size_t t = 0; t + 1 < options.periods; ++t) {
    // --- Decision phase (from pre-step state only). ---
    std::vector<char> out_fires(num_cores, 0);
    for (CoreId v = 0; v < static_cast<CoreId>(num_cores); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const bool pipelined = !pipes[vi].stages.empty();
      // Input stage: AND-firing over the input queues; for a simple core it
      // is also the output stage and needs channel credits.
      bool in_ok = true;
      for (const ChannelId c : in_channels[vi]) {
        if (state[static_cast<std::size_t>(c)].input_queue.empty()) {
          in_ok = false;
          break;
        }
      }
      bool out_ok = true;
      for (const ChannelId c : out_channels[vi]) {
        if (!state[static_cast<std::size_t>(c)].source_can_inject()) {
          out_ok = false;
          break;
        }
      }
      if (!options.behaviors.empty()) {
        const auto& gate = options.behaviors[vi].environment_gate;
        if (gate && !gate(static_cast<std::int64_t>(t))) in_ok = false;
      }
      if (pipelined) {
        auto& pipe = pipes[vi];
        core_fires[vi] = (in_ok && pipe.credits.front() >= 1) ? 1 : 0;
        out_fires[vi] = (!pipe.stages.back().empty() && out_ok) ? 1 : 0;
        // Internal shifts, decided from the pre-update state: stage s
        // receives from s-1 when s-1 has a bundle and s has a free slot.
        for (std::size_t s = 1; s < pipe.stages.size(); ++s) {
          pipe.shift[s] = (!pipe.stages[s - 1].empty() && pipe.credits[s] >= 1) ? 1 : 0;
        }
      } else {
        core_fires[vi] = (in_ok && out_ok) ? 1 : 0;
        out_fires[vi] = core_fires[vi];
      }
    }
    for (ChannelId c = 0; c < static_cast<ChannelId>(num_channels); ++c) {
      const auto& cs = state[static_cast<std::size_t>(c)];
      const std::size_t nrs = cs.rs_buffers.size();
      for (std::size_t i = 0; i < nrs; ++i) {
        const bool has_item = !cs.rs_buffers[i].empty();
        // The last relay station forwards unconditionally; room in the queue
        // is guaranteed by the end-to-end credit consumed at injection.
        const bool next_has_space = (i + 1 < nrs) ? cs.rs_credits[i + 1] >= 1 : true;
        rs_fires[static_cast<std::size_t>(c)][i] = (has_item && next_has_space) ? 1 : 0;
      }
    }

    // --- Update phase. Relay stations first (pop own buffer, push next). ---
    for (ChannelId c = 0; c < static_cast<ChannelId>(num_channels); ++c) {
      auto& cs = state[static_cast<std::size_t>(c)];
      const std::size_t nrs = cs.rs_buffers.size();
      // Process from the last relay station backwards so a pop and a push on
      // the same buffer within one period cannot interleave incorrectly.
      for (std::size_t i = nrs; i-- > 0;) {
        const bool fires = rs_fires[static_cast<std::size_t>(c)][i] != 0;
        Item out{};  // τ unless the relay station forwards
        if (fires) {
          const Payload v = cs.rs_buffers[i].front();
          cs.rs_buffers[i].pop_front();
          cs.rs_credits[i] += 1;  // this station's slot frees up
          if (i + 1 < nrs) {
            cs.rs_buffers[i + 1].push_back(v);
            cs.rs_credits[i + 1] -= 1;
          } else {
            cs.input_queue.push_back(v);
          }
          out = Item{v};
        }
        if (options.record_traces) {
          result.traces[static_cast<std::size_t>(c)][i + 1].push_back(out);
        }
      }
      // The lumped-storage abstraction of Fig. 4: a stage "place" may hold
      // more items than the physical queue while others stall, but never
      // more than the channel's total storage plus the initial latch.
      LID_ASSERT(cs.input_queue.size() <= static_cast<std::size_t>(cs.queue_capacity) +
                                              2 * cs.rs_buffers.size() + 1,
                 "protocol invariant violated: input queue overflow");
    }
    // Cores. Output stages first: inject the ready result bundle into the
    // channels (consuming credits); then shift internal pipeline stages; then
    // input stages consume from the queues (returning credits) and compute.
    for (CoreId v = 0; v < static_cast<CoreId>(num_cores); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const bool in_fired = core_fires[vi] != 0;
      const bool out_fired = out_fires[vi] != 0;
      const auto& ins = in_channels[vi];
      const auto& outs = out_channels[vi];
      auto& pipe = pipes[vi];
      const bool pipelined = !pipe.stages.empty();

      // Compute the input stage's result from the pre-update queue fronts.
      std::vector<Payload> computed;
      if (in_fired) {
        std::vector<Payload> inputs;
        inputs.reserve(ins.size());
        for (const ChannelId c : ins) {
          auto& cs = state[static_cast<std::size_t>(c)];
          inputs.push_back(cs.input_queue.front());
          cs.input_queue.pop_front();
          cs.queue_credits += 1;
        }
        const std::int64_t k = result.core_firings[vi];
        const CoreFunction& fn =
            options.behaviors.empty() ? nullptr : options.behaviors[vi].function;
        computed = fn ? fn(k, inputs) : default_outputs(k, outs.size());
        LID_ENSURE(computed.size() == outs.size(),
                   "simulate_protocol: core function must return one payload per out channel");
        result.core_firings[vi] += 1;
      }

      // Output stage: the computed bundle for a simple core, the pipeline's
      // oldest bundle for a pipelined one.
      std::vector<Payload> emitted;
      if (out_fired) {
        if (pipelined) {
          emitted = std::move(pipe.stages.back().front());
          pipe.stages.back().pop_front();
          pipe.credits.back() += 1;
        } else {
          emitted = computed;
        }
        for (std::size_t i = 0; i < outs.size(); ++i) {
          auto& cs = state[static_cast<std::size_t>(outs[i])];
          cs.queue_credits -= 1;
          if (!cs.rs_credits.empty()) cs.rs_credits.front() -= 1;
          cs.push_first_stage(emitted[i]);
        }
      }

      if (pipelined) {
        // Apply the pre-decided internal shifts (oldest stage first).
        for (std::size_t s = pipe.stages.size(); s-- > 1;) {
          if (!pipe.shift[s]) continue;
          pipe.stages[s].push_back(std::move(pipe.stages[s - 1].front()));
          pipe.stages[s - 1].pop_front();
          pipe.credits[s] -= 1;
          pipe.credits[s - 1] += 1;
        }
        if (in_fired) {
          pipe.stages.front().push_back(std::move(computed));
          pipe.credits.front() -= 1;
        }
      }

      if (options.record_traces) {
        for (std::size_t i = 0; i < outs.size(); ++i) {
          result.traces[static_cast<std::size_t>(outs[i])][0].push_back(
              out_fired ? Item{emitted[i]} : Item{});
        }
      }
    }

    // --- Occupancy sampling (for Little's-law latency estimates). ---
    for (std::size_t c = 0; c < num_channels; ++c) {
      occupancy_sum[c] += static_cast<std::int64_t>(state[c].input_queue.size());
    }
    ++occupancy_samples;

    if (options.observer && !options.observer(t, core_fires)) {
      result.periods = t + 2;
      if (!result.periodic_found) {
        result.throughput =
            util::Rational(result.core_firings[static_cast<std::size_t>(options.reference)],
                           static_cast<std::int64_t>(t + 1));
      }
      finalize_occupancy();
      return result;
    }

    // --- Recurrence check (skipped once periodicity is established). ---
    if (!result.periodic_found && !has_gates) {
      const std::int64_t ref = result.core_firings[static_cast<std::size_t>(options.reference)];
      const auto [it, inserted] = seen.emplace(occupancy(), std::make_pair(t + 1, ref));
      if (!inserted) {
        result.periodic_found = true;
        const std::size_t span = (t + 1) - it->second.first;
        result.throughput =
            util::Rational(ref - it->second.second, static_cast<std::int64_t>(span));
        if (!options.record_traces && !options.observer) {
          // Nothing left to learn; report the run as t+2 periods of history.
          result.periods = t + 2;
          finalize_occupancy();
          return result;
        }
        // With trace recording or an observer, keep simulating so the
        // caller sees the full requested window.
      }
    }
  }

  result.periods = options.periods;
  if (!result.periodic_found) {
    result.throughput =
        util::Rational(result.core_firings[static_cast<std::size_t>(options.reference)],
                       static_cast<std::int64_t>(options.periods));
  }
  finalize_occupancy();
  return result;
}

double average_queue_latency(const LisGraph& lis, const ProtocolResult& result, ChannelId ch) {
  LID_ENSURE(ch >= 0 && static_cast<std::size_t>(ch) < result.avg_queue_occupancy.size(),
             "average_queue_latency: channel out of range");
  const lis::CoreId dst = lis.channel(ch).dst;
  const double consumed = static_cast<double>(result.core_firings[static_cast<std::size_t>(dst)]);
  if (consumed <= 0.0 || result.periods <= 1) return 0.0;
  const double rate = consumed / static_cast<double>(result.periods - 1);
  return result.avg_queue_occupancy[static_cast<std::size_t>(ch)] / rate;
}

std::string format_trace(const std::vector<Item>& trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) os << ' ';
    os << trace[i].to_string();
  }
  return os.str();
}

}  // namespace lid::lis
