// GraphViz (DOT) rendering of LIS netlists and marked graphs, for
// documentation and debugging. The netlist view draws relay stations as
// small boxes along their channels and annotates queue capacities; the
// marked-graph view draws places as edges labeled with their token counts.
#pragma once

#include <string>
#include <vector>

#include "lis/lis_graph.hpp"
#include "mg/marked_graph.hpp"

namespace lid::lis {

/// Options for netlist rendering.
struct DotOptions {
  /// Channels to draw highlighted (e.g. the critical cycle's channels).
  std::vector<ChannelId> highlight;
  /// Annotate queue capacities even when they are 1.
  bool always_show_queues = false;
};

/// Renders the netlist as a DOT digraph.
std::string to_dot(const LisGraph& lis, const DotOptions& options = {});

/// Renders a marked graph (e.g. an Expansion's) as a DOT digraph: forward
/// places solid, backpressure places dashed, token counts as edge labels.
std::string marked_graph_to_dot(const mg::MarkedGraph& graph);

}  // namespace lid::lis
