// Cycle-accurate behavioral simulator of the latency-insensitive protocol.
//
// This models the RTL-level system of Fig. 4: shells with AND-firing and
// bypassable input queues, relay stations with twofold buffering, and
// lossless backpressure. Flow control is credit-based — a sender stalls when
// the next stage has no free slot — which is exactly the stop-signal protocol
// of the paper (stop asserted ⟺ no free slot) and exactly the doubled marked
// graph d[G] (a backpressure place's tokens are the free slots). The test
// suite verifies cycle-for-cycle equivalence between this simulator and the
// marked-graph step semantics, and that the measured sustained throughput
// equals the statically computed MST.
//
// Unlike the token-level simulator (mg/simulate.hpp), this one carries data:
// each core computes real output values from its consumed inputs, so the
// simulator reproduces valid/τ traces like Table I of the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::lis {

/// The value carried by one valid data item.
using Payload = std::int64_t;

/// A valid payload or the void item τ.
struct Item {
  std::optional<Payload> value;  ///< nullopt represents τ
  [[nodiscard]] bool is_void() const { return !value.has_value(); }
  [[nodiscard]] std::string to_string() const {
    return value ? std::to_string(*value) : "tau";
  }
};

/// Computes a core's outputs for one firing: receives one payload per
/// incoming channel (ordered by channel id) and must return one payload per
/// outgoing channel (ordered by channel id).
using CoreFunction =
    std::function<std::vector<Payload>(std::int64_t firing_index, const std::vector<Payload>& inputs)>;

/// Configuration of one core's behaviour in the simulation.
struct CoreBehavior {
  /// Output computation; when null, the core emits its firing index on every
  /// outgoing channel.
  CoreFunction function;
  /// Initial latched outputs driven at period 0, one per outgoing channel
  /// (ordered by channel id). When empty, all zeroes are used.
  std::vector<Payload> initial_outputs;
  /// Optional environment gate: when set, the shell may fire at period t
  /// only if this returns true — modeling an open system whose environment
  /// produces (or accepts) valid data at a limited, possibly irregular rate
  /// (Sec. II: schedule-based approaches cannot handle this; backpressure
  /// with sized queues can). Gates disable the recurrence-based exact
  /// throughput detection, so the reported rate is the full-run average.
  std::function<bool(std::int64_t period)> environment_gate;
};

/// Result of a protocol simulation.
struct ProtocolResult {
  /// traces[ch][stage] is the output trace of pipeline stage `stage` of
  /// channel ch: stage 0 is the source shell's output port, stage i >= 1 the
  /// i-th relay station. Each trace has one Item per simulated period.
  std::vector<std::vector<std::vector<Item>>> traces;
  /// Firings of each core over the run.
  std::vector<std::int64_t> core_firings;
  /// Average destination-queue occupancy per channel over the run. Divided
  /// by the channel's delivery rate this gives the average queueing latency
  /// (Little's law) — see average_queue_latency().
  std::vector<double> avg_queue_occupancy;
  /// Periods simulated.
  std::size_t periods = 0;
  /// Exact sustained firing rate of the reference core once the occupancy
  /// state recurs; empirical full-run rate otherwise.
  util::Rational throughput;
  bool periodic_found = false;
};

/// Invoked after every simulated period with the period index (the one whose
/// firings were just decided) and, per core, whether its shell fired. Return
/// false to stop the simulation early.
using ProtocolObserver =
    std::function<bool(std::size_t period, const std::vector<char>& core_fired)>;

/// Options for a protocol simulation.
struct ProtocolOptions {
  std::size_t periods = 1000;
  /// Core whose firing rate is reported as throughput.
  CoreId reference = 0;
  /// Record per-stage traces (costs memory proportional to periods).
  bool record_traces = false;
  /// Per-core behaviours, indexed by CoreId; missing entries get defaults.
  std::vector<CoreBehavior> behaviors;
  /// Optional per-period callback (see ProtocolObserver).
  ProtocolObserver observer;
};

/// Simulates the latency-insensitive protocol on `lis` for the given number
/// of clock periods.
ProtocolResult simulate_protocol(const LisGraph& lis, const ProtocolOptions& options);

/// Average number of periods an item waits in channel `ch`'s input queue,
/// by Little's law: average occupancy divided by the destination core's
/// firing rate. Returns 0 when the destination never fired.
double average_queue_latency(const LisGraph& lis, const ProtocolResult& result, ChannelId ch);

/// Renders one channel-stage trace like Table I of the paper.
std::string format_trace(const std::vector<Item>& trace);

}  // namespace lid::lis
