// The small example systems the paper reasons about, as reusable builders.
// They anchor the test suite: each carries exact published MST values.
#pragma once

#include "lis/lis_graph.hpp"

namespace lid::lis {

/// Fig. 1 / Fig. 2 (left): cores A and B joined by two channels, one relay
/// station on the upper channel, queues of size one. Ideal MST 1; practical
/// MST 2/3 (the Fig. 5 critical cycle).
/// Core ids: A = 0, B = 1. Channel ids: upper = 0, lower = 1.
LisGraph make_two_core_example();

/// Fig. 6: the same system with the lower-channel queue grown to two —
/// practical MST restored to 1.
LisGraph make_two_core_example_sized();

/// Fig. 2 (right): the same system repaired with an additional relay station
/// on the lower channel instead — practical MST 1.
LisGraph make_two_core_example_balanced();

/// Fig. 15: the five-core counterexample where no relay-station insertion
/// recovers the ideal MST. Ideal MST 5/6 (cycle A→rs→E→D→C→B→A); practical
/// MST 3/4 (cycle A→rs→E, then backedges E→C and C→A).
/// Core ids: A = 0, B = 1, C = 2, D = 3, E = 4.
LisGraph make_fig15_counterexample();

}  // namespace lid::lis
