// A small text format for LIS netlists, so systems can be stored in files
// and driven through the command-line tool.
//
//   # comment — everything after '#' is ignored
//   core A
//   core B
//   channel A -> B rs=1 q=2     # rs and q are optional (defaults 0 and 1)
//
// Core names may contain any non-whitespace characters except '#'.
//
// DEPRECATED as a public entry point: new call sites should use the facade
// in src/lid_api.hpp (lid::load_netlist / parse_netlist / save_netlist),
// which wraps these functions with Result<T> error reporting instead of
// exceptions. This header remains the implementation layer.
#pragma once

#include <string>

#include "lis/lis_graph.hpp"

namespace lid::lis {

/// Serializes a netlist to the text format (stable, round-trip safe).
std::string to_text(const LisGraph& lis);

/// Parses the text format. Throws std::invalid_argument with the offending
/// line number on malformed input (unknown directive, duplicate core name,
/// unknown core in a channel, bad rs/q value).
LisGraph from_text(const std::string& text);

/// File wrappers. Throw std::runtime_error on I/O failure.
LisGraph load_netlist(const std::string& path);
void save_netlist(const LisGraph& lis, const std::string& path);

}  // namespace lid::lis
