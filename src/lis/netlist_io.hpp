// A small text format for LIS netlists, so systems can be stored in files
// and driven through the command-line tool.
//
//   # comment — everything after '#' is ignored
//   core A
//   core B
//   channel A -> B rs=1 q=2     # rs and q are optional (defaults 0 and 1)
//
// Core names may contain any non-whitespace characters except '#'.
//
// DEPRECATED as a public entry point: new call sites should use the facade
// in src/lid_api.hpp (lid::load_netlist / parse_netlist / save_netlist),
// which wraps these functions with Result<T> error reporting instead of
// exceptions. This header remains the implementation layer.
#pragma once

#include <string>
#include <vector>

#include "lis/lis_graph.hpp"

namespace lid::lis {

/// Serializes a netlist to the text format (stable, round-trip safe).
std::string to_text(const LisGraph& lis);

/// Parses the text format. Throws std::invalid_argument with the offending
/// line number on malformed input (unknown directive, duplicate core name,
/// unknown core in a channel, bad rs/q value). A queue capacity of zero is
/// accepted — it is a *semantic* defect (every correct LIS has q >= 1) that
/// the lint layer diagnoses as L002/L001, not a syntax error.
LisGraph from_text(const std::string& text);

/// Where each entity of a parsed netlist came from, so diagnostics can point
/// at the exact source line. Indexed by CoreId / ChannelId; line numbers are
/// 1-based, `file` is empty for in-memory text.
struct Provenance {
  std::string file;
  std::vector<int> core_line;
  std::vector<int> channel_line;

  /// 1-based source line of core `v`, or 0 when unknown.
  [[nodiscard]] int line_of_core(CoreId v) const {
    const auto i = static_cast<std::size_t>(v);
    return v >= 0 && i < core_line.size() ? core_line[i] : 0;
  }
  /// 1-based source line of channel `c`, or 0 when unknown.
  [[nodiscard]] int line_of_channel(ChannelId c) const {
    const auto i = static_cast<std::size_t>(c);
    return c >= 0 && i < channel_line.size() ? channel_line[i] : 0;
  }
};

/// A parse result that keeps file/line provenance alongside the graph.
struct ParsedNetlist {
  LisGraph graph;
  Provenance provenance;
};

/// Like from_text, but records the source line of every core and channel
/// (and `file`, echoed into Provenance::file) for diagnostics.
ParsedNetlist from_text_with_provenance(const std::string& text, std::string file = {});

/// File wrappers. Throw std::runtime_error on I/O failure.
LisGraph load_netlist(const std::string& path);
void save_netlist(const LisGraph& lis, const std::string& path);

}  // namespace lid::lis
