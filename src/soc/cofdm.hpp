// The COFDM UWB transmitter case study (Sec. IX).
//
// The paper's SoC is a 480-Mb/s LDPC-COFDM ultrawideband transmitter with 12
// top-level blocks, 30 channels and 22 cycles. Its exact RTL netlist is
// proprietary; this module reconstructs a netlist that is faithful to every
// published structural fact:
//   * the 12 blocks of Fig. 18 (PI, PO, FEC, Spread, Pilot, FFT_in, FFT,
//     Control, tx_Ctrl, Preamble, Clip, tx_Filter) and 30 channels;
//   * the forward pipeline PI/PO → FEC → Spread → Pilot → FFT_in → FFT and
//     the feedback loop (FEC, Spread, Pilot, FFT_in, FFT, tx_Ctrl, FEC)
//     named in Sec. IX;
//   * the six Table VI cycles (means 5/7 and 4/6 when relay stations sit on
//     (FEC, Spread) and (Spread, Pilot)), including the backedges
//     (Pilot, Control) and (FFT_in, Control) that the QS solution grows.
// DESIGN.md records this substitution.
#pragma once

#include "lis/lis_graph.hpp"

namespace lid::soc {

/// Block indices in the returned netlist (stable, also used as core ids).
enum Block : lis::CoreId {
  kPI = 0,
  kPO,
  kFEC,
  kSpread,
  kPilot,
  kFFTin,
  kFFT,
  kControl,
  kTxCtrl,
  kPreamble,
  kClip,
  kTxFilter,
  kBlockCount,
};

/// Returns the human-readable block name.
const char* block_name(Block b);

/// Builds the reconstructed COFDM transmitter netlist (no relay stations,
/// all queue capacities 1).
lis::LisGraph build_cofdm();

/// Channel id of the (src -> dst) channel in the netlist built by
/// build_cofdm(). Throws std::invalid_argument when absent.
lis::ChannelId find_channel(const lis::LisGraph& lis, Block src, Block dst);

}  // namespace lid::soc
