#include "soc/cofdm.hpp"

#include <array>

#include "util/check.hpp"

namespace lid::soc {
namespace {

constexpr std::array<const char*, kBlockCount> kNames = {
    "PI",  "PO",      "FEC",      "Spread",   "Pilot", "FFT_in",
    "FFT", "Control", "tx_Ctrl",  "Preamble", "Clip",  "tx_Filter",
};

}  // namespace

const char* block_name(Block b) {
  LID_ENSURE(b >= 0 && b < kBlockCount, "block_name: out of range");
  return kNames[static_cast<std::size_t>(b)];
}

lis::LisGraph build_cofdm() {
  lis::LisGraph lis;
  for (int b = 0; b < kBlockCount; ++b) {
    lis.add_core(kNames[static_cast<std::size_t>(b)]);
  }
  const auto ch = [&](Block src, Block dst) { lis.add_channel(src, dst); };

  // Main datapath (Fig. 18): packets enter through PI/PO, are encoded,
  // spread, pilot-inserted, transformed, clipped and filtered out; the
  // preamble generator feeds the packet path.
  ch(kPI, kFEC);
  ch(kPO, kFEC);
  ch(kFEC, kSpread);
  ch(kSpread, kPilot);
  ch(kPilot, kFFTin);
  ch(kFFTin, kFFT);
  ch(kFFT, kClip);
  ch(kClip, kTxFilter);
  ch(kPreamble, kPO);

  // Transmission control feedback — Sec. IX's forward loop
  // (FEC, Spread, Pilot, FFT_in, FFT, tx_Ctrl, FEC).
  ch(kFFT, kTxCtrl);
  ch(kTxCtrl, kFEC);

  // Control orchestration: Control drives the pipeline stages; the reverses
  // of Control→Pilot and Control→FFT_in are the (Pilot, Control) and
  // (FFT_in, Control) backedges that Table VI's cycles traverse and the QS
  // solution grows.
  ch(kControl, kPI);
  ch(kControl, kPO);
  ch(kControl, kFEC);
  ch(kControl, kPilot);
  ch(kControl, kFFTin);
  ch(kControl, kTxCtrl);
  ch(kControl, kSpread);
  ch(kControl, kPreamble);

  // Status returns to Control (tx_Ctrl's return is what makes C6 a cycle).
  ch(kTxCtrl, kControl);
  ch(kSpread, kControl);
  ch(kPreamble, kControl);

  // Secondary spreading input for the preamble path.
  ch(kPO, kSpread);

  // Per-stage scaling/configuration taps into the clipper, a second
  // (I/Q-split) data channel into it, and the matching dual output bus.
  ch(kControl, kClip);
  ch(kPI, kClip);
  ch(kPO, kClip);
  ch(kSpread, kClip);
  ch(kPreamble, kClip);
  ch(kFFT, kClip);
  ch(kClip, kTxFilter);

  LID_ASSERT(lis.num_cores() == static_cast<std::size_t>(kBlockCount),
             "COFDM netlist must have 12 blocks");
  LID_ASSERT(lis.num_channels() == 30, "COFDM netlist must have 30 channels");
  return lis;
}

lis::ChannelId find_channel(const lis::LisGraph& lis, Block src, Block dst) {
  const auto found = lis.structure().edges_between(src, dst);
  LID_ENSURE(!found.empty(), "find_channel: no such channel in the COFDM netlist");
  return found.front();
}

}  // namespace lid::soc
