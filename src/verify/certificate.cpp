#include "verify/certificate.hpp"

#include <stdexcept>
#include <utility>

#include "lis/netlist_io.hpp"

namespace lid::verify {
namespace {

using util::Json;
using util::JsonWriter;
using util::Rational;

void write_rational(JsonWriter& w, const Rational& r) { w.value(r.to_string()); }

void write_witness(JsonWriter& w, const McmWitness& m) {
  w.begin_object();
  w.key("theta");
  write_rational(w, m.theta);
  w.key("acyclic").value(m.acyclic);
  if (!m.acyclic) {
    w.key("critical").begin_object();
    w.key("mean");
    write_rational(w, m.critical.mean);
    w.key("places").begin_array();
    for (const std::int64_t p : m.critical.places) w.value(p);
    w.end_array();
    w.end_object();
  }
  w.key("component").begin_array();
  for (const int c : m.component) w.value(c);
  w.end_array();
  w.key("cyclic").begin_array();
  for (const char c : m.component_cyclic) w.value(static_cast<std::int64_t>(c));
  w.end_array();
  w.key("lambda").begin_array();
  for (const Rational& l : m.lambda) write_rational(w, l);
  w.end_array();
  w.key("potential").begin_array();
  for (const std::int64_t s : m.potential) w.value(s);
  w.end_array();
  w.end_object();
}

// -- parsing helpers; each returns false after recording an error. ----------

struct ParseState {
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) error = what;
    return false;
  }
};

bool parse_rational(const Json* v, const char* what, Rational& out, ParseState& st) {
  if (v == nullptr || !v->is_string()) return st.fail(std::string(what) + ": expected rational string");
  try {
    out = util::rational_from_string(v->as_string());
  } catch (const std::exception&) {
    return st.fail(std::string(what) + ": malformed rational '" + v->as_string() + "'");
  }
  return true;
}

bool parse_int_array(const Json* v, const char* what, std::vector<std::int64_t>& out,
                     ParseState& st) {
  if (v == nullptr || !v->is_array()) return st.fail(std::string(what) + ": expected array");
  out.clear();
  out.reserve(v->size());
  for (std::size_t i = 0; i < v->size(); ++i) {
    const Json& item = v->at(i);
    if (!item.is_number()) return st.fail(std::string(what) + ": expected integer entries");
    out.push_back(item.as_int());
  }
  return true;
}

bool parse_witness(const Json* v, const char* what, McmWitness& out, ParseState& st) {
  if (v == nullptr || !v->is_object()) return st.fail(std::string(what) + ": expected object");
  if (!parse_rational(v->find("theta"), what, out.theta, st)) return false;
  const Json* acyclic = v->find("acyclic");
  if (acyclic == nullptr || !acyclic->is_bool()) {
    return st.fail(std::string(what) + ": missing acyclic flag");
  }
  out.acyclic = acyclic->as_bool();
  if (!out.acyclic) {
    const Json* critical = v->find("critical");
    if (critical == nullptr || !critical->is_object()) {
      return st.fail(std::string(what) + ": missing critical cycle");
    }
    if (!parse_rational(critical->find("mean"), what, out.critical.mean, st)) return false;
    if (!parse_int_array(critical->find("places"), what, out.critical.places, st)) return false;
  }
  std::vector<std::int64_t> tmp;
  if (!parse_int_array(v->find("component"), what, tmp, st)) return false;
  out.component.clear();
  out.component.reserve(tmp.size());
  for (const std::int64_t x : tmp) out.component.push_back(static_cast<int>(x));
  if (!parse_int_array(v->find("cyclic"), what, tmp, st)) return false;
  out.component_cyclic.clear();
  for (const std::int64_t x : tmp) out.component_cyclic.push_back(x != 0 ? 1 : 0);
  const Json* lambda = v->find("lambda");
  if (lambda == nullptr || !lambda->is_array()) {
    return st.fail(std::string(what) + ": expected lambda array");
  }
  out.lambda.clear();
  out.lambda.reserve(lambda->size());
  for (std::size_t i = 0; i < lambda->size(); ++i) {
    Rational l;
    if (!parse_rational(&lambda->at(i), what, l, st)) return false;
    out.lambda.push_back(l);
  }
  return parse_int_array(v->find("potential"), what, out.potential, st);
}

}  // namespace

std::string fingerprint(const lis::LisGraph& g) {
  const std::string canonical = lis::to_text(g);
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a prime
  }
  static const char* digits = "0123456789abcdef";
  std::string out = "lis-";
  for (int shift = 60; shift >= 0; shift -= 4) out.push_back(digits[(h >> shift) & 0xF]);
  return out;
}

void write_certificate(JsonWriter& w, const Certificate& cert) {
  w.begin_object();
  w.key("kind").value(cert.kind == Kind::kAnalyze ? "analyze" : "sizing");
  w.key("fingerprint").value(cert.fingerprint);
  w.key("ideal");
  write_witness(w, cert.ideal);
  if (cert.kind == Kind::kAnalyze) {
    w.key("practical");
    write_witness(w, cert.practical);
  } else {
    w.key("target");
    write_rational(w, cert.target);
    w.key("weights").begin_array();
    for (const QueueAssignment& qa : cert.weights) {
      w.begin_object();
      w.key("channel").value(qa.channel);
      w.key("extra").value(qa.extra);
      w.end_object();
    }
    w.end_array();
    w.key("total").value(cert.total);
    if (cert.constraint_count >= 0) {
      w.key("constraint_count").value(cert.constraint_count);
      w.key("constraints").begin_array();
      for (const DeficitConstraint& dc : cert.constraints) {
        w.begin_object();
        w.key("deficit").value(dc.deficit);
        w.key("channels").begin_array();
        for (const std::int64_t c : dc.channels) w.value(c);
        w.end_array();
        w.key("cycle").begin_array();
        for (const std::int64_t p : dc.cycle) w.value(p);
        w.end_array();
        w.end_object();
      }
      w.end_array();
    }
    w.key("achieved");
    write_witness(w, cert.achieved);
  }
  w.end_object();
}

std::string to_json(const Certificate& cert) {
  JsonWriter w;
  write_certificate(w, cert);
  return w.str();
}

CertificateParse parse_certificate(const Json& value) {
  CertificateParse out;
  ParseState st;
  Certificate& cert = out.certificate;
  if (!value.is_object()) {
    out.error = "certificate: expected object";
    return out;
  }
  const Json* kind = value.find("kind");
  if (kind == nullptr || !kind->is_string() ||
      (kind->as_string() != "analyze" && kind->as_string() != "sizing")) {
    out.error = "certificate: kind must be \"analyze\" or \"sizing\"";
    return out;
  }
  cert.kind = kind->as_string() == "analyze" ? Kind::kAnalyze : Kind::kSizing;
  const Json* fp = value.find("fingerprint");
  if (fp == nullptr || !fp->is_string()) {
    out.error = "certificate: missing fingerprint";
    return out;
  }
  cert.fingerprint = fp->as_string();
  if (!parse_witness(value.find("ideal"), "ideal", cert.ideal, st)) {
    out.error = st.error;
    return out;
  }
  if (cert.kind == Kind::kAnalyze) {
    if (!parse_witness(value.find("practical"), "practical", cert.practical, st)) {
      out.error = st.error;
      return out;
    }
  } else {
    if (!parse_rational(value.find("target"), "target", cert.target, st)) {
      out.error = st.error;
      return out;
    }
    const Json* weights = value.find("weights");
    if (weights == nullptr || !weights->is_array()) {
      out.error = "certificate: missing weights";
      return out;
    }
    for (std::size_t i = 0; i < weights->size(); ++i) {
      const Json& qa = weights->at(i);
      const Json* channel = qa.find("channel");
      const Json* extra = qa.find("extra");
      if (!qa.is_object() || channel == nullptr || !channel->is_number() || extra == nullptr ||
          !extra->is_number()) {
        out.error = "certificate: malformed weight entry";
        return out;
      }
      cert.weights.push_back({channel->as_int(), extra->as_int()});
    }
    const Json* total = value.find("total");
    if (total == nullptr || !total->is_number()) {
      out.error = "certificate: missing total";
      return out;
    }
    cert.total = total->as_int();
    if (const Json* count = value.find("constraint_count"); count != nullptr) {
      if (!count->is_number()) {
        out.error = "certificate: malformed constraint_count";
        return out;
      }
      cert.constraint_count = count->as_int();
      const Json* constraints = value.find("constraints");
      if (constraints == nullptr || !constraints->is_array()) {
        out.error = "certificate: missing constraints";
        return out;
      }
      for (std::size_t i = 0; i < constraints->size(); ++i) {
        const Json& dc = constraints->at(i);
        const Json* deficit = dc.find("deficit");
        if (!dc.is_object() || deficit == nullptr || !deficit->is_number()) {
          out.error = "certificate: malformed constraint";
          return out;
        }
        DeficitConstraint parsed;
        parsed.deficit = deficit->as_int();
        if (!parse_int_array(dc.find("channels"), "constraint channels", parsed.channels, st) ||
            !parse_int_array(dc.find("cycle"), "constraint cycle", parsed.cycle, st)) {
          out.error = st.error;
          return out;
        }
        cert.constraints.push_back(std::move(parsed));
      }
    }
    if (!parse_witness(value.find("achieved"), "achieved", cert.achieved, st)) {
      out.error = st.error;
      return out;
    }
  }
  out.ok = true;
  return out;
}

CertificateParse parse_certificate_text(const std::string& text) {
  const util::JsonParse parsed = util::json_parse(text);
  if (!parsed.ok) {
    CertificateParse out;
    out.error = "certificate: " + parsed.error;
    return out;
  }
  return parse_certificate(parsed.value);
}

}  // namespace lid::verify
