// The standalone certificate checker.
//
// Trust model (docs/certificates.md): this file re-expands the instance with
// lis::expand_ideal / lis::expand_doubled — definitional data-structure code
// — and re-walks its places. It includes no solver header (mg/mcm.hpp,
// mg/analysis.hpp, core/*) and computes no SCC, no cycle-mean minimum, and no
// sizing: every judgement below is a single pass over the certificate's own
// data against the expansion's edges, O(E) per witness, with 128-bit integer
// arithmetic so adversarial certificates cannot overflow it.
#include <algorithm>
#include <string>
#include <vector>

#include "verify/certificate.hpp"

namespace lid::verify {
namespace {

using util::Rational;

std::string place_str(std::int64_t p) { return "place " + std::to_string(p); }

/// Validates one McmWitness against an expansion in one pass over its places.
CheckResult check_witness(const mg::MarkedGraph& g, const McmWitness& m, const char* what) {
  const std::size_t transitions = g.num_transitions();
  const std::size_t classes = m.lambda.size();
  if (m.component.size() != transitions || m.potential.size() != transitions ||
      m.component_cyclic.size() != classes) {
    return CheckResult::fail(Reject::kMalformed,
                             std::string(what) + ": witness dimensions do not match the expansion");
  }
  for (const int c : m.component) {
    if (c < 0 || static_cast<std::size_t>(c) >= classes) {
      return CheckResult::fail(Reject::kMalformed,
                               std::string(what) + ": component label out of range");
    }
  }

  // Every cyclic class bound must sit at or above the claimed theta — then
  // the per-place inequalities prove every cycle has mean >= theta.
  for (std::size_t c = 0; c < classes; ++c) {
    if (m.component_cyclic[c] != 0 && m.lambda[c] < m.theta) {
      return CheckResult::fail(Reject::kLambdaBelowTheta,
                               std::string(what) + ": class " + std::to_string(c) +
                                   " bound " + m.lambda[c].to_string() + " undercuts theta " +
                                   m.theta.to_string());
    }
  }

  const graph::Digraph& s = g.structure();
  for (std::size_t p = 0; p < g.num_places(); ++p) {
    const auto pid = static_cast<mg::PlaceId>(p);
    const graph::Edge& e = s.edge(pid);
    const int cu = m.component[static_cast<std::size_t>(e.src)];
    const int cv = m.component[static_cast<std::size_t>(e.dst)];
    if (cu != cv) {
      // Cross-class places must descend: then any cycle stays in one class.
      if (cu < cv) {
        return CheckResult::fail(Reject::kComponentOrderViolation,
                                 std::string(what) + ": " + place_str(pid) +
                                     " ascends the component order");
      }
      continue;
    }
    if (m.acyclic) {
      return CheckResult::fail(Reject::kComponentOrderViolation,
                               std::string(what) + ": " + place_str(pid) +
                                   " stays inside a class of an allegedly acyclic expansion");
    }
    if (m.component_cyclic[static_cast<std::size_t>(cu)] == 0) {
      return CheckResult::fail(Reject::kComponentOrderViolation,
                               std::string(what) + ": " + place_str(pid) +
                                   " stays inside a class not marked cyclic");
    }
    // q*w - p + s[dst] - s[src] >= 0, with lambda[class] = p/q.
    const Rational& lam = m.lambda[static_cast<std::size_t>(cu)];
    const __int128 slack = static_cast<__int128>(lam.den()) * g.tokens(pid) - lam.num() +
                           m.potential[static_cast<std::size_t>(e.dst)] -
                           m.potential[static_cast<std::size_t>(e.src)];
    if (slack < 0) {
      return CheckResult::fail(Reject::kPotentialViolation,
                               std::string(what) + ": potential inequality fails on " +
                                   place_str(pid));
    }
  }

  if (m.acyclic) return CheckResult::pass();

  // The witness cycle: a genuine closed walk whose mean equals theta.
  const std::vector<std::int64_t>& walk = m.critical.places;
  if (walk.empty()) {
    return CheckResult::fail(Reject::kBadCycle, std::string(what) + ": empty witness cycle");
  }
  __int128 tokens = 0;
  for (std::size_t i = 0; i < walk.size(); ++i) {
    const std::int64_t p = walk[i];
    if (p < 0 || static_cast<std::size_t>(p) >= g.num_places()) {
      return CheckResult::fail(Reject::kBadCycle,
                               std::string(what) + ": witness " + place_str(p) + " out of range");
    }
    const std::int64_t next = walk[(i + 1) % walk.size()];
    if (next < 0 || static_cast<std::size_t>(next) >= g.num_places()) {
      return CheckResult::fail(Reject::kBadCycle,
                               std::string(what) + ": witness " + place_str(next) + " out of range");
    }
    if (s.edge(static_cast<graph::EdgeId>(p)).dst !=
        s.edge(static_cast<graph::EdgeId>(next)).src) {
      return CheckResult::fail(Reject::kBadCycle,
                               std::string(what) + ": witness walk breaks after " + place_str(p));
    }
    tokens += g.tokens(static_cast<mg::PlaceId>(p));
  }
  // mean == theta, cross-multiplied in 128 bits: tokens/len == num/den.
  const __int128 len = static_cast<__int128>(walk.size());
  if (tokens * m.theta.den() != static_cast<__int128>(m.theta.num()) * len) {
    return CheckResult::fail(Reject::kCycleMeanMismatch,
                             std::string(what) + ": witness cycle mean differs from theta " +
                                 m.theta.to_string());
  }
  if (m.critical.mean != m.theta) {
    return CheckResult::fail(Reject::kCycleMeanMismatch,
                             std::string(what) + ": witness mean field differs from theta");
  }
  return CheckResult::pass();
}

/// Validates one lower-bound constraint against the pristine doubled
/// expansion: the cycle must be a genuine closed walk, its sizable places
/// must be exactly the queue backedges of the listed channels (each at most
/// once), and the deficit must be the exact token shortfall against target.
CheckResult check_constraint(const lis::Expansion& doubled, const Rational& target,
                             const DeficitConstraint& dc, std::size_t index) {
  const std::string what = "constraint " + std::to_string(index);
  const mg::MarkedGraph& g = doubled.graph;
  const graph::Digraph& s = g.structure();
  if (dc.cycle.empty()) {
    return CheckResult::fail(Reject::kConstraintUnsound, what + ": empty cycle");
  }
  __int128 tokens = 0;
  std::vector<std::int64_t> queue_channels;
  for (std::size_t i = 0; i < dc.cycle.size(); ++i) {
    const std::int64_t p = dc.cycle[i];
    if (p < 0 || static_cast<std::size_t>(p) >= g.num_places()) {
      return CheckResult::fail(Reject::kConstraintUnsound,
                               what + ": " + place_str(p) + " out of range");
    }
    const std::int64_t next = dc.cycle[(i + 1) % dc.cycle.size()];
    if (next < 0 || static_cast<std::size_t>(next) >= g.num_places()) {
      return CheckResult::fail(Reject::kConstraintUnsound,
                               what + ": " + place_str(next) + " out of range");
    }
    if (s.edge(static_cast<graph::EdgeId>(p)).dst !=
        s.edge(static_cast<graph::EdgeId>(next)).src) {
      return CheckResult::fail(Reject::kConstraintUnsound,
                               what + ": cycle walk breaks after " + place_str(p));
    }
    tokens += g.tokens(static_cast<mg::PlaceId>(p));
    const lis::ChannelId ch = doubled.place_channel[static_cast<std::size_t>(p)];
    if (doubled.queue_place(ch) == static_cast<mg::PlaceId>(p)) {
      queue_channels.push_back(static_cast<std::int64_t>(ch));
    }
  }
  // The sizable places on the cycle must be exactly the listed channels,
  // each once — otherwise "sum of extras over channels >= deficit" is not
  // what the cycle implies.
  std::vector<std::int64_t> listed = dc.channels;
  std::sort(listed.begin(), listed.end());
  std::sort(queue_channels.begin(), queue_channels.end());
  if (std::adjacent_find(queue_channels.begin(), queue_channels.end()) != queue_channels.end()) {
    return CheckResult::fail(Reject::kConstraintUnsound,
                             what + ": cycle traverses a queue backedge twice");
  }
  if (listed != queue_channels) {
    return CheckResult::fail(Reject::kConstraintUnsound,
                             what + ": channel set does not match the cycle's queue backedges");
  }
  // deficit == max(0, ceil(target * len) - tokens).
  const __int128 len = static_cast<__int128>(dc.cycle.size());
  const __int128 num = static_cast<__int128>(target.num()) * len;
  const __int128 den = target.den();
  __int128 need = num / den + (num % den != 0 ? 1 : 0);  // target >= 0
  need -= tokens;
  if (need < 0) need = 0;
  if (need != dc.deficit) {
    return CheckResult::fail(Reject::kConstraintUnsound,
                             what + ": deficit differs from the cycle's token shortfall");
  }
  return CheckResult::pass();
}

}  // namespace

const char* to_string(Reject reason) {
  switch (reason) {
    case Reject::kNone: return "ok";
    case Reject::kMalformed: return "malformed";
    case Reject::kFingerprintMismatch: return "fingerprint-mismatch";
    case Reject::kComponentOrderViolation: return "component-order-violation";
    case Reject::kPotentialViolation: return "potential-violation";
    case Reject::kLambdaBelowTheta: return "lambda-below-theta";
    case Reject::kBadCycle: return "bad-cycle";
    case Reject::kCycleMeanMismatch: return "cycle-mean-mismatch";
    case Reject::kWeightsInvalid: return "weights-invalid";
    case Reject::kTotalMismatch: return "total-mismatch";
    case Reject::kTargetMissed: return "target-missed";
    case Reject::kTruncatedConstraints: return "truncated-constraints";
    case Reject::kConstraintUnsound: return "constraint-unsound";
  }
  return "unknown";
}

CheckResult check(const lis::LisGraph& instance, const Certificate& cert) {
  if (cert.fingerprint != fingerprint(instance)) {
    return CheckResult::fail(Reject::kFingerprintMismatch,
                             "certificate addresses " + cert.fingerprint +
                                 ", instance is " + fingerprint(instance));
  }

  const lis::Expansion ideal = lis::expand_ideal(instance);
  if (CheckResult r = check_witness(ideal.graph, cert.ideal, "ideal"); !r.ok) return r;

  if (cert.kind == Kind::kAnalyze) {
    const lis::Expansion doubled = lis::expand_doubled(instance);
    return check_witness(doubled.graph, cert.practical, "practical");
  }

  // Sizing: weights are well-formed and total what the certificate claims.
  std::vector<char> seen(instance.num_channels(), 0);
  __int128 total = 0;
  for (const QueueAssignment& qa : cert.weights) {
    if (qa.channel < 0 || static_cast<std::size_t>(qa.channel) >= instance.num_channels() ||
        qa.extra < 0 || qa.extra > 1'000'000'000 ||
        seen[static_cast<std::size_t>(qa.channel)] != 0) {
      return CheckResult::fail(Reject::kWeightsInvalid,
                               "weight entry for channel " + std::to_string(qa.channel) +
                                   " is out of range, negative, or duplicated");
    }
    seen[static_cast<std::size_t>(qa.channel)] = 1;
    total += qa.extra;
  }
  if (total != cert.total) {
    return CheckResult::fail(Reject::kTotalMismatch, "total differs from the sum of weights");
  }

  // The lower-bound section, against the pristine doubled expansion.
  if (cert.constraint_count >= 0) {
    if (cert.constraint_count != static_cast<std::int64_t>(cert.constraints.size())) {
      return CheckResult::fail(Reject::kTruncatedConstraints,
                               "constraint_count " + std::to_string(cert.constraint_count) +
                                   " != " + std::to_string(cert.constraints.size()) +
                                   " constraints present");
    }
    const lis::Expansion pristine = lis::expand_doubled(instance);
    for (std::size_t i = 0; i < cert.constraints.size(); ++i) {
      if (CheckResult r = check_constraint(pristine, cert.target, cert.constraints[i], i); !r.ok) {
        return r;
      }
    }
  }

  // Feasibility: apply the weights and validate the post-sizing witness.
  lis::LisGraph sized = instance;
  for (const QueueAssignment& qa : cert.weights) {
    const auto ch = static_cast<lis::ChannelId>(qa.channel);
    sized.set_queue_capacity(ch, sized.channel(ch).queue_capacity +
                                     static_cast<int>(qa.extra));
  }
  const lis::Expansion after = lis::expand_doubled(sized);
  if (CheckResult r = check_witness(after.graph, cert.achieved, "achieved"); !r.ok) return r;
  if (!cert.achieved.acyclic &&
      Rational::min(Rational(1), cert.achieved.theta) < Rational::min(Rational(1), cert.target)) {
    return CheckResult::fail(Reject::kTargetMissed,
                             "achieved theta " + cert.achieved.theta.to_string() +
                                 " misses the target " + cert.target.to_string());
  }
  return CheckResult::pass();
}

}  // namespace lid::verify
