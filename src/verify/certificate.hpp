// Independently checkable certificates for the paper's analysis verdicts.
//
// Every claim the analyses make reduces to properties of the marked-graph
// expansions of a netlist: "the practical MST is theta" is exactly "theta is
// the minimum cycle mean of d[G]", and "this queue sizing reaches the ideal
// MST" is "after adding these tokens to the queue backedges, no cycle of
// d[G] has mean below the ideal". Both are certifiable: a critical cycle
// plus node potentials prove a minimum cycle mean in one O(E) pass, and a
// token-deficit constraint set records why a sizing total cannot be beaten.
//
// This module owns the certificate *model*, its float-free JSON codec, and
// the standalone checker `verify::check()` (check.cpp). The checker's trust
// model is deliberately narrow: it re-expands the instance with
// lis::expand_ideal / lis::expand_doubled (definitional data-structure code)
// and re-walks its edges — it shares no code with the solvers in src/mg
// (mcm.cpp, analysis.cpp) or src/core, and never computes an SCC, a cycle
// mean minimum, or a sizing itself. See docs/certificates.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lis/lis_graph.hpp"
#include "util/json.hpp"
#include "util/rational.hpp"

namespace lid::verify {

/// A closed walk of a marked-graph expansion, as the place ids traversed, and
/// its claimed token/place mean.
struct CycleWitness {
  util::Rational mean;
  std::vector<std::int64_t> places;
};

/// Optimality evidence for "theta is the minimum cycle mean of this
/// expansion" (or, when `acyclic`, "this expansion has no cycle at all").
///
/// The checker validates, without computing SCCs or solving anything:
///   * every place u -> v with component[u] != component[v] satisfies
///     component[u] > component[v] — so any cycle stays inside one label
///     class (the labels are a reverse topological order of the
///     condensation, but the checker only needs the local edge rule);
///   * every place inside a label class c (which must be marked cyclic)
///     satisfies, with lambda[c] = p/q and integer potentials s,
///         q*tokens - p + s[dst] - s[src] >= 0,
///     which summed around any cycle of c proves its mean >= lambda[c];
///   * lambda[c] >= theta for every cyclic class, and the witness cycle is a
///     genuine closed walk of mean exactly theta — so theta is attained and
///     no cycle beats it. When `acyclic`, every place must cross label
///     classes, which proves there is no cycle.
struct McmWitness {
  util::Rational theta;
  bool acyclic = false;
  CycleWitness critical;               ///< meaningful when !acyclic
  std::vector<int> component;          ///< per transition
  std::vector<char> component_cyclic;  ///< per label class
  std::vector<util::Rational> lambda;  ///< per label class
  std::vector<std::int64_t> potential; ///< per transition, scaled by lambda[c].den()
};

/// One generated token-deficit constraint from the lazy sizing solver: any
/// sizing that reaches `target` must add at least `deficit` tokens across the
/// input queues of `channels`, because `cycle` (a closed walk of the pristine
/// d[G] whose only sizable places are those queues) would otherwise keep a
/// mean below the target.
struct DeficitConstraint {
  std::int64_t deficit = 0;
  std::vector<std::int64_t> channels;  ///< channels whose queue backedge is on the cycle
  std::vector<std::int64_t> cycle;     ///< place ids in the pristine d[G]
};

/// Extra tokens assigned to one channel's input queue by a sizing.
struct QueueAssignment {
  std::int64_t channel = 0;
  std::int64_t extra = 0;
};

enum class Kind { kAnalyze, kSizing };

/// A certificate for one analysis verdict on one netlist.
///
/// kAnalyze: `ideal` proves theta(G) on expand_ideal, `practical` proves
/// theta(d[G]) on expand_doubled.
///
/// kSizing: `ideal` proves the ceiling theta(G); `weights`/`total` name the
/// sizing; `achieved` proves the post-sizing minimum cycle mean of d[G] with
/// the weights applied (feasibility); when `constraint_count >= 0` the
/// lazy solver's generating constraint set is attached as the lower-bound
/// witness (`constraint_count` must equal `constraints.size()` so a
/// truncated set is detectable).
struct Certificate {
  Kind kind = Kind::kAnalyze;
  /// "lis-" + 16 hex FNV-1a 64 over the canonical netlist text — the same
  /// recipe as serve::Registry::fingerprint, so a certificate is addressed by
  /// the model it certifies.
  std::string fingerprint;
  McmWitness ideal;
  McmWitness practical;  ///< kAnalyze only

  // kSizing only.
  util::Rational target;
  std::vector<QueueAssignment> weights;
  std::int64_t total = 0;
  std::int64_t constraint_count = -1;  ///< -1 = no lower-bound section
  std::vector<DeficitConstraint> constraints;
  McmWitness achieved;
};

/// The canonical fingerprint of a netlist: FNV-1a 64 over lis::to_text(g),
/// rendered "lis-" + 16 hex digits (byte-identical to
/// serve::Registry::fingerprint of the canonical text).
std::string fingerprint(const lis::LisGraph& g);

/// Serializes `cert` into `w` as one JSON object (float-free: rationals are
/// "N" / "N/D" strings, everything else integers). Deterministic: equal
/// certificates produce identical bytes.
void write_certificate(util::JsonWriter& w, const Certificate& cert);

/// write_certificate into a fresh compact document.
std::string to_json(const Certificate& cert);

/// Outcome of parsing a certificate document.
struct CertificateParse {
  bool ok = false;
  Certificate certificate;
  std::string error;

  explicit operator bool() const { return ok; }
};

/// Parses a certificate from a JSON value / document. Shape errors are
/// reported in `error`; semantic validity is check()'s job.
CertificateParse parse_certificate(const util::Json& value);
CertificateParse parse_certificate_text(const std::string& text);

// ---------------------------------------------------------------------------
// The checker (check.cpp).

/// Why a certificate was rejected.
enum class Reject {
  kNone = 0,
  kMalformed,                ///< ids out of range / sizes inconsistent
  kFingerprintMismatch,      ///< certificate addresses a different netlist
  kComponentOrderViolation,  ///< a cross-class place does not descend
  kPotentialViolation,       ///< the potential inequality fails on a place
  kLambdaBelowTheta,         ///< a class bound undercuts the claimed theta
  kBadCycle,                 ///< witness places do not form a closed walk
  kCycleMeanMismatch,        ///< witness mean != claimed theta
  kWeightsInvalid,           ///< bad channel id / negative extra tokens
  kTotalMismatch,            ///< total != sum of weights
  kTargetMissed,             ///< achieved theta below the sizing target
  kTruncatedConstraints,     ///< constraint_count != constraints.size()
  kConstraintUnsound,        ///< a constraint is not implied by the instance
};

const char* to_string(Reject reason);

/// Verdict of check(): ok, or a structured reason plus a human detail line.
struct CheckResult {
  bool ok = false;
  Reject reason = Reject::kNone;
  std::string detail;

  static CheckResult pass() { return {true, Reject::kNone, {}}; }
  static CheckResult fail(Reject reason, std::string detail) {
    return {false, reason, std::move(detail)};
  }
};

/// Validates `cert` against `instance` in O(E): re-expands the instance,
/// re-walks every place once per witness, and checks the integer potential
/// inequalities in 128-bit arithmetic. Never runs a solver.
CheckResult check(const lis::LisGraph& instance, const Certificate& cert);

}  // namespace lid::verify
