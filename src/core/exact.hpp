// Exact Token-Deficit solver (Sec. VII-B).
//
// The paper's exact algorithm binary-searches the budget K between 1 and the
// heuristic solution; each probe answers the decision problem "can K extra
// tokens cover every deficit?" with a depth-K search tree over unit token
// placements. This implementation keeps that structure and adds standard
// branch-and-bound ingredients (most-constrained-cycle branching, a
// max-residual-deficit pruning bound) plus a wall-clock timeout, mirroring
// the 1-hour cutoff used for Table IV / Table V.
#pragma once

#include <cstdint>
#include <optional>

#include "core/token_deficit.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace lid::core {

/// Options for the exact search.
struct ExactOptions {
  /// Wall-clock budget; <= 0 means unlimited.
  double timeout_ms = 0.0;
  /// Hard cap on explored search nodes; 0 means unlimited. Checked at every
  /// node, so a cut-off lands on exactly max_nodes explored — deterministic
  /// regardless of machine speed.
  std::int64_t max_nodes = 0;
  /// Cooperative cancellation (request deadline, server drain). Polled at
  /// iteration boundaries; the default token never cancels.
  util::CancelToken cancel;
  /// Caller-known lower bound on the optimal total (0 = none). The binary
  /// search starts no lower than this. Must be a genuine lower bound; the
  /// lazy sizing driver passes the previous iteration's proven optimum,
  /// which stays valid because its constraint set only grows.
  std::int64_t min_total = 0;
};

/// Outcome of an exact solve.
struct ExactResult {
  /// The optimal solution, present unless the search was cut off before it
  /// could be proven optimal.
  std::optional<TdSolution> solution;
  /// True when the timeout, node cap or cancel token fired.
  bool cut_off = false;
  /// True when specifically the cancel token fired (deadline expiry or an
  /// external cancel) — lets callers distinguish "out of budget" from
  /// "caller gave up" and report partial progress.
  bool cancelled = false;
  /// Search nodes explored across all probes.
  std::int64_t nodes_explored = 0;
  /// Wall time spent.
  double elapsed_ms = 0.0;
};

/// Finds a minimum-total solution. `upper_bound` must be a feasible solution
/// (typically the heuristic's); the search never returns a worse one — on
/// cut-off, `solution` is absent but the caller still holds `upper_bound`.
ExactResult solve_exact(const TdInstance& instance, const TdSolution& upper_bound,
                        const ExactOptions& options = {});

}  // namespace lid::core
