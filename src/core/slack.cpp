#include "core/slack.hpp"

#include "util/check.hpp"

namespace lid::core {
namespace {

using util::Rational;

/// Ideal MST of `lis` with `extra` additional relay stations on channel `c`.
Rational mst_with_extra(const lis::LisGraph& lis, lis::ChannelId c, int extra) {
  lis::LisGraph modified = lis;
  modified.set_relay_stations(c, lis.channel(c).relay_stations + extra);
  return lis::ideal_mst(modified);
}

}  // namespace

std::vector<ChannelSlack> channel_slacks(const lis::LisGraph& lis, const Rational& target) {
  LID_ENSURE(target > Rational(0), "channel_slacks: target must be positive");
  std::vector<ChannelSlack> out;
  out.reserve(lis.num_channels());

  // Any forward cycle through a channel has at most num_cores() tokens, so
  // k_max <= tokens * den / num; past that bound a surviving MST proves the
  // channel lies on no forward cycle at all.
  const auto cores = static_cast<std::int64_t>(lis.num_cores());
  const int probe_limit =
      static_cast<int>((cores * target.den() + target.num() - 1) / target.num()) + 1;

  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    ChannelSlack slack;
    slack.channel = c;
    if (mst_with_extra(lis, c, probe_limit) >= target) {
      slack.slack = ChannelSlack::kUnbounded;
      slack.mst_if_exceeded = Rational(1);
      out.push_back(slack);
      continue;
    }
    // Binary search the largest k with MST(k) >= target (monotone in k).
    int lo = 0;  // MST(0) >= target is the caller's precondition per channel;
    int hi = probe_limit;
    if (mst_with_extra(lis, c, 0) < target) {
      // Already below target: no headroom at all, report the current value.
      slack.slack = 0;
      slack.mst_if_exceeded = mst_with_extra(lis, c, 1);
      out.push_back(slack);
      continue;
    }
    while (lo < hi) {
      const int mid = lo + (hi - lo + 1) / 2;
      if (mst_with_extra(lis, c, mid) >= target) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    slack.slack = lo;
    slack.mst_if_exceeded = mst_with_extra(lis, c, lo + 1);
    out.push_back(slack);
  }
  return out;
}

std::vector<ChannelSlack> channel_slacks(const lis::LisGraph& lis) {
  return channel_slacks(lis, lis::ideal_mst(lis));
}

}  // namespace lid::core
