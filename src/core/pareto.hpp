// Budgeted repair: the Pareto frontier between extra queue slots and
// achieved throughput.
//
// Queue sizing is usually run to full repair (MST back to θ(G)), but a
// designer with a tight area budget may prefer a partial repair. Because a
// practical LIS's MST is always the mean of some doubled-graph cycle, the
// achievable throughput levels form a finite set; for each level this module
// asks the exact solver for the cheapest sizing that reaches it, yielding
// the full tokens-vs-throughput trade-off curve.
#pragma once

#include <vector>

#include "core/exact.hpp"
#include "core/qs_problem.hpp"
#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::core {

/// One point of the trade-off curve.
struct ParetoPoint {
  /// Extra queue slots spent.
  std::int64_t extra_tokens = 0;
  /// The practical MST those slots buy.
  util::Rational achieved_mst;
};

/// Options for the frontier computation.
struct ParetoOptions {
  QsBuildOptions build;
  /// Per-level exact-solver budget.
  ExactOptions exact;
};

/// Computes the tokens-vs-MST frontier from the current practical MST up to
/// the ideal MST. The first point is (0, θ(d[G])), the last (K*, θ(G));
/// intermediate points are strictly increasing in both coordinates. Levels
/// whose exact solve is cut off are skipped.
std::vector<ParetoPoint> qs_pareto_frontier(const lis::LisGraph& lis,
                                            const ParetoOptions& options = {});

}  // namespace lid::core
