// Relay-station insertion as a throughput repair (Sec. VI).
//
// Casu and Macchiarulo proposed equalizing the latencies of reconvergent
// paths by inserting extra relay stations. The paper shows this is also
// NP-complete and — via the Fig. 15 counterexample — that it cannot always
// recover the ideal MST, because an extra relay station on the only helpful
// channels may lie on other small cycles and lower the ideal MST itself.
// This module provides a greedy equalizer and an exhaustive search used to
// demonstrate that counterexample computationally.
//
// DEPRECATED as a public entry point: new call sites should use
// lid::insert_relay_stations in src/lid_api.hpp. This header remains the
// implementation layer behind the facade and the batch engine.
#pragma once

#include <cstdint>

#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::core {

/// Outcome of a relay-station insertion optimization.
struct RsInsertionResult {
  /// Netlist with the chosen extra relay stations.
  lis::LisGraph best;
  /// θ(G) of the ORIGINAL netlist — the target to recover.
  util::Rational original_ideal;
  /// θ(d[best]) — the practical MST achieved.
  util::Rational best_practical;
  /// Extra relay stations inserted.
  int relay_stations_added = 0;
  /// True when best_practical equals the original ideal MST.
  bool reached_ideal = false;
  /// Configurations evaluated.
  std::size_t configurations_tried = 0;
};

/// Greedy hill-climbing: repeatedly add the single relay station that most
/// improves θ(d[G]) (ties broken by lowest channel id), stopping when the
/// ideal MST is reached, no insertion improves, or `max_added` is exhausted.
RsInsertionResult greedy_rs_insertion(const lis::LisGraph& lis, int max_added);

/// Exhaustive search over all ways to distribute up to `max_added` extra
/// relay stations over the channels (multisets). Exponential — intended for
/// small systems like the Fig. 15 counterexample.
RsInsertionResult exhaustive_rs_insertion(const lis::LisGraph& lis, int max_added);

}  // namespace lid::core
