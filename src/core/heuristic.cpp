#include "core/heuristic.hpp"

#include <algorithm>
#include <numeric>

#include "milp/simplex.hpp"
#include "util/check.hpp"

namespace lid::core {
namespace {

/// The paper's decrement sweep, shared by the cold and warm entry points.
/// `solution.weights` must hold a feasible assignment on entry; on exit it is
/// a (weakly) smaller feasible assignment with `total` filled in.
void decrement_sweep(const TdInstance& instance, const HeuristicOptions& options,
                     TdSolution& solution) {
  const std::size_t n_sets = instance.num_sets();
  const std::size_t n_cycles = instance.num_cycles();

  // covered[c] = current total weight over c's covering sets.
  std::vector<std::int64_t> covered(n_cycles, 0);
  for (std::size_t s = 0; s < n_sets; ++s) {
    for (const int c : instance.set_members[s]) {
      covered[static_cast<std::size_t>(c)] += solution.weights[s];
    }
  }

  std::vector<std::size_t> order(n_sets);
  std::iota(order.begin(), order.end(), 0);
  if (options.order_by_weight) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return solution.weights[a] > solution.weights[b];
    });
  }

  // Largest decrement of set s that keeps every member cycle covered.
  const auto max_decrement = [&](std::size_t s) {
    std::int64_t room = solution.weights[s];
    for (const int c : instance.set_members[s]) {
      const auto ci = static_cast<std::size_t>(c);
      room = std::min(room, covered[ci] - instance.deficits[ci]);
      if (room <= 0) return std::int64_t{0};
    }
    return room;
  };

  std::vector<char> fixed(n_sets, 0);
  std::size_t unfixed = n_sets;
  while (unfixed > 0) {
    for (const std::size_t s : order) {
      if (fixed[s]) continue;
      const std::int64_t room = max_decrement(s);
      const std::int64_t step = options.greedy_steps ? room : std::min<std::int64_t>(room, 1);
      if (step > 0) {
        solution.weights[s] -= step;
        for (const int c : instance.set_members[s]) {
          covered[static_cast<std::size_t>(c)] -= step;
        }
      }
      // Fix when no further decrement is possible right now. In the paper's
      // one-step variant a successful decrement leaves the set unfixed for
      // the next sweep; with greedy steps the set is exhausted immediately.
      const bool exhausted = options.greedy_steps ? true : (step == 0);
      if (exhausted || solution.weights[s] == 0) {
        if (!fixed[s]) {
          fixed[s] = 1;
          --unfixed;
        }
      }
    }
  }

  solution.total = std::accumulate(solution.weights.begin(), solution.weights.end(),
                                   std::int64_t{0});
  LID_ASSERT(instance.is_feasible(solution.weights), "heuristic produced an infeasible solution");
}

}  // namespace

TdSolution solve_heuristic(const TdInstance& instance, const HeuristicOptions& options) {
  const std::size_t n_sets = instance.num_sets();

  TdSolution solution;
  solution.weights.assign(n_sets, 0);

  // Initial assignment: each set carries the maximal deficit of its cycles.
  // This is feasible by construction (every cycle has at least one set).
  for (std::size_t s = 0; s < n_sets; ++s) {
    std::int64_t w = 0;
    for (const int c : instance.set_members[s]) {
      w = std::max(w, instance.deficits[static_cast<std::size_t>(c)]);
    }
    solution.weights[s] = w;
  }

  decrement_sweep(instance, options, solution);
  return solution;
}

TdSolution solve_heuristic_incremental(const TdInstance& instance,
                                       const std::vector<std::int64_t>& prev_weights,
                                       const HeuristicOptions& options) {
  const std::size_t n_sets = instance.num_sets();
  LID_ENSURE(prev_weights.size() <= n_sets,
             "solve_heuristic_incremental: previous solution has more sets than the instance");

  TdSolution solution;
  solution.weights.assign(n_sets, 0);
  std::copy(prev_weights.begin(), prev_weights.end(), solution.weights.begin());
  // Sets the previous solve never saw start at their max member deficit,
  // exactly like the cold initial assignment.
  for (std::size_t s = prev_weights.size(); s < n_sets; ++s) {
    std::int64_t w = 0;
    for (const int c : instance.set_members[s]) {
      w = std::max(w, instance.deficits[static_cast<std::size_t>(c)]);
    }
    solution.weights[s] = w;
  }

  // Repair: a cycle that arrived after the previous solve may still be
  // under-covered when only old sets cover it. Dump each shortfall on the
  // cycle's first covering set (the sweep will redistribute).
  std::vector<std::int64_t> covered(instance.num_cycles(), 0);
  for (std::size_t s = 0; s < n_sets; ++s) {
    for (const int c : instance.set_members[s]) {
      covered[static_cast<std::size_t>(c)] += solution.weights[s];
    }
  }
  const std::vector<std::vector<int>> covering = instance.covering_sets();
  for (std::size_t c = 0; c < instance.num_cycles(); ++c) {
    const std::int64_t shortfall = instance.deficits[c] - covered[c];
    if (shortfall <= 0) continue;
    LID_ENSURE(!covering[c].empty(), "solve_heuristic_incremental: uncoverable cycle");
    const auto s = static_cast<std::size_t>(covering[c].front());
    solution.weights[s] += shortfall;
    for (const int member : instance.set_members[s]) {
      covered[static_cast<std::size_t>(member)] += shortfall;
    }
  }

  decrement_sweep(instance, options, solution);
  return solution;
}

TdSolution solve_lp_rounding(const TdInstance& instance) {
  TdSolution solution;
  solution.weights.assign(instance.num_sets(), 0);
  if (instance.num_cycles() == 0) return solution;

  milp::LinearProgram lp;
  lp.objective.assign(instance.num_sets(), util::Rational(1));
  const auto covering = instance.covering_sets();
  for (std::size_t c = 0; c < instance.num_cycles(); ++c) {
    LID_ENSURE(!covering[c].empty(), "solve_lp_rounding: uncoverable cycle");
    std::vector<util::Rational> coeffs(instance.num_sets(), util::Rational(0));
    for (const int s : covering[c]) coeffs[static_cast<std::size_t>(s)] = util::Rational(1);
    lp.add_constraint(std::move(coeffs), milp::Relation::kGreaterEq,
                      util::Rational(instance.deficits[c]));
  }
  const milp::LpResult relaxed = milp::solve_lp(lp);
  LID_ASSERT(relaxed.status == milp::LpResult::Status::kOptimal,
             "covering LP must be feasible and bounded");
  for (std::size_t s = 0; s < instance.num_sets(); ++s) {
    solution.weights[s] = relaxed.solution[s].ceil();
    solution.total += solution.weights[s];
  }
  LID_ASSERT(instance.is_feasible(solution.weights),
             "LP rounding produced an infeasible solution");
  return solution;
}

}  // namespace lid::core
