#include "core/token_deficit.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace lid::core {

std::vector<std::vector<int>> TdInstance::covering_sets() const {
  std::vector<std::vector<int>> covering(num_cycles());
  for (int s = 0; s < static_cast<int>(set_members.size()); ++s) {
    for (const int c : set_members[static_cast<std::size_t>(s)]) {
      LID_ENSURE(c >= 0 && static_cast<std::size_t>(c) < num_cycles(),
                 "TdInstance: set member out of range");
      covering[static_cast<std::size_t>(c)].push_back(s);
    }
  }
  return covering;
}

bool TdInstance::is_feasible(const std::vector<std::int64_t>& weights) const {
  LID_ENSURE(weights.size() == num_sets(), "is_feasible: one weight per set required");
  std::vector<std::int64_t> covered(num_cycles(), 0);
  for (std::size_t s = 0; s < set_members.size(); ++s) {
    if (weights[s] == 0) continue;
    for (const int c : set_members[s]) covered[static_cast<std::size_t>(c)] += weights[s];
  }
  for (std::size_t c = 0; c < num_cycles(); ++c) {
    if (covered[c] < deficits[c]) return false;
  }
  return true;
}

TdSolution SimplifiedTd::lift(const TdSolution& reduced_solution) const {
  LID_ENSURE(reduced_solution.weights.size() == kept_sets.size(),
             "lift: solution does not match the reduced instance");
  TdSolution full;
  full.weights = base_weights;
  full.total = base_total;
  for (std::size_t i = 0; i < kept_sets.size(); ++i) {
    full.weights[static_cast<std::size_t>(kept_sets[i])] += reduced_solution.weights[i];
    full.total += reduced_solution.weights[i];
  }
  return full;
}

SimplifiedTd simplify(const TdInstance& instance, const SimplifyOptions& options) {
  const std::size_t n_sets = instance.num_sets();
  const std::size_t n_cycles = instance.num_cycles();

  SimplifiedTd out;
  out.base_weights.assign(n_sets, 0);

  // Working state: per-cycle residual deficit (<=0 means satisfied/removed),
  // per-set alive flag, and membership both ways.
  std::vector<std::int64_t> residual = instance.deficits;
  std::vector<char> cycle_alive(n_cycles, 1);
  std::vector<char> set_alive(n_sets, 1);
  const std::vector<std::vector<int>> covering = instance.covering_sets();

  for (std::size_t c = 0; c < n_cycles; ++c) {
    LID_ENSURE(instance.deficits[c] > 0, "simplify: deficits must be positive");
    if (covering[c].empty()) {
      throw std::invalid_argument("TD instance has an uncoverable cycle");
    }
  }

  const auto live_members = [&](std::size_t s) {
    std::vector<int> m;
    for (const int c : instance.set_members[s]) {
      if (cycle_alive[static_cast<std::size_t>(c)]) m.push_back(c);
    }
    return m;
  };
  const auto live_covering = [&](std::size_t c) {
    std::vector<int> cov;
    for (const int s : covering[c]) {
      if (set_alive[static_cast<std::size_t>(s)]) cov.push_back(s);
    }
    return cov;
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // Retire satisfied cycles.
    for (std::size_t c = 0; c < n_cycles; ++c) {
      if (cycle_alive[c] && residual[c] <= 0) {
        cycle_alive[c] = 0;
        changed = true;
      }
    }

    const std::size_t live_cycles = static_cast<std::size_t>(
        std::count(cycle_alive.begin(), cycle_alive.end(), char{1}));
    const bool pairwise_ok =
        options.max_cycles_for_pairwise == 0 || live_cycles <= options.max_cycles_for_pairwise;
    if (options.drop_dominated_cycles && pairwise_ok) {
      // Drop cycle c2 when some other live cycle c1 has members(c1) ⊆
      // members(c2) and residual(c1) >= residual(c2): covering c1 covers c2.
      std::vector<std::vector<int>> live_cov(n_cycles);
      for (std::size_t c = 0; c < n_cycles; ++c) {
        if (cycle_alive[c]) live_cov[c] = live_covering(c);
      }
      for (std::size_t c2 = 0; c2 < n_cycles; ++c2) {
        if (!cycle_alive[c2]) continue;
        for (std::size_t c1 = 0; c1 < n_cycles; ++c1) {
          if (c1 == c2 || !cycle_alive[c1]) continue;
          if (residual[c1] < residual[c2]) continue;
          if (live_cov[c1].size() > live_cov[c2].size()) continue;
          // Tie-break equal member sets and deficits by index to avoid
          // dropping both of a symmetric pair.
          if (live_cov[c1] == live_cov[c2] && residual[c1] == residual[c2] && c1 > c2) continue;
          if (std::includes(live_cov[c2].begin(), live_cov[c2].end(), live_cov[c1].begin(),
                            live_cov[c1].end())) {
            cycle_alive[c2] = 0;
            changed = true;
            break;
          }
        }
      }
    }

    if (options.drop_dominated_sets) {
      // Paper simplification 2: if live-members(s_i) ⊆ live-members(s_j),
      // drop s_i (tokens are at least as useful on s_j).
      std::vector<std::vector<int>> members(n_sets);
      for (std::size_t s = 0; s < n_sets; ++s) {
        if (set_alive[s]) members[s] = live_members(s);
      }
      for (std::size_t si = 0; si < n_sets; ++si) {
        if (!set_alive[si]) continue;
        if (members[si].empty()) {
          set_alive[si] = 0;  // covers nothing live
          changed = true;
          continue;
        }
        for (std::size_t sj = 0; sj < n_sets; ++sj) {
          if (si == sj || !set_alive[sj]) continue;
          if (members[si].size() > members[sj].size()) continue;
          if (members[si] == members[sj] && si > sj) continue;  // keep one of equals
          if (std::includes(members[sj].begin(), members[sj].end(), members[si].begin(),
                            members[si].end())) {
            set_alive[si] = 0;
            changed = true;
            break;
          }
        }
      }
    }

    if (options.auto_assign_singletons) {
      // Paper simplification 3: a cycle covered by exactly one live set
      // commits its residual deficit to that set.
      for (std::size_t c = 0; c < n_cycles; ++c) {
        if (!cycle_alive[c]) continue;
        if (residual[c] <= 0) {
          // Satisfied by a commitment earlier in this same sweep.
          cycle_alive[c] = 0;
          changed = true;
          continue;
        }
        const std::vector<int> cov = live_covering(c);
        if (cov.empty()) {
          throw std::invalid_argument("TD simplification exposed an uncoverable cycle");
        }
        if (cov.size() != 1) continue;
        const auto s = static_cast<std::size_t>(cov.front());
        const std::int64_t commit = residual[c];
        out.base_weights[s] += commit;
        out.base_total += commit;
        // The committed tokens shrink every cycle the set covers.
        for (const int other : instance.set_members[s]) {
          residual[static_cast<std::size_t>(other)] -= commit;
        }
        cycle_alive[c] = 0;
        changed = true;
      }
    }
  }

  // Emit the reduced instance over live cycles and live sets.
  std::vector<int> cycle_index(n_cycles, -1);
  for (std::size_t c = 0; c < n_cycles; ++c) {
    if (cycle_alive[c]) {
      cycle_index[c] = static_cast<int>(out.reduced.deficits.size());
      out.reduced.deficits.push_back(residual[c]);
    }
  }
  for (std::size_t s = 0; s < n_sets; ++s) {
    if (!set_alive[s]) continue;
    std::vector<int> members;
    for (const int c : instance.set_members[s]) {
      const int idx = cycle_index[static_cast<std::size_t>(c)];
      if (idx >= 0) members.push_back(idx);
    }
    if (members.empty()) continue;
    out.kept_sets.push_back(static_cast<int>(s));
    out.reduced.set_members.push_back(std::move(members));
  }
  return out;
}

}  // namespace lid::core
