#include "core/rs_insertion.hpp"

#include <functional>

#include "util/check.hpp"

namespace lid::core {
namespace {

using lis::ChannelId;
using lis::LisGraph;
using util::Rational;

RsInsertionResult make_result(const LisGraph& original, LisGraph best, int added,
                              std::size_t tried) {
  RsInsertionResult result;
  result.original_ideal = lis::ideal_mst(original);
  result.best_practical = lis::practical_mst(best);
  result.best = std::move(best);
  result.relay_stations_added = added;
  result.reached_ideal = result.best_practical >= result.original_ideal;
  result.configurations_tried = tried;
  return result;
}

}  // namespace

RsInsertionResult greedy_rs_insertion(const LisGraph& lis, int max_added) {
  LID_ENSURE(max_added >= 0, "greedy_rs_insertion: negative budget");
  const Rational ideal = lis::ideal_mst(lis);
  LisGraph current = lis;
  Rational current_mst = lis::practical_mst(current);
  int added = 0;
  std::size_t tried = 1;

  while (added < max_added && current_mst < ideal) {
    ChannelId best_channel = graph::kInvalidEdge;
    Rational best_mst = current_mst;
    for (ChannelId ch = 0; ch < static_cast<ChannelId>(current.num_channels()); ++ch) {
      LisGraph candidate = current;
      candidate.set_relay_stations(ch, current.channel(ch).relay_stations + 1);
      const Rational mst = lis::practical_mst(candidate);
      ++tried;
      if (mst > best_mst) {
        best_mst = mst;
        best_channel = ch;
      }
    }
    if (best_channel == graph::kInvalidEdge) break;  // no strict improvement
    current.set_relay_stations(best_channel, current.channel(best_channel).relay_stations + 1);
    current_mst = best_mst;
    ++added;
  }
  return make_result(lis, std::move(current), added, tried);
}

RsInsertionResult exhaustive_rs_insertion(const LisGraph& lis, int max_added) {
  LID_ENSURE(max_added >= 0, "exhaustive_rs_insertion: negative budget");
  const auto num_channels = static_cast<ChannelId>(lis.num_channels());
  const Rational ideal = lis::ideal_mst(lis);

  LisGraph best = lis;
  Rational best_mst = lis::practical_mst(lis);
  int best_added = 0;
  std::size_t tried = 1;
  bool done = false;

  // Enumerate multisets: assign extra relay stations channel by channel.
  LisGraph working = lis;
  const std::function<void(ChannelId, int, int)> recurse = [&](ChannelId ch, int used,
                                                               int total) {
    if (done) return;
    if (ch == num_channels) {
      if (used == 0) return;  // the unmodified netlist is the baseline
      const Rational mst = lis::practical_mst(working);
      ++tried;
      if (mst > best_mst || (mst == best_mst && used < best_added)) {
        best = working;
        best_mst = mst;
        best_added = used;
        if (best_mst >= ideal) done = true;
      }
      return;
    }
    const int base = lis.channel(ch).relay_stations;
    for (int extra = 0; used + extra <= total; ++extra) {
      working.set_relay_stations(ch, base + extra);
      recurse(ch + 1, used + extra, total);
      if (done) return;
    }
    working.set_relay_stations(ch, base);
  };
  recurse(0, 0, max_added);

  return make_result(lis, std::move(best), best_added, tried);
}

}  // namespace lid::core
