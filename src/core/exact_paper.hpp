// The paper's exact algorithm, implemented literally (Sec. VII-B):
//
//   "First, the graph instance is expanded by replicating the sets s_x, so
//    that if D is the largest deficit of the elements of s_i, then s_i will
//    be replicated D times. This simplifies the problem since for all
//    weights, w(s_x) ∈ {0, 1}. Then, we perform a binary search on K whose
//    values vary from K = 1 to K = the heuristic solution. For each round of
//    the search, we build a K-depth search tree that branches by choosing
//    one of the edges to have w(s_x) = 1."
//
// The only liberty taken is enumerating the K placements in non-decreasing
// replicated-set order, so each multiset of placements is visited once
// instead of K! times — the same tree, deduplicated. The branch-and-bound
// solver in exact.hpp dominates this algorithm; this one exists for fidelity
// and for the solver-comparison ablation.
#pragma once

#include "core/exact.hpp"
#include "core/token_deficit.hpp"

namespace lid::core {

/// Runs the paper's replicate-and-search exact algorithm. Same contract as
/// solve_exact(): `upper_bound` must be feasible; on cut-off no solution is
/// reported.
ExactResult solve_exact_paper(const TdInstance& instance, const TdSolution& upper_bound,
                              const ExactOptions& options = {});

}  // namespace lid::core
