// Static core scheduling — the Casu–Macchiarulo baseline (Sec. II, refs
// [12], [13]): instead of backpressure, analyze the closed system statically,
// clock-gate every core on a fixed periodic firing pattern, and size queues
// to the occupancies that schedule produces. No stop wires, no dynamic
// stalling — but it only works when the system's behaviour is statically
// known; the paper's criticism is that open systems with dynamically varying
// environments break it (backpressure adapts, a schedule cannot).
//
// This module derives the schedule from the ideal (infinite-queue) marked
// graph: the synchronous firing semantics settles into a periodic regime
// whose pattern is the schedule and whose per-place peak occupancy is the
// queue requirement.
#pragma once

#include <cstdint>
#include <vector>

#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::core {

/// A periodic firing schedule for every core.
struct StaticSchedule {
  /// True when the ideal system reached a periodic regime within the budget.
  /// A finite schedule exists exactly when the ideal run is periodic — i.e.
  /// component rates are balanced; when a faster producer feeds a slower
  /// consumer, tokens accumulate forever and no schedule exists (one of the
  /// situations where only backpressure keeps the system safe, Sec. III-C).
  bool found = false;
  /// Periods before the repeating window starts.
  std::size_t transient = 0;
  /// Length of the repeating window.
  std::size_t period = 0;
  /// firing[v][t] == 1 when core v fires in period t, for
  /// t < transient + period; afterwards the window repeats.
  std::vector<std::vector<char>> firing;
  /// Valid-data rate of the schedule — equals the ideal MST θ(G).
  util::Rational throughput;
  /// Queue capacity each channel needs so the schedule never overflows
  /// (the ideal run's peak occupancy of the channel's delivery place).
  std::vector<std::int64_t> required_queues;

  /// Should core v fire at period t under this schedule?
  [[nodiscard]] bool fires(lis::CoreId v, std::size_t t) const;
};

/// Derives the static schedule of `lis` by running the ideal marked graph to
/// its periodic regime (up to `max_periods` steps).
StaticSchedule compute_static_schedule(const lis::LisGraph& lis,
                                       std::size_t max_periods = 20000);

/// Result of replaying a schedule on the real protocol.
struct ScheduleReplay {
  /// Periods in which some core's schedule said "fire" but the protocol
  /// could not (missing input or full queue) — zero for a valid schedule on
  /// a closed system, nonzero when the environment deviates.
  std::int64_t violations = 0;
  /// Measured throughput of the reference core.
  util::Rational throughput;
};

/// Replays `schedule` on `lis` (queues set to the schedule's requirements)
/// for `periods` periods, gating every core by the schedule; reports
/// violations and the achieved rate. `environment_period` != 0 additionally
/// throttles core 0 to fire only when t % environment_period == 0, modeling
/// an open system the schedule did not anticipate.
ScheduleReplay replay_schedule(const lis::LisGraph& lis, const StaticSchedule& schedule,
                               std::size_t periods, std::size_t environment_period = 0);

}  // namespace lid::core
