#include "core/queue_sizing.hpp"

#include <numeric>

#include "core/lazy_sizing.hpp"
#include "util/timer.hpp"

namespace lid::core {
namespace {

std::int64_t total_of(const std::vector<std::int64_t>& weights) {
  return std::accumulate(weights.begin(), weights.end(), std::int64_t{0});
}

}  // namespace

QsReport size_queues(const lis::LisGraph& lis, const QsOptions& options) {
  if (options.method == QsMethod::kLazy) return size_queues_lazy(lis, options);
  return size_queues_on_problem(lis, build_qs_problem(lis, options.build), options);
}

QsReport size_queues_on_problem(const lis::LisGraph& lis, const QsProblem& problem,
                                const QsOptions& options) {
  QsReport report;
  report.problem = problem;
  report.sized = lis;

  if (!report.problem.has_degradation()) {
    report.achieved_mst = report.problem.theta_practical;
    if (options.method != QsMethod::kExact) {
      report.heuristic = SolverOutcome{{}, 0, 0.0, true};
      report.heuristic->weights.assign(report.problem.channels.size(), 0);
    }
    if (options.method != QsMethod::kHeuristic) {
      report.exact = SolverOutcome{{}, 0, 0.0, true};
      report.exact->weights.assign(report.problem.channels.size(), 0);
    }
    return report;
  }

  // Optional simplification, shared by both solvers.
  const TdInstance* instance = &report.problem.td;
  std::optional<SimplifiedTd> simplified;
  double simplify_ms = 0.0;
  if (options.simplify) {
    util::Timer timer;
    simplified = simplify(report.problem.td, options.simplify_options);
    simplify_ms = timer.elapsed_ms();
    instance = &simplified->reduced;
  }
  const auto lift = [&](const TdSolution& s) {
    return simplified ? simplified->lift(s) : s;
  };

  std::optional<TdSolution> heuristic_reduced;
  if (options.method != QsMethod::kExact) {
    util::Timer timer;
    heuristic_reduced = solve_heuristic(*instance, options.heuristic);
    const TdSolution heuristic_full = lift(*heuristic_reduced);
    SolverOutcome outcome;
    outcome.weights = heuristic_full.weights;
    outcome.total_extra_tokens = heuristic_full.total;
    outcome.cpu_ms = timer.elapsed_ms() + simplify_ms;
    report.heuristic = std::move(outcome);
  }

  if (options.method != QsMethod::kHeuristic) {
    util::Timer timer;
    // The exact search needs a feasible upper bound; reuse the heuristic's
    // reduced solution when it already ran, otherwise compute one silently.
    const TdSolution upper =
        heuristic_reduced ? *heuristic_reduced : solve_heuristic(*instance, options.heuristic);
    const ExactResult exact = solve_exact(*instance, upper, options.exact);
    SolverOutcome outcome;
    outcome.finished = !exact.cut_off;
    outcome.cancelled = exact.cancelled;
    outcome.nodes_explored = exact.nodes_explored;
    if (exact.solution) {
      const TdSolution full = lift(*exact.solution);
      outcome.weights = full.weights;
      outcome.total_extra_tokens = full.total;
    } else {
      // Cut off: fall back to the upper bound so the report stays feasible.
      const TdSolution full = lift(upper);
      outcome.weights = full.weights;
      outcome.total_extra_tokens = full.total;
    }
    outcome.cpu_ms = timer.elapsed_ms() + simplify_ms;
    report.exact = std::move(outcome);
  }

  const SolverOutcome* best = nullptr;
  if (report.exact && report.exact->finished) {
    best = &*report.exact;
  } else if (report.heuristic) {
    best = &*report.heuristic;
  } else if (report.exact) {
    best = &*report.exact;
  }
  LID_ASSERT(best != nullptr, "size_queues: no solver ran");
  LID_ASSERT(total_of(best->weights) == best->total_extra_tokens,
             "size_queues: inconsistent solution total");

  report.sized = apply_solution(lis, report.problem, best->weights);
  if (options.verify) {
    report.achieved_mst = lis::practical_mst(report.sized);
  }
  return report;
}

}  // namespace lid::core
