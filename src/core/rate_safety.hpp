// Rate-safety analysis of a LIS as a network of SCCs (Sec. III-C).
//
// When a LIS has several strongly connected components, each has its own
// maximal sustainable throughput. If a faster SCC feeds a slower one, the
// *ideal* (backpressure-free) system is unsafe: valid data accumulates
// without bound on the connecting channel, so infinite queues would be
// needed. The paper's Sec. III-C discussion: designers must slow the faster
// component, speed the slower one, or rely on backpressure (which is always
// safe but drags the whole system to the slowest rate). This module computes
// the per-SCC rates and flags every unsafe inter-SCC channel.
#pragma once

#include <string>
#include <vector>

#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::core {

/// Throughput of one SCC of the netlist.
struct SccRate {
  /// Member cores.
  std::vector<lis::CoreId> cores;
  /// θ of the SCC's own subgraph (1 for acyclic components).
  util::Rational rate;
  /// The effective rate after upstream components throttle it: the minimum
  /// of `rate` over this SCC and all its ancestors in the condensation.
  util::Rational effective_rate;
};

/// One channel where the ideal system would accumulate tokens unboundedly.
struct RateHazard {
  lis::ChannelId channel = graph::kInvalidEdge;
  /// Effective production rate of the upstream component.
  util::Rational producer_rate;
  /// Own rate of the downstream component.
  util::Rational consumer_rate;
};

/// The full report.
struct RateSafetyReport {
  /// One entry per SCC, indexed consistently with `scc_of`.
  std::vector<SccRate> sccs;
  /// scc_of[core] = index into `sccs`.
  std::vector<int> scc_of;
  /// Channels where a faster producer feeds a slower consumer.
  std::vector<RateHazard> hazards;
  /// True when the ideal (infinite-queue) system is safe as-is.
  [[nodiscard]] bool safe() const { return hazards.empty(); }

  [[nodiscard]] std::string to_string(const lis::LisGraph& lis) const;
};

/// Analyzes `lis` per Sec. III-C.
RateSafetyReport analyze_rate_safety(const lis::LisGraph& lis);

}  // namespace lid::core
