#include "core/pareto.hpp"

#include <algorithm>
#include <set>

#include "core/heuristic.hpp"
#include "graph/cycles.hpp"

namespace lid::core {

std::vector<ParetoPoint> qs_pareto_frontier(const lis::LisGraph& lis,
                                            const ParetoOptions& options) {
  using util::Rational;
  std::vector<ParetoPoint> frontier;

  const Rational ideal = lis::ideal_mst(lis);
  const Rational practical = lis::practical_mst(lis);
  frontier.push_back({0, practical});
  if (practical >= ideal) return frontier;

  // Candidate throughput levels: the means of the doubled graph's cycles in
  // (practical, ideal] — after any sizing, the practical MST is the minimum
  // cycle mean, so only these values are achievable — plus the ideal itself.
  //
  // This is one of the two deliberate enumeration call sites (the other is
  // the eager constraint builder in qs_problem.cpp). Both are explicit
  // opt-ins — the frontier is only computed by the `pareto` verb — and are
  // allowlisted in scripts/check_no_enumeration.sh; default analyze /
  // size-queues / lint paths must never enumerate cycles.
  const lis::Expansion expansion = lis::expand_doubled(lis);
  std::set<Rational> levels;
  levels.insert(ideal);
  graph::CycleEnumOptions enum_options;
  enum_options.max_cycles = options.build.max_cycles;
  const auto cycles = graph::enumerate_cycles(expansion.graph.structure(), enum_options);
  for (const auto& cycle : cycles.cycles) {
    const Rational mean(expansion.graph.cycle_tokens(cycle),
                        static_cast<std::int64_t>(cycle.size()));
    if (mean > practical && mean < ideal) levels.insert(mean);
  }

  for (const Rational& level : levels) {
    QsBuildOptions build = options.build;
    build.target_mst = level;
    const QsProblem problem = build_qs_problem(lis, build);
    if (!problem.has_degradation()) continue;  // already at this level
    const TdSolution upper = solve_heuristic(problem.td);
    const ExactResult exact = solve_exact(problem.td, upper, options.exact);
    if (!exact.solution) continue;  // cut off: skip the level
    const lis::LisGraph sized = apply_solution(lis, problem, exact.solution->weights);
    frontier.push_back({exact.solution->total, lis::practical_mst(sized)});
  }

  // Keep the Pareto-maximal staircase: sort by tokens, then drop any point
  // not strictly better than its predecessor.
  std::sort(frontier.begin(), frontier.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
    if (a.extra_tokens != b.extra_tokens) return a.extra_tokens < b.extra_tokens;
    return a.achieved_mst > b.achieved_mst;
  });
  std::vector<ParetoPoint> staircase;
  for (const ParetoPoint& point : frontier) {
    if (!staircase.empty() && point.achieved_mst <= staircase.back().achieved_mst) continue;
    if (!staircase.empty() && point.extra_tokens == staircase.back().extra_tokens) continue;
    staircase.push_back(point);
  }
  return staircase;
}

}  // namespace lid::core
