#include "core/scheduling.hpp"

#include <algorithm>

#include "lis/protocol_sim.hpp"
#include "mg/simulate.hpp"
#include "util/check.hpp"

namespace lid::core {

bool StaticSchedule::fires(lis::CoreId v, std::size_t t) const {
  LID_ENSURE(found, "StaticSchedule::fires: no schedule was found");
  LID_ENSURE(v >= 0 && static_cast<std::size_t>(v) < firing.size(),
             "StaticSchedule::fires: core out of range");
  const auto& pattern = firing[static_cast<std::size_t>(v)];
  if (t < pattern.size()) return pattern[t] != 0;
  const std::size_t into_window = (t - transient) % period;
  return pattern[transient + into_window] != 0;
}

StaticSchedule compute_static_schedule(const lis::LisGraph& lis, std::size_t max_periods) {
  StaticSchedule schedule;
  const lis::Expansion ex = lis::expand_ideal(lis);

  // Collect the per-period firing rows of the cores' input transitions while
  // the simulator looks for a marking recurrence.
  std::vector<std::vector<char>> rows;
  const mg::SimulationResult sim = mg::simulate(
      ex.graph, max_periods, 0, [&](std::size_t, const std::vector<char>& fired) {
        std::vector<char> cores;
        cores.reserve(lis.num_cores());
        for (const mg::TransitionId t : ex.core_transition) {
          cores.push_back(fired[static_cast<std::size_t>(t)]);
        }
        rows.push_back(std::move(cores));
        return true;
      });
  if (!sim.periodic_found) return schedule;  // open/multi-SCC system: no schedule

  schedule.found = true;
  schedule.transient = sim.transient_steps;
  schedule.period = sim.period_steps;
  schedule.throughput = sim.throughput;
  schedule.firing.assign(lis.num_cores(), {});
  const std::size_t horizon = schedule.transient + schedule.period;
  LID_ASSERT(rows.size() >= horizon, "recurrence reported beyond the collected rows");
  for (std::size_t v = 0; v < lis.num_cores(); ++v) {
    auto& pattern = schedule.firing[v];
    pattern.reserve(horizon);
    for (std::size_t t = 0; t < horizon; ++t) pattern.push_back(rows[t][v]);
  }

  // Queue requirements: the ideal run's peak occupancy of each channel's
  // delivery place (the forward hop into the destination shell).
  schedule.required_queues.reserve(lis.num_channels());
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    const mg::PlaceId delivery = ex.forward_places[static_cast<std::size_t>(c)].back();
    schedule.required_queues.push_back(
        std::max<std::int64_t>(1, sim.max_tokens[static_cast<std::size_t>(delivery)]));
  }
  return schedule;
}

ScheduleReplay replay_schedule(const lis::LisGraph& lis, const StaticSchedule& schedule,
                               std::size_t periods, std::size_t environment_period) {
  LID_ENSURE(schedule.found, "replay_schedule: schedule was not found");
  lis::LisGraph sized = lis;
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    sized.set_queue_capacity(
        c, static_cast<int>(schedule.required_queues[static_cast<std::size_t>(c)]));
  }

  ScheduleReplay replay;
  lis::ProtocolOptions options;
  options.periods = periods;
  options.behaviors.resize(lis.num_cores());
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(lis.num_cores()); ++v) {
    const bool throttled = environment_period != 0 && v == 0;
    options.behaviors[static_cast<std::size_t>(v)].environment_gate =
        [&schedule, v, throttled, environment_period](std::int64_t t) {
          if (!schedule.fires(v, static_cast<std::size_t>(t))) return false;
          if (throttled && static_cast<std::size_t>(t) % environment_period != 0) return false;
          return true;
        };
  }
  options.observer = [&](std::size_t t, const std::vector<char>& fired) {
    for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(lis.num_cores()); ++v) {
      const bool throttled = environment_period != 0 && v == 0 &&
                             t % environment_period != 0;
      if (schedule.fires(v, t) && !throttled && !fired[static_cast<std::size_t>(v)]) {
        ++replay.violations;  // the schedule demanded a firing the protocol refused
      }
    }
    return true;
  };
  const lis::ProtocolResult result = simulate_protocol(sized, options);
  replay.throughput = result.throughput;
  return replay;
}

}  // namespace lid::core
