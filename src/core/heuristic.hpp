// The paper's queue-sizing heuristic (Sec. VII-B).
//
// Start from the trivially feasible assignment where each set's weight equals
// the maximal deficit among its cycles; then repeatedly sweep the unfixed
// sets, decrementing a weight whenever the assignment stays feasible and
// fixing it at the first failed decrement. Complexity O(|S|^2 |V| |C|).
#pragma once

#include "core/token_deficit.hpp"

namespace lid::core {

/// Knobs for heuristic variants (the defaults are the paper's algorithm; the
/// ablation bench explores alternatives).
struct HeuristicOptions {
  /// Sweep sets in descending initial-weight order instead of index order.
  bool order_by_weight = false;
  /// Decrement by the largest feasible step per visit instead of by one
  /// (same result, fewer feasibility checks).
  bool greedy_steps = false;
};

/// Runs the heuristic on a TD instance; the result is always feasible.
TdSolution solve_heuristic(const TdInstance& instance, const HeuristicOptions& options = {});

/// Warm-started variant for incremental drivers (lazy constraint generation):
/// seeds the sweep from a solution of a previous sub-instance whose sets are
/// a prefix of this instance's (stable indices), initialises newer sets at
/// their max member deficit, repairs any cycle the seed leaves under-covered,
/// then runs the same decrement sweep. Always feasible.
TdSolution solve_heuristic_incremental(const TdInstance& instance,
                                       const std::vector<std::int64_t>& prev_weights,
                                       const HeuristicOptions& options = {});

/// An alternative heuristic: solve the LP relaxation of the covering program
/// exactly (rational simplex) and round every weight up. Always feasible
/// (ceiling a fractional cover keeps every constraint satisfied) and at most
/// one extra token per set above the LP bound — often tighter than the
/// paper's heuristic on instances with heavily shared sets, at the cost of a
/// simplex solve.
TdSolution solve_lp_rounding(const TdInstance& instance);

}  // namespace lid::core
