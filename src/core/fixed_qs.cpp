#include "core/fixed_qs.hpp"

#include "util/check.hpp"

namespace lid::core {

util::Rational fixed_qs_mst(const lis::LisGraph& lis, int q) {
  LID_ENSURE(q >= 1, "fixed_qs_mst: q must be at least 1");
  lis::LisGraph fixed = lis;
  fixed.set_all_queue_capacities(q);
  return lis::practical_mst(fixed);
}

std::vector<FixedQsPoint> fixed_qs_sweep(const lis::LisGraph& lis, int q_max) {
  LID_ENSURE(q_max >= 1, "fixed_qs_sweep: q_max must be at least 1");
  const util::Rational ideal = lis::ideal_mst(lis);
  std::vector<FixedQsPoint> points;
  points.reserve(static_cast<std::size_t>(q_max));
  for (int q = 1; q <= q_max; ++q) {
    FixedQsPoint point;
    point.q = q;
    point.mst = fixed_qs_mst(lis, q);
    point.fraction_of_ideal =
        ideal.num() == 0 ? 1.0 : (point.mst / ideal).to_double();
    points.push_back(point);
  }
  return points;
}

int smallest_sufficient_fixed_q(const lis::LisGraph& lis, int q_limit) {
  LID_ENSURE(q_limit >= 1, "smallest_sufficient_fixed_q: limit must be at least 1");
  const util::Rational ideal = lis::ideal_mst(lis);
  for (int q = 1; q <= q_limit; ++q) {
    if (fixed_qs_mst(lis, q) >= ideal) return q;
  }
  return 0;
}

}  // namespace lid::core
